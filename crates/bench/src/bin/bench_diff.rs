//! Compares two bench reports written by `bench_run` and fails on
//! regressions: a row regresses when its candidate median exceeds the
//! baseline median by more than the tolerance *and* the baseline is
//! above the noise floor (tiny stages jitter too much to gate on).
//!
//! ```sh
//! cargo run --release -p gwc-bench --bin bench_diff -- \
//!     results/bench_baseline_small.json BENCH_run.json
//! ```
//!
//! `--attribute` drills a regression down: it ranks the per-kernel
//! wall-median deltas (bench schema v2 reports carry per-kernel
//! rollups) and annotates each with the µop class whose lane-µop count
//! moved the most, so the offending kernel and instruction mix change
//! are named in the top row.
//!
//! Exit status: 0 = no regressions, 1 = regression found (suppressed by
//! `--warn-only`), 2 = usage or read error.

use gwc_bench::cli::{reject_value, take_count, take_ratio, unknown_opt, ArgStream, Token};
use gwc_bench::perf::{
    attribute_reports, diff_reports, render_attribution, render_diff, report_backend,
    report_observer_tier, report_policy, report_scale, DiffConfig,
};
use gwc_obs::json::Json;

const USAGE: &str = "\
usage: bench_diff OLD.json NEW.json [OPTIONS]

Compares two bench_run reports row by row (total, per stage, per
experiment) and exits non-zero when the candidate's median exceeds the
baseline's by more than the tolerance.

options:
  --tolerance F      allowed median ratio slack (default 0.20 = +20%)
  --min-ns N         noise floor: baseline medians below N ns never
                     regress (default 1000000 = 1ms)
  --warn-only        report regressions but exit 0
  --attribute        drill the diff down to per-kernel wall-median and
                     µop-class deltas (needs bench schema v2 reports)
  -h, --help         print this help
";

fn usage_error(msg: &str) -> ! {
    eprintln!("bench_diff: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn read_report(path: &str, role: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage_error(&format!("cannot read {role} `{path}`: {e}")));
    gwc_obs::json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_diff: {role} `{path}` is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut cfg = DiffConfig::default();
    let mut warn_only = false;
    let mut attribute = false;
    let mut args = ArgStream::new(std::env::args().skip(1));
    while let Some(token) = args.next_token() {
        let (flag, inline) = match token {
            Token::Positional(arg) => {
                paths.push(arg);
                continue;
            }
            Token::Opt { flag, inline } => (flag, inline),
        };
        let result = match flag.as_str() {
            "--tolerance" => take_ratio(&flag, inline, &mut args).map(|t| cfg.tolerance = t),
            "--min-ns" => take_count(&flag, inline, &mut args).map(|n| cfg.min_ns = n as u64),
            "--warn-only" => reject_value(&flag, inline).map(|()| warn_only = true),
            "--attribute" => reject_value(&flag, inline).map(|()| attribute = true),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            _ => usage_error(&unknown_opt(&flag, inline.as_deref())),
        };
        if let Err(e) = result {
            usage_error(&e);
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        usage_error("expected exactly two report paths (OLD.json NEW.json)");
    };
    let old = read_report(old_path, "baseline");
    let new = read_report(new_path, "candidate");
    // A cross-backend diff is a legitimate comparison (it is how the
    // SIMD speedup is measured) but never an apples-to-apples gate, so
    // flag it loudly rather than failing.
    let old_backend = report_backend(&old);
    let new_backend = report_backend(&new);
    if old_backend != new_backend {
        eprintln!(
            "bench_diff: note: reports come from different warp engines \
             (baseline: {}, candidate: {}) — ratios include the backend change",
            old_backend.unwrap_or("unrecorded"),
            new_backend.unwrap_or("unrecorded"),
        );
    }
    // Same story for population scale, observer tier and co-schedule
    // policy: a standard-vs-large, exact-vs-sketch or cross-policy diff
    // measures the tier change itself.
    for (what, old_v, new_v) in [
        ("study populations", report_scale(&old), report_scale(&new)),
        (
            "observer tiers",
            report_observer_tier(&old),
            report_observer_tier(&new),
        ),
        (
            "co-schedule policies",
            report_policy(&old),
            report_policy(&new),
        ),
    ] {
        if old_v != new_v {
            eprintln!(
                "bench_diff: note: reports come from different {what} \
                 (baseline: {}, candidate: {}) — ratios include the tier change",
                old_v.unwrap_or("unrecorded"),
                new_v.unwrap_or("unrecorded"),
            );
        }
    }
    let diff = match diff_reports(&old, &new, &cfg) {
        Ok(diff) => diff,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            std::process::exit(2);
        }
    };
    print!("{}", render_diff(&diff, &cfg));
    if attribute {
        // The drill-down needs bench schema v2 rollups; older reports
        // still diff fine, so a missing section degrades to a note.
        match attribute_reports(&old, &new) {
            Ok(rows) => print!("\n{}", render_attribution(&rows)),
            Err(e) => eprintln!("bench_diff: cannot attribute: {e}"),
        }
    }
    let regressions = diff.regressions();
    if regressions.is_empty() {
        eprintln!(
            "bench_diff: no regressions (tolerance +{:.0}%)",
            cfg.tolerance * 100.0
        );
        return;
    }
    eprintln!(
        "bench_diff: {} row(s) regressed beyond +{:.0}%{}",
        regressions.len(),
        cfg.tolerance * 100.0,
        if warn_only {
            " (warn-only, exiting 0)"
        } else {
            ""
        }
    );
    if !warn_only {
        std::process::exit(1);
    }
}
