//! Measures the pipeline's wall-time trajectory: runs the study and a
//! configurable experiment subset several times and writes a bench
//! report (`BENCH_<label>.json`) with per-stage, per-experiment, and
//! total min/median/p95 wall times.
//!
//! ```sh
//! cargo run --release -p gwc-bench --bin bench_run -- e1 e2 \
//!     --iters 5 --warmup 1 --threads 4 --out BENCH_small.json
//! cargo run --release -p gwc-bench --bin bench_diff -- \
//!     results/bench_baseline_small.json BENCH_small.json
//! ```
//!
//! Each iteration installs a fresh metrics recorder, so the reported
//! stage times are exactly the span rollups `regen --metrics` reports
//! (recorder overhead included — the trajectory tracks what users
//! measure, not an idealized uninstrumented run).

use std::path::PathBuf;

use gwc_bench::all_experiments;
use gwc_bench::cli::{reject_value, take_count, take_value, unknown_opt, ArgStream, Token};
use gwc_bench::perf::{build_bench_report, measure_iteration, validate_bench, BenchContext};
use gwc_obs::report::fmt_ns;
use gwc_simt::backend::BackendKind;

const USAGE: &str = "\
usage: bench_run [EXPERIMENT...] [OPTIONS]

Runs the characterization pipeline (study + the given experiments;
all of E1..E13 when no ids are given) warmup + iters times and writes
a bench report with min/median/p95 wall times per stage, per
experiment, and in total.

options:
  --iters N          measured iterations (default 5)
  --warmup N         unrecorded warmup iterations (default 1)
  --threads N        worker threads for the study (default: available
                     parallelism; 1 forces the serial path)
  --cache DIR        persistent profile cache directory (default: off —
                     cold labels must measure real simulation time)
  --no-cache         explicit spelling of the default
  --backend ENGINE   warp engine: `simd` (default) or `scalar`; also
                     settable via GWC_BACKEND. Recorded in the report.
  --label NAME       report label (default `run`)
  --out PATH         output path (default BENCH_<label>.json)
  -h, --help         print this help
";

struct Cli {
    ids: Vec<String>,
    iters: usize,
    warmup: usize,
    threads: usize,
    cache: Option<PathBuf>,
    backend: BackendKind,
    label: String,
    out: Option<String>,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("bench_run: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_args(argv: impl Iterator<Item = String>) -> Cli {
    let mut cli = Cli {
        ids: Vec::new(),
        iters: 5,
        warmup: 1,
        threads: gwc_core::available_threads(),
        cache: None,
        backend: BackendKind::from_env(),
        label: "run".to_string(),
        out: None,
    };
    let mut cache_flag = false;
    let mut no_cache_flag = false;
    let mut args = ArgStream::new(argv);
    while let Some(token) = args.next_token() {
        let (flag, inline) = match token {
            Token::Positional(arg) => {
                cli.ids.push(arg.to_lowercase());
                continue;
            }
            Token::Opt { flag, inline } => (flag, inline),
        };
        let result = match flag.as_str() {
            "--iters" => take_count(&flag, inline, &mut args).map(|n| cli.iters = n),
            "--warmup" => take_count(&flag, inline, &mut args).map(|n| cli.warmup = n),
            "--threads" => take_count(&flag, inline, &mut args).map(|n| cli.threads = n),
            "--cache" => take_value(&flag, inline, &mut args).map(|v| {
                cache_flag = true;
                cli.cache = Some(PathBuf::from(v));
            }),
            "--no-cache" => reject_value(&flag, inline).map(|()| {
                no_cache_flag = true;
                cli.cache = None;
            }),
            "--backend" => take_value(&flag, inline, &mut args).and_then(|v| {
                BackendKind::parse(&v)
                    .map(|kind| cli.backend = kind)
                    .ok_or(format!("unknown backend `{v}` (expected scalar or simd)"))
            }),
            "--label" => take_value(&flag, inline, &mut args).map(|v| cli.label = v),
            "--out" => take_value(&flag, inline, &mut args).map(|v| cli.out = Some(v)),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            _ => usage_error(&unknown_opt(&flag, inline.as_deref())),
        };
        if let Err(e) = result {
            usage_error(&e);
        }
    }
    if cli.ids.is_empty() {
        cli.ids = all_experiments().iter().map(|s| s.to_string()).collect();
    }
    for id in &cli.ids {
        if !all_experiments().contains(&id.as_str()) {
            usage_error(&format!(
                "unknown experiment `{id}`; known: {:?}",
                all_experiments()
            ));
        }
    }
    if cache_flag && no_cache_flag {
        usage_error("--cache and --no-cache are mutually exclusive");
    }
    if cli.iters == 0 {
        usage_error("--iters must be at least 1");
    }
    cli.threads = cli.threads.max(1);
    cli
}

fn main() {
    let cli = parse_args(std::env::args().skip(1));
    let out = cli
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", cli.label));
    // Pin the process-wide default so every Device the pipeline creates
    // (workers included, via `fork`) runs the requested engine.
    gwc_simt::backend::set_default(cli.backend);
    let ids: Vec<&str> = cli.ids.iter().map(String::as_str).collect();
    eprintln!(
        "bench_run: {} warmup + {} measured iteration(s) of {:?} on {} thread(s), {} backend",
        cli.warmup,
        cli.iters,
        ids,
        cli.threads,
        cli.backend.name()
    );
    for w in 0..cli.warmup {
        eprintln!("  warmup {}/{}...", w + 1, cli.warmup);
        measure_iteration(&ids, cli.threads, cli.cache.as_deref());
    }
    let mut samples = Vec::with_capacity(cli.iters);
    for i in 0..cli.iters {
        let sample = measure_iteration(&ids, cli.threads, cli.cache.as_deref());
        eprintln!(
            "  iter {}/{}: total {}",
            i + 1,
            cli.iters,
            fmt_ns(sample.total_ns)
        );
        samples.push(sample);
    }
    let report = build_bench_report(
        &BenchContext {
            label: cli.label.clone(),
            backend: cli.backend.name().to_string(),
            threads: cli.threads,
            warmup: cli.warmup,
            iters: cli.iters,
            experiment_ids: cli.ids.clone(),
        },
        &samples,
    );
    if let Err(e) = validate_bench(&report) {
        eprintln!("bench_run: internal error: report failed validation: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out, report.render()) {
        eprintln!("bench_run: cannot write report to `{out}`: {e}");
        std::process::exit(1);
    }
    eprintln!("bench report written to {out}");
}
