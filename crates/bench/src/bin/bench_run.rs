//! Measures the pipeline's wall-time trajectory: runs the study and a
//! configurable experiment subset several times and writes a bench
//! report (`BENCH_<label>.json`) with per-stage, per-experiment, and
//! total min/median/p95 wall times.
//!
//! ```sh
//! cargo run --release -p gwc-bench --bin bench_run -- e1 e2 \
//!     --iters 5 --warmup 1 --threads 4 --out BENCH_small.json
//! cargo run --release -p gwc-bench --bin bench_diff -- \
//!     results/bench_baseline_small.json BENCH_small.json
//! ```
//!
//! Each iteration installs a fresh metrics recorder, so the reported
//! stage times are exactly the span rollups `regen --metrics` reports
//! (recorder overhead included — the trajectory tracks what users
//! measure, not an idealized uninstrumented run).
//!
//! `--metrics PATH` and `--trace PATH` additionally tee a run-long
//! metrics/trace recorder into every iteration (warmup included) and
//! write the same v4 metrics report / Chrome trace `regen` produces —
//! rolled up across all iterations rather than one. `--heartbeat
//! PATH|-` streams live NDJSON telemetry for the whole bench run (see
//! `gwc_obs::sampler`): multi-minute cold benches no longer run dark.

use std::path::PathBuf;
use std::sync::Arc;

use gwc_bench::all_experiments;
use gwc_bench::cli::{reject_value, take_count, take_value, unknown_opt, ArgStream, Token};
use gwc_bench::perf::{build_bench_report, measure_iteration_config, validate_bench, BenchContext};
use gwc_bench::telemetry::{self, TelemetryFlags};
use gwc_characterize::ObserverTier;
use gwc_core::pipeline::PipelineConfig;
use gwc_obs::metrics::MetricsRecorder;
use gwc_obs::report::fmt_ns;
use gwc_obs::{Recorder, Sampler, TraceRecorder};
use gwc_simt::backend::BackendKind;
use gwc_simt::sched::SchedPolicy;
use gwc_workloads::StudyScale;

const USAGE: &str = "\
usage: bench_run [EXPERIMENT...] [OPTIONS]

Runs the characterization pipeline (study + the given experiments;
all of E1..E14 when no ids are given) warmup + iters times and writes
a bench report with min/median/p95 wall times per stage, per
experiment, and in total.

options:
  --iters N          measured iterations (default 5)
  --warmup N         unrecorded warmup iterations (default 1)
  --threads N        worker threads for the study (default: available
                     parallelism; 1 forces the serial path)
  --cache DIR        persistent profile cache directory (default: off —
                     cold labels must measure real simulation time)
  --no-cache         explicit spelling of the default
  --backend ENGINE   warp engine: `simd` (default) or `scalar`; also
                     settable via GWC_BACKEND. Recorded in the report.
  --scale TIER       study population: `standard` (default) or `large`
                     (replicated registry, hundreds of kernel
                     instances). Recorded in the report.
  --observer-tier T  observer memory tier: `exact` (default) or
                     `sketch` (bounded-memory streaming sketches).
                     Recorded in the report.
  --policy NAME      block-dispatch policy for the E14 co-scheduled pair
                     study: `round-robin` (default), `sm-partitioned`,
                     or `leftover-fill`. Recorded in the report.
  --label NAME       report label (default `run`)
  --out PATH         output path (default BENCH_<label>.json)
  --metrics PATH     write a v4 JSON metrics report rolled up across all
                     iterations (warmup included) to PATH
  --trace PATH       write a Chrome/Perfetto trace-event timeline of the
                     whole bench run to PATH
  --heartbeat PATH|-  stream one NDJSON telemetry object per sampler tick
                     to PATH (`-` = stderr): progress per domain, stage,
                     throughput, ETA, and stall events
  --heartbeat-interval-ms N
                     sampler tick interval (default 500)
  --stall-after K    fire the stall watchdog after K zero-progress ticks,
                     0 to disable (default 8)
  -h, --help         print this help
";

struct Cli {
    ids: Vec<String>,
    iters: usize,
    warmup: usize,
    threads: usize,
    cache: Option<PathBuf>,
    backend: BackendKind,
    scale: StudyScale,
    tier: ObserverTier,
    policy: SchedPolicy,
    label: String,
    out: Option<String>,
    metrics: Option<String>,
    trace: Option<String>,
    telemetry: TelemetryFlags,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("bench_run: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_args(argv: impl Iterator<Item = String>) -> Cli {
    let mut cli = Cli {
        ids: Vec::new(),
        iters: 5,
        warmup: 1,
        threads: gwc_core::available_threads(),
        cache: None,
        backend: BackendKind::from_env(),
        scale: StudyScale::Standard,
        tier: ObserverTier::Exact,
        policy: SchedPolicy::RoundRobin,
        label: "run".to_string(),
        out: None,
        metrics: None,
        trace: None,
        telemetry: TelemetryFlags::default(),
    };
    let mut cache_flag = false;
    let mut no_cache_flag = false;
    let mut args = ArgStream::new(argv);
    while let Some(token) = args.next_token() {
        let (flag, inline) = match token {
            Token::Positional(arg) => {
                cli.ids.push(arg.to_lowercase());
                continue;
            }
            Token::Opt { flag, inline } => (flag, inline),
        };
        if let Some(result) = cli.telemetry.take_opt(&flag, inline.clone(), &mut args) {
            if let Err(e) = result {
                usage_error(&e);
            }
            continue;
        }
        let result = match flag.as_str() {
            "--iters" => take_count(&flag, inline, &mut args).map(|n| cli.iters = n),
            "--warmup" => take_count(&flag, inline, &mut args).map(|n| cli.warmup = n),
            "--threads" => take_count(&flag, inline, &mut args).map(|n| cli.threads = n),
            "--cache" => take_value(&flag, inline, &mut args).map(|v| {
                cache_flag = true;
                cli.cache = Some(PathBuf::from(v));
            }),
            "--no-cache" => reject_value(&flag, inline).map(|()| {
                no_cache_flag = true;
                cli.cache = None;
            }),
            "--backend" => take_value(&flag, inline, &mut args).and_then(|v| {
                BackendKind::parse(&v)
                    .map(|kind| cli.backend = kind)
                    .ok_or(format!("unknown backend `{v}` (expected scalar or simd)"))
            }),
            "--scale" => take_value(&flag, inline, &mut args).and_then(|v| {
                StudyScale::parse(&v)
                    .map(|s| cli.scale = s)
                    .ok_or(format!("unknown scale `{v}` (expected standard or large)"))
            }),
            "--observer-tier" => take_value(&flag, inline, &mut args).and_then(|v| {
                ObserverTier::parse(&v).map(|t| cli.tier = t).ok_or(format!(
                    "unknown observer tier `{v}` (expected exact or sketch)"
                ))
            }),
            "--policy" => take_value(&flag, inline, &mut args).and_then(|v| {
                SchedPolicy::parse(&v)
                    .map(|p| cli.policy = p)
                    .ok_or(format!(
                    "unknown policy `{v}` (expected round-robin, sm-partitioned or leftover-fill)"
                ))
            }),
            "--label" => take_value(&flag, inline, &mut args).map(|v| cli.label = v),
            "--out" => take_value(&flag, inline, &mut args).map(|v| cli.out = Some(v)),
            "--metrics" => take_value(&flag, inline, &mut args).map(|v| cli.metrics = Some(v)),
            "--trace" => take_value(&flag, inline, &mut args).map(|v| cli.trace = Some(v)),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            _ => usage_error(&unknown_opt(&flag, inline.as_deref())),
        };
        if let Err(e) = result {
            usage_error(&e);
        }
    }
    if cli.ids.is_empty() {
        cli.ids = all_experiments().iter().map(|s| s.to_string()).collect();
    }
    for id in &cli.ids {
        if !all_experiments().contains(&id.as_str()) {
            usage_error(&format!(
                "unknown experiment `{id}`; known: {:?}",
                all_experiments()
            ));
        }
    }
    if cache_flag && no_cache_flag {
        usage_error("--cache and --no-cache are mutually exclusive");
    }
    if cli.iters == 0 {
        usage_error("--iters must be at least 1");
    }
    cli.threads = cli.threads.max(1);
    cli
}

fn main() {
    let cli = parse_args(std::env::args().skip(1));
    let out = cli
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", cli.label));
    // Pin the process-wide default so every Device the pipeline creates
    // (workers included, via `fork`) runs the requested engine.
    gwc_simt::backend::set_default(cli.backend);
    let ids: Vec<&str> = cli.ids.iter().map(String::as_str).collect();
    eprintln!(
        "bench_run: {} warmup + {} measured iteration(s) of {:?} on {} thread(s), {} backend, {} \
         population, {} observers, {} co-schedule",
        cli.warmup,
        cli.iters,
        ids,
        cli.threads,
        cli.backend.name(),
        cli.scale.name(),
        cli.tier.name(),
        cli.policy.name()
    );
    let mut pipeline_cfg = PipelineConfig {
        threads: cli.threads,
        cache_dir: cli.cache.clone(),
        ..PipelineConfig::default()
    };
    pipeline_cfg.study.study_scale = cli.scale;
    pipeline_cfg.study.observer_tier = cli.tier;
    pipeline_cfg.pair_policy = cli.policy;
    // Run-long recorders tee'd into every iteration's fresh install.
    // A heartbeat gets one too so its ticks carry live counters, not
    // just progress.
    let metrics_rec = (cli.metrics.is_some() || cli.telemetry.heartbeat.is_some())
        .then(|| Arc::new(MetricsRecorder::default()));
    let trace_rec = cli
        .trace
        .is_some()
        .then(|| Arc::new(TraceRecorder::default()));
    let mut extra: Vec<Arc<dyn Recorder>> = Vec::new();
    if let Some(rec) = &metrics_rec {
        extra.push(rec.clone());
    }
    if let Some(rec) = &trace_rec {
        extra.push(rec.clone());
    }
    let sampler = telemetry::maybe_start_sampler("bench_run", &cli.telemetry, metrics_rec.as_ref());
    for w in 0..cli.warmup {
        eprintln!("  warmup {}/{}...", w + 1, cli.warmup);
        measure_iteration_config(&ids, &pipeline_cfg, &extra);
    }
    let mut samples = Vec::with_capacity(cli.iters);
    for i in 0..cli.iters {
        let sample = measure_iteration_config(&ids, &pipeline_cfg, &extra);
        eprintln!(
            "  iter {}/{}: total {}",
            i + 1,
            cli.iters,
            fmt_ns(sample.total_ns)
        );
        samples.push(sample);
    }
    // Final tick (and any stall it detects) must land in the run-long
    // recorder before its snapshot below.
    let timeseries = sampler.map(Sampler::stop);
    let report = build_bench_report(
        &BenchContext {
            label: cli.label.clone(),
            backend: cli.backend.name().to_string(),
            threads: cli.threads,
            warmup: cli.warmup,
            iters: cli.iters,
            experiment_ids: cli.ids.clone(),
            scale: cli.scale.name().to_string(),
            observer_tier: cli.tier.name().to_string(),
            policy: cli.policy.name().to_string(),
        },
        &samples,
    );
    if let Err(e) = validate_bench(&report) {
        eprintln!("bench_run: internal error: report failed validation: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out, report.render()) {
        eprintln!("bench_run: cannot write report to `{out}`: {e}");
        std::process::exit(1);
    }
    eprintln!("bench report written to {out}");
    if let (Some(path), Some(trace_rec)) = (&cli.trace, &trace_rec) {
        telemetry::finish_trace("bench_run", path, trace_rec, metrics_rec.as_ref());
    }
    if let (Some(path), Some(rec)) = (&cli.metrics, &metrics_rec) {
        telemetry::write_metrics_report(
            "bench_run",
            path,
            &rec.snapshot(),
            cli.threads,
            cli.ids.clone(),
            telemetry::run_meta(cli.backend.name(), cli.cache.as_deref(), &cli.label),
            timeseries,
        );
    }
}
