//! Validates a metrics report produced by `regen --metrics`.
//!
//! ```sh
//! cargo run -p gwc-bench --bin metrics_check -- metrics.json
//! cargo run -p gwc-bench --bin metrics_check -- --schema v2 metrics.json
//! ```
//!
//! Parses the file with the `gwc-obs` JSON parser, checks the schema
//! version and required keys, and round-trips it (parse -> render ->
//! parse -> compare) to prove the writer and parser agree. Any schema
//! version the validator supports is accepted unless `--schema` pins
//! one. `--counter NAME=VALUE` (repeatable) additionally asserts a
//! counter's exact value — a counter absent from the report counts as 0,
//! so `--counter cache.misses=0` holds for a fully warm run that never
//! incremented it. The name may end in a `*` prefix glob:
//! `--counter 'cache.*=26'` asserts the *sum* of every counter under
//! `cache.` and a bare `--counter 'cache.*'` asserts that at least one
//! such counter exists. `--hist NAME` (repeatable) asserts the named
//! latency histogram is present. Exits 0 on a valid report, 1 on a bad
//! one, 2 on usage errors.

use gwc_bench::cli::{take_value, unknown_opt, ArgStream, Token};
use gwc_obs::report::validate_str_version;

const USAGE: &str = "\
usage: metrics_check [OPTIONS] FILE.json

Validates a metrics report written by `regen --metrics`.

options:
  --schema v1|v2|v3      require this exact schema version (default:
                         accept any supported version)
  --counter NAME=VALUE   require the named counter to equal VALUE
                         (repeatable; an absent counter counts as 0).
                         NAME may end in `*`: the values of all matching
                         counters are summed; without `=VALUE` the glob
                         asserts at least one counter matches
  --hist NAME            require the named latency histogram to be
                         present (repeatable)
  -h, --help             print this help
";

fn usage_error(msg: &str) -> ! {
    eprintln!("metrics_check: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// Whether a counter/histogram name matches a pattern — an exact name,
/// or a trailing-`*` prefix glob (`cache.*` matches `cache.hits`).
fn matches(pattern: &str, name: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => name == pattern,
    }
}

/// `(matching counters, their summed value)` for a pattern in a
/// validated report; counters that were never incremented are never
/// recorded, so an unmatched exact name reads as `(0, 0)`.
fn counter_sum(doc: &gwc_obs::json::Json, pattern: &str) -> (usize, u64) {
    doc.get("counters")
        .and_then(|c| c.as_arr())
        .unwrap_or(&[])
        .iter()
        .filter(|row| {
            row.get("name")
                .and_then(|n| n.as_str())
                .is_some_and(|n| matches(pattern, n))
        })
        .fold((0, 0), |(n, sum), row| {
            let v = row.get("value").and_then(|v| v.as_u64()).unwrap_or(0);
            (n + 1, sum + v)
        })
}

/// Whether the report carries a histogram with exactly this name.
fn has_hist(doc: &gwc_obs::json::Json, name: &str) -> bool {
    doc.get("histograms")
        .and_then(|h| h.as_arr())
        .unwrap_or(&[])
        .iter()
        .any(|row| row.get("name").and_then(|n| n.as_str()) == Some(name))
}

fn main() {
    let mut path: Option<String> = None;
    let mut pin: Option<u64> = None;
    let mut counter_asserts: Vec<(String, Option<u64>)> = Vec::new();
    let mut hist_asserts: Vec<String> = Vec::new();
    let mut args = ArgStream::new(std::env::args().skip(1));
    while let Some(token) = args.next_token() {
        let (flag, inline) = match token {
            Token::Positional(arg) => {
                if path.is_some() {
                    usage_error("expected exactly one FILE.json");
                }
                path = Some(arg);
                continue;
            }
            Token::Opt { flag, inline } => (flag, inline),
        };
        match flag.as_str() {
            "--schema" => {
                let v = take_value(&flag, inline, &mut args).unwrap_or_else(|e| usage_error(&e));
                pin = Some(match v.as_str() {
                    "v1" | "1" => 1,
                    "v2" | "2" => 2,
                    "v3" | "3" => 3,
                    _ => usage_error(&format!(
                        "--schema: `{v}` is not a known version (v1, v2, v3)"
                    )),
                });
            }
            "--counter" => {
                let v = take_value(&flag, inline, &mut args).unwrap_or_else(|e| usage_error(&e));
                let (name, value) = match v.split_once('=') {
                    Some((name, value)) => {
                        let Ok(value) = value.parse::<u64>() else {
                            usage_error(&format!(
                                "--counter: `{value}` is not an unsigned integer"
                            ));
                        };
                        (name, Some(value))
                    }
                    // A bare glob is a presence assertion; a bare plain
                    // name stays an error (its absent-reads-as-0
                    // semantics would make it vacuously true).
                    None if v.ends_with('*') => (v.as_str(), None),
                    None => usage_error(&format!("--counter: `{v}` is not NAME=VALUE")),
                };
                if name.is_empty() {
                    usage_error("--counter: empty counter name");
                }
                if name.strip_suffix('*').unwrap_or(name).contains('*') {
                    usage_error(&format!(
                        "--counter: `{name}`: `*` is only allowed as a trailing glob"
                    ));
                }
                counter_asserts.push((name.to_string(), value));
            }
            "--hist" => {
                let v = take_value(&flag, inline, &mut args).unwrap_or_else(|e| usage_error(&e));
                if v.is_empty() {
                    usage_error("--hist: empty histogram name");
                }
                hist_asserts.push(v);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            _ => usage_error(&unknown_opt(&flag, inline.as_deref())),
        }
    }
    let Some(path) = path else {
        usage_error("expected a FILE.json to validate");
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("metrics_check: cannot read `{path}`: {e}");
        std::process::exit(2);
    });
    match validate_str_version(&text, pin) {
        Ok(doc) => {
            for (name, expected) in &counter_asserts {
                let (matched, actual) = counter_sum(&doc, name);
                match expected {
                    Some(expected) if actual != *expected => {
                        eprintln!(
                            "metrics_check: `{path}`: counter `{name}` is {actual}, expected \
                             {expected}"
                        );
                        std::process::exit(1);
                    }
                    None if matched == 0 => {
                        eprintln!("metrics_check: `{path}`: no counter matches `{name}`");
                        std::process::exit(1);
                    }
                    _ => {}
                }
            }
            for name in &hist_asserts {
                if !has_hist(&doc, name) {
                    eprintln!("metrics_check: `{path}`: histogram `{name}` is absent");
                    std::process::exit(1);
                }
            }
            let version = doc.get("schema_version").and_then(|v| v.as_u64());
            let stages = doc
                .get("stages")
                .and_then(|s| s.as_arr())
                .map_or(0, |a| a.len());
            let asserts = counter_asserts.len() + hist_asserts.len();
            println!(
                "{path}: valid metrics report (schema v{}, {stages} stages{})",
                version.unwrap_or(0),
                if asserts == 0 {
                    String::new()
                } else {
                    format!(", {asserts} assertion(s) hold")
                }
            );
        }
        Err(e) => {
            eprintln!("metrics_check: `{path}` is not a valid metrics report: {e}");
            std::process::exit(1);
        }
    }
}
