//! Validates a metrics report produced by `regen --metrics`.
//!
//! ```sh
//! cargo run -p gwc-bench --bin metrics_check -- metrics.json
//! cargo run -p gwc-bench --bin metrics_check -- --schema v2 metrics.json
//! ```
//!
//! Parses the file with the `gwc-obs` JSON parser, checks the schema
//! version and required keys, and round-trips it (parse -> render ->
//! parse -> compare) to prove the writer and parser agree. Any schema
//! version the validator supports is accepted unless `--schema` pins
//! one. `--counter NAME=VALUE` (repeatable) additionally asserts a
//! counter's exact value — a counter absent from the report counts as 0,
//! so `--counter cache.misses=0` holds for a fully warm run that never
//! incremented it. The name may end in a `*` prefix glob:
//! `--counter 'cache.*=26'` asserts the *sum* of every counter under
//! `cache.` and a bare `--counter 'cache.*'` asserts that at least one
//! such counter exists. `--counter-min NAME=VALUE` is the lower-bound
//! variant (counter >= VALUE, same glob semantics) — the right shape for
//! monotone gauges like `observer.bytes_peak` whose exact value is an
//! implementation detail. `--hist NAME` (repeatable) asserts the named
//! latency histogram is present; `--hist NAME:p99<=NANOS` (also
//! `p50`/`p90`/`max`) additionally bounds one of its quantiles —
//! a latency budget CI can hold. `--heartbeat FILE` validates a
//! heartbeat NDJSON stream captured with `regen --heartbeat` instead of
//! (or alongside) a report: every line must parse, sequence numbers
//! must strictly increase, and progress must be monotone; `--min-ticks
//! N` requires at least N ticks. Exits 0 when everything is valid, 1 on
//! a bad report/stream or failed assertion, 2 on usage errors.

use gwc_bench::cli::{take_count, take_value, unknown_opt, ArgStream, Token};
use gwc_obs::report::validate_str_version;
use gwc_obs::sampler::validate_heartbeat;

const USAGE: &str = "\
usage: metrics_check [OPTIONS] [FILE.json]

Validates a metrics report written by `regen --metrics` and/or a
heartbeat NDJSON stream written by `--heartbeat`.

options:
  --schema v1|v2|v3|v4   require this exact schema version (default:
                         accept any supported version)
  --counter NAME=VALUE   require the named counter to equal VALUE
                         (repeatable; an absent counter counts as 0).
                         NAME may end in `*`: the values of all matching
                         counters are summed; without `=VALUE` the glob
                         asserts at least one counter matches
  --counter-min NAME=VALUE
                         require the named counter (or glob sum) to be
                         at least VALUE (repeatable)
  --hist NAME            require the named latency histogram to be
                         present (repeatable)
  --hist NAME:Q<=NANOS   additionally bound quantile Q of that histogram
                         (Q: p50, p90, p99, or max), e.g.
                         `--hist 'launch.wall_ns:p99<=5000000'`
  --heartbeat FILE       validate FILE as a heartbeat NDJSON stream
                         (makes the positional report optional)
  --min-ticks N          require at least N heartbeat ticks (default 1;
                         only with --heartbeat)
  -h, --help             print this help
";

fn usage_error(msg: &str) -> ! {
    eprintln!("metrics_check: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// Whether a counter/histogram name matches a pattern — an exact name,
/// or a trailing-`*` prefix glob (`cache.*` matches `cache.hits`).
fn matches(pattern: &str, name: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => name == pattern,
    }
}

/// `(matching counters, their summed value)` for a pattern in a
/// validated report; counters that were never incremented are never
/// recorded, so an unmatched exact name reads as `(0, 0)`.
fn counter_sum(doc: &gwc_obs::json::Json, pattern: &str) -> (usize, u64) {
    doc.get("counters")
        .and_then(|c| c.as_arr())
        .unwrap_or(&[])
        .iter()
        .filter(|row| {
            row.get("name")
                .and_then(|n| n.as_str())
                .is_some_and(|n| matches(pattern, n))
        })
        .fold((0, 0), |(n, sum), row| {
            let v = row.get("value").and_then(|v| v.as_u64()).unwrap_or(0);
            (n + 1, sum + v)
        })
}

/// One `--hist` assertion: histogram presence, optionally bounding a
/// quantile (`p99<=5000000` keeps `quantile = "p99"`, `bound_ns = 5e6`).
struct HistAssert {
    name: String,
    quantile: Option<(String, u64)>,
}

/// Parses a `--hist` value: `NAME` or `NAME:Q<=NANOS` with Q one of
/// p50/p90/p99/max. Only `<=` bounds are supported — a lower bound on a
/// latency quantile is not a budget anyone checks in CI.
fn parse_hist_assert(v: &str) -> Result<HistAssert, String> {
    let Some((name, spec)) = v.split_once(':') else {
        return Ok(HistAssert {
            name: v.to_string(),
            quantile: None,
        });
    };
    if name.is_empty() {
        return Err("--hist: empty histogram name".into());
    }
    let Some((quant, bound)) = spec.split_once("<=") else {
        return Err(format!(
            "--hist: `{spec}` is not a quantile bound (expected Q<=NANOS)"
        ));
    };
    if !["p50", "p90", "p99", "max"].contains(&quant) {
        return Err(format!(
            "--hist: `{quant}` is not a quantile (expected p50, p90, p99, or max)"
        ));
    }
    let bound_ns: u64 = bound
        .parse()
        .map_err(|_| format!("--hist: `{bound}` is not an unsigned nanosecond count"))?;
    Ok(HistAssert {
        name: name.to_string(),
        quantile: Some((quant.to_string(), bound_ns)),
    })
}

/// The report row of the histogram with exactly this name, if any.
fn hist_row<'d>(doc: &'d gwc_obs::json::Json, name: &str) -> Option<&'d gwc_obs::json::Json> {
    doc.get("histograms")
        .and_then(|h| h.as_arr())
        .unwrap_or(&[])
        .iter()
        .find(|row| row.get("name").and_then(|n| n.as_str()) == Some(name))
}

fn main() {
    let mut path: Option<String> = None;
    let mut pin: Option<u64> = None;
    let mut counter_asserts: Vec<(String, Option<u64>)> = Vec::new();
    let mut counter_min_asserts: Vec<(String, u64)> = Vec::new();
    let mut hist_asserts: Vec<HistAssert> = Vec::new();
    let mut heartbeat: Option<String> = None;
    let mut min_ticks: Option<usize> = None;
    let mut args = ArgStream::new(std::env::args().skip(1));
    while let Some(token) = args.next_token() {
        let (flag, inline) = match token {
            Token::Positional(arg) => {
                if path.is_some() {
                    usage_error("expected exactly one FILE.json");
                }
                path = Some(arg);
                continue;
            }
            Token::Opt { flag, inline } => (flag, inline),
        };
        match flag.as_str() {
            "--schema" => {
                let v = take_value(&flag, inline, &mut args).unwrap_or_else(|e| usage_error(&e));
                pin = Some(match v.as_str() {
                    "v1" | "1" => 1,
                    "v2" | "2" => 2,
                    "v3" | "3" => 3,
                    "v4" | "4" => 4,
                    _ => usage_error(&format!(
                        "--schema: `{v}` is not a known version (v1, v2, v3, v4)"
                    )),
                });
            }
            "--counter" => {
                let v = take_value(&flag, inline, &mut args).unwrap_or_else(|e| usage_error(&e));
                let (name, value) = match v.split_once('=') {
                    Some((name, value)) => {
                        let Ok(value) = value.parse::<u64>() else {
                            usage_error(&format!(
                                "--counter: `{value}` is not an unsigned integer"
                            ));
                        };
                        (name, Some(value))
                    }
                    // A bare glob is a presence assertion; a bare plain
                    // name stays an error (its absent-reads-as-0
                    // semantics would make it vacuously true).
                    None if v.ends_with('*') => (v.as_str(), None),
                    None => usage_error(&format!("--counter: `{v}` is not NAME=VALUE")),
                };
                if name.is_empty() {
                    usage_error("--counter: empty counter name");
                }
                if name.strip_suffix('*').unwrap_or(name).contains('*') {
                    usage_error(&format!(
                        "--counter: `{name}`: `*` is only allowed as a trailing glob"
                    ));
                }
                counter_asserts.push((name.to_string(), value));
            }
            "--counter-min" => {
                let v = take_value(&flag, inline, &mut args).unwrap_or_else(|e| usage_error(&e));
                let Some((name, value)) = v.split_once('=') else {
                    usage_error(&format!("--counter-min: `{v}` is not NAME=VALUE"));
                };
                let Ok(value) = value.parse::<u64>() else {
                    usage_error(&format!(
                        "--counter-min: `{value}` is not an unsigned integer"
                    ));
                };
                if name.is_empty() {
                    usage_error("--counter-min: empty counter name");
                }
                if name.strip_suffix('*').unwrap_or(name).contains('*') {
                    usage_error(&format!(
                        "--counter-min: `{name}`: `*` is only allowed as a trailing glob"
                    ));
                }
                counter_min_asserts.push((name.to_string(), value));
            }
            "--hist" => {
                let v = take_value(&flag, inline, &mut args).unwrap_or_else(|e| usage_error(&e));
                if v.is_empty() {
                    usage_error("--hist: empty histogram name");
                }
                hist_asserts.push(parse_hist_assert(&v).unwrap_or_else(|e| usage_error(&e)));
            }
            "--heartbeat" => {
                let v = take_value(&flag, inline, &mut args).unwrap_or_else(|e| usage_error(&e));
                heartbeat = Some(v);
            }
            "--min-ticks" => {
                let n = take_count(&flag, inline, &mut args).unwrap_or_else(|e| usage_error(&e));
                min_ticks = Some(n);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            _ => usage_error(&unknown_opt(&flag, inline.as_deref())),
        }
    }
    if min_ticks.is_some() && heartbeat.is_none() {
        usage_error("--min-ticks requires --heartbeat");
    }
    if let Some(hb_path) = &heartbeat {
        let text = std::fs::read_to_string(hb_path).unwrap_or_else(|e| {
            eprintln!("metrics_check: cannot read `{hb_path}`: {e}");
            std::process::exit(2);
        });
        let summary = validate_heartbeat(&text).unwrap_or_else(|e| {
            eprintln!("metrics_check: `{hb_path}` is not a valid heartbeat stream: {e}");
            std::process::exit(1);
        });
        let want = min_ticks.unwrap_or(1);
        if summary.ticks < want {
            eprintln!(
                "metrics_check: `{hb_path}`: {} tick(s), expected at least {want}",
                summary.ticks
            );
            std::process::exit(1);
        }
        println!(
            "{hb_path}: valid heartbeat stream ({} tick(s), {} stall event(s))",
            summary.ticks, summary.stalls
        );
    }
    let Some(path) = path else {
        if heartbeat.is_some() {
            // Heartbeat-only invocation: the stream above was the job.
            if !counter_asserts.is_empty()
                || !counter_min_asserts.is_empty()
                || !hist_asserts.is_empty()
                || pin.is_some()
            {
                usage_error("--schema/--counter/--hist assertions need a FILE.json to check");
            }
            return;
        }
        usage_error("expected a FILE.json to validate");
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("metrics_check: cannot read `{path}`: {e}");
        std::process::exit(2);
    });
    match validate_str_version(&text, pin) {
        Ok(doc) => {
            for (name, expected) in &counter_asserts {
                let (matched, actual) = counter_sum(&doc, name);
                match expected {
                    Some(expected) if actual != *expected => {
                        eprintln!(
                            "metrics_check: `{path}`: counter `{name}` is {actual}, expected \
                             {expected}"
                        );
                        std::process::exit(1);
                    }
                    None if matched == 0 => {
                        eprintln!("metrics_check: `{path}`: no counter matches `{name}`");
                        std::process::exit(1);
                    }
                    _ => {}
                }
            }
            for (name, floor) in &counter_min_asserts {
                let (_, actual) = counter_sum(&doc, name);
                if actual < *floor {
                    eprintln!(
                        "metrics_check: `{path}`: counter `{name}` is {actual}, expected at \
                         least {floor}"
                    );
                    std::process::exit(1);
                }
            }
            for assert in &hist_asserts {
                let name = &assert.name;
                let Some(row) = hist_row(&doc, name) else {
                    eprintln!("metrics_check: `{path}`: histogram `{name}` is absent");
                    std::process::exit(1);
                };
                if let Some((quant, bound_ns)) = &assert.quantile {
                    let field = format!("{quant}_ns");
                    let actual = row.get(&field).and_then(|v| v.as_u64()).unwrap_or_else(|| {
                        eprintln!(
                            "metrics_check: `{path}`: histogram `{name}` has no `{field}` field"
                        );
                        std::process::exit(1);
                    });
                    if actual > *bound_ns {
                        eprintln!(
                            "metrics_check: `{path}`: histogram `{name}` {quant} is {actual}ns, \
                             over the {bound_ns}ns bound"
                        );
                        std::process::exit(1);
                    }
                }
            }
            let version = doc.get("schema_version").and_then(|v| v.as_u64());
            let stages = doc
                .get("stages")
                .and_then(|s| s.as_arr())
                .map_or(0, |a| a.len());
            let asserts = counter_asserts.len() + counter_min_asserts.len() + hist_asserts.len();
            println!(
                "{path}: valid metrics report (schema v{}, {stages} stages{})",
                version.unwrap_or(0),
                if asserts == 0 {
                    String::new()
                } else {
                    format!(", {asserts} assertion(s) hold")
                }
            );
        }
        Err(e) => {
            eprintln!("metrics_check: `{path}` is not a valid metrics report: {e}");
            std::process::exit(1);
        }
    }
}
