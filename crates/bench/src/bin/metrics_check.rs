//! Validates a metrics report produced by `regen --metrics`.
//!
//! ```sh
//! cargo run -p gwc-bench --bin metrics_check -- metrics.json
//! cargo run -p gwc-bench --bin metrics_check -- --schema v2 metrics.json
//! ```
//!
//! Parses the file with the `gwc-obs` JSON parser, checks the schema
//! version and required keys, and round-trips it (parse -> render ->
//! parse -> compare) to prove the writer and parser agree. Any schema
//! version the validator supports is accepted unless `--schema` pins
//! one. Exits 0 on a valid report, 1 on a bad one, 2 on usage errors.

use gwc_bench::cli::{take_value, unknown_opt, ArgStream, Token};
use gwc_obs::report::validate_str_version;

const USAGE: &str = "\
usage: metrics_check [OPTIONS] FILE.json

Validates a metrics report written by `regen --metrics`.

options:
  --schema v1|v2     require this exact schema version (default: accept
                     any supported version)
  -h, --help         print this help
";

fn usage_error(msg: &str) -> ! {
    eprintln!("metrics_check: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut path: Option<String> = None;
    let mut pin: Option<u64> = None;
    let mut args = ArgStream::new(std::env::args().skip(1));
    while let Some(token) = args.next_token() {
        let (flag, inline) = match token {
            Token::Positional(arg) => {
                if path.is_some() {
                    usage_error("expected exactly one FILE.json");
                }
                path = Some(arg);
                continue;
            }
            Token::Opt { flag, inline } => (flag, inline),
        };
        match flag.as_str() {
            "--schema" => {
                let v = take_value(&flag, inline, &mut args).unwrap_or_else(|e| usage_error(&e));
                pin = Some(match v.as_str() {
                    "v1" | "1" => 1,
                    "v2" | "2" => 2,
                    _ => usage_error(&format!("--schema: `{v}` is not a known version (v1, v2)")),
                });
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            _ => usage_error(&unknown_opt(&flag, inline.as_deref())),
        }
    }
    let Some(path) = path else {
        usage_error("expected a FILE.json to validate");
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("metrics_check: cannot read `{path}`: {e}");
        std::process::exit(2);
    });
    match validate_str_version(&text, pin) {
        Ok(doc) => {
            let version = doc.get("schema_version").and_then(|v| v.as_u64());
            let stages = doc
                .get("stages")
                .and_then(|s| s.as_arr())
                .map_or(0, |a| a.len());
            println!(
                "{path}: valid metrics report (schema v{}, {stages} stages)",
                version.unwrap_or(0)
            );
        }
        Err(e) => {
            eprintln!("metrics_check: `{path}` is not a valid metrics report: {e}");
            std::process::exit(1);
        }
    }
}
