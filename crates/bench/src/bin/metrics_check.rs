//! Validates a metrics report produced by `regen --metrics`.
//!
//! ```sh
//! cargo run -p gwc-bench --bin metrics_check -- metrics.json
//! cargo run -p gwc-bench --bin metrics_check -- --schema v2 metrics.json
//! ```
//!
//! Parses the file with the `gwc-obs` JSON parser, checks the schema
//! version and required keys, and round-trips it (parse -> render ->
//! parse -> compare) to prove the writer and parser agree. Any schema
//! version the validator supports is accepted unless `--schema` pins
//! one. `--counter NAME=VALUE` (repeatable) additionally asserts a
//! counter's exact value — a counter absent from the report counts as 0,
//! so `--counter cache.misses=0` holds for a fully warm run that never
//! incremented it. Exits 0 on a valid report, 1 on a bad one, 2 on
//! usage errors.

use gwc_bench::cli::{take_value, unknown_opt, ArgStream, Token};
use gwc_obs::report::validate_str_version;

const USAGE: &str = "\
usage: metrics_check [OPTIONS] FILE.json

Validates a metrics report written by `regen --metrics`.

options:
  --schema v1|v2         require this exact schema version (default:
                         accept any supported version)
  --counter NAME=VALUE   require the named counter to equal VALUE
                         (repeatable; an absent counter counts as 0)
  -h, --help             print this help
";

fn usage_error(msg: &str) -> ! {
    eprintln!("metrics_check: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// Value of the named counter in a validated report; absent counters
/// read as 0 (a counter that was never incremented is never recorded).
fn counter_value(doc: &gwc_obs::json::Json, name: &str) -> u64 {
    doc.get("counters")
        .and_then(|c| c.as_arr())
        .unwrap_or(&[])
        .iter()
        .find(|row| row.get("name").and_then(|n| n.as_str()) == Some(name))
        .and_then(|row| row.get("value"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0)
}

fn main() {
    let mut path: Option<String> = None;
    let mut pin: Option<u64> = None;
    let mut counter_asserts: Vec<(String, u64)> = Vec::new();
    let mut args = ArgStream::new(std::env::args().skip(1));
    while let Some(token) = args.next_token() {
        let (flag, inline) = match token {
            Token::Positional(arg) => {
                if path.is_some() {
                    usage_error("expected exactly one FILE.json");
                }
                path = Some(arg);
                continue;
            }
            Token::Opt { flag, inline } => (flag, inline),
        };
        match flag.as_str() {
            "--schema" => {
                let v = take_value(&flag, inline, &mut args).unwrap_or_else(|e| usage_error(&e));
                pin = Some(match v.as_str() {
                    "v1" | "1" => 1,
                    "v2" | "2" => 2,
                    _ => usage_error(&format!("--schema: `{v}` is not a known version (v1, v2)")),
                });
            }
            "--counter" => {
                let v = take_value(&flag, inline, &mut args).unwrap_or_else(|e| usage_error(&e));
                let Some((name, value)) = v.split_once('=') else {
                    usage_error(&format!("--counter: `{v}` is not NAME=VALUE"));
                };
                let Ok(value) = value.parse::<u64>() else {
                    usage_error(&format!("--counter: `{value}` is not an unsigned integer"));
                };
                if name.is_empty() {
                    usage_error("--counter: empty counter name");
                }
                counter_asserts.push((name.to_string(), value));
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            _ => usage_error(&unknown_opt(&flag, inline.as_deref())),
        }
    }
    let Some(path) = path else {
        usage_error("expected a FILE.json to validate");
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("metrics_check: cannot read `{path}`: {e}");
        std::process::exit(2);
    });
    match validate_str_version(&text, pin) {
        Ok(doc) => {
            for (name, expected) in &counter_asserts {
                let actual = counter_value(&doc, name);
                if actual != *expected {
                    eprintln!(
                        "metrics_check: `{path}`: counter `{name}` is {actual}, expected \
                         {expected}"
                    );
                    std::process::exit(1);
                }
            }
            let version = doc.get("schema_version").and_then(|v| v.as_u64());
            let stages = doc
                .get("stages")
                .and_then(|s| s.as_arr())
                .map_or(0, |a| a.len());
            println!(
                "{path}: valid metrics report (schema v{}, {stages} stages{})",
                version.unwrap_or(0),
                if counter_asserts.is_empty() {
                    String::new()
                } else {
                    format!(", {} counter assertion(s) hold", counter_asserts.len())
                }
            );
        }
        Err(e) => {
            eprintln!("metrics_check: `{path}` is not a valid metrics report: {e}");
            std::process::exit(1);
        }
    }
}
