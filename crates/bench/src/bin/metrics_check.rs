//! Validates a metrics report produced by `regen --metrics`.
//!
//! ```sh
//! cargo run -p gwc-bench --bin metrics_check -- metrics.json
//! ```
//!
//! Parses the file with the `gwc-obs` JSON parser, checks the schema
//! version and required keys, and round-trips it (parse -> render ->
//! parse -> compare) to prove the writer and parser agree. Exits 0 on a
//! valid report, 1 on a bad one, 2 on usage errors.

use gwc_obs::report::validate_str;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: metrics_check FILE.json");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("metrics_check: cannot read `{path}`: {e}");
        std::process::exit(2);
    });
    match validate_str(&text) {
        Ok(doc) => {
            let stages = doc
                .get("stages")
                .and_then(|s| s.as_arr())
                .map_or(0, |a| a.len());
            println!("{path}: valid metrics report (schema v1, {stages} stages)");
        }
        Err(e) => {
            eprintln!("metrics_check: `{path}` is not a valid metrics report: {e}");
            std::process::exit(1);
        }
    }
}
