//! Regenerates the study's experiment artifacts (tables and figures).
//!
//! ```sh
//! cargo run --release -p gwc-bench --bin regen               # all of E1..E13
//! cargo run --release -p gwc-bench --bin regen e5 e12        # a subset
//! cargo run --release -p gwc-bench --bin regen --threads 4   # parallel study
//! ```
//!
//! `--threads N` fans the characterization study out across N worker
//! threads (default: the machine's available parallelism; `--threads 1`
//! forces the serial path). Output is bit-identical at any thread count.

use gwc_bench::{all_experiments, render_experiments, StudyArtifacts};

fn main() {
    let mut threads = gwc_core::available_threads();
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let v = args.next().unwrap_or_else(|| {
                eprintln!("--threads needs a value");
                std::process::exit(2);
            });
            threads = v.parse().unwrap_or_else(|_| {
                eprintln!("--threads: `{v}` is not a thread count");
                std::process::exit(2);
            });
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            threads = v.parse().unwrap_or_else(|_| {
                eprintln!("--threads: `{v}` is not a thread count");
                std::process::exit(2);
            });
        } else {
            ids.push(arg.to_lowercase());
        }
    }
    if ids.is_empty() {
        ids = all_experiments().iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        if !all_experiments().contains(&id.as_str()) {
            eprintln!("unknown experiment `{id}`; known: {:?}", all_experiments());
            std::process::exit(2);
        }
    }
    let threads = threads.max(1);
    eprintln!(
        "running the characterization study (Small scale, seed 7, {threads} thread{})...",
        if threads == 1 { "" } else { "s" }
    );
    let artifacts = StudyArtifacts::collect_threads(threads);
    let ids: Vec<&str> = ids.iter().map(String::as_str).collect();
    print!("{}", render_experiments(&ids, &artifacts));
}
