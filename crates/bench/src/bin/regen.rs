//! Regenerates the study's experiment artifacts (tables and figures).
//!
//! ```sh
//! cargo run --release -p gwc-bench --bin regen          # all of E1..E13
//! cargo run --release -p gwc-bench --bin regen e5 e12   # a subset
//! ```

use gwc_bench::{all_experiments, run_experiment, StudyArtifacts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<String> = if args.is_empty() {
        all_experiments().iter().map(|s| s.to_string()).collect()
    } else {
        args.iter().map(|a| a.to_lowercase()).collect()
    };
    for id in &ids {
        if !all_experiments().contains(&id.as_str()) {
            eprintln!("unknown experiment `{id}`; known: {:?}", all_experiments());
            std::process::exit(2);
        }
    }
    eprintln!("running the characterization study (Small scale, seed 7)...");
    let artifacts = StudyArtifacts::collect();
    for id in ids {
        println!("{}", "=".repeat(78));
        println!("{}", run_experiment(&id, &artifacts));
    }
}
