//! Regenerates the study's experiment artifacts (tables and figures).
//!
//! ```sh
//! cargo run --release -p gwc-bench --bin regen               # all of E1..E14
//! cargo run --release -p gwc-bench --bin regen e5 e12        # a subset
//! cargo run --release -p gwc-bench --bin regen --threads 4   # parallel study
//! cargo run --release -p gwc-bench --bin regen -- e1 --metrics m.json
//! cargo run --release -p gwc-bench --bin regen -- e1 --trace t.json
//! ```
//!
//! `--threads N` fans the characterization study out across N worker
//! threads (default: the machine's available parallelism; `--threads 1`
//! forces the serial path). Output is bit-identical at any thread count.
//!
//! `--metrics PATH` installs the metrics recorder and writes a
//! schema-versioned JSON report (per-stage wall times, per-worker pool
//! utilization, latency histograms, per-workload kernel counts; see
//! `gwc_obs::report`) to PATH after the run. `--trace PATH` captures a
//! span timeline into a bounded ring buffer and writes it as Chrome
//! trace-event JSON — open it at `https://ui.perfetto.dev` or
//! `chrome://tracing`. `--trace-summary` prints the top spans to
//! stderr. `--flame PATH` folds the span aggregates into a self-time
//! tree (see `gwc_obs::selftime`) and writes it in the collapsed-stack
//! format `flamegraph.pl` and inferno consume. `--heartbeat PATH|-`
//! streams one self-describing NDJSON object per sampler tick (live
//! progress, stage, throughput, ETA, stall events; `-` writes to
//! stderr, never stdout) while the run executes — see
//! `gwc_obs::sampler`. The flags combine freely (one tee'd recorder)
//! and none of them perturbs the experiment output on stdout.
//!
//! Runs are incremental by default: kernel profiles persist in a
//! content-addressed cache (`.gwc-cache/`, override with `--cache DIR`)
//! keyed on kernel IR, inputs and schema versions, so a warm rerun
//! skips simulation entirely and is byte-identical to a cold one.
//! `--no-cache` restores the uncached behavior.
//!
//! Exit status: 0 on success, 2 on a usage error.

use std::path::PathBuf;
use std::sync::Arc;

use gwc_bench::cli::{reject_value, take_count, take_value, unknown_opt, ArgStream, Token};
use gwc_bench::telemetry::{self, TelemetryFlags};
use gwc_bench::{all_experiments, render_experiments, StudyArtifacts, EXPERIMENTS};
use gwc_characterize::ObserverTier;
use gwc_core::pipeline::PipelineConfig;
use gwc_obs::metrics::MetricsRecorder;
use gwc_obs::report::render_summary;
use gwc_obs::{Recorder, Sampler, TeeRecorder, TraceRecorder};
use gwc_simt::backend::BackendKind;
use gwc_simt::sched::SchedPolicy;
use gwc_workloads::StudyScale;

const USAGE: &str = "\
usage: regen [EXPERIMENT...] [OPTIONS]

Regenerates experiment artifacts E1..E14 (all of them when no ids are
given) to stdout. Exits 0 on success, 2 on a usage error.

options:
  --threads N        worker threads for the study (default: available
                     parallelism; 1 forces the serial path)
  --cache DIR        persistent profile cache directory
                     (default: .gwc-cache)
  --no-cache         disable the profile cache; every workload simulates
  --backend ENGINE   warp engine: `simd` (default) or `scalar`; also
                     settable via GWC_BACKEND. Output is bit-identical
                     either way — this switches speed, not results.
  --scale TIER       study population: `standard` (default, the 26
                     canonical workloads) or `large` (adds 5 parameter-
                     swept replicas of each — hundreds of kernels)
  --observer-tier T  locality/coalescing observer memory tier: `exact`
                     (default, per-address state, the bit-exact oracle)
                     or `sketch` (bounded-memory streaming sketches)
  --policy NAME      block-dispatch policy for the E14 co-scheduled pair
                     study: `round-robin` (default), `sm-partitioned`,
                     or `leftover-fill`
  --list             list experiment ids with descriptions and exit
  --metrics PATH     write a schema-versioned JSON metrics report to PATH
  --trace PATH       write a Chrome/Perfetto trace-event timeline to PATH
  --trace-summary    print the top spans by total time to stderr
  --flame PATH       write the folded self-time tree to PATH in the
                     collapsed-stack format (flamegraph.pl / inferno)
  --heartbeat PATH|-  stream one NDJSON telemetry object per sampler tick
                     to PATH (`-` = stderr): progress per domain, stage,
                     throughput, ETA, and stall events
  --heartbeat-interval-ms N
                     sampler tick interval (default 500)
  --stall-after K    fire the stall watchdog after K zero-progress ticks,
                     0 to disable (default 8)
  -h, --help         print this help
";

struct Cli {
    threads: usize,
    ids: Vec<String>,
    cache: Option<PathBuf>,
    backend: BackendKind,
    scale: StudyScale,
    tier: ObserverTier,
    policy: SchedPolicy,
    metrics: Option<String>,
    trace: Option<String>,
    trace_summary: bool,
    flame: Option<String>,
    telemetry: TelemetryFlags,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("regen: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_args(argv: impl Iterator<Item = String>) -> Cli {
    let mut cli = Cli {
        threads: gwc_core::available_threads(),
        ids: Vec::new(),
        cache: Some(PathBuf::from(gwc_characterize::cache::DEFAULT_DIR)),
        backend: BackendKind::from_env(),
        scale: StudyScale::Standard,
        tier: ObserverTier::Exact,
        policy: SchedPolicy::RoundRobin,
        metrics: None,
        trace: None,
        trace_summary: false,
        flame: None,
        telemetry: TelemetryFlags::default(),
    };
    let mut cache_flag = false;
    let mut no_cache_flag = false;
    let mut args = ArgStream::new(argv);
    while let Some(token) = args.next_token() {
        let (flag, inline) = match token {
            Token::Positional(arg) => {
                cli.ids.push(arg.to_lowercase());
                continue;
            }
            Token::Opt { flag, inline } => (flag, inline),
        };
        if let Some(result) = cli.telemetry.take_opt(&flag, inline.clone(), &mut args) {
            if let Err(e) = result {
                usage_error(&e);
            }
            continue;
        }
        let result = match flag.as_str() {
            "--threads" => take_count(&flag, inline, &mut args).map(|n| cli.threads = n),
            "--cache" => take_value(&flag, inline, &mut args).map(|v| {
                cache_flag = true;
                cli.cache = Some(PathBuf::from(v));
            }),
            "--no-cache" => reject_value(&flag, inline).map(|()| {
                no_cache_flag = true;
                cli.cache = None;
            }),
            "--backend" => take_value(&flag, inline, &mut args).and_then(|v| {
                BackendKind::parse(&v)
                    .map(|kind| cli.backend = kind)
                    .ok_or(format!("unknown backend `{v}` (expected scalar or simd)"))
            }),
            "--list" => {
                if let Err(e) = reject_value(&flag, inline) {
                    usage_error(&e);
                }
                for e in EXPERIMENTS {
                    println!("{:<4} {}", e.id, e.desc);
                }
                std::process::exit(0);
            }
            "--scale" => take_value(&flag, inline, &mut args).and_then(|v| {
                StudyScale::parse(&v)
                    .map(|s| cli.scale = s)
                    .ok_or(format!("unknown scale `{v}` (expected standard or large)"))
            }),
            "--observer-tier" => take_value(&flag, inline, &mut args).and_then(|v| {
                ObserverTier::parse(&v).map(|t| cli.tier = t).ok_or(format!(
                    "unknown observer tier `{v}` (expected exact or sketch)"
                ))
            }),
            "--policy" => take_value(&flag, inline, &mut args).and_then(|v| {
                SchedPolicy::parse(&v)
                    .map(|p| cli.policy = p)
                    .ok_or(format!(
                    "unknown policy `{v}` (expected round-robin, sm-partitioned or leftover-fill)"
                ))
            }),
            "--metrics" => take_value(&flag, inline, &mut args).map(|v| cli.metrics = Some(v)),
            "--trace" => take_value(&flag, inline, &mut args).map(|v| cli.trace = Some(v)),
            "--trace-summary" => reject_value(&flag, inline).map(|()| cli.trace_summary = true),
            "--flame" => take_value(&flag, inline, &mut args).map(|v| cli.flame = Some(v)),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            _ => usage_error(&unknown_opt(&flag, inline.as_deref())),
        };
        if let Err(e) = result {
            usage_error(&e);
        }
    }
    if cache_flag && no_cache_flag {
        usage_error("--cache and --no-cache are mutually exclusive");
    }
    if cli.ids.is_empty() {
        cli.ids = all_experiments().iter().map(|s| s.to_string()).collect();
    }
    for id in &cli.ids {
        if !all_experiments().contains(&id.as_str()) {
            usage_error(&format!(
                "unknown experiment `{id}`; known: {:?}",
                all_experiments()
            ));
        }
    }
    cli.threads = cli.threads.max(1);
    cli
}

fn main() {
    let cli = parse_args(std::env::args().skip(1));
    // A heartbeat needs the recorder installed: progress accounting
    // (like every instrumentation site) is inert until then.
    let need_metrics = cli.metrics.is_some()
        || cli.trace_summary
        || cli.flame.is_some()
        || cli.telemetry.heartbeat.is_some();
    let metrics_rec = need_metrics.then(|| Arc::new(MetricsRecorder::default()));
    let trace_rec = cli
        .trace
        .is_some()
        .then(|| Arc::new(TraceRecorder::default()));
    let guard = {
        let mut sinks: Vec<Arc<dyn Recorder>> = Vec::new();
        if let Some(rec) = &metrics_rec {
            sinks.push(rec.clone());
        }
        if let Some(rec) = &trace_rec {
            sinks.push(rec.clone());
        }
        match sinks.len() {
            0 => None,
            1 => Some(gwc_obs::install(sinks.pop().expect("one sink"))),
            _ => Some(gwc_obs::install(Arc::new(TeeRecorder::new(sinks)))),
        }
    };
    // The sampler observes the freshly installed recorder's counters;
    // it must start after the install (and stop before the snapshot).
    let sampler = telemetry::maybe_start_sampler("regen", &cli.telemetry, metrics_rec.as_ref());
    gwc_simt::backend::set_default(cli.backend);
    eprintln!(
        "running the characterization study (Small scale, seed 7, {} thread{}, cache {}, {} \
         backend, {} population, {} observers, {} co-schedule)...",
        cli.threads,
        if cli.threads == 1 { "" } else { "s" },
        match &cli.cache {
            Some(dir) => format!("{}", dir.display()),
            None => "off".to_string(),
        },
        cli.backend.name(),
        cli.scale.name(),
        cli.tier.name(),
        cli.policy.name()
    );
    let mut config = PipelineConfig {
        threads: cli.threads,
        cache_dir: cli.cache.clone(),
        ..PipelineConfig::default()
    };
    config.study.study_scale = cli.scale;
    config.study.observer_tier = cli.tier;
    config.pair_policy = cli.policy;
    let artifacts = StudyArtifacts::collect(&config);
    let ids: Vec<&str> = cli.ids.iter().map(String::as_str).collect();
    print!("{}", render_experiments(&ids, &artifacts));
    // Final sampler tick (and the stall counter it may bump) must land
    // before the recorder uninstalls and the snapshot is taken.
    let timeseries = sampler.map(Sampler::stop);
    drop(guard);
    if let (Some(path), Some(trace_rec)) = (&cli.trace, &trace_rec) {
        telemetry::finish_trace("regen", path, trace_rec, metrics_rec.as_ref());
    }
    let Some(rec) = metrics_rec else {
        return;
    };
    let snap = rec.snapshot();
    if cli.trace_summary {
        eprint!("{}", render_summary(&snap, 10));
    }
    if let Some(path) = &cli.flame {
        let tree = gwc_obs::selftime::fold(&snap.spans);
        if let Err(e) = std::fs::write(path, gwc_obs::selftime::collapsed_stacks(&tree)) {
            eprintln!("regen: cannot write flame stacks to `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "collapsed flame stacks written to {path} ({} node(s))",
            tree.nodes.len()
        );
    }
    if let Some(path) = &cli.metrics {
        telemetry::write_metrics_report(
            "regen",
            path,
            &snap,
            cli.threads,
            cli.ids.clone(),
            telemetry::run_meta(cli.backend.name(), cli.cache.as_deref(), "regen"),
            timeseries,
        );
    }
}
