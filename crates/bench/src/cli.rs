//! Strict shared command-line parsing for the bench binaries.
//!
//! All four binaries in this crate (`regen`, `metrics_check`,
//! `bench_run`, `bench_diff`) follow the same conventions: options may
//! be spelled `--flag value` or `--flag=value`, anything else that
//! starts with `-` is rejected as an unknown option (never treated as a
//! positional), and usage errors exit 2. Each binary used to hand-roll
//! that tokenization; this module holds the one copy so the binaries
//! cannot drift apart in what they accept.
//!
//! Helpers return `Result<_, String>` instead of exiting so each binary
//! routes messages through its own `usage_error` (which appends that
//! binary's usage text and sets the exit status).

/// One parsed command-line token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An option (`-h`, `--flag`, `--flag=value`). Any inline `=value`
    /// is split off; claim it with [`take_value`] and friends, or reject
    /// it with [`reject_value`] for options that take none.
    Opt {
        /// The flag spelling up to the first `=` (e.g. `--iters`).
        flag: String,
        /// The value after `=`, for `--flag=value` spellings.
        inline: Option<String>,
    },
    /// A bare operand (experiment id, file path, ...).
    Positional(String),
}

/// Streaming tokenizer over `std::env::args().skip(1)`-style argv.
#[derive(Debug)]
pub struct ArgStream {
    argv: std::vec::IntoIter<String>,
}

impl ArgStream {
    /// Wraps raw arguments (without the program name).
    pub fn new(argv: impl IntoIterator<Item = String>) -> Self {
        Self {
            argv: argv.into_iter().collect::<Vec<_>>().into_iter(),
        }
    }

    /// Returns the next token, splitting `--flag=value` spellings. Only
    /// `--`-prefixed arguments split on `=`, so a stray `-x=3` stays one
    /// (unknown) option, matching the historical behavior.
    pub fn next_token(&mut self) -> Option<Token> {
        let arg = self.argv.next()?;
        Some(match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => Token::Opt {
                flag: f.to_string(),
                inline: Some(v.to_string()),
            },
            _ if arg.starts_with('-') => Token::Opt {
                flag: arg,
                inline: None,
            },
            _ => Token::Positional(arg),
        })
    }

    fn next_raw(&mut self) -> Option<String> {
        self.argv.next()
    }
}

/// Reconstructs the raw spelling of an option for error messages.
pub fn raw_opt(flag: &str, inline: Option<&str>) -> String {
    match inline {
        Some(v) => format!("{flag}={v}"),
        None => flag.to_string(),
    }
}

/// The standard rejection message for an unrecognized option.
pub fn unknown_opt(flag: &str, inline: Option<&str>) -> String {
    format!("unknown option `{}`", raw_opt(flag, inline))
}

/// Claims the option's value: the inline `=value` if present, otherwise
/// the next raw argument.
pub fn take_value(
    flag: &str,
    inline: Option<String>,
    args: &mut ArgStream,
) -> Result<String, String> {
    inline
        .or_else(|| args.next_raw())
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// [`take_value`] parsed as a non-negative integer count.
pub fn take_count(
    flag: &str,
    inline: Option<String>,
    args: &mut ArgStream,
) -> Result<usize, String> {
    let v = take_value(flag, inline, args)?;
    v.parse::<usize>()
        .map_err(|_| format!("{flag}: `{v}` is not a count"))
}

/// [`take_value`] parsed as a finite non-negative float (a tolerance).
pub fn take_ratio(flag: &str, inline: Option<String>, args: &mut ArgStream) -> Result<f64, String> {
    let v = take_value(flag, inline, args)?;
    v.parse::<f64>()
        .ok()
        .filter(|t| t.is_finite() && *t >= 0.0)
        .ok_or_else(|| format!("{flag}: `{v}` is not a non-negative number"))
}

/// Rejects `--flag=value` spellings for options that take no value.
pub fn reject_value(flag: &str, inline: Option<String>) -> Result<(), String> {
    match inline {
        Some(v) => Err(format!("{flag} takes no value (got `{v}`)")),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(argv: &[&str]) -> Vec<Token> {
        let mut args = ArgStream::new(argv.iter().map(|s| s.to_string()));
        let mut out = Vec::new();
        while let Some(t) = args.next_token() {
            out.push(t);
        }
        out
    }

    fn opt(flag: &str, inline: Option<&str>) -> Token {
        Token::Opt {
            flag: flag.to_string(),
            inline: inline.map(|s| s.to_string()),
        }
    }

    #[test]
    fn tokenizes_flags_positionals_and_inline_values() {
        assert_eq!(
            tokens(&["e1", "--iters", "3", "--out=x.json", "-h"]),
            vec![
                Token::Positional("e1".to_string()),
                opt("--iters", None),
                Token::Positional("3".to_string()),
                opt("--out", Some("x.json")),
                opt("-h", None),
            ]
        );
    }

    #[test]
    fn single_dash_never_splits_on_equals() {
        // `-x=3` is one unknown option, not `-x` with a value.
        assert_eq!(tokens(&["-x=3"]), vec![opt("-x=3", None)]);
        // ...and a positional containing `=` stays positional.
        assert_eq!(tokens(&["k=v"]), vec![Token::Positional("k=v".to_string())]);
    }

    #[test]
    fn take_value_prefers_inline_then_next_arg() {
        let mut args = ArgStream::new(["next".to_string()]);
        assert_eq!(
            take_value("--out", Some("inline".to_string()), &mut args),
            Ok("inline".to_string())
        );
        // Inline did not consume the stream.
        assert_eq!(take_value("--out", None, &mut args), Ok("next".to_string()));
        let err = take_value("--out", None, &mut args).unwrap_err();
        assert_eq!(err, "--out needs a value");
    }

    #[test]
    fn take_count_rejects_non_numbers() {
        let mut args = ArgStream::new([]);
        assert_eq!(
            take_count("--iters", Some("5".to_string()), &mut args),
            Ok(5)
        );
        let err = take_count("--iters", Some("five".to_string()), &mut args).unwrap_err();
        assert_eq!(err, "--iters: `five` is not a count");
    }

    #[test]
    fn take_ratio_rejects_negative_and_non_finite() {
        let mut args = ArgStream::new([]);
        assert_eq!(
            take_ratio("--tolerance", Some("0.25".to_string()), &mut args),
            Ok(0.25)
        );
        for bad in ["-0.1", "NaN", "inf", "abc"] {
            let err = take_ratio("--tolerance", Some(bad.to_string()), &mut args).unwrap_err();
            assert_eq!(
                err,
                format!("--tolerance: `{bad}` is not a non-negative number")
            );
        }
    }

    #[test]
    fn reject_value_only_fires_on_inline() {
        assert_eq!(reject_value("--warn-only", None), Ok(()));
        let err = reject_value("--warn-only", Some("x".to_string())).unwrap_err();
        assert_eq!(err, "--warn-only takes no value (got `x`)");
    }

    #[test]
    fn unknown_opt_reconstructs_raw_spelling() {
        assert_eq!(unknown_opt("--bogus", None), "unknown option `--bogus`");
        assert_eq!(
            unknown_opt("--bogus", Some("3")),
            "unknown option `--bogus=3`"
        );
    }
}
