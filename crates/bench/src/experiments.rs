//! One function per experiment (E1–E14), all sharing one staged
//! pipeline run ([`gwc_core::pipeline`]). Each experiment declares the
//! pipeline artifacts it consumes in [`EXPERIMENTS`]. E14 additionally
//! drives the lazy pair stage ([`gwc_core::pipeline::PairsStage`]) off
//! the shared study artifact.

use std::fmt::Write as _;

use gwc_characterize::schema;
use gwc_core::analysis::ClusterAnalysis;
use gwc_core::diversity::suite_diversity;
use gwc_core::eval::{evaluate_subset_threads, random_subset_errors_threads, stress_selection};
use gwc_core::pipeline::ArtifactKind;
use gwc_core::report;
use gwc_core::study::StudyConfig;
use gwc_core::subspace::{Subspace, SubspaceAnalysis};
use gwc_stats::corr::correlated_groups;
use gwc_stats::describe::mean;
use gwc_stats::normalize::zscore;
use gwc_timing::sweep::default_design_space;
use gwc_timing::GpuConfig;
use gwc_workloads::registry;

/// The full artifact set every experiment reads. The pipeline module
/// owns the stage DAG and the driver; this alias keeps the historical
/// name the experiment signatures were written against.
pub type StudyArtifacts = gwc_core::pipeline::Artifacts;

/// The canonical study configuration every experiment uses (the study
/// half of [`gwc_core::pipeline::PipelineConfig::default`]).
pub fn study_config() -> StudyConfig {
    gwc_core::pipeline::PipelineConfig::default().study
}

/// One experiment: id, one-line description, and the pipeline artifacts
/// it consumes (`regen --list` prints this table).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentSpec {
    /// Stable id (`e1` .. `e14`).
    pub id: &'static str,
    /// One-line description.
    pub desc: &'static str,
    /// Pipeline artifacts the experiment reads.
    pub consumes: &'static [ArtifactKind],
}

/// Every experiment, in presentation order.
pub const EXPERIMENTS: &[ExperimentSpec] = &[
    ExperimentSpec {
        id: "e1",
        desc: "the microarchitecture-independent characteristic set",
        consumes: &[],
    },
    ExperimentSpec {
        id: "e2",
        desc: "workload inventory with per-workload instruction totals",
        consumes: &[ArtifactKind::Study],
    },
    ExperimentSpec {
        id: "e3",
        desc: "raw kernel x characteristic matrix",
        consumes: &[ArtifactKind::Matrix],
    },
    ExperimentSpec {
        id: "e4",
        desc: "correlated groups and PCA variance profile",
        consumes: &[ArtifactKind::Matrix, ArtifactKind::Reduced],
    },
    ExperimentSpec {
        id: "e5",
        desc: "kernel scatter in PC1-PC2",
        consumes: &[ArtifactKind::Matrix, ArtifactKind::Reduced],
    },
    ExperimentSpec {
        id: "e6",
        desc: "kernel scatter in PC3-PC4",
        consumes: &[ArtifactKind::Matrix, ArtifactKind::Reduced],
    },
    ExperimentSpec {
        id: "e7",
        desc: "whole-space dendrogram (average linkage)",
        consumes: &[ArtifactKind::Matrix, ArtifactKind::Clustering],
    },
    ExperimentSpec {
        id: "e8",
        desc: "clusters and representatives across k",
        consumes: &[
            ArtifactKind::Matrix,
            ArtifactKind::Reduced,
            ArtifactKind::Clustering,
        ],
    },
    ExperimentSpec {
        id: "e9",
        desc: "branch-divergence subspace analysis",
        consumes: &[ArtifactKind::Study, ArtifactKind::Matrix],
    },
    ExperimentSpec {
        id: "e10",
        desc: "memory-coalescing subspace analysis",
        consumes: &[ArtifactKind::Study, ArtifactKind::Matrix],
    },
    ExperimentSpec {
        id: "e11",
        desc: "per-suite diversity in the common PC space",
        consumes: &[ArtifactKind::Study, ArtifactKind::Reduced],
    },
    ExperimentSpec {
        id: "e12",
        desc: "design-space evaluation error of representative subsets",
        consumes: &[
            ArtifactKind::Study,
            ArtifactKind::Matrix,
            ArtifactKind::Clustering,
        ],
    },
    ExperimentSpec {
        id: "e13",
        desc: "stress-workload selection per functional block",
        consumes: &[ArtifactKind::Study],
    },
    ExperimentSpec {
        id: "e14",
        desc: "pairwise interference of co-scheduled kernels",
        consumes: &[ArtifactKind::Study],
    },
];

/// E1 — the characteristic set.
pub fn e1_characteristics() -> String {
    let mut out = String::from("E1: microarchitecture-independent characteristics\n");
    let _ = writeln!(out, "{:<28} {:<12} description", "name", "group");
    for def in schema::SCHEMA {
        let _ = writeln!(
            out,
            "{:<28} {:<12} {}",
            def.name,
            def.group.name(),
            def.desc
        );
    }
    out
}

/// E2 — the workload inventory.
pub fn e2_workloads(a: &StudyArtifacts) -> String {
    let mut out = String::from("E2: workload inventory\n");
    let _ = writeln!(
        out,
        "{:<22} {:<9} {:>7} {:>14} {:>14}",
        "workload", "suite", "kernels", "warp instrs", "thread instrs"
    );
    for meta in registry::all_metas(study_config().seed) {
        if meta.name == "vector_add" {
            continue;
        }
        let rows = a.study().rows_of_workload(meta.name);
        let wi: u64 = rows
            .iter()
            .map(|&r| a.study().records()[r].profile.raw().warp_instrs)
            .sum();
        let ti: u64 = rows
            .iter()
            .map(|&r| a.study().records()[r].profile.raw().thread_instrs)
            .sum();
        let _ = writeln!(
            out,
            "{:<22} {:<9} {:>7} {:>14} {:>14}",
            meta.name,
            meta.suite.name(),
            rows.len(),
            wi,
            ti
        );
    }
    out
}

/// E3 — the raw characteristic matrix.
pub fn e3_matrix(a: &StudyArtifacts) -> String {
    let headers: Vec<&str> = schema::SCHEMA.iter().map(|d| d.name).collect();
    format!(
        "E3: raw characteristic matrix\n{}",
        report::render_matrix(&a.matrix.labels, &headers, &a.matrix.matrix)
    )
}

/// E4 — correlation structure and PCA variance.
pub fn e4_pca_variance(a: &StudyArtifacts) -> String {
    let mut out = String::from("E4: correlated dimensionality reduction\n");
    let (z, _) = zscore(&a.matrix.matrix);
    let groups = correlated_groups(&z, 0.9).expect("correlation computes");
    let _ = writeln!(out, "characteristic groups with |r| > 0.9:");
    for g in groups.iter().filter(|g| g.len() > 1) {
        let names: Vec<&str> = g.iter().map(|&c| schema::SCHEMA[c].name).collect();
        let _ = writeln!(out, "  {}", names.join(", "));
    }
    let _ = writeln!(
        out,
        "\n{} varying characteristics -> {} PCs for 90% variance",
        a.space().varying_dims(),
        a.space().kept()
    );
    let _ = writeln!(out, "\ncumulative variance explained:");
    for k in 1..=a.space().kept() + 2 {
        if k > a.space().varying_dims() {
            break;
        }
        let _ = writeln!(
            out,
            "  PC1..PC{k:<2} {:6.2}%",
            100.0 * a.space().pca().variance_explained(k)
        );
    }
    out
}

fn scatter(a: &StudyArtifacts, cx: usize, cy: usize) -> String {
    let scores = a.space().scores();
    let xs: Vec<f64> = (0..scores.rows()).map(|r| scores.get(r, cx)).collect();
    let ys: Vec<f64> = (0..scores.rows()).map(|r| scores.get(r, cy)).collect();
    report::render_scatter(&a.matrix.labels, &xs, &ys, 72, 24)
}

/// E5 — PC1–PC2 scatter.
pub fn e5_scatter_pc12(a: &StudyArtifacts) -> String {
    format!("E5: kernels in PC1-PC2\n{}", scatter(a, 0, 1))
}

/// E6 — PC3–PC4 scatter.
pub fn e6_scatter_pc34(a: &StudyArtifacts) -> String {
    if a.space().kept() < 4 {
        return "E6: fewer than 4 PCs kept".into();
    }
    format!("E6: kernels in PC3-PC4\n{}", scatter(a, 2, 3))
}

/// E7 — whole-space dendrogram.
pub fn e7_dendrogram(a: &StudyArtifacts) -> String {
    format!(
        "E7: dendrogram (average linkage, PC space)\n{}",
        a.analysis().dendrogram().render(&a.matrix.labels)
    )
}

/// E8 — clusters and representatives across k.
pub fn e8_clusters(a: &StudyArtifacts) -> String {
    let mut out = String::from("E8: clusters and representatives\n");
    let labels = &a.matrix.labels;
    let _ = writeln!(out, "BIC-selected k = {}", a.analysis().k());
    for (c, &rep) in a.analysis().representatives().iter().enumerate() {
        let members: Vec<&str> = a
            .analysis()
            .labels()
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == c)
            .map(|(i, _)| labels[i].as_str())
            .collect();
        let _ = writeln!(out, "cluster {c} (rep: {})", labels[rep]);
        for m in members {
            let _ = writeln!(out, "    {m}");
        }
    }
    for k in [4, 8] {
        let fixed = ClusterAnalysis::fit_k(a.space().scores(), k, 7).expect("fits");
        let reps: Vec<&str> = fixed
            .representatives()
            .iter()
            .map(|&r| labels[r].as_str())
            .collect();
        let _ = writeln!(out, "k={k} representatives: {}", reps.join(", "));
    }
    out
}

fn subspace_report(a: &StudyArtifacts, sub: Subspace, id: &str) -> String {
    let analysis = SubspaceAnalysis::fit(a.study(), sub).expect("subspace fits");
    let mut out = format!("{id}: {} subspace\n", analysis.subspace.name);
    let _ = writeln!(out, "workload variation (descending):");
    for (w, v) in &analysis.variation {
        let _ = writeln!(out, "  {w:<22} {v:.4}");
    }
    let scores = analysis.space.scores();
    if scores.cols() >= 2 {
        let xs: Vec<f64> = (0..scores.rows()).map(|r| scores.get(r, 0)).collect();
        let ys: Vec<f64> = (0..scores.rows()).map(|r| scores.get(r, 1)).collect();
        let _ = writeln!(
            out,
            "\nkernels in the subspace PC1-PC2:\n{}",
            report::render_scatter(&a.matrix.labels, &xs, &ys, 72, 20)
        );
    }
    out
}

/// E9 — branch-divergence subspace.
pub fn e9_divergence_subspace(a: &StudyArtifacts) -> String {
    subspace_report(a, Subspace::divergence(), "E9")
}

/// E10 — memory-coalescing subspace.
pub fn e10_coalescing_subspace(a: &StudyArtifacts) -> String {
    subspace_report(a, Subspace::coalescing(), "E10")
}

/// E11 — suite diversity.
pub fn e11_suite_diversity(a: &StudyArtifacts) -> String {
    let mut out = String::from("E11: suite diversity in the common PC space\n");
    let _ = writeln!(
        out,
        "{:<10} {:>7} {:>14} {:>12} {:>10}",
        "suite", "kernels", "mean pairwise", "log volume", "reach"
    );
    for d in suite_diversity(a.study(), a.space().scores()) {
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>14.3} {:>12.2} {:>10.3}",
            d.suite.name(),
            d.kernels,
            d.mean_pairwise,
            d.log_volume,
            d.mean_reach
        );
    }
    out
}

/// E12 — design-space evaluation metrics.
pub fn e12_eval_metrics(a: &StudyArtifacts) -> String {
    let mut out = String::from("E12: design-space evaluation metrics\n");
    let baseline = GpuConfig::baseline();
    let configs = default_design_space();
    let reps = a.analysis().representatives();
    let labels = &a.matrix.labels;
    let rep_names: Vec<&str> = reps.iter().map(|&r| labels[r].as_str()).collect();
    let _ = writeln!(
        out,
        "representatives ({} of {}): {}",
        reps.len(),
        labels.len(),
        rep_names.join(", ")
    );
    let eval = evaluate_subset_threads(a.study(), &baseline, &configs, reps, a.config.threads);
    let _ = writeln!(
        out,
        "\n{:<16} {:>10} {:>10} {:>8}",
        "design point", "truth", "estimate", "error"
    );
    for (name, truth, estimate, err) in &eval.rows {
        let _ = writeln!(
            out,
            "{name:<16} {truth:>10.3} {estimate:>10.3} {:>7.2}%",
            100.0 * err
        );
    }
    let _ = writeln!(
        out,
        "\nrepresentative subset: mean error {:.2}%, max {:.2}%",
        100.0 * eval.mean_error(),
        100.0 * eval.max_error()
    );
    let random = random_subset_errors_threads(
        a.study(),
        &baseline,
        &configs,
        reps.len(),
        20,
        99,
        a.config.threads,
    );
    let _ = writeln!(
        out,
        "random subsets (same size, 20 draws): mean error {:.2}%",
        100.0 * mean(&random)
    );
    for size in [2usize, 4, 8] {
        let r = random_subset_errors_threads(
            a.study(),
            &baseline,
            &configs,
            size,
            20,
            1234 + size as u64,
            a.config.threads,
        );
        let _ = writeln!(
            out,
            "random subsets of size {size}: mean error {:.2}%",
            100.0 * mean(&r)
        );
    }
    out
}

/// E13 — stress-workload selection.
pub fn e13_stress_selection(a: &StudyArtifacts) -> String {
    let mut out = String::from("E13: stress workloads per functional block\n");
    for sel in stress_selection(a.study(), 5) {
        let _ = writeln!(out, "{} (by {}):", sel.block, sel.characteristic);
        for (name, v) in &sel.top {
            let _ = writeln!(out, "    {name:<44} {v:.4}");
        }
    }
    out
}

/// E14 — pairwise interference of co-scheduled kernels.
///
/// Runs the lazy pair stage against the shared study artifact (same
/// seed, scale, and dispatch policy as the collection config), prints
/// each scenario's contention-adjusted locality deltas (co-resident
/// minus in-pass solo timeline), the cached solo-study reference rows,
/// and clusters the pairs by their interference signature.
pub fn e14_pair_interference(a: &StudyArtifacts) -> String {
    use gwc_core::pipeline::{PairsStage, Stage as _};

    let pairs = PairsStage::run(&a.config, &a.study).pairs;
    let mut out = format!(
        "E14: pairwise interference under co-scheduling (policy: {})\n",
        pairs.policy().name()
    );
    for r in pairs.records() {
        let p = &r.profile;
        let _ = writeln!(
            out,
            "{} (expect {}): interference {:.4}, footprint {} lines, overlap {:.3}",
            r.scenario.name,
            r.scenario.expected.name(),
            p.interference(),
            p.footprint_lines,
            p.overlap_frac()
        );
        for (m, member) in p.members.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {:<20} co-cdf {:.3} {:.3} {:.3} cold {:.3} | delta {:+.3} {:+.3} {:+.3} cold {:+.3} | solo-study {}",
                member.name,
                member.co.reuse_cdf[0],
                member.co.reuse_cdf[1],
                member.co.reuse_cdf[2],
                member.co.cold_frac,
                member.reuse_delta(0),
                member.reuse_delta(1),
                member.reuse_delta(2),
                member.cold_delta(),
                match r.solo_ref[m] {
                    Some(s) => format!("{:.3} {:.3} {:.3} cold {:.3}", s[0], s[1], s[2], s[3]),
                    None => "n/a (not in population)".to_string(),
                }
            );
        }
    }
    let (labels, matrix) = pairs.signature_matrix();
    let (z, _) = zscore(&matrix);
    let analysis = ClusterAnalysis::fit(&z, 3, 7).expect("pair signatures cluster");
    let _ = writeln!(
        out,
        "\ninterference clusters (BIC-selected k = {}):",
        analysis.k()
    );
    for (c, &rep) in analysis.representatives().iter().enumerate() {
        let _ = writeln!(out, "cluster {c} (rep: {})", labels[rep]);
        for (i, &l) in analysis.labels().iter().enumerate() {
            if l == c {
                let _ = writeln!(out, "    {}", labels[i]);
            }
        }
    }
    out
}

/// All experiment ids in order.
pub fn all_experiments() -> Vec<&'static str> {
    EXPERIMENTS.iter().map(|e| e.id).collect()
}

/// Runs one experiment by id against shared artifacts.
///
/// # Panics
///
/// Panics on an unknown id.
pub fn run_experiment(id: &str, a: &StudyArtifacts) -> String {
    let _span = gwc_obs::span!("experiment/{id}");
    match id {
        "e1" => e1_characteristics(),
        "e2" => e2_workloads(a),
        "e3" => e3_matrix(a),
        "e4" => e4_pca_variance(a),
        "e5" => e5_scatter_pc12(a),
        "e6" => e6_scatter_pc34(a),
        "e7" => e7_dendrogram(a),
        "e8" => e8_clusters(a),
        "e9" => e9_divergence_subspace(a),
        "e10" => e10_coalescing_subspace(a),
        "e11" => e11_suite_diversity(a),
        "e12" => e12_eval_metrics(a),
        "e13" => e13_stress_selection(a),
        "e14" => e14_pair_interference(a),
        other => panic!("unknown experiment `{other}`"),
    }
}

/// Renders `ids` exactly as the `regen` binary prints them: a 78-char
/// `=` separator line before each experiment, then its report, then a
/// blank line. The golden-snapshot test compares this byte-for-byte
/// against `results/regen_all_small_seed7.txt`.
///
/// # Panics
///
/// Panics on an unknown id.
pub fn render_experiments(ids: &[&str], a: &StudyArtifacts) -> String {
    let mut out = String::new();
    for id in ids {
        out.push_str(&"=".repeat(78));
        out.push('\n');
        out.push_str(&run_experiment(id, a));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_needs_no_study() {
        let t = e1_characteristics();
        assert!(t.contains("div_simd_activity"));
        assert!(t.contains("coalescing"));
    }

    #[test]
    fn experiment_ids_are_complete() {
        assert_eq!(all_experiments().len(), 14);
        assert_eq!(all_experiments()[0], "e1");
        assert_eq!(all_experiments()[12], "e13");
        assert_eq!(all_experiments()[13], "e14");
    }

    #[test]
    fn specs_have_unique_ids_and_descriptions() {
        let mut ids: Vec<&str> = EXPERIMENTS.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), EXPERIMENTS.len());
        for e in EXPERIMENTS {
            assert!(!e.desc.is_empty());
            assert!(!e.desc.contains('\n'), "{} description is one line", e.id);
        }
    }

    #[test]
    fn only_e1_is_artifact_free() {
        for e in EXPERIMENTS {
            assert_eq!(e.consumes.is_empty(), e.id == "e1");
        }
    }
}
