//! Experiment regeneration harness.
//!
//! Each `e*` function regenerates one experiment artifact (table or
//! figure) of the study as plain text — see DESIGN.md for the experiment
//! index and EXPERIMENTS.md for recorded outputs. The `regen` binary
//! prints any subset:
//!
//! ```sh
//! cargo run --release -p gwc-bench --bin regen            # everything
//! cargo run --release -p gwc-bench --bin regen e9 e10     # just two
//! ```

pub mod cli;
pub mod experiments;
pub mod perf;
pub mod telemetry;

pub use experiments::{
    all_experiments, render_experiments, run_experiment, ExperimentSpec, StudyArtifacts,
    EXPERIMENTS,
};
