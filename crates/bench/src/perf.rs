//! Performance-trajectory reports: the library behind `bench_run` and
//! `bench_diff`.
//!
//! A *bench report* (`BENCH_<label>.json`) records the wall-time
//! distribution of repeated pipeline runs — per pipeline stage
//! (`study`/`reduce`/`cluster`, rollups including descendant spans),
//! per experiment, and in total — as min/median/p95 over the measured
//! iterations, plus the run configuration (threads, warmup, iteration
//! count, experiment ids). Reports from two commits are compared by
//! [`diff_reports`]: a row regresses when its **median** grew beyond a
//! configurable tolerance, and rows whose baseline median is under a
//! noise floor are never flagged (single-digit-millisecond stages jitter
//! far more than any real regression signal). CI runs the pair against a
//! committed baseline in warn-only mode; `bench_diff` without
//! `--warn-only` is the hard gate.
//!
//! Timing comes from the metrics recorder's own span aggregates — one
//! iteration installs a fresh [`MetricsRecorder`], runs the study and
//! renders the requested experiments, and reads the stage rollups back
//! from the snapshot — so `bench_run` measures exactly what
//! `regen --metrics` reports, recorder overhead included.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use gwc_core::pipeline::PipelineConfig;
use gwc_obs::json::Json;
use gwc_obs::metrics::MetricsRecorder;
use gwc_obs::{Recorder, TeeRecorder};

use crate::experiments::{render_experiments, StudyArtifacts};

/// Version stamped into every freshly written bench report. Bench
/// schema v2 extends v1 with a `kernels` array — per-kernel launch
/// counts, launch wall-time summaries, and per-µop-class execution
/// counters — which is what `bench_diff --attribute` drills into.
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// Bench schema versions [`validate_bench`] accepts. v1 reports simply
/// lack the `kernels` section (they diff fine, but can't attribute).
pub const BENCH_SUPPORTED_VERSIONS: [u64; 2] = [1, 2];

/// The pipeline stages a bench report always carries.
pub const STAGES: [&str; 3] = ["study", "reduce", "cluster"];

/// One measured iteration: total wall time plus per-stage,
/// per-experiment, and per-kernel rollups.
#[derive(Debug, Clone)]
pub struct BenchSample {
    /// Wall time of the whole iteration (study + fit + render).
    pub total_ns: u64,
    /// `(stage, rollup_ns)` for each of [`STAGES`].
    pub stages: Vec<(String, u64)>,
    /// `(experiment id, wall_ns)` for each rendered experiment.
    pub experiments: Vec<(String, u64)>,
    /// Per-kernel rollups from the iteration's metrics snapshot.
    pub kernels: Vec<KernelRollup>,
}

/// One kernel's rollup within a single bench iteration: how often it
/// launched, how long the launches took, and what it retired.
#[derive(Debug, Clone)]
pub struct KernelRollup {
    /// Kernel name.
    pub name: String,
    /// Launches observed this iteration.
    pub launches: u64,
    /// Summed launch wall time this iteration.
    pub wall_ns: u64,
    /// `(class, warp_uops, lane_uops)` from the execution profile,
    /// ordered by class name. Empty when profiling was off (a cache-warm
    /// iteration launches nothing).
    pub classes: Vec<(String, u64, u64)>,
}

/// Runs the full pipeline once — study, reduction, clustering, and the
/// rendering of `ids` — under a fresh metrics recorder and returns the
/// iteration's timing sample. With `cache_dir` set, the study stage
/// consults the persistent profile cache (used by the `small-warm`
/// bench label; cold labels pass `None` so they keep measuring real
/// simulation time).
///
/// # Panics
///
/// Panics if the study fails (bench runs have nothing to report from a
/// broken pipeline).
pub fn measure_iteration(ids: &[&str], threads: usize, cache_dir: Option<&Path>) -> BenchSample {
    measure_iteration_observed(ids, threads, cache_dir, &[])
}

/// [`measure_iteration`] with extra recorder sinks tee'd alongside the
/// iteration's own fresh [`MetricsRecorder`]. `bench_run --metrics` /
/// `--trace` / `--heartbeat` pass run-long recorders here so live
/// telemetry and cross-iteration rollups see every iteration, while the
/// per-iteration recorder (which the returned sample reads) stays
/// fresh. Empty `extra` is exactly `measure_iteration`.
///
/// # Panics
///
/// Panics if the study fails, like [`measure_iteration`].
pub fn measure_iteration_observed(
    ids: &[&str],
    threads: usize,
    cache_dir: Option<&Path>,
    extra: &[Arc<dyn Recorder>],
) -> BenchSample {
    let cfg = PipelineConfig {
        threads,
        cache_dir: cache_dir.map(Path::to_path_buf),
        ..PipelineConfig::default()
    };
    measure_iteration_config(ids, &cfg, extra)
}

/// [`measure_iteration_observed`] over an arbitrary pipeline
/// configuration — how `bench_run --scale` / `--observer-tier` measures
/// non-canonical tiers without the wrappers growing a parameter per
/// knob.
///
/// # Panics
///
/// Panics if the study fails, like [`measure_iteration`].
pub fn measure_iteration_config(
    ids: &[&str],
    cfg: &PipelineConfig,
    extra: &[Arc<dyn Recorder>],
) -> BenchSample {
    let rec = Arc::new(MetricsRecorder::default());
    let sink: Arc<dyn Recorder> = if extra.is_empty() {
        rec.clone()
    } else {
        let mut sinks: Vec<Arc<dyn Recorder>> = vec![rec.clone()];
        sinks.extend(extra.iter().cloned());
        Arc::new(TeeRecorder::new(sinks))
    };
    let guard = gwc_obs::install(sink);
    let t0 = Instant::now();
    let artifacts = StudyArtifacts::collect(cfg);
    std::hint::black_box(render_experiments(ids, &artifacts));
    let total_ns = t0.elapsed().as_nanos() as u64;
    drop(guard);
    let snap = rec.snapshot();
    BenchSample {
        total_ns,
        stages: STAGES
            .iter()
            .map(|&s| (s.to_string(), snap.rollup_ns(s)))
            .collect(),
        experiments: snap
            .spans
            .iter()
            .filter_map(|s| {
                let id = s.path.strip_prefix("experiment/")?;
                (!id.contains('/')).then(|| (id.to_string(), s.total_ns))
            })
            .collect(),
        kernels: snap
            .kernels
            .iter()
            .map(|k| KernelRollup {
                name: k.name.clone(),
                launches: k.launches,
                wall_ns: k.totals.wall_ns,
                classes: snap
                    .execs
                    .iter()
                    .find(|e| e.kernel == k.name)
                    .map(|e| {
                        e.classes
                            .iter()
                            .map(|c| (c.class.to_string(), c.warp_uops, c.lane_uops))
                            .collect()
                    })
                    .unwrap_or_default(),
            })
            .collect(),
    }
}

/// Distribution summary of one timed quantity across iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Fastest iteration.
    pub min_ns: u64,
    /// Median iteration (mean of the two middles for even counts).
    pub median_ns: u64,
    /// 95th-percentile iteration (nearest-rank).
    pub p95_ns: u64,
}

/// Summarizes samples into min/median/p95. Returns zeros when empty.
pub fn summarize(samples: &[u64]) -> Summary {
    if samples.is_empty() {
        return Summary {
            min_ns: 0,
            median_ns: 0,
            p95_ns: 0,
        };
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let median_ns = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    };
    let p95_rank = ((0.95 * n as f64).ceil() as usize).clamp(1, n);
    Summary {
        min_ns: sorted[0],
        median_ns,
        p95_ns: sorted[p95_rank - 1],
    }
}

/// Run configuration stamped into a bench report.
#[derive(Debug, Clone, Default)]
pub struct BenchContext {
    /// Report label (`BENCH_<label>.json`).
    pub label: String,
    /// Warp engine that produced the numbers (`scalar` or `simd`).
    /// Backend choice changes every simulation-bound row, so a report
    /// without it can't be attributed; `bench_run` always stamps it.
    pub backend: String,
    /// Worker threads the pipeline ran with.
    pub threads: usize,
    /// Warmup iterations (run, not recorded).
    pub warmup: usize,
    /// Measured iterations.
    pub iters: usize,
    /// Experiment ids rendered each iteration.
    pub experiment_ids: Vec<String>,
    /// Study population tier (`standard` or `large`). Empty = omitted
    /// from the report, so baselines predating the field stay valid.
    pub scale: String,
    /// Observer memory tier (`exact` or `sketch`). Empty = omitted.
    pub observer_tier: String,
    /// Co-schedule dispatch policy the E14 pair study ran under
    /// (`round-robin`, `sm-partitioned` or `leftover-fill`). Empty =
    /// omitted.
    pub policy: String,
}

fn summary_fields(s: Summary) -> Vec<(String, Json)> {
    vec![
        ("min_ns".into(), Json::UInt(s.min_ns)),
        ("median_ns".into(), Json::UInt(s.median_ns)),
        ("p95_ns".into(), Json::UInt(s.p95_ns)),
    ]
}

/// Builds the bench report document from measured samples.
pub fn build_bench_report(ctx: &BenchContext, samples: &[BenchSample]) -> Json {
    let totals: Vec<u64> = samples.iter().map(|s| s.total_ns).collect();
    // Keyed series in first-seen order (stages then experiment ids are
    // already deterministic per run).
    let mut stage_series: Vec<(String, Vec<u64>)> = Vec::new();
    let mut exp_series: Vec<(String, Vec<u64>)> = Vec::new();
    let mut launch_series: Vec<(String, Vec<u64>)> = Vec::new();
    let mut wall_series: Vec<(String, Vec<u64>)> = Vec::new();
    // `(kernel, class) -> (warp series, lane series)`.
    type ClassSeries = Vec<((String, String), (Vec<u64>, Vec<u64>))>;
    let mut class_series: ClassSeries = Vec::new();
    for sample in samples {
        for (name, ns) in &sample.stages {
            push_series(&mut stage_series, name, *ns);
        }
        for (id, ns) in &sample.experiments {
            push_series(&mut exp_series, id, *ns);
        }
        for k in &sample.kernels {
            push_series(&mut launch_series, &k.name, k.launches);
            push_series(&mut wall_series, &k.name, k.wall_ns);
            for (class, warp, lane) in &k.classes {
                let key = (k.name.clone(), class.clone());
                match class_series.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, (w, l))) => {
                        w.push(*warp);
                        l.push(*lane);
                    }
                    None => class_series.push((key, (vec![*warp], vec![*lane]))),
                }
            }
        }
    }
    let stages = stage_series
        .iter()
        .map(|(name, series)| {
            let mut fields = vec![("name".to_string(), Json::Str(name.clone()))];
            fields.extend(summary_fields(summarize(series)));
            Json::Obj(fields)
        })
        .collect();
    let experiments = exp_series
        .iter()
        .map(|(id, series)| {
            let mut fields = vec![("id".to_string(), Json::Str(id.clone()))];
            fields.extend(summary_fields(summarize(series)));
            Json::Obj(fields)
        })
        .collect();
    let kernels = wall_series
        .iter()
        .map(|(name, wall)| {
            let launches = launch_series
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| summarize(s).median_ns)
                .unwrap_or(0);
            let wall = summarize(wall);
            let classes = class_series
                .iter()
                .filter(|((k, _), _)| k == name)
                .map(|((_, class), (warp, lane))| {
                    Json::Obj(vec![
                        ("class".into(), Json::Str(class.clone())),
                        ("warp_uops".into(), Json::UInt(summarize(warp).median_ns)),
                        ("lane_uops".into(), Json::UInt(summarize(lane).median_ns)),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("name".into(), Json::Str(name.clone())),
                ("launches".into(), Json::UInt(launches)),
                ("wall_min_ns".into(), Json::UInt(wall.min_ns)),
                ("wall_median_ns".into(), Json::UInt(wall.median_ns)),
                ("wall_p95_ns".into(), Json::UInt(wall.p95_ns)),
                ("classes".into(), Json::Arr(classes)),
            ])
        })
        .collect();
    let mut fields = vec![
        (
            "bench_schema_version".into(),
            Json::UInt(BENCH_SCHEMA_VERSION),
        ),
        ("label".into(), Json::Str(ctx.label.clone())),
        ("backend".into(), Json::Str(ctx.backend.clone())),
    ];
    if !ctx.scale.is_empty() {
        fields.push(("scale".into(), Json::Str(ctx.scale.clone())));
    }
    if !ctx.observer_tier.is_empty() {
        fields.push(("observer_tier".into(), Json::Str(ctx.observer_tier.clone())));
    }
    if !ctx.policy.is_empty() {
        fields.push(("policy".into(), Json::Str(ctx.policy.clone())));
    }
    fields.extend(vec![
        ("threads".into(), Json::UInt(ctx.threads as u64)),
        ("warmup".into(), Json::UInt(ctx.warmup as u64)),
        ("iters".into(), Json::UInt(ctx.iters as u64)),
        (
            "experiment_ids".into(),
            Json::Arr(
                ctx.experiment_ids
                    .iter()
                    .map(|id| Json::Str(id.clone()))
                    .collect(),
            ),
        ),
        (
            "total".into(),
            Json::Obj(summary_fields(summarize(&totals))),
        ),
        ("stages".into(), Json::Arr(stages)),
        ("experiments".into(), Json::Arr(experiments)),
        ("kernels".into(), Json::Arr(kernels)),
    ]);
    Json::Obj(fields)
}

fn push_series(series: &mut Vec<(String, Vec<u64>)>, name: &str, value: u64) {
    match series.iter_mut().find(|(n, _)| n == name) {
        Some((_, v)) => v.push(value),
        None => series.push((name.to_string(), vec![value])),
    }
}

/// Validates a parsed bench report (version, required keys, row shapes).
///
/// # Errors
///
/// Returns a message naming the first missing/mistyped key or the
/// version mismatch.
pub fn validate_bench(doc: &Json) -> Result<(), String> {
    let version = doc
        .get("bench_schema_version")
        .and_then(Json::as_u64)
        .ok_or("`bench_schema_version` is missing or not an unsigned integer")?;
    if !BENCH_SUPPORTED_VERSIONS.contains(&version) {
        return Err(format!(
            "bench_schema_version {version} not in supported {BENCH_SUPPORTED_VERSIONS:?}"
        ));
    }
    for key in ["label", "threads", "warmup", "iters", "experiment_ids"] {
        if doc.get(key).is_none() {
            return Err(format!("missing key `{key}`"));
        }
    }
    // `backend`, `scale`, `observer_tier` and `policy` arrived after
    // version 1 shipped: optional so committed baselines predating them
    // stay valid, but when present each must be a string (the accessors
    // treat anything else as absent).
    for key in ["backend", "scale", "observer_tier", "policy"] {
        if let Some(v) = doc.get(key) {
            if v.as_str().is_none() {
                return Err(format!("`{key}` is not a string"));
            }
        }
    }
    let total = doc.get("total").ok_or("missing key `total`")?;
    for field in ["min_ns", "median_ns", "p95_ns"] {
        total
            .get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("`total.{field}` is missing or mistyped"))?;
    }
    for (key, id_field) in [("stages", "name"), ("experiments", "id")] {
        let rows = doc
            .get(key)
            .ok_or_else(|| format!("missing key `{key}`"))?
            .as_arr()
            .ok_or_else(|| format!("`{key}` is not an array"))?;
        for (i, row) in rows.iter().enumerate() {
            for field in [id_field, "min_ns", "median_ns", "p95_ns"] {
                row.get(field)
                    .ok_or_else(|| format!("`{key}[{i}]` is missing `{field}`"))?;
            }
        }
    }
    if version >= 2 {
        let rows = doc
            .get("kernels")
            .ok_or("missing key `kernels`")?
            .as_arr()
            .ok_or("`kernels` is not an array")?;
        for (i, row) in rows.iter().enumerate() {
            for field in [
                "name",
                "launches",
                "wall_min_ns",
                "wall_median_ns",
                "wall_p95_ns",
            ] {
                row.get(field)
                    .ok_or_else(|| format!("`kernels[{i}]` is missing `{field}`"))?;
            }
            let classes = row
                .get("classes")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("`kernels[{i}].classes` is missing or not an array"))?;
            for (j, c) in classes.iter().enumerate() {
                for field in ["class", "warp_uops", "lane_uops"] {
                    c.get(field).ok_or_else(|| {
                        format!("`kernels[{i}].classes[{j}]` is missing `{field}`")
                    })?;
                }
            }
        }
    }
    Ok(())
}

/// The warp engine recorded in a bench report, if any. Reports from
/// before the backend field shipped return `None`.
pub fn report_backend(doc: &Json) -> Option<&str> {
    doc.get("backend").and_then(Json::as_str)
}

/// The study population tier recorded in a bench report, if any.
pub fn report_scale(doc: &Json) -> Option<&str> {
    doc.get("scale").and_then(Json::as_str)
}

/// The observer memory tier recorded in a bench report, if any.
pub fn report_observer_tier(doc: &Json) -> Option<&str> {
    doc.get("observer_tier").and_then(Json::as_str)
}

/// The co-schedule dispatch policy recorded in a bench report, if any.
pub fn report_policy(doc: &Json) -> Option<&str> {
    doc.get("policy").and_then(Json::as_str)
}

/// How [`diff_reports`] decides what counts as a regression.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Allowed relative growth of a row's median: `0.2` tolerates +20%.
    pub tolerance: f64,
    /// Rows with a baseline median below this are noise, never flagged.
    pub min_ns: u64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self {
            tolerance: 0.20,
            min_ns: 1_000_000,
        }
    }
}

/// One compared row of a bench diff.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// `total`, `stage:<name>`, or `experiment:<id>`.
    pub name: String,
    /// Baseline median.
    pub old_median_ns: u64,
    /// Candidate median.
    pub new_median_ns: u64,
    /// `new / old` (1.0 when both are zero).
    pub ratio: f64,
    /// Whether this row exceeds the tolerance over a non-noise baseline.
    pub regressed: bool,
}

/// The result of comparing two bench reports.
#[derive(Debug, Clone, Default)]
pub struct BenchDiff {
    /// Rows present in both reports, `total` first.
    pub rows: Vec<DiffRow>,
    /// Row names only the baseline has (not compared, never silent).
    pub only_old: Vec<String>,
    /// Row names only the candidate has.
    pub only_new: Vec<String>,
}

impl BenchDiff {
    /// Rows that regressed.
    pub fn regressions(&self) -> Vec<&DiffRow> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }
}

fn median_rows(doc: &Json, key: &str, id_field: &str, prefix: &str) -> Vec<(String, u64)> {
    doc.get(key)
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|row| {
            let id = row.get(id_field)?.as_str()?;
            let median = row.get("median_ns")?.as_u64()?;
            Some((format!("{prefix}:{id}"), median))
        })
        .collect()
}

fn all_medians(doc: &Json) -> Vec<(String, u64)> {
    let mut out = vec![(
        "total".to_string(),
        doc.get("total")
            .and_then(|t| t.get("median_ns"))
            .and_then(Json::as_u64)
            .unwrap_or(0),
    )];
    out.extend(median_rows(doc, "stages", "name", "stage"));
    out.extend(median_rows(doc, "experiments", "id", "experiment"));
    out
}

/// Compares two validated bench reports row by row.
///
/// # Errors
///
/// Returns the first schema failure of either report.
pub fn diff_reports(old: &Json, new: &Json, cfg: &DiffConfig) -> Result<BenchDiff, String> {
    validate_bench(old).map_err(|e| format!("baseline report: {e}"))?;
    validate_bench(new).map_err(|e| format!("candidate report: {e}"))?;
    let old_rows = all_medians(old);
    let new_rows = all_medians(new);
    let mut diff = BenchDiff::default();
    for (name, old_median_ns) in &old_rows {
        let Some((_, new_median_ns)) = new_rows.iter().find(|(n, _)| n == name) else {
            diff.only_old.push(name.clone());
            continue;
        };
        let ratio = if *old_median_ns == 0 {
            if *new_median_ns == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            *new_median_ns as f64 / *old_median_ns as f64
        };
        let regressed = *old_median_ns >= cfg.min_ns && ratio > 1.0 + cfg.tolerance;
        diff.rows.push(DiffRow {
            name: name.clone(),
            old_median_ns: *old_median_ns,
            new_median_ns: *new_median_ns,
            ratio,
            regressed,
        });
    }
    for (name, _) in &new_rows {
        if !old_rows.iter().any(|(n, _)| n == name) {
            diff.only_new.push(name.clone());
        }
    }
    Ok(diff)
}

/// Renders a bench diff as the table `bench_diff` prints.
pub fn render_diff(diff: &BenchDiff, cfg: &DiffConfig) -> String {
    use gwc_obs::report::fmt_ns;
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12} {:>8}  verdict",
        "row", "old median", "new median", "ratio"
    );
    for r in &diff.rows {
        let verdict = if r.regressed {
            "REGRESSED"
        } else if r.old_median_ns < cfg.min_ns {
            "noise-floor"
        } else {
            "ok"
        };
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>7.3}x  {verdict}",
            r.name,
            fmt_ns(r.old_median_ns),
            fmt_ns(r.new_median_ns),
            r.ratio,
        );
    }
    for name in &diff.only_old {
        let _ = writeln!(out, "{name:<28} only in baseline (not compared)");
    }
    for name in &diff.only_new {
        let _ = writeln!(out, "{name:<28} only in candidate (not compared)");
    }
    out
}

/// One kernel's contribution to a bench delta, as ranked by
/// `bench_diff --attribute`.
#[derive(Debug, Clone)]
pub struct KernelAttribution {
    /// Kernel name.
    pub name: String,
    /// Baseline wall-median (0 when the kernel is new).
    pub old_wall_ns: u64,
    /// Candidate wall-median (0 when the kernel disappeared).
    pub new_wall_ns: u64,
    /// `new - old`, signed: positive means the kernel got slower.
    pub delta_ns: i64,
    /// This kernel's share of the summed positive wall deltas
    /// (0.0 when nothing got slower, or for kernels that sped up).
    pub share: f64,
    /// The µop class whose lane-µop count moved the most (by absolute
    /// delta, ties broken by name), with its signed delta. `None` when
    /// neither report carries class counters for the kernel.
    pub top_class: Option<(String, i64)>,
}

/// Per-kernel rows of a report keyed by name:
/// `(wall_median_ns, [(class, lane_uops)])`.
#[allow(clippy::type_complexity)]
fn kernel_rows(doc: &Json) -> Option<Vec<(String, u64, Vec<(String, u64)>)>> {
    let rows = doc.get("kernels")?.as_arr()?;
    Some(
        rows.iter()
            .filter_map(|row| {
                let name = row.get("name")?.as_str()?.to_string();
                let wall = row.get("wall_median_ns")?.as_u64()?;
                let classes = row
                    .get("classes")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|c| {
                        Some((
                            c.get("class")?.as_str()?.to_string(),
                            c.get("lane_uops")?.as_u64()?,
                        ))
                    })
                    .collect();
                Some((name, wall, classes))
            })
            .collect(),
    )
}

/// Drills a bench diff down to per-kernel wall-median deltas annotated
/// with the µop class that moved the most, ranked slowest-growing
/// first. This is the `bench_diff --attribute` table.
///
/// # Errors
///
/// Returns a message when either report predates bench schema v2 and
/// carries no `kernels` section (the diff itself still works — only the
/// drill-down needs the rollups).
pub fn attribute_reports(old: &Json, new: &Json) -> Result<Vec<KernelAttribution>, String> {
    let old_rows =
        kernel_rows(old).ok_or("baseline report has no `kernels` section (bench schema v1?)")?;
    let new_rows =
        kernel_rows(new).ok_or("candidate report has no `kernels` section (bench schema v1?)")?;
    let mut names: Vec<&str> = old_rows.iter().map(|(n, _, _)| n.as_str()).collect();
    for (n, _, _) in &new_rows {
        if !names.contains(&n.as_str()) {
            names.push(n);
        }
    }
    let mut rows: Vec<KernelAttribution> = names
        .iter()
        .map(|name| {
            let old_row = old_rows.iter().find(|(n, _, _)| n == name);
            let new_row = new_rows.iter().find(|(n, _, _)| n == name);
            let old_wall_ns = old_row.map_or(0, |(_, w, _)| *w);
            let new_wall_ns = new_row.map_or(0, |(_, w, _)| *w);
            let empty = Vec::new();
            let old_classes = old_row.map_or(&empty, |(_, _, c)| c);
            let new_classes = new_row.map_or(&empty, |(_, _, c)| c);
            let mut class_names: Vec<&str> = old_classes.iter().map(|(c, _)| c.as_str()).collect();
            for (c, _) in new_classes {
                if !class_names.contains(&c.as_str()) {
                    class_names.push(c);
                }
            }
            class_names.sort_unstable();
            let top_class = class_names
                .iter()
                .map(|class| {
                    let lanes = |rows: &[(String, u64)]| {
                        rows.iter().find(|(c, _)| c == class).map_or(0, |(_, l)| *l)
                    };
                    let delta = lanes(new_classes) as i64 - lanes(old_classes) as i64;
                    (class.to_string(), delta)
                })
                .max_by_key(|(_, delta)| delta.unsigned_abs())
                .filter(|(_, delta)| *delta != 0);
            KernelAttribution {
                name: name.to_string(),
                old_wall_ns,
                new_wall_ns,
                delta_ns: new_wall_ns as i64 - old_wall_ns as i64,
                share: 0.0,
                top_class,
            }
        })
        .collect();
    let grown: i64 = rows.iter().map(|r| r.delta_ns.max(0)).sum();
    if grown > 0 {
        for r in &mut rows {
            r.share = r.delta_ns.max(0) as f64 / grown as f64;
        }
    }
    rows.sort_by(|a, b| b.delta_ns.cmp(&a.delta_ns).then(a.name.cmp(&b.name)));
    Ok(rows)
}

/// Renders the ranked attribution table `bench_diff --attribute`
/// prints below the diff.
pub fn render_attribution(rows: &[KernelAttribution]) -> String {
    use gwc_obs::report::fmt_ns;
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "per-kernel attribution (ranked by wall-median delta):\n\
         {:<24} {:>12} {:>12} {:>12} {:>7}  top µop-class delta",
        "kernel", "old wall", "new wall", "delta", "share"
    );
    for r in rows {
        let sign = if r.delta_ns < 0 { "-" } else { "+" };
        let top = match &r.top_class {
            Some((class, delta)) => format!("{class} {delta:+} lane-µops"),
            None => "(no class counters)".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>12} {:>12} {:>6.0}%  {top}",
            r.name,
            fmt_ns(r.old_wall_ns),
            fmt_ns(r.new_wall_ns),
            format!("{sign}{}", fmt_ns(r.delta_ns.unsigned_abs())),
            r.share * 100.0,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(total: u64, study: u64) -> BenchSample {
        BenchSample {
            total_ns: total,
            stages: vec![
                ("study".into(), study),
                ("reduce".into(), total / 100),
                ("cluster".into(), total / 200),
            ],
            experiments: vec![("e1".into(), total / 50), ("e2".into(), total / 60)],
            kernels: vec![
                KernelRollup {
                    name: "bfs_step".into(),
                    launches: 4,
                    wall_ns: study / 2,
                    classes: vec![
                        ("int_alu".into(), study / 1000, study / 30),
                        ("mem_global".into(), study / 2000, study / 100),
                    ],
                },
                KernelRollup {
                    name: "fft_pass".into(),
                    launches: 2,
                    wall_ns: study / 4,
                    classes: vec![("fp_alu".into(), 100, 3_200)],
                },
            ],
        }
    }

    fn report(scale: u64) -> Json {
        let ctx = BenchContext {
            label: "test".into(),
            backend: "simd".into(),
            threads: 2,
            warmup: 1,
            iters: 3,
            experiment_ids: vec!["e1".into(), "e2".into()],
            scale: "standard".into(),
            observer_tier: "exact".into(),
            policy: "round-robin".into(),
        };
        let samples: Vec<BenchSample> = (0..3)
            .map(|i| sample(scale * (100 + i), scale * (80 + i)))
            .collect();
        build_bench_report(&ctx, &samples)
    }

    #[test]
    fn summarize_min_median_p95() {
        let s = summarize(&[30, 10, 20, 40, 50]);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.median_ns, 30);
        assert_eq!(s.p95_ns, 50);
        let even = summarize(&[10, 20, 30, 40]);
        assert_eq!(even.median_ns, 25);
        assert_eq!(summarize(&[]).median_ns, 0);
    }

    #[test]
    fn report_builds_and_validates() {
        let doc = report(1_000_000);
        validate_bench(&doc).expect("bench report validates");
        let text = doc.render();
        let back = gwc_obs::json::parse(&text).expect("parses");
        assert_eq!(back, doc);
        assert_eq!(
            back.get("bench_schema_version").unwrap().as_u64(),
            Some(BENCH_SCHEMA_VERSION)
        );
        let stages = back.get("stages").unwrap().as_arr().unwrap();
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[0].get("name").unwrap().as_str(), Some("study"));
        // Median of 80e6/81e6/82e6.
        assert_eq!(
            stages[0].get("median_ns").unwrap().as_u64(),
            Some(81_000_000)
        );
        let kernels = back.get("kernels").unwrap().as_arr().unwrap();
        assert_eq!(kernels.len(), 2);
        assert_eq!(kernels[0].get("name").unwrap().as_str(), Some("bfs_step"));
        assert_eq!(kernels[0].get("launches").unwrap().as_u64(), Some(4));
        // Median of (80e6/81e6/82e6)/2.
        assert_eq!(
            kernels[0].get("wall_median_ns").unwrap().as_u64(),
            Some(40_500_000)
        );
        let classes = kernels[0].get("classes").unwrap().as_arr().unwrap();
        assert_eq!(classes[0].get("class").unwrap().as_str(), Some("int_alu"));
        assert_eq!(
            classes[0].get("lane_uops").unwrap().as_u64(),
            Some(2_700_000)
        );
    }

    #[test]
    fn v1_reports_without_kernels_still_validate() {
        let doc = report(1_000_000);
        let Json::Obj(mut fields) = doc else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "kernels");
        for f in &mut fields {
            if f.0 == "bench_schema_version" {
                f.1 = Json::UInt(1);
            }
        }
        let v1 = Json::Obj(fields.clone());
        validate_bench(&v1).expect("v1 report without kernels validates");
        // A v2 report without kernels is malformed.
        for f in &mut fields {
            if f.0 == "bench_schema_version" {
                f.1 = Json::UInt(2);
            }
        }
        let err = validate_bench(&Json::Obj(fields)).unwrap_err();
        assert!(err.contains("kernels"), "{err}");
    }

    #[test]
    fn backend_is_stamped_optional_and_typed() {
        let doc = report(1_000_000);
        assert_eq!(report_backend(&doc), Some("simd"));

        // Committed baselines from before the field existed stay valid.
        let Json::Obj(mut fields) = doc.clone() else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "backend");
        let legacy = Json::Obj(fields);
        validate_bench(&legacy).expect("backend-less report validates");
        assert_eq!(report_backend(&legacy), None);

        // A mistyped backend is a schema error, not silently ignored.
        let Json::Obj(mut fields) = doc else {
            unreachable!()
        };
        for (k, v) in &mut fields {
            if k == "backend" {
                *v = Json::UInt(1);
            }
        }
        let err = validate_bench(&Json::Obj(fields)).unwrap_err();
        assert!(err.contains("backend"), "{err}");
    }

    #[test]
    fn scale_and_tier_are_stamped_optional_and_typed() {
        let doc = report(1_000_000);
        assert_eq!(report_scale(&doc), Some("standard"));
        assert_eq!(report_observer_tier(&doc), Some("exact"));

        // Baselines from before the fields existed stay valid.
        let Json::Obj(mut fields) = doc.clone() else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "scale" && k != "observer_tier");
        let legacy = Json::Obj(fields);
        validate_bench(&legacy).expect("tier-less report validates");
        assert_eq!(report_scale(&legacy), None);
        assert_eq!(report_observer_tier(&legacy), None);

        // A mistyped tier is a schema error.
        let Json::Obj(mut fields) = doc else {
            unreachable!()
        };
        for (k, v) in &mut fields {
            if k == "observer_tier" {
                *v = Json::UInt(1);
            }
        }
        let err = validate_bench(&Json::Obj(fields)).unwrap_err();
        assert!(err.contains("observer_tier"), "{err}");

        // An empty-context report omits both fields entirely.
        let bare = build_bench_report(&BenchContext::default(), &[]);
        assert_eq!(report_scale(&bare), None);
        assert_eq!(report_observer_tier(&bare), None);
    }

    #[test]
    fn policy_is_stamped_optional_and_typed() {
        let doc = report(1_000_000);
        assert_eq!(report_policy(&doc), Some("round-robin"));

        // Baselines from before the field existed stay valid.
        let Json::Obj(mut fields) = doc.clone() else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "policy");
        let legacy = Json::Obj(fields);
        validate_bench(&legacy).expect("policy-less report validates");
        assert_eq!(report_policy(&legacy), None);

        // A mistyped policy is a schema error.
        let Json::Obj(mut fields) = doc else {
            unreachable!()
        };
        for (k, v) in &mut fields {
            if k == "policy" {
                *v = Json::UInt(1);
            }
        }
        let err = validate_bench(&Json::Obj(fields)).unwrap_err();
        assert!(err.contains("policy"), "{err}");

        // An empty-context report omits the field entirely.
        let bare = build_bench_report(&BenchContext::default(), &[]);
        assert_eq!(report_policy(&bare), None);
    }

    #[test]
    fn self_diff_has_no_regressions() {
        let doc = report(1_000_000);
        let diff = diff_reports(&doc, &doc, &DiffConfig::default()).unwrap();
        assert!(diff.regressions().is_empty(), "{diff:?}");
        assert!(diff.only_old.is_empty() && diff.only_new.is_empty());
        assert_eq!(diff.rows[0].name, "total");
        assert!((diff.rows[0].ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inflated_candidate_regresses_and_noise_rows_do_not() {
        let old = report(1_000_000);
        let new = report(2_000_000); // every row doubled
        let diff = diff_reports(&old, &new, &DiffConfig::default()).unwrap();
        let regressed: Vec<&str> = diff.regressions().iter().map(|r| r.name.as_str()).collect();
        assert!(regressed.contains(&"total"));
        assert!(regressed.contains(&"stage:study"));
        // cluster's baseline median (~0.5ms) is under the 1ms noise
        // floor: doubled, but never flagged.
        assert!(!regressed.contains(&"stage:cluster"), "{regressed:?}");
        let table = render_diff(&diff, &DiffConfig::default());
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("noise-floor"));
    }

    #[test]
    fn tolerance_is_respected() {
        let old = report(1_000_000);
        let new = report(1_100_000); // +10%, within the default 20%
        let diff = diff_reports(&old, &new, &DiffConfig::default()).unwrap();
        assert!(diff.regressions().is_empty());
        let tight = DiffConfig {
            tolerance: 0.05,
            ..DiffConfig::default()
        };
        let diff = diff_reports(&old, &new, &tight).unwrap();
        assert!(!diff.regressions().is_empty());
    }

    #[test]
    fn attribution_ranks_the_slowest_growing_kernel_first() {
        let old = report(1_000_000);
        let new = report(2_000_000); // every kernel doubled
        let rows = attribute_reports(&old, &new).expect("both reports carry kernels");
        assert_eq!(rows.len(), 2);
        // bfs_step's wall median (study/2) grows twice as much as
        // fft_pass's (study/4), so it tops the ranking with 2/3 of the
        // summed growth, attributed to its biggest lane-µop mover.
        assert_eq!(rows[0].name, "bfs_step");
        assert_eq!(rows[0].delta_ns, 40_500_000);
        assert!(
            (rows[0].share - 2.0 / 3.0).abs() < 1e-9,
            "{}",
            rows[0].share
        );
        let (class, delta) = rows[0].top_class.clone().expect("class counters present");
        assert_eq!(class, "int_alu");
        assert_eq!(delta, 2_700_000);
        // fft_pass's fp_alu counters are scale-independent: no mover.
        assert_eq!(rows[1].top_class, None);
        let table = render_attribution(&rows);
        assert!(table.contains("bfs_step"), "{table}");
        assert!(table.contains("int_alu"), "{table}");
        let bfs_at = table.find("bfs_step").unwrap();
        assert!(bfs_at < table.find("fft_pass").unwrap(), "{table}");
    }

    #[test]
    fn attribution_degrades_gracefully_without_kernel_rollups() {
        let doc = report(1_000_000);
        let Json::Obj(mut fields) = doc.clone() else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "kernels");
        let legacy = Json::Obj(fields);
        let err = attribute_reports(&legacy, &doc).unwrap_err();
        assert!(err.contains("baseline") && err.contains("kernels"), "{err}");
        let err = attribute_reports(&doc, &legacy).unwrap_err();
        assert!(err.contains("candidate"), "{err}");
    }

    #[test]
    fn diff_rejects_malformed_reports() {
        let doc = report(1_000_000);
        let err = diff_reports(&Json::Obj(vec![]), &doc, &DiffConfig::default()).unwrap_err();
        assert!(err.contains("baseline"), "{err}");
        let Json::Obj(mut fields) = doc.clone() else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "total");
        let err = diff_reports(&doc, &Json::Obj(fields), &DiffConfig::default()).unwrap_err();
        assert!(err.contains("candidate") && err.contains("total"), "{err}");
    }
}
