//! Performance-trajectory reports: the library behind `bench_run` and
//! `bench_diff`.
//!
//! A *bench report* (`BENCH_<label>.json`) records the wall-time
//! distribution of repeated pipeline runs — per pipeline stage
//! (`study`/`reduce`/`cluster`, rollups including descendant spans),
//! per experiment, and in total — as min/median/p95 over the measured
//! iterations, plus the run configuration (threads, warmup, iteration
//! count, experiment ids). Reports from two commits are compared by
//! [`diff_reports`]: a row regresses when its **median** grew beyond a
//! configurable tolerance, and rows whose baseline median is under a
//! noise floor are never flagged (single-digit-millisecond stages jitter
//! far more than any real regression signal). CI runs the pair against a
//! committed baseline in warn-only mode; `bench_diff` without
//! `--warn-only` is the hard gate.
//!
//! Timing comes from the metrics recorder's own span aggregates — one
//! iteration installs a fresh [`MetricsRecorder`], runs the study and
//! renders the requested experiments, and reads the stage rollups back
//! from the snapshot — so `bench_run` measures exactly what
//! `regen --metrics` reports, recorder overhead included.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use gwc_core::pipeline::PipelineConfig;
use gwc_obs::json::Json;
use gwc_obs::metrics::MetricsRecorder;

use crate::experiments::{render_experiments, StudyArtifacts};

/// Version stamped into (and required from) every bench report.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// The pipeline stages a bench report always carries.
pub const STAGES: [&str; 3] = ["study", "reduce", "cluster"];

/// One measured iteration: total wall time plus per-stage and
/// per-experiment span rollups.
#[derive(Debug, Clone)]
pub struct BenchSample {
    /// Wall time of the whole iteration (study + fit + render).
    pub total_ns: u64,
    /// `(stage, rollup_ns)` for each of [`STAGES`].
    pub stages: Vec<(String, u64)>,
    /// `(experiment id, wall_ns)` for each rendered experiment.
    pub experiments: Vec<(String, u64)>,
}

/// Runs the full pipeline once — study, reduction, clustering, and the
/// rendering of `ids` — under a fresh metrics recorder and returns the
/// iteration's timing sample. With `cache_dir` set, the study stage
/// consults the persistent profile cache (used by the `small-warm`
/// bench label; cold labels pass `None` so they keep measuring real
/// simulation time).
///
/// # Panics
///
/// Panics if the study fails (bench runs have nothing to report from a
/// broken pipeline).
pub fn measure_iteration(ids: &[&str], threads: usize, cache_dir: Option<&Path>) -> BenchSample {
    let rec = Arc::new(MetricsRecorder::default());
    let guard = gwc_obs::install(rec.clone());
    let t0 = Instant::now();
    let artifacts = StudyArtifacts::collect(&PipelineConfig {
        threads,
        cache_dir: cache_dir.map(Path::to_path_buf),
        ..PipelineConfig::default()
    });
    std::hint::black_box(render_experiments(ids, &artifacts));
    let total_ns = t0.elapsed().as_nanos() as u64;
    drop(guard);
    let snap = rec.snapshot();
    BenchSample {
        total_ns,
        stages: STAGES
            .iter()
            .map(|&s| (s.to_string(), snap.rollup_ns(s)))
            .collect(),
        experiments: snap
            .spans
            .iter()
            .filter_map(|s| {
                let id = s.path.strip_prefix("experiment/")?;
                (!id.contains('/')).then(|| (id.to_string(), s.total_ns))
            })
            .collect(),
    }
}

/// Distribution summary of one timed quantity across iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Fastest iteration.
    pub min_ns: u64,
    /// Median iteration (mean of the two middles for even counts).
    pub median_ns: u64,
    /// 95th-percentile iteration (nearest-rank).
    pub p95_ns: u64,
}

/// Summarizes samples into min/median/p95. Returns zeros when empty.
pub fn summarize(samples: &[u64]) -> Summary {
    if samples.is_empty() {
        return Summary {
            min_ns: 0,
            median_ns: 0,
            p95_ns: 0,
        };
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let median_ns = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    };
    let p95_rank = ((0.95 * n as f64).ceil() as usize).clamp(1, n);
    Summary {
        min_ns: sorted[0],
        median_ns,
        p95_ns: sorted[p95_rank - 1],
    }
}

/// Run configuration stamped into a bench report.
#[derive(Debug, Clone, Default)]
pub struct BenchContext {
    /// Report label (`BENCH_<label>.json`).
    pub label: String,
    /// Warp engine that produced the numbers (`scalar` or `simd`).
    /// Backend choice changes every simulation-bound row, so a report
    /// without it can't be attributed; `bench_run` always stamps it.
    pub backend: String,
    /// Worker threads the pipeline ran with.
    pub threads: usize,
    /// Warmup iterations (run, not recorded).
    pub warmup: usize,
    /// Measured iterations.
    pub iters: usize,
    /// Experiment ids rendered each iteration.
    pub experiment_ids: Vec<String>,
}

fn summary_fields(s: Summary) -> Vec<(String, Json)> {
    vec![
        ("min_ns".into(), Json::UInt(s.min_ns)),
        ("median_ns".into(), Json::UInt(s.median_ns)),
        ("p95_ns".into(), Json::UInt(s.p95_ns)),
    ]
}

/// Builds the bench report document from measured samples.
pub fn build_bench_report(ctx: &BenchContext, samples: &[BenchSample]) -> Json {
    let totals: Vec<u64> = samples.iter().map(|s| s.total_ns).collect();
    // Keyed series in first-seen order (stages then experiment ids are
    // already deterministic per run).
    let mut stage_series: Vec<(String, Vec<u64>)> = Vec::new();
    let mut exp_series: Vec<(String, Vec<u64>)> = Vec::new();
    for sample in samples {
        for (name, ns) in &sample.stages {
            push_series(&mut stage_series, name, *ns);
        }
        for (id, ns) in &sample.experiments {
            push_series(&mut exp_series, id, *ns);
        }
    }
    let stages = stage_series
        .iter()
        .map(|(name, series)| {
            let mut fields = vec![("name".to_string(), Json::Str(name.clone()))];
            fields.extend(summary_fields(summarize(series)));
            Json::Obj(fields)
        })
        .collect();
    let experiments = exp_series
        .iter()
        .map(|(id, series)| {
            let mut fields = vec![("id".to_string(), Json::Str(id.clone()))];
            fields.extend(summary_fields(summarize(series)));
            Json::Obj(fields)
        })
        .collect();
    Json::Obj(vec![
        (
            "bench_schema_version".into(),
            Json::UInt(BENCH_SCHEMA_VERSION),
        ),
        ("label".into(), Json::Str(ctx.label.clone())),
        ("backend".into(), Json::Str(ctx.backend.clone())),
        ("threads".into(), Json::UInt(ctx.threads as u64)),
        ("warmup".into(), Json::UInt(ctx.warmup as u64)),
        ("iters".into(), Json::UInt(ctx.iters as u64)),
        (
            "experiment_ids".into(),
            Json::Arr(
                ctx.experiment_ids
                    .iter()
                    .map(|id| Json::Str(id.clone()))
                    .collect(),
            ),
        ),
        (
            "total".into(),
            Json::Obj(summary_fields(summarize(&totals))),
        ),
        ("stages".into(), Json::Arr(stages)),
        ("experiments".into(), Json::Arr(experiments)),
    ])
}

fn push_series(series: &mut Vec<(String, Vec<u64>)>, name: &str, value: u64) {
    match series.iter_mut().find(|(n, _)| n == name) {
        Some((_, v)) => v.push(value),
        None => series.push((name.to_string(), vec![value])),
    }
}

/// Validates a parsed bench report (version, required keys, row shapes).
///
/// # Errors
///
/// Returns a message naming the first missing/mistyped key or the
/// version mismatch.
pub fn validate_bench(doc: &Json) -> Result<(), String> {
    let version = doc
        .get("bench_schema_version")
        .and_then(Json::as_u64)
        .ok_or("`bench_schema_version` is missing or not an unsigned integer")?;
    if version != BENCH_SCHEMA_VERSION {
        return Err(format!(
            "bench_schema_version {version} != supported {BENCH_SCHEMA_VERSION}"
        ));
    }
    for key in ["label", "threads", "warmup", "iters", "experiment_ids"] {
        if doc.get(key).is_none() {
            return Err(format!("missing key `{key}`"));
        }
    }
    // `backend` arrived after version 1 shipped: optional so committed
    // baselines predating it stay valid, but when present it must be a
    // string (`report_backend` treats anything else as absent).
    if let Some(backend) = doc.get("backend") {
        if backend.as_str().is_none() {
            return Err("`backend` is not a string".into());
        }
    }
    let total = doc.get("total").ok_or("missing key `total`")?;
    for field in ["min_ns", "median_ns", "p95_ns"] {
        total
            .get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("`total.{field}` is missing or mistyped"))?;
    }
    for (key, id_field) in [("stages", "name"), ("experiments", "id")] {
        let rows = doc
            .get(key)
            .ok_or_else(|| format!("missing key `{key}`"))?
            .as_arr()
            .ok_or_else(|| format!("`{key}` is not an array"))?;
        for (i, row) in rows.iter().enumerate() {
            for field in [id_field, "min_ns", "median_ns", "p95_ns"] {
                row.get(field)
                    .ok_or_else(|| format!("`{key}[{i}]` is missing `{field}`"))?;
            }
        }
    }
    Ok(())
}

/// The warp engine recorded in a bench report, if any. Reports from
/// before the backend field shipped return `None`.
pub fn report_backend(doc: &Json) -> Option<&str> {
    doc.get("backend").and_then(Json::as_str)
}

/// How [`diff_reports`] decides what counts as a regression.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Allowed relative growth of a row's median: `0.2` tolerates +20%.
    pub tolerance: f64,
    /// Rows with a baseline median below this are noise, never flagged.
    pub min_ns: u64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self {
            tolerance: 0.20,
            min_ns: 1_000_000,
        }
    }
}

/// One compared row of a bench diff.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// `total`, `stage:<name>`, or `experiment:<id>`.
    pub name: String,
    /// Baseline median.
    pub old_median_ns: u64,
    /// Candidate median.
    pub new_median_ns: u64,
    /// `new / old` (1.0 when both are zero).
    pub ratio: f64,
    /// Whether this row exceeds the tolerance over a non-noise baseline.
    pub regressed: bool,
}

/// The result of comparing two bench reports.
#[derive(Debug, Clone, Default)]
pub struct BenchDiff {
    /// Rows present in both reports, `total` first.
    pub rows: Vec<DiffRow>,
    /// Row names only the baseline has (not compared, never silent).
    pub only_old: Vec<String>,
    /// Row names only the candidate has.
    pub only_new: Vec<String>,
}

impl BenchDiff {
    /// Rows that regressed.
    pub fn regressions(&self) -> Vec<&DiffRow> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }
}

fn median_rows(doc: &Json, key: &str, id_field: &str, prefix: &str) -> Vec<(String, u64)> {
    doc.get(key)
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|row| {
            let id = row.get(id_field)?.as_str()?;
            let median = row.get("median_ns")?.as_u64()?;
            Some((format!("{prefix}:{id}"), median))
        })
        .collect()
}

fn all_medians(doc: &Json) -> Vec<(String, u64)> {
    let mut out = vec![(
        "total".to_string(),
        doc.get("total")
            .and_then(|t| t.get("median_ns"))
            .and_then(Json::as_u64)
            .unwrap_or(0),
    )];
    out.extend(median_rows(doc, "stages", "name", "stage"));
    out.extend(median_rows(doc, "experiments", "id", "experiment"));
    out
}

/// Compares two validated bench reports row by row.
///
/// # Errors
///
/// Returns the first schema failure of either report.
pub fn diff_reports(old: &Json, new: &Json, cfg: &DiffConfig) -> Result<BenchDiff, String> {
    validate_bench(old).map_err(|e| format!("baseline report: {e}"))?;
    validate_bench(new).map_err(|e| format!("candidate report: {e}"))?;
    let old_rows = all_medians(old);
    let new_rows = all_medians(new);
    let mut diff = BenchDiff::default();
    for (name, old_median_ns) in &old_rows {
        let Some((_, new_median_ns)) = new_rows.iter().find(|(n, _)| n == name) else {
            diff.only_old.push(name.clone());
            continue;
        };
        let ratio = if *old_median_ns == 0 {
            if *new_median_ns == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            *new_median_ns as f64 / *old_median_ns as f64
        };
        let regressed = *old_median_ns >= cfg.min_ns && ratio > 1.0 + cfg.tolerance;
        diff.rows.push(DiffRow {
            name: name.clone(),
            old_median_ns: *old_median_ns,
            new_median_ns: *new_median_ns,
            ratio,
            regressed,
        });
    }
    for (name, _) in &new_rows {
        if !old_rows.iter().any(|(n, _)| n == name) {
            diff.only_new.push(name.clone());
        }
    }
    Ok(diff)
}

/// Renders a bench diff as the table `bench_diff` prints.
pub fn render_diff(diff: &BenchDiff, cfg: &DiffConfig) -> String {
    use gwc_obs::report::fmt_ns;
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12} {:>8}  verdict",
        "row", "old median", "new median", "ratio"
    );
    for r in &diff.rows {
        let verdict = if r.regressed {
            "REGRESSED"
        } else if r.old_median_ns < cfg.min_ns {
            "noise-floor"
        } else {
            "ok"
        };
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>7.3}x  {verdict}",
            r.name,
            fmt_ns(r.old_median_ns),
            fmt_ns(r.new_median_ns),
            r.ratio,
        );
    }
    for name in &diff.only_old {
        let _ = writeln!(out, "{name:<28} only in baseline (not compared)");
    }
    for name in &diff.only_new {
        let _ = writeln!(out, "{name:<28} only in candidate (not compared)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(total: u64, study: u64) -> BenchSample {
        BenchSample {
            total_ns: total,
            stages: vec![
                ("study".into(), study),
                ("reduce".into(), total / 100),
                ("cluster".into(), total / 200),
            ],
            experiments: vec![("e1".into(), total / 50), ("e2".into(), total / 60)],
        }
    }

    fn report(scale: u64) -> Json {
        let ctx = BenchContext {
            label: "test".into(),
            backend: "simd".into(),
            threads: 2,
            warmup: 1,
            iters: 3,
            experiment_ids: vec!["e1".into(), "e2".into()],
        };
        let samples: Vec<BenchSample> = (0..3)
            .map(|i| sample(scale * (100 + i), scale * (80 + i)))
            .collect();
        build_bench_report(&ctx, &samples)
    }

    #[test]
    fn summarize_min_median_p95() {
        let s = summarize(&[30, 10, 20, 40, 50]);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.median_ns, 30);
        assert_eq!(s.p95_ns, 50);
        let even = summarize(&[10, 20, 30, 40]);
        assert_eq!(even.median_ns, 25);
        assert_eq!(summarize(&[]).median_ns, 0);
    }

    #[test]
    fn report_builds_and_validates() {
        let doc = report(1_000_000);
        validate_bench(&doc).expect("bench report validates");
        let text = doc.render();
        let back = gwc_obs::json::parse(&text).expect("parses");
        assert_eq!(back, doc);
        assert_eq!(
            back.get("bench_schema_version").unwrap().as_u64(),
            Some(BENCH_SCHEMA_VERSION)
        );
        let stages = back.get("stages").unwrap().as_arr().unwrap();
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[0].get("name").unwrap().as_str(), Some("study"));
        // Median of 80e6/81e6/82e6.
        assert_eq!(
            stages[0].get("median_ns").unwrap().as_u64(),
            Some(81_000_000)
        );
    }

    #[test]
    fn backend_is_stamped_optional_and_typed() {
        let doc = report(1_000_000);
        assert_eq!(report_backend(&doc), Some("simd"));

        // Committed baselines from before the field existed stay valid.
        let Json::Obj(mut fields) = doc.clone() else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "backend");
        let legacy = Json::Obj(fields);
        validate_bench(&legacy).expect("backend-less report validates");
        assert_eq!(report_backend(&legacy), None);

        // A mistyped backend is a schema error, not silently ignored.
        let Json::Obj(mut fields) = doc else {
            unreachable!()
        };
        for (k, v) in &mut fields {
            if k == "backend" {
                *v = Json::UInt(1);
            }
        }
        let err = validate_bench(&Json::Obj(fields)).unwrap_err();
        assert!(err.contains("backend"), "{err}");
    }

    #[test]
    fn self_diff_has_no_regressions() {
        let doc = report(1_000_000);
        let diff = diff_reports(&doc, &doc, &DiffConfig::default()).unwrap();
        assert!(diff.regressions().is_empty(), "{diff:?}");
        assert!(diff.only_old.is_empty() && diff.only_new.is_empty());
        assert_eq!(diff.rows[0].name, "total");
        assert!((diff.rows[0].ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inflated_candidate_regresses_and_noise_rows_do_not() {
        let old = report(1_000_000);
        let new = report(2_000_000); // every row doubled
        let diff = diff_reports(&old, &new, &DiffConfig::default()).unwrap();
        let regressed: Vec<&str> = diff.regressions().iter().map(|r| r.name.as_str()).collect();
        assert!(regressed.contains(&"total"));
        assert!(regressed.contains(&"stage:study"));
        // cluster's baseline median (~0.5ms) is under the 1ms noise
        // floor: doubled, but never flagged.
        assert!(!regressed.contains(&"stage:cluster"), "{regressed:?}");
        let table = render_diff(&diff, &DiffConfig::default());
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("noise-floor"));
    }

    #[test]
    fn tolerance_is_respected() {
        let old = report(1_000_000);
        let new = report(1_100_000); // +10%, within the default 20%
        let diff = diff_reports(&old, &new, &DiffConfig::default()).unwrap();
        assert!(diff.regressions().is_empty());
        let tight = DiffConfig {
            tolerance: 0.05,
            ..DiffConfig::default()
        };
        let diff = diff_reports(&old, &new, &tight).unwrap();
        assert!(!diff.regressions().is_empty());
    }

    #[test]
    fn diff_rejects_malformed_reports() {
        let doc = report(1_000_000);
        let err = diff_reports(&Json::Obj(vec![]), &doc, &DiffConfig::default()).unwrap_err();
        assert!(err.contains("baseline"), "{err}");
        let Json::Obj(mut fields) = doc.clone() else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "total");
        let err = diff_reports(&doc, &Json::Obj(fields), &DiffConfig::default()).unwrap_err();
        assert!(err.contains("candidate") && err.contains("total"), "{err}");
    }
}
