//! Shared live-telemetry plumbing for the bench binaries.
//!
//! `regen` and `bench_run` both accept `--heartbeat PATH|-` (plus
//! `--heartbeat-interval-ms` and `--stall-after`) and both write v4
//! metrics reports with a run-metadata header. This module holds the
//! one copy of that glue: flag parsing, the heartbeat sink, the
//! sampler lifecycle, and report assembly.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use gwc_obs::metrics::{MetricsRecorder, MetricsSnapshot};
use gwc_obs::report::{build_report, validate, ReportContext, RunMeta};
use gwc_obs::sampler::TimeSeries;
use gwc_obs::{Recorder, Sampler, SamplerConfig, TraceRecorder};

use crate::cli::{take_count, take_value, ArgStream};

/// Telemetry options shared by `regen` and `bench_run`.
#[derive(Debug, Clone)]
pub struct TelemetryFlags {
    /// Heartbeat destination: a path, or `-` for stderr. `None`
    /// disables the NDJSON stream (the sampler may still run to fill
    /// the report's `timeseries` section).
    pub heartbeat: Option<String>,
    /// Sampler tick interval in milliseconds.
    pub interval_ms: u64,
    /// Consecutive zero-progress ticks before the stall watchdog
    /// fires; 0 disables the watchdog.
    pub stall_after: u32,
}

impl Default for TelemetryFlags {
    fn default() -> Self {
        Self {
            heartbeat: None,
            interval_ms: 500,
            stall_after: 8,
        }
    }
}

impl TelemetryFlags {
    /// Claims a telemetry option from an argument stream. Returns
    /// `None` when `flag` is not a telemetry option (the caller keeps
    /// matching), `Some(Ok(()))` when claimed, `Some(Err)` on a bad
    /// value.
    pub fn take_opt(
        &mut self,
        flag: &str,
        inline: Option<String>,
        args: &mut ArgStream,
    ) -> Option<Result<(), String>> {
        match flag {
            "--heartbeat" => Some(take_value(flag, inline, args).map(|v| self.heartbeat = Some(v))),
            "--heartbeat-interval-ms" => Some(take_count(flag, inline, args).and_then(|n| {
                if n == 0 {
                    Err(format!("{flag}: interval must be positive"))
                } else {
                    self.interval_ms = n as u64;
                    Ok(())
                }
            })),
            "--stall-after" => Some(take_count(flag, inline, args).map(|n| {
                self.stall_after = n as u32;
            })),
            _ => None,
        }
    }
}

/// Opens the heartbeat sink: stderr for `-`, a created file otherwise.
///
/// # Errors
///
/// Returns the I/O error from creating the file.
pub fn heartbeat_sink(spec: &str) -> std::io::Result<Box<dyn Write + Send>> {
    if spec == "-" {
        Ok(Box::new(std::io::stderr()))
    } else {
        Ok(Box::new(std::fs::File::create(spec)?))
    }
}

/// Starts the background sampler when anything will consume it: a
/// heartbeat stream was requested, or a metrics report (whose v4
/// `timeseries` section the sampler fills) is being recorded. Exits 2
/// if the heartbeat file cannot be created (a usage-adjacent error:
/// the operator asked for a stream we cannot open).
pub fn maybe_start_sampler(
    binary: &str,
    flags: &TelemetryFlags,
    metrics: Option<&Arc<MetricsRecorder>>,
) -> Option<Sampler> {
    if flags.heartbeat.is_none() && metrics.is_none() {
        return None;
    }
    let heartbeat = match &flags.heartbeat {
        Some(spec) => match heartbeat_sink(spec) {
            Ok(sink) => Some(sink),
            Err(e) => {
                eprintln!("{binary}: cannot open heartbeat sink `{spec}`: {e}");
                std::process::exit(2);
            }
        },
        None => None,
    };
    Some(Sampler::start(SamplerConfig {
        interval: Duration::from_millis(flags.interval_ms),
        stall_after: flags.stall_after,
        metrics: metrics.cloned(),
        heartbeat,
        ..SamplerConfig::default()
    }))
}

/// Run provenance for the v4 `meta` header, stamped with the current
/// wall clock.
pub fn run_meta(backend: &str, cache: Option<&std::path::Path>, label: &str) -> RunMeta {
    let timestamp_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    RunMeta {
        timestamp_ms,
        backend: backend.to_string(),
        cache: match cache {
            Some(dir) => dir.display().to_string(),
            None => "off".to_string(),
        },
        label: label.to_string(),
    }
}

/// Writes the trace timeline to `path`, forwarding the ring's
/// dropped-event count into the metrics recorder (so a truncated
/// timeline is visible without opening the trace) and warning on
/// overflow. Exits 1 if the file cannot be written.
pub fn finish_trace(
    binary: &str,
    path: &str,
    trace_rec: &TraceRecorder,
    metrics_rec: Option<&Arc<MetricsRecorder>>,
) {
    let dropped = trace_rec.dropped();
    if let Some(rec) = metrics_rec {
        rec.add_counter("trace.dropped_events", dropped);
    }
    if dropped > 0 {
        eprintln!(
            "{binary}: warning: trace ring buffer overflowed, {dropped} event(s) dropped \
             (earliest events kept)"
        );
    }
    if let Err(e) = std::fs::write(path, trace_rec.export().render()) {
        eprintln!("{binary}: cannot write trace to `{path}`: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "trace timeline written to {path} ({} event(s), {dropped} dropped)",
        trace_rec.events().len()
    );
}

/// Builds, self-validates, and writes the v4 metrics report. Exits 1 on
/// a validation or I/O failure.
pub fn write_metrics_report(
    binary: &str,
    path: &str,
    snap: &MetricsSnapshot,
    threads: usize,
    experiment_ids: Vec<String>,
    meta: RunMeta,
    timeseries: Option<TimeSeries>,
) {
    let report = build_report(
        snap,
        &ReportContext {
            threads,
            experiment_ids,
            meta,
            timeseries,
        },
    );
    if let Err(e) = validate(&report) {
        eprintln!("{binary}: internal error: metrics report failed validation: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(path, report.render()) {
        eprintln!("{binary}: cannot write metrics to `{path}`: {e}");
        std::process::exit(1);
    }
    eprintln!("metrics report written to {path}");
}
