//! Cold-vs-warm cache equivalence, driven through the real `regen`
//! binary: a warm rerun must be byte-identical to the cold run (and to
//! the golden snapshot), must skip simulation entirely (26 cache hits,
//! zero misses), and corrupt cache entries must be recomputed silently
//! without perturbing the output.
//!
//! Everything lives in one `#[test]` because the steps share a cache
//! directory and are ordered: cold populates, warm consumes, corruption
//! forces a partial recompute.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use gwc_obs::json::{self, Json};

/// Every workload in the registry is studied (the canonical
/// `vector_add` exclusion happens after the study stage), so a cold run
/// misses once per workload and a warm run hits once per workload.
const REGISTRY_SIZE: u64 = 26;

/// Matrix column blocks are assembled after the `vector_add` exclusion,
/// so the matrix cache holds one entry fewer than the profile cache.
const MATRIX_BLOCKS: u64 = REGISTRY_SIZE - 1;

fn regen(cache: &Path, metrics: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_regen"))
        .arg("--cache")
        .arg(cache)
        .arg("--metrics")
        .arg(metrics)
        .output()
        .expect("spawn regen")
}

fn counter_value(metrics: &Path, name: &str) -> u64 {
    let text = fs::read_to_string(metrics).expect("metrics report exists");
    let doc = json::parse(&text).expect("metrics report parses");
    let counters = doc
        .get("counters")
        .and_then(Json::as_arr)
        .expect("report has counters");
    counters
        .iter()
        .find(|c| c.get("name").and_then(Json::as_str) == Some(name))
        .and_then(|c| c.get("value").and_then(Json::as_u64))
        .unwrap_or(0)
}

fn golden() -> String {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/regen_all_small_seed7.txt");
    fs::read_to_string(path).expect("golden snapshot exists")
}

#[test]
fn warm_reruns_are_byte_identical_and_simulation_free() {
    let base = std::env::temp_dir().join(format!("gwc-cache-warm-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    fs::create_dir_all(&base).expect("create temp dir");
    let cache = base.join("cache");

    // Cold: every workload simulates and is stored.
    let cold_metrics = base.join("cold.json");
    let cold = regen(&cache, &cold_metrics);
    assert_eq!(
        cold.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold_stdout = String::from_utf8(cold.stdout).expect("utf8 stdout");
    assert_eq!(cold_stdout, golden(), "cold run diverged from the snapshot");
    assert_eq!(counter_value(&cold_metrics, "cache.misses"), REGISTRY_SIZE);
    assert_eq!(counter_value(&cold_metrics, "cache.hits"), 0);
    assert!(counter_value(&cold_metrics, "cache.bytes_written") > 0);
    assert_eq!(
        counter_value(&cold_metrics, "matrix.cache.misses"),
        MATRIX_BLOCKS
    );
    assert_eq!(counter_value(&cold_metrics, "matrix.cache.hits"), 0);

    // Warm: same bytes out, zero simulations, nothing rewritten.
    let warm_metrics = base.join("warm.json");
    let warm = regen(&cache, &warm_metrics);
    assert_eq!(warm.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&warm.stdout),
        cold_stdout,
        "warm rerun is not byte-identical to the cold run"
    );
    assert_eq!(counter_value(&warm_metrics, "cache.hits"), REGISTRY_SIZE);
    assert_eq!(counter_value(&warm_metrics, "cache.misses"), 0);
    assert_eq!(counter_value(&warm_metrics, "cache.bytes_written"), 0);
    assert_eq!(
        counter_value(&warm_metrics, "matrix.cache.hits"),
        MATRIX_BLOCKS
    );
    assert_eq!(counter_value(&warm_metrics, "matrix.cache.misses"), 0);

    // Corrupt two profile entries: they recompute silently, output
    // unchanged. Profile entries are bare-hex filenames; matrix column
    // blocks share the directory under an `m` prefix.
    let all_entries: Vec<PathBuf> = fs::read_dir(&cache)
        .expect("cache dir exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    let mut entries: Vec<PathBuf> = all_entries
        .iter()
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| !n.starts_with('m'))
        })
        .cloned()
        .collect();
    entries.sort();
    assert_eq!(entries.len() as u64, REGISTRY_SIZE);
    assert_eq!(
        (all_entries.len() - entries.len()) as u64,
        MATRIX_BLOCKS,
        "one matrix block per post-exclusion workload"
    );
    fs::write(&entries[0], "not json at all").expect("corrupt entry");
    fs::write(&entries[1], "{\"cache_version\": 9999}").expect("skew entry");

    let repair_metrics = base.join("repair.json");
    let repaired = regen(&cache, &repair_metrics);
    assert_eq!(repaired.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&repaired.stdout),
        cold_stdout,
        "corrupt cache entries perturbed the output"
    );
    assert_eq!(counter_value(&repair_metrics, "cache.misses"), 2);
    assert_eq!(
        counter_value(&repair_metrics, "cache.hits"),
        REGISTRY_SIZE - 2
    );
    // Recomputed profiles are bit-identical, so their fingerprints (and
    // the matrix blocks keyed on them) are untouched.
    assert_eq!(
        counter_value(&repair_metrics, "matrix.cache.hits"),
        MATRIX_BLOCKS
    );
    // The two recomputed entries were stored back in repaired form.
    assert!(counter_value(&repair_metrics, "cache.bytes_written") > 0);

    let _ = fs::remove_dir_all(&base);
}
