//! Every bench binary rejects unknown options with exit status 2.
//!
//! The binaries share one tokenizer (`gwc_bench::cli`), so an argument
//! that starts with `-` and is not a recognized flag must never be
//! swallowed as a positional — a typo like `--warnonly` silently
//! becoming an experiment id (or worse, being ignored) would turn an
//! enforcing CI gate into a no-op. These tests spawn the real binaries
//! because the strictness contract lives in each `main`, not just in
//! the shared helpers.

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn `{bin}`: {e}"))
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// All four binaries, each with an unknown option mixed into otherwise
/// plausible arguments. None of these invocations may start real work.
fn rejection_cases() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        (env!("CARGO_BIN_EXE_bench_run"), vec!["e1", "--bogus"]),
        (
            env!("CARGO_BIN_EXE_bench_diff"),
            vec!["old.json", "new.json", "--bogus"],
        ),
        (env!("CARGO_BIN_EXE_regen"), vec!["e1", "--bogus"]),
        (
            env!("CARGO_BIN_EXE_metrics_check"),
            vec!["--bogus", "m.json"],
        ),
    ]
}

#[test]
fn unknown_options_exit_2_with_a_diagnostic() {
    for (bin, args) in rejection_cases() {
        let out = run(bin, &args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{bin} {args:?}: expected usage-error exit 2, got {:?}\nstderr: {}",
            out.status.code(),
            stderr_of(&out)
        );
        let err = stderr_of(&out);
        assert!(
            err.contains("unknown option `--bogus`"),
            "{bin} {args:?}: stderr missing diagnostic:\n{err}"
        );
        assert!(
            err.contains("usage:"),
            "{bin} {args:?}: stderr missing usage text:\n{err}"
        );
    }
}

#[test]
fn single_dash_junk_is_an_option_not_a_positional() {
    // `-x=3` must not be treated as a file path or experiment id.
    let out = run(env!("CARGO_BIN_EXE_bench_run"), &["-x=3"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("unknown option `-x=3`"),
        "{}",
        stderr_of(&out)
    );
}

#[test]
fn help_exits_0_everywhere() {
    for (bin, _) in rejection_cases() {
        for help in ["--help", "-h"] {
            let out = run(bin, &[help]);
            assert_eq!(
                out.status.code(),
                Some(0),
                "{bin} {help}: {}",
                stderr_of(&out)
            );
            assert!(
                String::from_utf8_lossy(&out.stdout).contains("usage:"),
                "{bin} {help}: no usage text on stdout"
            );
        }
    }
}

#[test]
fn missing_and_malformed_values_exit_2() {
    let cases: Vec<(&str, Vec<&str>, &str)> = vec![
        (
            env!("CARGO_BIN_EXE_bench_run"),
            vec!["--iters"],
            "--iters needs a value",
        ),
        (
            env!("CARGO_BIN_EXE_bench_run"),
            vec!["--iters=zero"],
            "--iters: `zero` is not a count",
        ),
        (
            env!("CARGO_BIN_EXE_bench_diff"),
            vec!["--tolerance", "-1", "a.json", "b.json"],
            "--tolerance: `-1` is not a non-negative number",
        ),
        (
            env!("CARGO_BIN_EXE_bench_diff"),
            vec!["--warn-only=yes", "a.json", "b.json"],
            "--warn-only takes no value",
        ),
    ];
    for (bin, args, want) in cases {
        let out = run(bin, &args);
        assert_eq!(out.status.code(), Some(2), "{bin} {args:?}");
        let err = stderr_of(&out);
        assert!(err.contains(want), "{bin} {args:?}: stderr:\n{err}");
    }
}

#[test]
fn invalid_backend_exits_2_without_starting_work() {
    for bin in [env!("CARGO_BIN_EXE_bench_run"), env!("CARGO_BIN_EXE_regen")] {
        for args in [
            ["e1", "--backend", "cuda"].as_slice(),
            ["e1", "--backend=avx512"].as_slice(),
            ["e1", "--backend"].as_slice(),
        ] {
            let out = run(bin, args);
            assert_eq!(out.status.code(), Some(2), "{bin} {args:?}");
            let err = stderr_of(&out);
            assert!(
                err.contains("backend") && err.contains("usage:"),
                "{bin} {args:?}: stderr:\n{err}"
            );
        }
    }
}

#[test]
fn bench_diff_flags_cross_backend_comparisons() {
    use gwc_bench::perf::{build_bench_report, BenchContext, STAGES};

    let dir = std::env::temp_dir().join(format!("gwc_bench_diff_backend_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let report = |backend: &str| {
        let ctx = BenchContext {
            label: "x".into(),
            backend: backend.into(),
            threads: 1,
            warmup: 0,
            iters: 1,
            experiment_ids: vec!["e1".into()],
            scale: String::new(),
            observer_tier: String::new(),
            policy: String::new(),
        };
        let sample = gwc_bench::perf::BenchSample {
            total_ns: 5_000_000,
            stages: STAGES.iter().map(|&s| (s.to_string(), 1_000_000)).collect(),
            experiments: vec![("e1".into(), 1_000_000)],
            kernels: Vec::new(),
        };
        build_bench_report(&ctx, &[sample])
    };
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(&old, report("scalar").render()).expect("write baseline");
    std::fs::write(&new, report("simd").render()).expect("write candidate");

    let out = run(
        env!("CARGO_BIN_EXE_bench_diff"),
        &[old.to_str().unwrap(), new.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(
        err.contains("different warp engines")
            && err.contains("baseline: scalar")
            && err.contains("candidate: simd"),
        "missing cross-backend note:\n{err}"
    );

    // Same backend on both sides: no note.
    std::fs::write(&old, report("simd").render()).expect("rewrite baseline");
    let out = run(
        env!("CARGO_BIN_EXE_bench_diff"),
        &[old.to_str().unwrap(), new.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    assert!(
        !stderr_of(&out).contains("different warp engines"),
        "{}",
        stderr_of(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_diff_attribute_names_the_offending_kernel_and_uop_class() {
    use gwc_bench::perf::{build_bench_report, BenchContext, BenchSample, KernelRollup, STAGES};

    let dir = std::env::temp_dir().join(format!("gwc_bench_diff_attr_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    // Fixture: two kernels; the candidate run slows `histogram` down 3x
    // with a matching burst of atomic lane-µops, while `fft_pass` and
    // everything else stays put.
    let report = |histogram_slow: bool| {
        let (wall, atomics) = if histogram_slow {
            (9_000_000, 900_000)
        } else {
            (3_000_000, 300_000)
        };
        let kernels = vec![
            KernelRollup {
                name: "histogram".into(),
                launches: 8,
                wall_ns: wall,
                classes: vec![
                    ("atomic".into(), atomics / 32, atomics),
                    ("int_alu".into(), 4_000, 128_000),
                ],
            },
            KernelRollup {
                name: "fft_pass".into(),
                launches: 4,
                wall_ns: 2_000_000,
                classes: vec![("fp_alu".into(), 8_000, 256_000)],
            },
        ];
        let sample = BenchSample {
            total_ns: 20_000_000 + if histogram_slow { 6_000_000 } else { 0 },
            stages: STAGES.iter().map(|&s| (s.to_string(), 2_000_000)).collect(),
            experiments: vec![("e1".into(), 2_000_000)],
            kernels,
        };
        let ctx = BenchContext {
            label: "attr".into(),
            backend: "simd".into(),
            threads: 1,
            warmup: 0,
            iters: 1,
            experiment_ids: vec!["e1".into()],
            scale: String::new(),
            observer_tier: String::new(),
            policy: String::new(),
        };
        build_bench_report(&ctx, &[sample])
    };
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(&old, report(false).render()).expect("write baseline");
    std::fs::write(&new, report(true).render()).expect("write candidate");

    let out = run(
        env!("CARGO_BIN_EXE_bench_diff"),
        &[
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--attribute",
            "--warn-only",
        ],
    );
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let mut rows = stdout
        .lines()
        .skip_while(|l| !l.starts_with("per-kernel attribution"))
        .skip(2); // section header + column header
    let top = rows.next().expect("attribution table has a top row");
    assert!(
        top.starts_with("histogram") && top.contains("atomic") && top.contains("100%"),
        "top row must name the slow kernel and its µop class:\n{stdout}"
    );
    assert!(
        rows.next().is_some_and(|r| r.starts_with("fft_pass")),
        "unchanged kernel ranks below:\n{stdout}"
    );

    // A v1 baseline (no kernels section) degrades to a note, not a
    // failure.
    let doc = report(false);
    let gwc_obs::json::Json::Obj(mut fields) = doc else {
        unreachable!()
    };
    fields.retain(|(k, _)| k != "kernels");
    for f in &mut fields {
        if f.0 == "bench_schema_version" {
            f.1 = gwc_obs::json::Json::UInt(1);
        }
    }
    std::fs::write(&old, gwc_obs::json::Json::Obj(fields).render()).expect("rewrite baseline");
    let out = run(
        env!("CARGO_BIN_EXE_bench_diff"),
        &[
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--attribute",
            "--warn-only",
        ],
    );
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("cannot attribute"),
        "{}",
        stderr_of(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn regen_list_prints_every_experiment_and_exits_0() {
    let out = run(env!("CARGO_BIN_EXE_regen"), &["--list"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    for id in ["e1", "e7", "e13", "e14"] {
        assert!(
            stdout.lines().any(|l| l.starts_with(id)),
            "--list missing `{id}`:\n{stdout}"
        );
    }
    assert_eq!(stdout.lines().count(), 14, "{stdout}");
}

#[test]
fn invalid_policy_exits_2_without_starting_work() {
    for bin in [env!("CARGO_BIN_EXE_bench_run"), env!("CARGO_BIN_EXE_regen")] {
        for args in [
            ["e1", "--policy", "bogus"].as_slice(),
            ["e1", "--policy=greedy"].as_slice(),
            ["e1", "--policy"].as_slice(),
        ] {
            let out = run(bin, args);
            assert_eq!(out.status.code(), Some(2), "{bin} {args:?}");
            let err = stderr_of(&out);
            assert!(
                err.contains("policy") && err.contains("usage:"),
                "{bin} {args:?}: stderr:\n{err}"
            );
        }
    }
}

#[test]
fn cache_and_no_cache_conflict_exits_2() {
    for bin in [env!("CARGO_BIN_EXE_regen"), env!("CARGO_BIN_EXE_bench_run")] {
        let out = run(bin, &["e1", "--cache", "dir", "--no-cache"]);
        assert_eq!(out.status.code(), Some(2), "{bin}: {}", stderr_of(&out));
        assert!(
            stderr_of(&out).contains("--cache and --no-cache are mutually exclusive"),
            "{bin}: {}",
            stderr_of(&out)
        );
    }
}

#[test]
fn metrics_check_counter_assertions_parse_strictly() {
    let cases: Vec<(Vec<&str>, &str)> = vec![
        (vec!["m.json", "--counter"], "--counter needs a value"),
        (vec!["--counter=cache.hits", "m.json"], "is not NAME=VALUE"),
        (
            vec!["--counter=cache.hits=abc", "m.json"],
            "is not an unsigned integer",
        ),
        (vec!["--counter==3", "m.json"], "empty counter name"),
        (
            vec!["--counter=cache.*hits=3", "m.json"],
            "`*` is only allowed as a trailing glob",
        ),
        (
            vec!["--counter=*cache=7", "m.json"],
            "`*` is only allowed as a trailing glob",
        ),
        (vec!["m.json", "--hist"], "--hist needs a value"),
        (vec!["--hist=", "m.json"], "empty histogram name"),
        (
            vec!["--hist=lat:p98<=5", "m.json"],
            "`p98` is not a quantile",
        ),
        (
            vec!["--hist=lat:p99<5", "m.json"],
            "not a quantile bound (expected Q<=NANOS)",
        ),
        (
            vec!["--hist=lat:p99<=fast", "m.json"],
            "`fast` is not an unsigned nanosecond count",
        ),
        (vec!["--hist=:p99<=5", "m.json"], "empty histogram name"),
        (
            vec!["--min-ticks", "2", "m.json"],
            "--min-ticks requires --heartbeat",
        ),
        (
            vec!["--schema", "v9", "m.json"],
            "not a known version (v1, v2, v3, v4)",
        ),
    ];
    for (args, want) in cases {
        let out = run(env!("CARGO_BIN_EXE_metrics_check"), &args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr_of(&out));
        assert!(
            stderr_of(&out).contains(want),
            "{args:?}: stderr:\n{}",
            stderr_of(&out)
        );
    }
}

#[test]
fn telemetry_flags_parse_strictly_on_both_run_binaries() {
    for bin in [env!("CARGO_BIN_EXE_regen"), env!("CARGO_BIN_EXE_bench_run")] {
        let cases: Vec<(Vec<&str>, &str)> = vec![
            (vec!["e1", "--heartbeat"], "--heartbeat needs a value"),
            (
                vec!["e1", "--heartbeat-interval-ms=0"],
                "interval must be positive",
            ),
            (
                vec!["e1", "--heartbeat-interval-ms=soon"],
                "`soon` is not a count",
            ),
            (vec!["e1", "--stall-after=-1"], "is not a count"),
        ];
        for (args, want) in cases {
            let out = run(bin, &args);
            assert_eq!(out.status.code(), Some(2), "{bin} {args:?}");
            assert!(
                stderr_of(&out).contains(want),
                "{bin} {args:?}: stderr:\n{}",
                stderr_of(&out)
            );
        }
    }
    // bench_run's report sinks parse like regen's.
    for flag in ["--metrics", "--trace"] {
        let out = run(env!("CARGO_BIN_EXE_bench_run"), &["e1", flag]);
        assert_eq!(out.status.code(), Some(2), "{flag}: {}", stderr_of(&out));
        assert!(
            stderr_of(&out).contains(&format!("{flag} needs a value")),
            "{flag}: {}",
            stderr_of(&out)
        );
    }
}

#[test]
fn bench_diff_requires_exactly_two_paths() {
    let out = run(env!("CARGO_BIN_EXE_bench_diff"), &["only_one.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("expected exactly two report paths"),
        "{}",
        stderr_of(&out)
    );
}
