//! Golden-snapshot test: regenerating every experiment (Small scale,
//! seed 7 — the canonical `study_config()`) must reproduce
//! `results/regen_all_small_seed7.txt` byte for byte.
//!
//! This pins the entire pipeline — workload PRNG, simulator, observers,
//! PCA, clustering, timing model, report formatting — and, because the
//! study runs at the machine's available parallelism, it doubles as a
//! determinism check of the parallel runtime at Small scale.
//!
//! After an *intentional* output change (new characteristic, PRNG
//! algorithm change, report tweak), re-bless the snapshot:
//!
//! ```sh
//! GWC_BLESS=1 cargo test -p gwc-bench --test golden_regen
//! ```

use std::fs;
use std::path::PathBuf;

use gwc_bench::{all_experiments, render_experiments, StudyArtifacts};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/regen_all_small_seed7.txt")
}

#[test]
fn regen_matches_golden_snapshot() {
    let artifacts = StudyArtifacts::collect_threads(gwc_core::available_threads());
    let got = render_experiments(&all_experiments(), &artifacts);

    let path = golden_path();
    if std::env::var_os("GWC_BLESS").is_some() {
        fs::write(&path, &got).expect("write blessed snapshot");
        eprintln!("blessed {} ({} bytes)", path.display(), got.len());
        return;
    }

    let want =
        fs::read_to_string(&path).expect("golden snapshot missing; create it with GWC_BLESS=1");
    if got == want {
        return;
    }
    let mismatch = got
        .lines()
        .zip(want.lines())
        .enumerate()
        .find(|(_, (g, w))| g != w);
    match mismatch {
        Some((line, (g, w))) => panic!(
            "regen output diverged from the golden snapshot at line {}:\n  got:  {g}\n  want: {w}\n\
             If the change is intentional, re-bless with GWC_BLESS=1.",
            line + 1
        ),
        None => panic!(
            "regen output diverged in length only: got {} lines, golden has {}.\n\
             If the change is intentional, re-bless with GWC_BLESS=1.",
            got.lines().count(),
            want.lines().count()
        ),
    }
}
