//! End-to-end shape test for the `--metrics` report: runs a small
//! experiment subset with the metrics recorder installed — exactly what
//! `regen --metrics` does — and asserts the report carries per-stage
//! wall times, per-worker pool utilization, latency histograms, and
//! per-workload kernel counts.
//!
//! This test installs the global recorder, so it lives in its own
//! integration-test binary: it never shares a process with the
//! recorder-free determinism and golden-snapshot tests.

use std::sync::Arc;

use gwc_bench::{render_experiments, StudyArtifacts};
use gwc_obs::metrics::MetricsRecorder;
use gwc_obs::report::{build_report, validate_str, ReportContext, RunMeta, REQUIRED_KEYS};

#[test]
fn metrics_report_has_stages_pools_and_workloads() {
    let threads = 4;
    let rec = Arc::new(MetricsRecorder::default());
    let guard = gwc_obs::install(rec.clone());
    let artifacts = StudyArtifacts::collect_threads(threads);
    let text = render_experiments(&["e1", "e2"], &artifacts);
    drop(guard);
    assert!(text.contains("E1:") && text.contains("E2:"));

    let report = build_report(
        &rec.snapshot(),
        &ReportContext {
            threads,
            experiment_ids: vec!["e1".into(), "e2".into()],
            meta: RunMeta {
                timestamp_ms: 1_700_000_000_000,
                backend: "simd".into(),
                cache: "off".into(),
                label: "test".into(),
            },
            timeseries: None,
        },
    );
    let rendered = report.render();
    let doc = validate_str(&rendered).expect("report validates and round-trips");
    for key in REQUIRED_KEYS {
        assert!(doc.get(key).is_some(), "missing required key `{key}`");
    }
    assert_eq!(doc.get("schema_version").unwrap().as_u64(), Some(4));
    assert_eq!(doc.get("threads").unwrap().as_u64(), Some(threads as u64));

    // Schema v4: the run-metadata header round-trips.
    let meta = doc.get("meta").unwrap();
    assert_eq!(meta.get("backend").unwrap().as_str(), Some("simd"));
    assert_eq!(meta.get("cache").unwrap().as_str(), Some("off"));
    assert_eq!(meta.get("label").unwrap().as_str(), Some("test"));
    assert_eq!(meta.get("threads").unwrap().as_u64(), Some(threads as u64));

    // Schema v2: latency histograms with quantile summaries. The launch
    // path and the pool task path must both have reported samples.
    let hists = doc.get("histograms").unwrap().as_arr().unwrap();
    let hist_names: Vec<&str> = hists
        .iter()
        .map(|h| h.get("name").unwrap().as_str().unwrap())
        .collect();
    for want in ["launch.latency_ns", "pool.task_ns.study"] {
        assert!(hist_names.contains(&want), "missing histogram `{want}`");
    }
    for h in hists {
        let count = h.get("count").unwrap().as_u64().unwrap();
        assert!(count > 0, "empty histogram in report");
        let p50 = h.get("p50_ns").unwrap().as_u64().unwrap();
        let p99 = h.get("p99_ns").unwrap().as_u64().unwrap();
        let max = h.get("max_ns").unwrap().as_u64().unwrap();
        assert!(p50 <= p99 && p99 <= max, "quantiles out of order");
        assert!(h.get("sum_ns").unwrap().as_u64().unwrap() >= max);
    }

    // Per-stage wall times: the pipeline stages must all be present
    // with nonzero durations.
    let stages = doc.get("stages").unwrap().as_arr().unwrap();
    let stage_names: Vec<&str> = stages
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap())
        .collect();
    for want in ["study", "reduce", "cluster"] {
        assert!(stage_names.contains(&want), "missing stage `{want}`");
    }
    for s in stages {
        assert!(s.get("wall_ns").unwrap().as_u64().unwrap() > 0);
    }

    // Per-experiment spans for exactly the ids we ran.
    let experiments = doc.get("experiments").unwrap().as_arr().unwrap();
    let ids: Vec<&str> = experiments
        .iter()
        .map(|e| e.get("id").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(ids, ["e1", "e2"]);

    // Per-worker pool utilization: the study pool fanned out, and every
    // worker row carries tasks/steals/busy_frac.
    let pools = doc.get("pools").unwrap().as_arr().unwrap();
    let study_pool = pools
        .iter()
        .find(|p| p.get("name").unwrap().as_str() == Some("study"))
        .expect("study pool recorded");
    let workers = study_pool.get("workers").unwrap().as_arr().unwrap();
    assert!(!workers.is_empty() && workers.len() <= threads);
    let mut total_tasks = 0;
    for w in workers {
        total_tasks += w.get("tasks").unwrap().as_u64().unwrap();
        assert!(w.get("steals").unwrap().as_u64().is_some());
        let busy = w.get("busy_frac").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&busy), "busy_frac {busy} out of range");
    }
    // One task per workload in the registry (including vector_add,
    // which is excluded from the study population but still runs).
    assert!(total_tasks > 10, "study ran {total_tasks} workloads");

    // Per-workload kernel counts.
    let workloads = doc.get("workloads").unwrap().as_arr().unwrap();
    assert!(workloads.len() > 10);
    let names: Vec<&str> = workloads
        .iter()
        .map(|w| w.get("name").unwrap().as_str().unwrap())
        .collect();
    for want in ["vector_add", "histogram"] {
        assert!(names.contains(&want), "missing workload `{want}`");
    }
    for w in workloads {
        assert!(w.get("kernels").unwrap().as_u64().unwrap() > 0);
        assert!(w.get("wall_ns").unwrap().as_u64().unwrap() > 0);
    }

    // Kernel launch counters flowed up from the SIMT layer, wall time
    // included (schema v3).
    let kernels = doc.get("kernels").unwrap().as_arr().unwrap();
    assert!(!kernels.is_empty(), "kernel launches recorded");
    assert!(
        kernels
            .iter()
            .any(|k| k.get("wall_ns").unwrap().as_u64().unwrap() > 0),
        "no kernel carries launch wall time"
    );

    // Schema v3: the self-time tree folds the span aggregates, and its
    // exclusive times sum to the top-level inclusive total.
    let self_time = doc.get("self_time").unwrap().as_arr().unwrap();
    assert!(!self_time.is_empty(), "self_time tree is empty");
    let inclusive_roots: u64 = self_time
        .iter()
        .filter(|n| n.get("depth").unwrap().as_u64() == Some(0))
        .map(|n| n.get("inclusive_ns").unwrap().as_u64().unwrap())
        .sum();
    let exclusive_sum: u64 = self_time
        .iter()
        .map(|n| n.get("exclusive_ns").unwrap().as_u64().unwrap())
        .sum();
    assert_eq!(exclusive_sum, inclusive_roots, "self-time fold invariant");

    // Schema v3: per-kernel execution profiles with µop-class counters
    // and pc hotspots.
    let execs = doc.get("exec_profiles").unwrap().as_arr().unwrap();
    assert!(!execs.is_empty(), "no execution profiles recorded");
    for e in execs {
        let classes = e.get("classes").unwrap().as_arr().unwrap();
        assert!(!classes.is_empty(), "profile without class counters");
        for c in classes {
            let warp = c.get("warp_uops").unwrap().as_u64().unwrap();
            let lane = c.get("lane_uops").unwrap().as_u64().unwrap();
            assert!(warp > 0, "zero-count class emitted");
            assert!(lane >= warp, "a warp µop retires at least one lane");
        }
        let hotspots = e.get("hotspots").unwrap().as_arr().unwrap();
        assert!(!hotspots.is_empty(), "profile without hotspots");
    }
}
