//! End-to-end live telemetry through the real `regen` binary: the
//! heartbeat stream is valid NDJSON with monotone progress, it never
//! perturbs the experiment output on stdout, and an injected stall
//! (via the `GWC_TEST_STALL_MS` test hook) makes the watchdog fire and
//! name the open span.
//!
//! These spawn the real binary because the contract under test is the
//! operator-visible one: flags, files, streams, and exit codes.

use std::process::{Command, Output};

use gwc_obs::json::parse;
use gwc_obs::sampler::validate_heartbeat;

fn regen(dir: &std::path::Path, args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_regen"));
    cmd.current_dir(dir).args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn regen")
}

#[test]
fn heartbeat_streams_valid_ndjson_without_perturbing_stdout() {
    let dir = std::env::temp_dir().join(format!("gwc_telemetry_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let hb = dir.join("hb.ndjson");
    let hb_arg = hb.to_str().unwrap();

    // Cold run with a fast heartbeat (cache warms for the control run).
    let with_hb = regen(
        &dir,
        &[
            "e1",
            "--threads",
            "2",
            "--cache",
            "cache",
            "--heartbeat",
            hb_arg,
            "--heartbeat-interval-ms",
            "25",
            "--stall-after",
            "0",
        ],
        &[],
    );
    assert_eq!(
        with_hb.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&with_hb.stderr)
    );

    // The stream validates: parseable lines, strictly increasing seq,
    // monotone progress, and at least two ticks (initial + final are
    // guaranteed even for runs shorter than the interval).
    let text = std::fs::read_to_string(&hb).expect("heartbeat file written");
    let summary = validate_heartbeat(&text).expect("valid heartbeat stream");
    assert!(summary.ticks >= 2, "{summary:?}");
    assert_eq!(summary.stalls, 0, "{summary:?}");

    // Ticks are self-describing: the last one names the final stage and
    // shows every declared workload done.
    let last_tick = text
        .lines()
        .rfind(|l| l.contains("\"type\": \"tick\""))
        .expect("at least one tick line");
    let tick = parse(last_tick).expect("tick parses");
    assert_eq!(tick.get("stage").unwrap().as_str(), Some("cluster"));
    let workloads = tick.get("progress").unwrap().get("workloads").unwrap();
    let done = workloads.get("done").unwrap().as_u64().unwrap();
    assert_eq!(workloads.get("total").unwrap().as_u64().unwrap(), done);
    assert!(done > 10, "study ran {done} workloads");
    assert_eq!(tick.get("eta_ms").unwrap().as_u64(), Some(0));

    // Control: the same run without a heartbeat (warm cache) produces
    // byte-identical experiment output.
    let plain = regen(&dir, &["e1", "--threads", "2", "--cache", "cache"], &[]);
    assert_eq!(plain.status.code(), Some(0));
    assert_eq!(
        with_hb.stdout, plain.stdout,
        "heartbeat must not perturb stdout"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_stall_trips_the_watchdog_and_names_the_open_span() {
    let dir = std::env::temp_dir().join(format!("gwc_telemetry_stall_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let hb = dir.join("hb_stall.ndjson");
    let hb_arg = hb.to_str().unwrap();

    // --threads 1 pins the injected sleep (and the open span it freezes
    // under) to the serial path; stall_after=3 at 25ms fires well inside
    // the 800ms injected stall.
    let out = regen(
        &dir,
        &[
            "e1",
            "--threads",
            "1",
            "--no-cache",
            "--heartbeat",
            hb_arg,
            "--heartbeat-interval-ms",
            "25",
            "--stall-after",
            "3",
        ],
        &[("GWC_TEST_STALL_MS", "800")],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stderr}");
    assert!(
        stderr.contains("gwc-telemetry: stall: no progress for"),
        "watchdog warning missing from stderr:\n{stderr}"
    );

    let text = std::fs::read_to_string(&hb).expect("heartbeat file written");
    let summary = validate_heartbeat(&text).expect("valid heartbeat stream");
    assert!(summary.stalls >= 1, "no stall event in stream: {summary:?}");

    let stall_line = text
        .lines()
        .find(|l| l.contains("\"type\": \"stall\""))
        .expect("stall line present");
    let stall = parse(stall_line).expect("stall event parses");
    let open = stall.get("open_spans").unwrap().as_arr().unwrap();
    assert!(
        open.iter()
            .any(|p| p.as_str().is_some_and(|p| p.starts_with("study"))),
        "stall does not name the stalled study span: {stall_line}"
    );
    // The sleep freezes progress for 800ms; the watchdog must report a
    // stall within 3 sample intervals of arming, i.e. well under that.
    let stalled_ms = stall.get("stalled_ms").unwrap().as_u64().unwrap();
    assert!(
        (75..800).contains(&stalled_ms),
        "stall latency out of range: {stalled_ms}ms"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
