//! End-to-end trace timeline test: runs a small experiment subset with
//! the trace recorder installed — exactly what `regen --trace` does —
//! and asserts the exported document is well-formed Chrome trace-event
//! JSON: spans for the pipeline stages and kernel launches, per-thread
//! nesting by interval containment, and overflow metadata.
//!
//! This test installs the global recorder, so it lives in its own
//! integration-test binary: it never shares a process with the
//! recorder-free determinism and golden-snapshot tests.

use std::sync::Arc;

use gwc_bench::{render_experiments, StudyArtifacts};
use gwc_obs::json::Json;
use gwc_obs::TraceRecorder;

#[test]
fn trace_export_is_valid_chrome_trace_json() {
    let rec = Arc::new(TraceRecorder::default());
    let guard = gwc_obs::install(rec.clone());
    let artifacts = StudyArtifacts::collect_threads(4);
    let text = render_experiments(&["e1", "e2"], &artifacts);
    drop(guard);
    assert!(text.contains("E1:") && text.contains("E2:"));

    let doc = rec.export();
    // Round-trips through the hand-rolled JSON layer.
    let rendered = doc.render();
    let parsed = gwc_obs::json::parse(&rendered).expect("export renders to parseable JSON");
    assert_eq!(parsed, doc);

    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let meta = doc.get("metadata").expect("metadata object");
    assert_eq!(meta.get("tool").and_then(Json::as_str), Some("gwc-obs"));
    assert_eq!(meta.get("dropped_events").and_then(Json::as_u64), Some(0));
    let recorded = meta
        .get("recorded_events")
        .and_then(Json::as_u64)
        .expect("recorded_events");

    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");

    // Metadata events name the process and every thread that emitted a
    // span; "X" complete events carry the timeline itself.
    let metas: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .collect();
    assert!(metas
        .iter()
        .any(|e| e.get("name").and_then(Json::as_str) == Some("process_name")));
    assert!(metas
        .iter()
        .any(|e| e.get("name").and_then(Json::as_str) == Some("thread_name")));

    let spans: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert_eq!(spans.len() as u64, recorded);
    assert!(!spans.is_empty(), "timeline captured spans");
    let names: Vec<&str> = spans
        .iter()
        .map(|e| e.get("name").and_then(Json::as_str).unwrap())
        .collect();
    for want in [
        "study",
        "reduce",
        "cluster",
        "experiment/e1",
        "experiment/e2",
    ] {
        assert!(names.contains(&want), "missing span `{want}`");
    }
    assert!(
        names.iter().any(|n| n.starts_with("launch/")),
        "kernel launch spans captured"
    );

    // Every span has the complete-event shape with sane timestamps.
    for e in &spans {
        assert_eq!(e.get("pid").and_then(Json::as_u64), Some(1));
        assert!(e.get("tid").and_then(Json::as_u64).unwrap() >= 1);
        let ts = e.get("ts").and_then(Json::as_f64).unwrap();
        let dur = e.get("dur").and_then(Json::as_f64).unwrap();
        assert!(ts >= 0.0 && dur >= 0.0);
    }

    // Per-thread nesting: spans on one thread either nest (interval
    // containment) or are disjoint — never partially overlapping, which
    // would render as a broken flame graph.
    let mut tids: Vec<u64> = spans
        .iter()
        .map(|e| e.get("tid").and_then(Json::as_u64).unwrap())
        .collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let mut intervals: Vec<(f64, f64)> = spans
            .iter()
            .filter(|e| e.get("tid").and_then(Json::as_u64) == Some(tid))
            .map(|e| {
                let ts = e.get("ts").and_then(Json::as_f64).unwrap();
                let dur = e.get("dur").and_then(Json::as_f64).unwrap();
                (ts, ts + dur)
            })
            .collect();
        // Sort by start ascending, end descending, so a parent sorts
        // before the children it contains even on tied starts; then a
        // stack walk verifies strict containment.
        intervals.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        let mut open: Vec<(f64, f64)> = Vec::new();
        for (start, end) in intervals {
            while let Some(&(_, top_end)) = open.last() {
                if top_end <= start {
                    open.pop();
                } else {
                    break;
                }
            }
            if let Some(&(top_start, top_end)) = open.last() {
                assert!(
                    start >= top_start && end <= top_end,
                    "partially overlapping spans on tid {tid}: \
                     [{start}, {end}] vs enclosing [{top_start}, {top_end}]"
                );
            }
            open.push((start, end));
        }
    }
}

#[test]
fn overflowed_trace_reports_drops_in_metadata() {
    use gwc_obs::recorder::Recorder;
    use std::time::Instant;

    let rec = TraceRecorder::with_capacity(4);
    let t0 = Instant::now();
    for i in 0..10u64 {
        rec.record_span_event(
            "overflow/probe",
            1,
            t0,
            t0 + std::time::Duration::from_nanos(i),
        );
    }
    assert_eq!(rec.dropped(), 6);
    let doc = rec.export();
    let meta = doc.get("metadata").unwrap();
    assert_eq!(meta.get("recorded_events").and_then(Json::as_u64), Some(4));
    assert_eq!(meta.get("dropped_events").and_then(Json::as_u64), Some(6));
    assert_eq!(meta.get("capacity").and_then(Json::as_u64), Some(4));
}
