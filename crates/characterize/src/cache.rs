//! Content-addressed persistent store for kernel profiles.
//!
//! One cache entry holds all profiles of one workload instance, keyed by
//! the workload fingerprint mixed with every version constant that can
//! change what a profile *means*: the characteristic schema/observer
//! version ([`crate::schema::VERSION`]), the serialized layout version
//! ([`crate::serialize::PROFILE_FORMAT_VERSION`]), and this store's own
//! format version. Any bump re-keys every entry, so stale files are
//! simply never found again — no migration, no explicit invalidation.
//!
//! The store is safe by construction rather than by locking:
//!
//! * **Writes are atomic.** An entry is rendered to a pid-tagged
//!   temporary in the same directory and then renamed into place, so a
//!   reader (or a concurrent writer) never observes a half-written file.
//! * **Reads never trust the disk.** Both the entry envelope and every
//!   profile are fully validated; anything unreadable, truncated,
//!   version-skewed, or otherwise surprising loads as `None` and the
//!   caller recomputes. A corrupt cache can cost time, never correctness.
//! * **Store failures are silent.** The cache is a memo, not an output;
//!   an unwritable directory degrades to cold runs.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use gwc_obs::json::{self, Json};
use gwc_simt::hash::Fnv1a;

use crate::profile::KernelProfile;
use crate::schema;
use crate::serialize::{profile_from_json, profile_to_json, PROFILE_FORMAT_VERSION};

/// Version of the on-disk entry envelope (the fields around the
/// profiles). Bump on any change to the layout below.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Default cache directory, relative to the working directory.
pub const DEFAULT_DIR: &str = ".gwc-cache";

/// A content-addressed profile store rooted at one directory.
#[derive(Debug, Clone)]
pub struct ProfileCache {
    dir: PathBuf,
}

impl ProfileCache {
    /// A cache rooted at `dir`. The directory is created lazily on the
    /// first successful store.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The full cache key for a workload fingerprint: the fingerprint
    /// mixed with every version constant a profile's meaning depends on.
    pub fn key(fingerprint: u64) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(fingerprint);
        h.write_u32(schema::VERSION);
        h.write_u32(PROFILE_FORMAT_VERSION);
        h.write_u32(CACHE_FORMAT_VERSION);
        h.finish()
    }

    fn entry_path(&self, fingerprint: u64) -> PathBuf {
        self.dir
            .join(format!("{:016x}.json", Self::key(fingerprint)))
    }

    /// Loads the profiles cached for `fingerprint`, or `None` if there is
    /// no usable entry. Never panics and never returns partially valid
    /// data: any anomaly in the file discards the whole entry.
    pub fn load(&self, fingerprint: u64) -> Option<Vec<KernelProfile>> {
        let text = fs::read_to_string(self.entry_path(fingerprint)).ok()?;
        let doc = json::parse(&text).ok()?;
        if doc.get("cache_version")?.as_u64()? != u64::from(CACHE_FORMAT_VERSION)
            || doc.get("profile_format_version")?.as_u64()? != u64::from(PROFILE_FORMAT_VERSION)
            || doc.get("schema_version")?.as_u64()? != u64::from(schema::VERSION)
            || doc.get("fingerprint")?.as_u64()? != fingerprint
        {
            return None;
        }
        doc.get("profiles")?
            .as_arr()?
            .iter()
            .map(profile_from_json)
            .collect()
    }

    /// Stores the profiles for `fingerprint`, atomically (write to a
    /// pid-tagged temporary, then rename). Failures are deliberately
    /// swallowed — a cache that cannot write behaves like `--no-cache` —
    /// but a successful store bumps the `cache.bytes_written` counter.
    pub fn store(&self, fingerprint: u64, profiles: &[KernelProfile]) {
        let doc = Json::Obj(vec![
            (
                "cache_version".to_string(),
                Json::UInt(u64::from(CACHE_FORMAT_VERSION)),
            ),
            (
                "profile_format_version".to_string(),
                Json::UInt(u64::from(PROFILE_FORMAT_VERSION)),
            ),
            (
                "schema_version".to_string(),
                Json::UInt(u64::from(schema::VERSION)),
            ),
            ("fingerprint".to_string(), Json::UInt(fingerprint)),
            (
                "profiles".to_string(),
                Json::Arr(profiles.iter().map(profile_to_json).collect()),
            ),
        ]);
        let text = doc.render();
        let path = self.entry_path(fingerprint);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let written = fs::create_dir_all(&self.dir).is_ok()
            && fs::File::create(&tmp)
                .and_then(|mut f| f.write_all(text.as_bytes()))
                .is_ok()
            && fs::rename(&tmp, &path).is_ok();
        if written {
            gwc_obs::count("cache.bytes_written", text.len() as u64);
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::RawCounts;
    use gwc_simt::trace::LaunchStats;

    fn temp_cache(tag: &str) -> ProfileCache {
        let dir = std::env::temp_dir().join(format!("gwc-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ProfileCache::new(dir)
    }

    fn sample_profiles() -> Vec<KernelProfile> {
        (0..3)
            .map(|i| {
                let mut values = vec![0.0; schema::len()];
                values[0] = 1.0 / (i as f64 + 3.0);
                KernelProfile::new(
                    format!("k{i}"),
                    values,
                    RawCounts {
                        thread_instrs: 100 + i,
                        ..RawCounts::default()
                    },
                    LaunchStats::default(),
                )
            })
            .collect()
    }

    #[test]
    fn store_then_load_round_trips_bit_exactly() {
        let cache = temp_cache("roundtrip");
        let profiles = sample_profiles();
        assert!(cache.load(42).is_none(), "cold cache misses");
        cache.store(42, &profiles);
        let back = cache.load(42).expect("entry readable");
        assert_eq!(back.len(), profiles.len());
        for (a, b) in profiles.iter().zip(&back) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.raw(), b.raw());
            for (x, y) in a.values().iter().zip(b.values()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert!(cache.load(43).is_none(), "other fingerprints still miss");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_or_skewed_entries_load_as_none() {
        let cache = temp_cache("corrupt");
        cache.store(7, &sample_profiles());
        let path = cache
            .dir()
            .join(format!("{:016x}.json", ProfileCache::key(7)));

        // Truncation.
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(cache.load(7).is_none());

        // Valid JSON, wrong envelope version.
        fs::write(
            &path,
            full.replacen("\"cache_version\": 1", "\"cache_version\": 999", 1),
        )
        .unwrap();
        assert!(cache.load(7).is_none());

        // Garbage bytes.
        fs::write(&path, b"\x00\xffnot json").unwrap();
        assert!(cache.load(7).is_none());

        // A fresh store repairs the entry.
        cache.store(7, &sample_profiles());
        assert!(cache.load(7).is_some());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn key_mixes_fingerprint_and_versions() {
        assert_ne!(ProfileCache::key(1), ProfileCache::key(2));
        assert_eq!(ProfileCache::key(1), ProfileCache::key(1));
    }
}
