//! Content-addressed persistent store for kernel profiles.
//!
//! One cache entry holds all profiles of one workload instance, keyed by
//! the workload fingerprint mixed with every version constant that can
//! change what a profile *means*: the characteristic schema/observer
//! version ([`crate::schema::VERSION`]), the serialized layout version
//! ([`crate::serialize::PROFILE_FORMAT_VERSION`]), and this store's own
//! format version. Any bump re-keys every entry, so stale files are
//! simply never found again — no migration, no explicit invalidation.
//!
//! The store is safe by construction rather than by locking:
//!
//! * **Writes are atomic.** An entry is rendered to a pid-tagged
//!   temporary in the same directory and then renamed into place, so a
//!   reader (or a concurrent writer) never observes a half-written file.
//! * **Reads never trust the disk.** Both the entry envelope and every
//!   profile are fully validated; anything unreadable, truncated,
//!   version-skewed, or otherwise surprising loads as `None` and the
//!   caller recomputes. A corrupt cache can cost time, never correctness.
//! * **Store failures are silent.** The cache is a memo, not an output;
//!   an unwritable directory degrades to cold runs.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use gwc_obs::json::{self, Json};
use gwc_simt::hash::Fnv1a;

use crate::profile::KernelProfile;
use crate::schema;
use crate::serialize::{profile_from_json, profile_to_json, PROFILE_FORMAT_VERSION};

/// Version of the on-disk entry envelope (the fields around the
/// profiles). Bump on any change to the layout below.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Default cache directory, relative to the working directory.
pub const DEFAULT_DIR: &str = ".gwc-cache";

/// A content-addressed profile store rooted at one directory.
#[derive(Debug, Clone)]
pub struct ProfileCache {
    dir: PathBuf,
}

impl ProfileCache {
    /// A cache rooted at `dir`. The directory is created lazily on the
    /// first successful store.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The full cache key for a workload fingerprint: the fingerprint
    /// mixed with every version constant a profile's meaning depends on.
    pub fn key(fingerprint: u64) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(fingerprint);
        h.write_u32(schema::VERSION);
        h.write_u32(PROFILE_FORMAT_VERSION);
        h.write_u32(CACHE_FORMAT_VERSION);
        h.finish()
    }

    fn entry_path(&self, fingerprint: u64) -> PathBuf {
        self.dir
            .join(format!("{:016x}.json", Self::key(fingerprint)))
    }

    /// Loads the profiles cached for `fingerprint`, or `None` if there is
    /// no usable entry. Never panics and never returns partially valid
    /// data: any anomaly in the file discards the whole entry.
    pub fn load(&self, fingerprint: u64) -> Option<Vec<KernelProfile>> {
        let text = fs::read_to_string(self.entry_path(fingerprint)).ok()?;
        let doc = json::parse(&text).ok()?;
        if doc.get("cache_version")?.as_u64()? != u64::from(CACHE_FORMAT_VERSION)
            || doc.get("profile_format_version")?.as_u64()? != u64::from(PROFILE_FORMAT_VERSION)
            || doc.get("schema_version")?.as_u64()? != u64::from(schema::VERSION)
            || doc.get("fingerprint")?.as_u64()? != fingerprint
        {
            return None;
        }
        doc.get("profiles")?
            .as_arr()?
            .iter()
            .map(profile_from_json)
            .collect()
    }

    /// Stores the profiles for `fingerprint`, atomically (write to a
    /// pid-tagged temporary, then rename). Failures are deliberately
    /// swallowed — a cache that cannot write behaves like `--no-cache` —
    /// but a successful store bumps the `cache.bytes_written` counter.
    pub fn store(&self, fingerprint: u64, profiles: &[KernelProfile]) {
        let doc = Json::Obj(vec![
            (
                "cache_version".to_string(),
                Json::UInt(u64::from(CACHE_FORMAT_VERSION)),
            ),
            (
                "profile_format_version".to_string(),
                Json::UInt(u64::from(PROFILE_FORMAT_VERSION)),
            ),
            (
                "schema_version".to_string(),
                Json::UInt(u64::from(schema::VERSION)),
            ),
            ("fingerprint".to_string(), Json::UInt(fingerprint)),
            (
                "profiles".to_string(),
                Json::Arr(profiles.iter().map(profile_to_json).collect()),
            ),
        ]);
        let text = doc.render();
        let path = self.entry_path(fingerprint);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let written = fs::create_dir_all(&self.dir).is_ok()
            && fs::File::create(&tmp)
                .and_then(|mut f| f.write_all(text.as_bytes()))
                .is_ok()
            && fs::rename(&tmp, &path).is_ok();
        if written {
            gwc_obs::count("cache.bytes_written", text.len() as u64);
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }
}

/// Version of the on-disk matrix column-block envelope. Bump on any
/// change to the layout below.
pub const MATRIX_CACHE_FORMAT_VERSION: u32 = 1;

/// One workload's rows of the study matrix: the per-kernel
/// characteristic vectors in study order, plus their labels. Values are
/// persisted as raw `f64` bits, so a cache round-trip is bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixBlock {
    /// Kernel labels, in the workload's launch order.
    pub labels: Vec<String>,
    /// One characteristic vector per label, each `schema::len()` wide.
    pub rows: Vec<Vec<f64>>,
}

/// A content-addressed store of per-workload matrix column blocks,
/// living alongside [`ProfileCache`] entries in the same directory
/// (entries are prefixed `m`, so the two stores can never collide).
/// Keys are the same workload fingerprints the profile cache uses;
/// appending a workload to a cached study therefore reuses every
/// existing block and recomputes only reduce/cluster.
#[derive(Debug, Clone)]
pub struct MatrixCache {
    dir: PathBuf,
}

impl MatrixCache {
    /// A cache rooted at `dir` (usually the profile-cache directory).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Full cache key: fingerprint mixed with the schema version and
    /// this store's own format version.
    pub fn key(fingerprint: u64) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(fingerprint);
        h.write_u32(schema::VERSION);
        h.write_u32(MATRIX_CACHE_FORMAT_VERSION);
        h.finish()
    }

    fn entry_path(&self, fingerprint: u64) -> PathBuf {
        self.dir
            .join(format!("m{:016x}.json", Self::key(fingerprint)))
    }

    /// Loads the matrix block cached for `fingerprint`, or `None`.
    /// Same trust model as the profile cache: any anomaly discards the
    /// entry and the caller rebuilds the block from profiles.
    pub fn load(&self, fingerprint: u64) -> Option<MatrixBlock> {
        let text = fs::read_to_string(self.entry_path(fingerprint)).ok()?;
        let doc = json::parse(&text).ok()?;
        if doc.get("matrix_cache_version")?.as_u64()? != u64::from(MATRIX_CACHE_FORMAT_VERSION)
            || doc.get("schema_version")?.as_u64()? != u64::from(schema::VERSION)
            || doc.get("fingerprint")?.as_u64()? != fingerprint
        {
            return None;
        }
        let labels: Vec<String> = doc
            .get("labels")?
            .as_arr()?
            .iter()
            .map(|l| l.as_str().map(str::to_string))
            .collect::<Option<_>>()?;
        let rows: Vec<Vec<f64>> = doc
            .get("rows")?
            .as_arr()?
            .iter()
            .map(|row| {
                let bits = row.as_arr()?;
                if bits.len() != schema::len() {
                    return None;
                }
                bits.iter()
                    .map(|b| b.as_u64().map(f64::from_bits))
                    .collect()
            })
            .collect::<Option<_>>()?;
        if labels.len() != rows.len() {
            return None;
        }
        Some(MatrixBlock { labels, rows })
    }

    /// Stores a workload's matrix block, atomically; failures are
    /// silent, successes bump `cache.bytes_written`.
    pub fn store(&self, fingerprint: u64, block: &MatrixBlock) {
        let doc = Json::Obj(vec![
            (
                "matrix_cache_version".to_string(),
                Json::UInt(u64::from(MATRIX_CACHE_FORMAT_VERSION)),
            ),
            (
                "schema_version".to_string(),
                Json::UInt(u64::from(schema::VERSION)),
            ),
            ("fingerprint".to_string(), Json::UInt(fingerprint)),
            (
                "labels".to_string(),
                Json::Arr(block.labels.iter().map(|l| Json::Str(l.clone())).collect()),
            ),
            (
                "rows".to_string(),
                Json::Arr(
                    block
                        .rows
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(|v| Json::UInt(v.to_bits())).collect()))
                        .collect(),
                ),
            ),
        ]);
        let text = doc.render();
        let path = self.entry_path(fingerprint);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let written = fs::create_dir_all(&self.dir).is_ok()
            && fs::File::create(&tmp)
                .and_then(|mut f| f.write_all(text.as_bytes()))
                .is_ok()
            && fs::rename(&tmp, &path).is_ok();
        if written {
            gwc_obs::count("cache.bytes_written", text.len() as u64);
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::RawCounts;
    use gwc_simt::trace::LaunchStats;

    fn temp_cache(tag: &str) -> ProfileCache {
        let dir = std::env::temp_dir().join(format!("gwc-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ProfileCache::new(dir)
    }

    fn sample_profiles() -> Vec<KernelProfile> {
        (0..3)
            .map(|i| {
                let mut values = vec![0.0; schema::len()];
                values[0] = 1.0 / (i as f64 + 3.0);
                KernelProfile::new(
                    format!("k{i}"),
                    values,
                    RawCounts {
                        thread_instrs: 100 + i,
                        ..RawCounts::default()
                    },
                    LaunchStats::default(),
                )
            })
            .collect()
    }

    #[test]
    fn store_then_load_round_trips_bit_exactly() {
        let cache = temp_cache("roundtrip");
        let profiles = sample_profiles();
        assert!(cache.load(42).is_none(), "cold cache misses");
        cache.store(42, &profiles);
        let back = cache.load(42).expect("entry readable");
        assert_eq!(back.len(), profiles.len());
        for (a, b) in profiles.iter().zip(&back) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.raw(), b.raw());
            for (x, y) in a.values().iter().zip(b.values()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert!(cache.load(43).is_none(), "other fingerprints still miss");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_or_skewed_entries_load_as_none() {
        let cache = temp_cache("corrupt");
        cache.store(7, &sample_profiles());
        let path = cache
            .dir()
            .join(format!("{:016x}.json", ProfileCache::key(7)));

        // Truncation.
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(cache.load(7).is_none());

        // Valid JSON, wrong envelope version.
        fs::write(
            &path,
            full.replacen("\"cache_version\": 1", "\"cache_version\": 999", 1),
        )
        .unwrap();
        assert!(cache.load(7).is_none());

        // Garbage bytes.
        fs::write(&path, b"\x00\xffnot json").unwrap();
        assert!(cache.load(7).is_none());

        // A fresh store repairs the entry.
        cache.store(7, &sample_profiles());
        assert!(cache.load(7).is_some());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn key_mixes_fingerprint_and_versions() {
        assert_ne!(ProfileCache::key(1), ProfileCache::key(2));
        assert_eq!(ProfileCache::key(1), ProfileCache::key(1));
    }

    #[test]
    fn matrix_block_round_trips_bit_exactly() {
        let dir = std::env::temp_dir().join(format!("gwc-mcache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = MatrixCache::new(&dir);
        let block = MatrixBlock {
            labels: vec!["k0".to_string(), "k1".to_string()],
            rows: vec![
                (0..schema::len()).map(|i| 1.0 / (i as f64 + 3.0)).collect(),
                (0..schema::len()).map(|i| (i as f64).sqrt()).collect(),
            ],
        };
        assert!(cache.load(42).is_none(), "cold cache misses");
        cache.store(42, &block);
        let back = cache.load(42).expect("entry readable");
        assert_eq!(back.labels, block.labels);
        for (a, b) in block.rows.iter().zip(&back.rows) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert!(cache.load(43).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn matrix_entries_do_not_collide_with_profile_entries() {
        let dir = std::env::temp_dir().join(format!("gwc-mpcache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let profiles = ProfileCache::new(&dir);
        let matrices = MatrixCache::new(&dir);
        profiles.store(42, &sample_profiles());
        matrices.store(
            42,
            &MatrixBlock {
                labels: vec!["k0".to_string()],
                rows: vec![vec![0.5; schema::len()]],
            },
        );
        // Both entries coexist under one directory and load back.
        assert!(profiles.load(42).is_some());
        assert!(matrices.load(42).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_matrix_entries_load_as_none() {
        let dir = std::env::temp_dir().join(format!("gwc-mc-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = MatrixCache::new(&dir);
        let block = MatrixBlock {
            labels: vec!["k0".to_string()],
            rows: vec![vec![1.25; schema::len()]],
        };
        cache.store(7, &block);
        let path = cache
            .dir()
            .join(format!("m{:016x}.json", MatrixCache::key(7)));
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(cache.load(7).is_none());
        fs::write(
            &path,
            full.replacen(
                "\"matrix_cache_version\": 1",
                "\"matrix_cache_version\": 999",
                1,
            ),
        )
        .unwrap();
        assert!(cache.load(7).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
