//! Memory-coalescing and shared-memory bank observers.
//!
//! Global accesses are judged by how many 128-byte segments a warp access
//! touches (the unit a GPU memory controller fetches); shared accesses by
//! how many serialized bank cycles they need on a 32-bank scratchpad.
//! Both are properties of the address stream, not of any cache.

use gwc_simt::instr::Space;
use gwc_simt::trace::{MemEvent, TraceObserver};
use gwc_simt::WARP_SIZE;

/// Size of a global-memory segment (transaction) in bytes.
pub const SEGMENT_BYTES: u32 = 128;
/// Number of shared-memory banks.
pub const SHARED_BANKS: usize = 32;

/// Streams global accesses into coalescing metrics and shared accesses
/// into bank-conflict metrics.
#[derive(Debug, Clone, Default)]
pub struct CoalescingObserver {
    global_accesses: u64,
    global_segments: u64,
    unit_stride: u64,
    broadcast: u64,
    scatter: u64,
    shared_accesses: u64,
    shared_serialized: u64,
}

impl CoalescingObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Warp-level global accesses observed.
    pub fn global_accesses(&self) -> u64 {
        self.global_accesses
    }

    /// Total 128-byte segments those accesses needed.
    pub fn global_segments(&self) -> u64 {
        self.global_segments
    }

    /// Mean segments per global warp access (1.0 = perfectly coalesced).
    pub fn segments_per_access(&self) -> f64 {
        if self.global_accesses == 0 {
            0.0
        } else {
            self.global_segments as f64 / self.global_accesses as f64
        }
    }

    /// Fraction of global accesses whose consecutive active lanes all had
    /// stride exactly 4 bytes.
    pub fn unit_stride_frac(&self) -> f64 {
        self.frac(self.unit_stride)
    }

    /// Fraction of global accesses where all active lanes shared one
    /// address.
    pub fn broadcast_frac(&self) -> f64 {
        self.frac(self.broadcast)
    }

    /// Fraction of global accesses touching more than 8 segments.
    pub fn scatter_frac(&self) -> f64 {
        self.frac(self.scatter)
    }

    /// Warp-level shared accesses observed.
    pub fn shared_accesses(&self) -> u64 {
        self.shared_accesses
    }

    /// Total serialized bank cycles for shared accesses.
    pub fn shared_serialized(&self) -> u64 {
        self.shared_serialized
    }

    /// Mean serialization degree of shared accesses (1.0 = conflict-free).
    pub fn bank_conflict_factor(&self) -> f64 {
        if self.shared_accesses == 0 {
            // Kernels that never touch shared memory are conflict-free.
            1.0
        } else {
            self.shared_serialized as f64 / self.shared_accesses as f64
        }
    }

    fn frac(&self, n: u64) -> f64 {
        if self.global_accesses == 0 {
            0.0
        } else {
            n as f64 / self.global_accesses as f64
        }
    }

    /// Bytes of state held by this observer. Already bounded — seven
    /// plain counters, no per-address state — so the `Exact` and
    /// `Sketch` observer tiers share this one implementation; it exists
    /// so the `observer.bytes_peak` gauge accounts for every heavy
    /// observer uniformly.
    pub fn bytes_in_use(&self) -> u64 {
        std::mem::size_of::<Self>() as u64
    }
}

/// Sorts (in place) and counts the distinct values in a short scratch
/// slice. Warp accesses have at most 32 lanes, so this runs entirely on
/// the caller's stack buffer — the hot path allocates nothing.
fn sorted_distinct(scratch: &mut [u32]) -> usize {
    scratch.sort_unstable();
    let mut distinct = 0usize;
    let mut prev = u32::MAX;
    for &v in scratch.iter() {
        distinct += usize::from(v != prev || distinct == 0);
        prev = v;
    }
    distinct
}

/// Number of distinct 128B segments among `addrs`.
pub fn segment_count(addrs: &[u32]) -> usize {
    let mut segs = [0u32; WARP_SIZE];
    for (s, &a) in segs.iter_mut().zip(addrs) {
        *s = a / SEGMENT_BYTES;
    }
    sorted_distinct(&mut segs[..addrs.len().min(WARP_SIZE)])
}

/// Serialized cycles for a shared access on a 32-bank, 4-byte-word
/// scratchpad: the maximum, over banks, of distinct words requested in
/// that bank (same word by many lanes broadcasts in one cycle).
pub fn shared_serialization(addrs: &[u32]) -> usize {
    // Distinct words first (duplicates broadcast), then a per-bank
    // census — fixed-size arrays instead of per-bank heap vectors.
    let mut words = [0u32; WARP_SIZE];
    for (w, &a) in words.iter_mut().zip(addrs) {
        *w = a / 4;
    }
    let n = addrs.len().min(WARP_SIZE);
    words[..n].sort_unstable();
    let mut per_bank = [0u32; SHARED_BANKS];
    let mut prev = u32::MAX;
    let mut first = true;
    for &word in &words[..n] {
        if first || word != prev {
            per_bank[(word as usize) % SHARED_BANKS] += 1;
        }
        prev = word;
        first = false;
    }
    per_bank.iter().copied().max().unwrap_or(0).max(1) as usize
}

impl TraceObserver for CoalescingObserver {
    fn on_mem(&mut self, e: &MemEvent<'_>) {
        let mut buf = [0u32; WARP_SIZE];
        let mut n = 0usize;
        for a in e.active_addrs() {
            buf[n] = a;
            n += 1;
        }
        if n == 0 {
            return;
        }
        let addrs = &buf[..n];
        match e.space {
            Space::Global => {
                self.global_accesses += 1;
                let segs = segment_count(addrs);
                self.global_segments += segs as u64;
                if segs == 1 && addrs.iter().all(|&a| a == addrs[0]) {
                    self.broadcast += 1;
                }
                // A single active lane is trivially unit-stride (empty windows).
                if addrs.windows(2).all(|w| w[1].wrapping_sub(w[0]) == 4) {
                    self.unit_stride += 1;
                }
                if segs > 8 {
                    self.scatter += 1;
                }
            }
            Space::Shared => {
                self.shared_accesses += 1;
                self.shared_serialized += shared_serialization(addrs) as u64;
            }
            _ => {}
        }
    }
}

impl crate::merge::MergeableObserver for CoalescingObserver {
    fn merge(&mut self, later: Self) {
        self.global_accesses += later.global_accesses;
        self.global_segments += later.global_segments;
        self.unit_stride += later.unit_stride;
        self.broadcast += later.broadcast;
        self.scatter += later.scatter;
        self.shared_accesses += later.shared_accesses;
        self.shared_serialized += later.shared_serialized;
    }
}

/// Helper for tests in this crate and downstream: builds a [`MemEvent`]
/// address array from a slice.
pub fn addr_array(addrs: &[u32]) -> ([u32; WARP_SIZE], u32) {
    let mut arr = [0u32; WARP_SIZE];
    let mut mask = 0u32;
    for (i, &a) in addrs.iter().enumerate() {
        arr[i] = a;
        mask |= 1 << i;
    }
    (arr, mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gwc_simt::trace::AccessKind;

    fn mem_event<'a>(space: Space, arr: &'a [u32; WARP_SIZE], mask: u32) -> MemEvent<'a> {
        MemEvent {
            block: 0,
            warp: 0,
            pc: 0,
            space,
            kind: AccessKind::Load,
            bytes: 4,
            active: mask,
            addrs: arr,
        }
    }

    #[test]
    fn unit_stride_is_one_segment() {
        let addrs: Vec<u32> = (0..32u32).map(|i| i * 4).collect();
        assert_eq!(segment_count(&addrs), 1);
        let mut o = CoalescingObserver::new();
        let (arr, mask) = addr_array(&addrs);
        o.on_mem(&mem_event(Space::Global, &arr, mask));
        assert_eq!(o.segments_per_access(), 1.0);
        assert_eq!(o.unit_stride_frac(), 1.0);
        assert_eq!(o.broadcast_frac(), 0.0);
        assert_eq!(o.scatter_frac(), 0.0);
    }

    #[test]
    fn stride_128_is_full_scatter() {
        let addrs: Vec<u32> = (0..32u32).map(|i| i * 128).collect();
        assert_eq!(segment_count(&addrs), 32);
        let mut o = CoalescingObserver::new();
        let (arr, mask) = addr_array(&addrs);
        o.on_mem(&mem_event(Space::Global, &arr, mask));
        assert_eq!(o.segments_per_access(), 32.0);
        assert_eq!(o.scatter_frac(), 1.0);
        assert_eq!(o.unit_stride_frac(), 0.0);
    }

    #[test]
    fn broadcast_detected() {
        let addrs = vec![400u32; 32];
        let mut o = CoalescingObserver::new();
        let (arr, mask) = addr_array(&addrs);
        o.on_mem(&mem_event(Space::Global, &arr, mask));
        assert_eq!(o.broadcast_frac(), 1.0);
        assert_eq!(o.segments_per_access(), 1.0);
    }

    #[test]
    fn misaligned_unit_stride_spans_two_segments() {
        // Start at byte 64: lanes 0..15 in segment 0, 16..31 in segment 1.
        let addrs: Vec<u32> = (0..32u32).map(|i| 64 + i * 4).collect();
        assert_eq!(segment_count(&addrs), 2);
    }

    #[test]
    fn shared_conflict_free_and_conflicted() {
        // All lanes hit distinct banks: words 0..32.
        let free: Vec<u32> = (0..32u32).map(|i| i * 4).collect();
        assert_eq!(shared_serialization(&free), 1);
        // Stride of 2 words: 2-way conflict.
        let two_way: Vec<u32> = (0..32u32).map(|i| i * 8).collect();
        assert_eq!(shared_serialization(&two_way), 2);
        // All lanes same word: broadcast, 1 cycle.
        let bcast = vec![16u32; 32];
        assert_eq!(shared_serialization(&bcast), 1);
        // Stride of 32 words: all in bank 0, 32-way.
        let worst: Vec<u32> = (0..32u32).map(|i| i * 32 * 4).collect();
        assert_eq!(shared_serialization(&worst), 32);
    }

    #[test]
    fn bank_conflict_factor_defaults_to_one() {
        assert_eq!(CoalescingObserver::new().bank_conflict_factor(), 1.0);
    }

    #[test]
    fn shared_accesses_tracked_separately() {
        let mut o = CoalescingObserver::new();
        let addrs: Vec<u32> = (0..32u32).map(|i| i * 8).collect();
        let (arr, mask) = addr_array(&addrs);
        o.on_mem(&mem_event(Space::Shared, &arr, mask));
        assert_eq!(o.global_accesses(), 0);
        assert_eq!(o.shared_accesses(), 1);
        assert_eq!(o.bank_conflict_factor(), 2.0);
    }

    #[test]
    fn single_lane_counts_as_unit_stride() {
        let mut o = CoalescingObserver::new();
        let (arr, mask) = addr_array(&[512]);
        o.on_mem(&mem_event(Space::Global, &arr, mask));
        assert_eq!(o.unit_stride_frac(), 1.0);
    }
}
