//! Branch-divergence observer.

use gwc_simt::trace::{BranchEvent, InstrEvent, TraceObserver};
use gwc_simt::WARP_SIZE;

use crate::merge::MergeableObserver;

/// Streams branch outcomes and warp activity into divergence metrics.
///
/// Activity is accumulated in integer domain — active lanes bucketed by
/// live-lane count — so that shard merges are exact: the mean activity is
/// only converted to floating point at read time, in a fixed order.
#[derive(Debug, Clone)]
pub struct DivergenceObserver {
    warp_instrs: u64,
    diverged_warp_instrs: u64,
    /// `active_by_live[m]` sums active-lane counts over warp instructions
    /// issued with exactly `m` live lanes (index 0 unused).
    active_by_live: [u64; WARP_SIZE + 1],
    branches: u64,
    divergent_branches: u64,
}

impl Default for DivergenceObserver {
    fn default() -> Self {
        Self {
            warp_instrs: 0,
            diverged_warp_instrs: 0,
            active_by_live: [0; WARP_SIZE + 1],
            branches: 0,
            divergent_branches: 0,
        }
    }
}

impl DivergenceObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Conditional branches per warp instruction.
    pub fn branch_density(&self) -> f64 {
        if self.warp_instrs == 0 {
            0.0
        } else {
            self.branches as f64 / self.warp_instrs as f64
        }
    }

    /// Fraction of dynamic branches that split their warp.
    pub fn divergent_branch_frac(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.divergent_branches as f64 / self.branches as f64
        }
    }

    /// Mean `active / live` lane ratio over warp instructions
    /// (1.0 = never diverged).
    pub fn simd_activity(&self) -> f64 {
        if self.warp_instrs == 0 {
            return 0.0;
        }
        let activity_sum: f64 = (1..=WARP_SIZE)
            .map(|m| self.active_by_live[m] as f64 / m as f64)
            .sum();
        activity_sum / self.warp_instrs as f64
    }

    /// Fraction of warp instructions issued with a diverged mask.
    pub fn diverged_instr_frac(&self) -> f64 {
        if self.warp_instrs == 0 {
            0.0
        } else {
            self.diverged_warp_instrs as f64 / self.warp_instrs as f64
        }
    }

    /// Total dynamic conditional branches observed.
    pub fn branches(&self) -> u64 {
        self.branches
    }
}

impl TraceObserver for DivergenceObserver {
    fn on_instr(&mut self, e: &InstrEvent<'_>) {
        self.warp_instrs += 1;
        let live = e.live.count_ones().max(1);
        self.active_by_live[live as usize] += e.active_lanes() as u64;
        if e.active != e.live {
            self.diverged_warp_instrs += 1;
        }
    }

    fn on_branch(&mut self, e: &BranchEvent) {
        self.branches += 1;
        if e.divergent() {
            self.divergent_branches += 1;
        }
    }
}

impl MergeableObserver for DivergenceObserver {
    fn merge(&mut self, later: Self) {
        self.warp_instrs += later.warp_instrs;
        self.diverged_warp_instrs += later.diverged_warp_instrs;
        for (a, b) in self.active_by_live.iter_mut().zip(later.active_by_live) {
            *a += b;
        }
        self.branches += later.branches;
        self.divergent_branches += later.divergent_branches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gwc_simt::instr::InstrClass;

    fn instr(active: u32, live: u32) -> InstrEvent<'static> {
        InstrEvent {
            block: 0,
            warp: 0,
            pc: 0,
            class: InstrClass::IntAlu,
            active,
            live,
            dst: None,
            srcs: &[],
        }
    }

    fn branch(active: u32, taken: u32) -> BranchEvent {
        BranchEvent {
            block: 0,
            warp: 0,
            pc: 0,
            active,
            taken,
        }
    }

    #[test]
    fn fully_converged_kernel() {
        let mut d = DivergenceObserver::new();
        for _ in 0..10 {
            d.on_instr(&instr(u32::MAX, u32::MAX));
        }
        d.on_branch(&branch(u32::MAX, u32::MAX));
        assert_eq!(d.simd_activity(), 1.0);
        assert_eq!(d.divergent_branch_frac(), 0.0);
        assert_eq!(d.diverged_instr_frac(), 0.0);
        assert!((d.branch_density() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn half_diverged_activity() {
        let mut d = DivergenceObserver::new();
        d.on_instr(&instr(u32::MAX, u32::MAX));
        d.on_instr(&instr(0xFFFF, u32::MAX));
        assert!((d.simd_activity() - 0.75).abs() < 1e-12);
        assert!((d.diverged_instr_frac() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_warp_is_not_divergence() {
        // A 16-thread block: live = 0xFFFF; all alive lanes active.
        let mut d = DivergenceObserver::new();
        d.on_instr(&instr(0xFFFF, 0xFFFF));
        assert_eq!(d.simd_activity(), 1.0);
        assert_eq!(d.diverged_instr_frac(), 0.0);
    }

    #[test]
    fn divergent_branch_counted() {
        let mut d = DivergenceObserver::new();
        d.on_branch(&branch(0b1111, 0b0011));
        d.on_branch(&branch(0b1111, 0b1111));
        assert!((d.divergent_branch_frac() - 0.5).abs() < 1e-12);
        assert_eq!(d.branches(), 2);
    }

    #[test]
    fn empty_observer_is_zero() {
        let d = DivergenceObserver::new();
        assert_eq!(d.simd_activity(), 0.0);
        assert_eq!(d.branch_density(), 0.0);
    }
}
