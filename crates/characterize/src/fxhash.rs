//! A seeded, deterministic FxHash-style hasher for per-access maps.
//!
//! The std `HashMap` default (`RandomState`/SipHash) is built to resist
//! hash-flooding from untrusted input, which the characterization
//! observers never see: their keys are cache-line indices and
//! `(block, warp)` ids produced by the simulator itself. SipHash's
//! per-byte mixing is pure overhead on those hot per-access paths, so the
//! observers use the multiply-xor-rotate scheme popularized by rustc's
//! FxHash instead — a couple of arithmetic ops per 8-byte word.
//!
//! Two properties matter here:
//!
//! * **Deterministic.** The seed is a compile-time constant (no
//!   `RandomState`), so map layout is identical across runs and
//!   processes. No observer *result* may depend on iteration order
//!   anyway — every fold sorts keys first — but determinism of layout
//!   keeps allocation and probe behavior reproducible too.
//! * **Std-only.** This is a ~30-line hasher, not a dependency.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit FxHash multiplier (derived from the golden ratio, as used
/// by Firefox and rustc).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fixed odd seed so an empty hasher does not map small keys to small
/// hashes (`hash(0)` would be 0 with a zero initial state).
const SEED: u64 = 0x9e_37_79_b9_7f_4a_7c_15;

/// FxHash-style streaming hasher. Not flood-resistant by design; use only
/// for trusted, machine-generated keys.
#[derive(Debug, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl Default for FxHasher {
    fn default() -> Self {
        Self { hash: SEED }
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Deterministic builder for [`FxHasher`] (every hasher starts from the
/// same fixed seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic FxHash-style hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        // Same value, two independent builders: identical hashes (no
        // RandomState in the loop).
        for key in [0u32, 1, 7, 0xdead_beef, u32::MAX] {
            assert_eq!(hash_of(&key), hash_of(&key));
        }
        assert_eq!(hash_of(&(3u32, 5u32)), hash_of(&(3u32, 5u32)));
    }

    #[test]
    fn nearby_keys_spread() {
        // Sequential line indices (the LocalityObserver key pattern) must
        // not collapse into the same buckets of a power-of-two table.
        let hashes: Vec<u64> = (0u32..64).map(|i| hash_of(&i)).collect();
        let mut low_bits: Vec<u64> = hashes.iter().map(|h| h >> 57).collect();
        low_bits.sort_unstable();
        low_bits.dedup();
        assert!(
            low_bits.len() > 16,
            "top bits of sequential keys collide too much: {} distinct",
            low_bits.len()
        );
        assert_ne!(hash_of(&0u32), 0, "seeded state must not hash 0 to 0");
    }

    #[test]
    fn byte_stream_matches_padding_rules() {
        // chunks + zero-padded remainder: same bytes, same hash.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
        // A different tail changes the hash.
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn map_works_as_drop_in() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&40), Some(&80));
    }
}
