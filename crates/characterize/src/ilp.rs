//! Per-thread instruction-level parallelism from register dataflow.
//!
//! For every thread we assign each dynamic instruction a *dataflow level*:
//! `1 + max(level of the instructions that produced its register
//! operands)`. The maximum level is the register-dataflow critical path,
//! and `instructions / critical path` is the thread's inherent ILP — the
//! parallelism an idealized in-order-issue machine with unlimited
//! functional units could extract. Memory-carried dependences are ignored,
//! matching MICA-style characterization.

use gwc_simt::trace::{InstrEvent, TraceObserver};
use gwc_simt::WARP_SIZE;

use crate::fxhash::FxHashMap;

#[derive(Debug, Clone)]
struct WarpIlp {
    /// Dataflow level of the last writer: `levels[reg * 32 + lane]`.
    levels: Vec<u32>,
    /// Dynamic index of the last writer: `write_idx[reg * 32 + lane]`.
    write_idx: Vec<u64>,
    /// Per-lane instruction counts.
    count: [u64; WARP_SIZE],
    /// Per-lane critical-path length.
    crit: [u32; WARP_SIZE],
}

impl WarpIlp {
    fn new(regs: usize) -> Self {
        Self {
            levels: vec![0; regs * WARP_SIZE],
            write_idx: vec![0; regs * WARP_SIZE],
            count: [0; WARP_SIZE],
            crit: [0; WARP_SIZE],
        }
    }
}

/// Streams register dataflow into per-thread ILP statistics.
///
/// Observations accumulate across launches: at each launch boundary the
/// finished warps of the previous launch are folded into running sums, so
/// memory stays bounded by one launch's warp count.
#[derive(Debug, Default)]
pub struct IlpObserver {
    regs: usize,
    warps: FxHashMap<(u32, u32), WarpIlp>,
    folded_weighted: f64,
    folded_instrs: u64,
    /// Exact integer sum of producer→consumer distances (distances are
    /// integral, so shard merges stay bit-identical to serial).
    dep_distance_sum: u128,
    dep_count: u64,
}

impl IlpObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        Self::default()
    }

    fn fold_of(warps: &FxHashMap<(u32, u32), WarpIlp>) -> (f64, u64) {
        let mut instr_sum = 0u64;
        let mut weighted = 0.0;
        // Sorted iteration: floating-point accumulation order must not
        // depend on HashMap layout, or studies stop being reproducible.
        let mut keys: Vec<&(u32, u32)> = warps.keys().collect();
        keys.sort_unstable();
        for key in keys {
            let w = &warps[key];
            for lane in 0..WARP_SIZE {
                if w.count[lane] > 0 {
                    let ilp = w.count[lane] as f64 / w.crit[lane].max(1) as f64;
                    weighted += ilp * w.count[lane] as f64;
                    instr_sum += w.count[lane];
                }
            }
        }
        (weighted, instr_sum)
    }

    /// Mean per-thread ILP (`instructions / critical path`), averaged over
    /// threads weighted by their instruction counts. 1.0 for fully serial
    /// code; higher means more independent instructions per thread.
    pub fn ilp(&self) -> f64 {
        let (weighted, instrs) = Self::fold_of(&self.warps);
        let total_w = self.folded_weighted + weighted;
        let total_i = self.folded_instrs + instrs;
        if total_i == 0 {
            0.0
        } else {
            total_w / total_i as f64
        }
    }

    /// Mean producer→consumer distance in dynamic instructions.
    pub fn dep_distance(&self) -> f64 {
        if self.dep_count == 0 {
            0.0
        } else {
            self.dep_distance_sum as f64 / self.dep_count as f64
        }
    }
}

impl crate::merge::MergeableObserver for IlpObserver {
    fn merge(&mut self, later: Self) {
        // Shards of one launch hold warps with disjoint (block, warp)
        // keys and have never folded (only the master sees `on_launch`);
        // the union therefore reproduces exactly the warp map a serial
        // observer would hold, and the next fold iterates it in sorted
        // key order either way.
        debug_assert_eq!(
            later.folded_instrs, 0,
            "shard observers must not span launch boundaries"
        );
        for (key, warp) in later.warps {
            let clash = self.warps.insert(key, warp);
            debug_assert!(clash.is_none(), "shard block ranges overlap: {key:?}");
        }
        self.folded_weighted += later.folded_weighted;
        self.folded_instrs += later.folded_instrs;
        self.dep_distance_sum += later.dep_distance_sum;
        self.dep_count += later.dep_count;
        if self.regs == 0 {
            self.regs = later.regs;
        }
    }
}

impl TraceObserver for IlpObserver {
    fn on_launch(
        &mut self,
        kernel: &gwc_simt::kernel::Kernel,
        _config: &gwc_simt::launch::LaunchConfig,
    ) {
        let (weighted, instrs) = Self::fold_of(&self.warps);
        self.folded_weighted += weighted;
        self.folded_instrs += instrs;
        self.regs = kernel.reg_count();
        self.warps.clear();
    }

    fn on_instr(&mut self, e: &InstrEvent<'_>) {
        let regs = self.regs;
        let w = self
            .warps
            .entry((e.block, e.warp))
            .or_insert_with(|| WarpIlp::new(regs));
        for lane in 0..WARP_SIZE {
            if e.active & (1 << lane) == 0 {
                continue;
            }
            w.count[lane] += 1;
            let idx = w.count[lane];
            let mut level = 0u32;
            for src in e.srcs {
                let slot = src.0 as usize * WARP_SIZE + lane;
                let src_level = w.levels[slot];
                if src_level > 0 {
                    level = level.max(src_level);
                    let dist = idx.saturating_sub(w.write_idx[slot]);
                    self.dep_distance_sum += u128::from(dist);
                    self.dep_count += 1;
                }
            }
            let level = level + 1;
            w.crit[lane] = w.crit[lane].max(level);
            if let Some(dst) = e.dst {
                let slot = dst.0 as usize * WARP_SIZE + lane;
                w.levels[slot] = level;
                w.write_idx[slot] = idx;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gwc_simt::instr::{InstrClass, Reg};

    fn ev(active: u32, dst: Option<Reg>, srcs: &'static [Reg]) -> InstrEvent<'static> {
        InstrEvent {
            block: 0,
            warp: 0,
            pc: 0,
            class: InstrClass::IntAlu,
            active,
            live: u32::MAX,
            dst,
            srcs,
        }
    }

    fn with_regs(regs: usize) -> IlpObserver {
        let mut o = IlpObserver::new();
        o.regs = regs;
        o
    }

    #[test]
    fn serial_chain_has_ilp_one() {
        // r0 = ...; r0 = f(r0); r0 = f(r0): fully serial.
        let mut o = with_regs(1);
        o.on_instr(&ev(1, Some(Reg(0)), &[]));
        static SRC: [Reg; 1] = [Reg(0)];
        o.on_instr(&ev(1, Some(Reg(0)), &SRC));
        o.on_instr(&ev(1, Some(Reg(0)), &SRC));
        assert!((o.ilp() - 1.0).abs() < 1e-12, "{}", o.ilp());
    }

    #[test]
    fn independent_instrs_have_high_ilp() {
        // Four writes to distinct registers with no sources.
        let mut o = with_regs(4);
        for r in 0..4 {
            o.on_instr(&ev(1, Some(Reg(r)), &[]));
        }
        assert!((o.ilp() - 4.0).abs() < 1e-12, "{}", o.ilp());
    }

    #[test]
    fn dep_distance_tracks_gap() {
        let mut o = with_regs(2);
        o.on_instr(&ev(1, Some(Reg(0)), &[])); // idx 1 writes r0
        o.on_instr(&ev(1, Some(Reg(1)), &[])); // idx 2 independent
        static SRC: [Reg; 1] = [Reg(0)];
        o.on_instr(&ev(1, None, &SRC)); // idx 3 reads r0 (distance 2)
        assert!((o.dep_distance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lanes_are_independent() {
        // Lane 0 serial on r0; lane 1 never reads its own r0.
        let mut o = with_regs(1);
        static SRC: [Reg; 1] = [Reg(0)];
        o.on_instr(&ev(0b11, Some(Reg(0)), &[]));
        o.on_instr(&ev(0b01, Some(Reg(0)), &SRC)); // lane 0 dependent
        o.on_instr(&ev(0b10, Some(Reg(0)), &[])); // lane 1 independent
                                                  // lane0: 2 instrs, crit 2 -> 1.0; lane1: 2 instrs, crit 1 -> 2.0.
        let expect = (1.0 * 2.0 + 2.0 * 2.0) / 4.0;
        assert!((o.ilp() - expect).abs() < 1e-12, "{}", o.ilp());
    }

    #[test]
    fn empty_observer_reports_zero() {
        let o = IlpObserver::new();
        assert_eq!(o.ilp(), 0.0);
        assert_eq!(o.dep_distance(), 0.0);
    }
}
