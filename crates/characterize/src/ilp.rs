//! Per-thread instruction-level parallelism from register dataflow.
//!
//! For every thread we assign each dynamic instruction a *dataflow level*:
//! `1 + max(level of the instructions that produced its register
//! operands)`. The maximum level is the register-dataflow critical path,
//! and `instructions / critical path` is the thread's inherent ILP — the
//! parallelism an idealized in-order-issue machine with unlimited
//! functional units could extract. Memory-carried dependences are ignored,
//! matching MICA-style characterization.

use gwc_simt::trace::{InstrEvent, TraceObserver};
use gwc_simt::WARP_SIZE;

use crate::fxhash::FxHashMap;

#[derive(Debug, Clone)]
struct WarpIlp {
    /// While `true`, every event so far carried the same active mask
    /// (`mask`), so the active lanes have identical dataflow state —
    /// and the inactive ones none at all. One scalar copy stands in
    /// for all active lanes: `levels`/`write_idx` are indexed by
    /// register alone and `count[0]`/`crit[0]` hold the shared
    /// per-lane values. The first event with a *different* mask
    /// expands to the per-lane layout below; the flag is one-way.
    uniform: bool,
    /// The stable active mask of a uniform warp (full warps, tail
    /// warps and coherent sub-warps alike).
    mask: u32,
    /// Dataflow level of the last writer: `levels[reg * 32 + lane]`
    /// (uniform: `levels[reg]`).
    levels: Vec<u32>,
    /// Dynamic index of the last writer: `write_idx[reg * 32 + lane]`
    /// (uniform: `write_idx[reg]`). `u32` on purpose: a lane's dynamic
    /// index is bounded by the per-launch warp instruction budget
    /// (400M), and the narrower arrays halve this hot path's cache
    /// traffic.
    write_idx: Vec<u32>,
    /// Per-lane instruction counts.
    count: [u32; WARP_SIZE],
    /// Per-lane critical-path length.
    crit: [u32; WARP_SIZE],
}

impl WarpIlp {
    /// `mask` is the active mask of the warp's first event; the warp
    /// stays in the scalar representation while every later event
    /// repeats it.
    fn new(regs: usize, mask: u32) -> Self {
        Self {
            uniform: true,
            mask,
            levels: vec![0; regs],
            write_idx: vec![0; regs],
            count: [0; WARP_SIZE],
            crit: [0; WARP_SIZE],
        }
    }

    /// Broadcasts the shared scalar state to the per-lane layout.
    /// Active lanes of a uniform warp are bit-for-bit identical and
    /// inactive lanes never executed anything, so expanding at any
    /// point yields exactly the state a per-lane observer would hold.
    fn expand(&mut self) {
        let regs = self.levels.len();
        let mut levels = vec![0u32; regs * WARP_SIZE];
        let mut write_idx = vec![0u32; regs * WARP_SIZE];
        let mut count = [0u32; WARP_SIZE];
        let mut crit = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if (self.mask >> lane) & 1 == 1 {
                for reg in 0..regs {
                    levels[reg * WARP_SIZE + lane] = self.levels[reg];
                    write_idx[reg * WARP_SIZE + lane] = self.write_idx[reg];
                }
                count[lane] = self.count[0];
                crit[lane] = self.crit[0];
            }
        }
        self.levels = levels;
        self.write_idx = write_idx;
        self.count = count;
        self.crit = crit;
        self.uniform = false;
    }
}

/// Sentinel for "no warp seen yet" in the one-entry lookup cache.
const NO_WARP: (u32, u32) = (u32::MAX, u32::MAX);

/// Streams register dataflow into per-thread ILP statistics.
///
/// Observations accumulate across launches: at each launch boundary the
/// finished warps of the previous launch are folded into running sums, so
/// memory stays bounded by one launch's warp count.
///
/// Warp state lives in a dense `store` with a `(block, warp)` → slot
/// index on the side, plus a one-entry cache of the last slot: the
/// executor runs each warp for long uninterrupted stretches (until a
/// barrier or exit), so nearly every event hits the cache and skips the
/// hash lookup entirely.
#[derive(Debug)]
pub struct IlpObserver {
    regs: usize,
    index: FxHashMap<(u32, u32), u32>,
    store: Vec<((u32, u32), WarpIlp)>,
    last_key: (u32, u32),
    last_slot: u32,
    folded_weighted: f64,
    folded_instrs: u64,
    /// Exact integer sum of producer→consumer distances (distances are
    /// integral, so shard merges stay bit-identical to serial).
    dep_distance_sum: u128,
    dep_count: u64,
}

impl Default for IlpObserver {
    fn default() -> Self {
        Self {
            regs: 0,
            index: FxHashMap::default(),
            store: Vec::new(),
            last_key: NO_WARP,
            last_slot: 0,
            folded_weighted: 0.0,
            folded_instrs: 0,
            dep_distance_sum: 0,
            dep_count: 0,
        }
    }
}

impl IlpObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        Self::default()
    }

    fn fold_of(store: &[((u32, u32), WarpIlp)]) -> (f64, u64) {
        let mut instr_sum = 0u64;
        let mut weighted = 0.0;
        // Sorted iteration: floating-point accumulation order must not
        // depend on insertion or map layout, or studies stop being
        // reproducible.
        let mut entries: Vec<&((u32, u32), WarpIlp)> = store.iter().collect();
        entries.sort_unstable_by_key(|(key, _)| *key);
        for (_, w) in entries {
            for lane in 0..WARP_SIZE {
                // A uniform warp stores one shared copy in lane 0: every
                // lane in its mask contributes the identical term — in
                // the same order the expanded layout would — and lanes
                // outside it contribute nothing.
                let c = if w.uniform {
                    if (w.mask >> lane) & 1 == 1 {
                        w.count[0]
                    } else {
                        0
                    }
                } else {
                    w.count[lane]
                };
                if c > 0 {
                    let crit = if w.uniform { w.crit[0] } else { w.crit[lane] };
                    let ilp = c as f64 / crit.max(1) as f64;
                    weighted += ilp * c as f64;
                    instr_sum += u64::from(c);
                }
            }
        }
        (weighted, instr_sum)
    }

    /// Mean per-thread ILP (`instructions / critical path`), averaged over
    /// threads weighted by their instruction counts. 1.0 for fully serial
    /// code; higher means more independent instructions per thread.
    pub fn ilp(&self) -> f64 {
        let (weighted, instrs) = Self::fold_of(&self.store);
        let total_w = self.folded_weighted + weighted;
        let total_i = self.folded_instrs + instrs;
        if total_i == 0 {
            0.0
        } else {
            total_w / total_i as f64
        }
    }

    /// Mean producer→consumer distance in dynamic instructions.
    pub fn dep_distance(&self) -> f64 {
        if self.dep_count == 0 {
            0.0
        } else {
            self.dep_distance_sum as f64 / self.dep_count as f64
        }
    }
}

impl crate::merge::MergeableObserver for IlpObserver {
    fn merge(&mut self, later: Self) {
        // Shards of one launch hold warps with disjoint (block, warp)
        // keys and have never folded (only the master sees `on_launch`);
        // the union therefore reproduces exactly the warp map a serial
        // observer would hold, and the next fold iterates it in sorted
        // key order either way.
        debug_assert_eq!(
            later.folded_instrs, 0,
            "shard observers must not span launch boundaries"
        );
        for (key, warp) in later.store {
            let clash = self.index.insert(key, self.store.len() as u32);
            debug_assert!(clash.is_none(), "shard block ranges overlap: {key:?}");
            self.store.push((key, warp));
        }
        self.folded_weighted += later.folded_weighted;
        self.folded_instrs += later.folded_instrs;
        self.dep_distance_sum += later.dep_distance_sum;
        self.dep_count += later.dep_count;
        if self.regs == 0 {
            self.regs = later.regs;
        }
    }
}

impl TraceObserver for IlpObserver {
    fn on_launch(
        &mut self,
        kernel: &gwc_simt::kernel::Kernel,
        _config: &gwc_simt::launch::LaunchConfig,
    ) {
        let (weighted, instrs) = Self::fold_of(&self.store);
        self.folded_weighted += weighted;
        self.folded_instrs += instrs;
        self.regs = kernel.reg_count();
        self.index.clear();
        self.store.clear();
        self.last_key = NO_WARP;
    }

    fn on_instr(&mut self, e: &InstrEvent<'_>) {
        let active = e.active;
        if active == 0 {
            // Fully predicated-off events change no lane's state.
            return;
        }
        let key = (e.block, e.warp);
        let slot = if key == self.last_key {
            self.last_slot
        } else {
            let slot = match self.index.get(&key) {
                Some(&slot) => slot,
                None => {
                    let slot = self.store.len() as u32;
                    self.store.push((key, WarpIlp::new(self.regs, active)));
                    self.index.insert(key, slot);
                    slot
                }
            };
            self.last_key = key;
            self.last_slot = slot;
            slot
        };
        let w = &mut self.store[slot as usize].1;

        if w.uniform {
            if active == w.mask {
                // Scalar fast path: while a warp repeats one active
                // mask — full warps, tail warps, coherent sub-warps —
                // its active lanes share one dataflow state, so one
                // lane's arithmetic with integer sums scaled by the
                // lane count reproduces the per-lane results exactly.
                // Coherent kernels spend nearly all their events here.
                let lanes = u64::from(active.count_ones());
                let mut level = 0u32;
                for src in e.srcs {
                    let src_level = w.levels[src.0 as usize];
                    level = level.max(src_level);
                    if src_level != 0 {
                        self.dep_count += lanes;
                        self.dep_distance_sum += u128::from(
                            lanes * u64::from(w.count[0] + 1 - w.write_idx[src.0 as usize]),
                        );
                    }
                }
                let lv = level + 1;
                w.count[0] += 1;
                w.crit[0] = w.crit[0].max(lv);
                if let Some(dst) = e.dst {
                    w.levels[dst.0 as usize] = lv;
                    w.write_idx[dst.0 as usize] = w.count[0];
                }
                return;
            }
            w.expand();
        }

        // Hot path, restructured for autovectorization: sources outer,
        // lanes inner, everything in branch-free u32 select/mask form
        // with one widening horizontal sum per event. Per-lane `dist`
        // accumulation across sources cannot overflow u32: each term is
        // at most `count + 1` (bounded by the 400M warp instruction
        // budget) and instructions carry at most a handful of sources.
        // The reordering only permutes integer additions into
        // `dep_distance_sum`/`dep_count`, so results stay bit-identical
        // to the per-lane formulation.
        let mut level = [0u32; WARP_SIZE];
        let mut dep = [0u32; WARP_SIZE];
        let mut dist = [0u32; WARP_SIZE];
        if active == u32::MAX {
            // Full mask over diverged lane *state*: no per-lane selects,
            // every loop is straight-line vector code.
            for src in e.srcs {
                let base = src.0 as usize * WARP_SIZE;
                let levels: &[u32; WARP_SIZE] = w.levels[base..base + WARP_SIZE]
                    .try_into()
                    .expect("32 lanes");
                let write_idx: &[u32; WARP_SIZE] = w.write_idx[base..base + WARP_SIZE]
                    .try_into()
                    .expect("32 lanes");
                for lane in 0..WARP_SIZE {
                    let src_level = levels[lane];
                    level[lane] = level[lane].max(src_level);
                    // `write_idx <= count` always holds (it is set to
                    // `count` at write time), so the distance term never
                    // underflows; masking with `-d` (all-ones or zero)
                    // replaces a multiply the baseline x86-64 target
                    // would scalarize.
                    let d = u32::from(src_level != 0);
                    dep[lane] += d;
                    dist[lane] += d.wrapping_neg() & (w.count[lane] + 1 - write_idx[lane]);
                }
            }
            if let Some(dst) = e.dst {
                let base = dst.0 as usize * WARP_SIZE;
                let levels: &mut [u32; WARP_SIZE] = (&mut w.levels[base..base + WARP_SIZE])
                    .try_into()
                    .expect("32 lanes");
                let write_idx: &mut [u32; WARP_SIZE] = (&mut w.write_idx[base..base + WARP_SIZE])
                    .try_into()
                    .expect("32 lanes");
                for lane in 0..WARP_SIZE {
                    let lv = level[lane] + 1;
                    w.count[lane] += 1;
                    w.crit[lane] = w.crit[lane].max(lv);
                    levels[lane] = lv;
                    write_idx[lane] = w.count[lane];
                }
            } else {
                for (lane, &lv0) in level.iter().enumerate() {
                    let lv = lv0 + 1;
                    w.count[lane] += 1;
                    w.crit[lane] = w.crit[lane].max(lv);
                }
            }
        } else {
            let on: [u32; WARP_SIZE] = std::array::from_fn(|lane| (active >> lane) & 1);
            for src in e.srcs {
                let base = src.0 as usize * WARP_SIZE;
                let levels: &[u32; WARP_SIZE] = w.levels[base..base + WARP_SIZE]
                    .try_into()
                    .expect("32 lanes");
                let write_idx: &[u32; WARP_SIZE] = w.write_idx[base..base + WARP_SIZE]
                    .try_into()
                    .expect("32 lanes");
                for lane in 0..WARP_SIZE {
                    let src_level = levels[lane];
                    level[lane] = level[lane].max(src_level);
                    // A dependence is counted for active lanes whose
                    // source has a recorded writer.
                    let d = on[lane] & u32::from(src_level != 0);
                    dep[lane] += d;
                    dist[lane] += d.wrapping_neg() & (w.count[lane] + 1 - write_idx[lane]);
                }
            }
            // Commit: bump per-lane counts, stretch critical paths,
            // record the writer level/index — select form, active lanes
            // only.
            if let Some(dst) = e.dst {
                let base = dst.0 as usize * WARP_SIZE;
                let levels: &mut [u32; WARP_SIZE] = (&mut w.levels[base..base + WARP_SIZE])
                    .try_into()
                    .expect("32 lanes");
                let write_idx: &mut [u32; WARP_SIZE] = (&mut w.write_idx[base..base + WARP_SIZE])
                    .try_into()
                    .expect("32 lanes");
                for lane in 0..WARP_SIZE {
                    let hit = on[lane] != 0;
                    let lv = level[lane] + 1;
                    w.count[lane] += on[lane];
                    w.crit[lane] = if hit {
                        w.crit[lane].max(lv)
                    } else {
                        w.crit[lane]
                    };
                    levels[lane] = if hit { lv } else { levels[lane] };
                    write_idx[lane] = if hit { w.count[lane] } else { write_idx[lane] };
                }
            } else {
                for lane in 0..WARP_SIZE {
                    let hit = on[lane] != 0;
                    let lv = level[lane] + 1;
                    w.count[lane] += on[lane];
                    w.crit[lane] = if hit {
                        w.crit[lane].max(lv)
                    } else {
                        w.crit[lane]
                    };
                }
            }
        }
        // Horizontal sums widen to u64 once per event (32 lanes × u32
        // cannot overflow it); only the running total is u128.
        self.dep_count += dep.iter().copied().map(u64::from).sum::<u64>();
        self.dep_distance_sum += u128::from(dist.iter().copied().map(u64::from).sum::<u64>());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gwc_simt::instr::{InstrClass, Reg};

    fn ev(active: u32, dst: Option<Reg>, srcs: &'static [Reg]) -> InstrEvent<'static> {
        InstrEvent {
            block: 0,
            warp: 0,
            pc: 0,
            class: InstrClass::IntAlu,
            active,
            live: u32::MAX,
            dst,
            srcs,
        }
    }

    fn with_regs(regs: usize) -> IlpObserver {
        let mut o = IlpObserver::new();
        o.regs = regs;
        o
    }

    #[test]
    fn serial_chain_has_ilp_one() {
        // r0 = ...; r0 = f(r0); r0 = f(r0): fully serial.
        let mut o = with_regs(1);
        o.on_instr(&ev(1, Some(Reg(0)), &[]));
        static SRC: [Reg; 1] = [Reg(0)];
        o.on_instr(&ev(1, Some(Reg(0)), &SRC));
        o.on_instr(&ev(1, Some(Reg(0)), &SRC));
        assert!((o.ilp() - 1.0).abs() < 1e-12, "{}", o.ilp());
    }

    #[test]
    fn independent_instrs_have_high_ilp() {
        // Four writes to distinct registers with no sources.
        let mut o = with_regs(4);
        for r in 0..4 {
            o.on_instr(&ev(1, Some(Reg(r)), &[]));
        }
        assert!((o.ilp() - 4.0).abs() < 1e-12, "{}", o.ilp());
    }

    #[test]
    fn dep_distance_tracks_gap() {
        let mut o = with_regs(2);
        o.on_instr(&ev(1, Some(Reg(0)), &[])); // idx 1 writes r0
        o.on_instr(&ev(1, Some(Reg(1)), &[])); // idx 2 independent
        static SRC: [Reg; 1] = [Reg(0)];
        o.on_instr(&ev(1, None, &SRC)); // idx 3 reads r0 (distance 2)
        assert!((o.dep_distance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lanes_are_independent() {
        // Lane 0 serial on r0; lane 1 never reads its own r0.
        let mut o = with_regs(1);
        static SRC: [Reg; 1] = [Reg(0)];
        o.on_instr(&ev(0b11, Some(Reg(0)), &[]));
        o.on_instr(&ev(0b01, Some(Reg(0)), &SRC)); // lane 0 dependent
        o.on_instr(&ev(0b10, Some(Reg(0)), &[])); // lane 1 independent
                                                  // lane0: 2 instrs, crit 2 -> 1.0; lane1: 2 instrs, crit 1 -> 2.0.
        let expect = (1.0 * 2.0 + 2.0 * 2.0) / 4.0;
        assert!((o.ilp() - expect).abs() < 1e-12, "{}", o.ilp());
    }

    #[test]
    fn empty_observer_reports_zero() {
        let o = IlpObserver::new();
        assert_eq!(o.ilp(), 0.0);
        assert_eq!(o.dep_distance(), 0.0);
    }
}
