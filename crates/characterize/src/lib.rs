//! Microarchitecture-independent GPGPU kernel characteristics.
//!
//! This crate implements the measurement half of the IISWC 2010
//! methodology: a set of characteristics that describe a kernel's dynamic
//! behaviour *independently of any GPU microarchitecture* — instruction
//! mix, per-thread ILP, branch-divergence behaviour, memory-coalescing
//! behaviour, shared-memory bank behaviour, temporal locality, data
//! sharing, synchronization intensity, and kernel-launch shape.
//!
//! Everything is computed by streaming [`gwc_simt::trace`] events through
//! [`Profiler`]; no full trace is ever stored. The canonical 33-dimension
//! vector layout lives in [`schema`], and [`characterize_launch`] is the
//! one-call entry point.
//!
//! # Example
//!
//! ```
//! use gwc_characterize::characterize_launch;
//! use gwc_simt::builder::KernelBuilder;
//! use gwc_simt::exec::Device;
//! use gwc_simt::launch::LaunchConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = KernelBuilder::new("fill");
//! let out = b.param_u32("out");
//! let i = b.global_tid_x();
//! let f = b.to_f32(i);
//! let oi = b.index(out, i, 4);
//! b.st_global_f32(oi, f);
//! let kernel = b.build()?;
//!
//! let mut dev = Device::new();
//! let buf = dev.alloc_zeroed_f32(1024);
//! let profile = characterize_launch(
//!     &mut dev,
//!     &kernel,
//!     &LaunchConfig::linear(1024, 256),
//!     &[buf.arg()],
//! )?;
//! // A fully coalesced kernel: one 128-byte segment per warp store.
//! assert!(profile.get("coal_segments_per_access") < 1.01);
//! // No branches at all.
//! assert_eq!(profile.get("div_branch_frac"), 0.0);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod coalescing;
pub mod divergence;
pub mod fxhash;
pub mod ilp;
pub mod locality;
pub mod merge;
pub mod mix;
pub mod pair;
pub mod profile;
pub mod profiler;
pub mod runtime;
pub mod schema;
pub mod serialize;
pub mod sketch;

pub use cache::{MatrixBlock, MatrixCache, ProfileCache};
pub use merge::MergeableObserver;
pub use pair::{InterferenceStack, PairMemberProfile, PairObserver, PairProfile};
pub use profile::{KernelProfile, RawCounts};
pub use profiler::{characterize_launch, Profiler};
pub use runtime::{characterize_launch_sharded, profile_launch_sharded};
pub use schema::{Group, SCHEMA};
pub use sketch::ObserverTier;
