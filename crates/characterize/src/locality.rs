//! Temporal locality (LRU stack distances) and data sharing of global
//! memory, at 128-byte line granularity.
//!
//! Reuse distance — the number of *distinct* lines touched between two
//! accesses to the same line — is the canonical microarchitecture-
//! independent locality metric: a fully associative LRU cache of `N` lines
//! hits exactly the accesses with distance `< N`. We compute it exactly
//! with the classic last-access-time + Fenwick-tree algorithm, compressing
//! the time axis when it fills.

use gwc_simt::instr::Space;
use gwc_simt::trace::{MemEvent, TraceObserver};

use crate::coalescing::SEGMENT_BYTES;
use crate::fxhash::FxHashMap;

/// Reuse-distance histogram thresholds, in 128-byte lines.
pub const REUSE_THRESHOLDS: [u64; 3] = [16, 256, 4096];

/// Binary indexed tree over time slots. Shared with the bounded-window
/// sketch tier (see [`crate::sketch`]), which runs the same
/// last-access-time algorithm over a capped recency window.
#[derive(Debug, Clone)]
pub(crate) struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    /// Backing-array length in slots, for memory accounting.
    pub(crate) fn slots(&self) -> usize {
        self.tree.len()
    }

    pub(crate) fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of `[0, i]`.
    pub(crate) fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0u64;
        while i > 0 {
            s += self.tree[i] as u64;
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum of `[lo, hi]` (inclusive); 0 when the range is empty.
    pub(crate) fn range(&self, lo: usize, hi: usize) -> u64 {
        if lo > hi {
            return 0;
        }
        let head = if lo == 0 { 0 } else { self.prefix(lo - 1) };
        self.prefix(hi) - head
    }
}

#[derive(Debug, Clone, Copy)]
struct LineInfo {
    last_time: usize,
    first_warp: (u32, u32),
    multi_warp: bool,
    multi_block: bool,
}

/// Streams global accesses into reuse-distance and sharing statistics.
#[derive(Debug)]
pub struct LocalityObserver {
    lines: FxHashMap<u32, LineInfo>,
    fenwick: Fenwick,
    now: usize,
    cap: usize,
    /// Reuses bucketed by [`REUSE_THRESHOLDS`], with a final overflow
    /// bucket.
    hist: [u64; 4],
    cold: u64,
    touches: u64,
    /// Distinct lines in first-touch order. One entry per cold touch;
    /// this is what lets a later shard's stack merge exactly into an
    /// earlier one (see the `MergeableObserver` impl).
    first_touch_order: Vec<u32>,
}

/// Initial time-axis capacity. Deliberately small: the runtime creates
/// one observer per shard per launch, and a large up-front Fenwick
/// allocation (formerly 8 MB zeroed) dominated sharded study time via
/// page faults. The axis grows geometrically with the footprint, so
/// large workloads still get a long axis — they just pay for it only
/// when they actually touch that many lines.
const INITIAL_CAP: usize = 1 << 12;

impl Default for LocalityObserver {
    fn default() -> Self {
        Self::with_capacity(INITIAL_CAP)
    }
}

impl LocalityObserver {
    /// Creates an observer with the default time-axis capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an observer compressing its time axis every `cap` touches.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            lines: FxHashMap::default(),
            fenwick: Fenwick::new(cap),
            now: 0,
            cap,
            hist: [0; 4],
            cold: 0,
            touches: 0,
            first_touch_order: Vec::new(),
        }
    }

    /// Total line touches (one per distinct line per warp access).
    pub fn touches(&self) -> u64 {
        self.touches
    }

    /// Fraction of touches that were first-touch (cold).
    pub fn cold_frac(&self) -> f64 {
        if self.touches == 0 {
            0.0
        } else {
            self.cold as f64 / self.touches as f64
        }
    }

    /// Fraction of *reuses* with stack distance at most
    /// `REUSE_THRESHOLDS[bucket]`. Cumulative.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= 3`.
    pub fn reuse_cdf(&self, bucket: usize) -> f64 {
        assert!(bucket < REUSE_THRESHOLDS.len());
        let reuses: u64 = self.hist.iter().sum();
        if reuses == 0 {
            return 0.0;
        }
        let upto: u64 = self.hist.iter().take(bucket + 1).sum();
        upto as f64 / reuses as f64
    }

    /// Distinct 128-byte lines touched.
    pub fn footprint_lines(&self) -> u64 {
        self.lines.len() as u64
    }

    /// Fraction of lines touched by at least two distinct warps.
    pub fn inter_warp_sharing(&self) -> f64 {
        self.sharing(|l| l.multi_warp)
    }

    /// Fraction of lines touched by at least two distinct blocks.
    pub fn inter_block_sharing(&self) -> f64 {
        self.sharing(|l| l.multi_block)
    }

    fn sharing(&self, pred: impl Fn(&LineInfo) -> bool) -> f64 {
        if self.lines.is_empty() {
            return 0.0;
        }
        let shared = self.lines.values().filter(|l| pred(l)).count();
        shared as f64 / self.lines.len() as f64
    }

    /// Approximate heap bytes held by this observer's per-line state.
    /// Capacity-based (not length-based): it is the allocation, not the
    /// occupancy, that the `observer.bytes_peak` gauge must account for.
    pub fn bytes_in_use(&self) -> u64 {
        let map_entry = std::mem::size_of::<(u32, LineInfo)>() + 1;
        (self.lines.capacity() * map_entry
            + self.fenwick.slots() * std::mem::size_of::<u32>()
            + self.first_touch_order.capacity() * std::mem::size_of::<u32>()) as u64
    }

    pub(crate) fn touch(&mut self, line: u32, warp: (u32, u32)) {
        self.touches += 1;
        if self.now >= self.cap {
            // Compression needs headroom over the live footprint; grow
            // the axis instead when the footprint itself filled it.
            // Either way the recency order — and with it every future
            // distance — is preserved, so when growth (or compression)
            // happens cannot affect results.
            if self.lines.len() * 2 > self.cap {
                self.cap = (self.lines.len() * 4).next_power_of_two();
            }
            self.compress();
        }
        match self.lines.get_mut(&line) {
            Some(info) => {
                let t = info.last_time;
                // Lines whose most recent access is after t = LRU depth.
                let distance = self.fenwick.range(t + 1, self.now.saturating_sub(1));
                let bucket = REUSE_THRESHOLDS
                    .iter()
                    .position(|&th| distance <= th)
                    .unwrap_or(REUSE_THRESHOLDS.len());
                self.hist[bucket] += 1;
                self.fenwick.add(t, -1);
                self.fenwick.add(self.now, 1);
                info.last_time = self.now;
                if info.first_warp != warp {
                    info.multi_warp = true;
                    if info.first_warp.0 != warp.0 {
                        info.multi_block = true;
                    }
                }
            }
            None => {
                self.cold += 1;
                self.first_touch_order.push(line);
                self.fenwick.add(self.now, 1);
                self.lines.insert(
                    line,
                    LineInfo {
                        last_time: self.now,
                        first_warp: warp,
                        multi_warp: false,
                        multi_block: false,
                    },
                );
            }
        }
        self.now += 1;
    }

    /// Reassigns time slots densely, preserving order.
    fn compress(&mut self) {
        let mut order: Vec<(usize, u32)> = self
            .lines
            .iter()
            .map(|(&line, info)| (info.last_time, line))
            .collect();
        order.sort_unstable();
        self.fenwick = Fenwick::new(self.cap);
        for (new_t, &(_, line)) in order.iter().enumerate() {
            self.lines.get_mut(&line).expect("line exists").last_time = new_t;
            self.fenwick.add(new_t, 1);
        }
        self.now = order.len();
        assert!(
            self.now < self.cap,
            "footprint exceeds locality time-axis capacity"
        );
    }
}

impl crate::merge::MergeableObserver for LocalityObserver {
    /// Exact stack merge of a later shard (`later`) into this one.
    ///
    /// Reuses *within* `later` already have the correct distance — every
    /// intervening distinct line lies inside `later`'s own substream — so
    /// its histogram adds directly. The only touches needing cross-shard
    /// resolution are `later`'s first touches: a line `later` saw first
    /// that `self` already holds is really a reuse crossing the shard
    /// boundary, with distance
    ///
    /// ```text
    ///   |{M in self : last(M) > last(L)}|      (self's Fenwick)
    /// + (first touches before L in later)      (position in order)
    /// - (lines counted by both terms)          (auxiliary Fenwick)
    /// ```
    ///
    /// which is exactly the number of distinct lines touched between
    /// `self`'s last access to `L` and `later`'s first — the same integer
    /// the serial observer computes, so the bucketed histogram matches
    /// bit for bit. Afterwards the merged time axis is rebuilt densely:
    /// `self`-only lines in their old order, then every line `later`
    /// touched in `later`'s recency order (a compression, which preserves
    /// all future distances).
    fn merge(&mut self, later: Self) {
        self.touches += later.touches;
        for (a, b) in self.hist.iter_mut().zip(later.hist) {
            *a += b;
        }

        // Resolve later's first touches against self's stack.
        let mut aux = Fenwick::new(self.cap);
        let self_top = self.now.saturating_sub(1);
        for (pos, &line) in later.first_touch_order.iter().enumerate() {
            match self.lines.get(&line) {
                Some(info) => {
                    let t = info.last_time;
                    let in_self = self.fenwick.range(t + 1, self_top);
                    let dup = aux.range(t + 1, self_top);
                    let distance = in_self + pos as u64 - dup;
                    let bucket = REUSE_THRESHOLDS
                        .iter()
                        .position(|&th| distance <= th)
                        .unwrap_or(REUSE_THRESHOLDS.len());
                    self.hist[bucket] += 1;
                    aux.add(t, 1);
                }
                None => {
                    self.cold += 1;
                    self.first_touch_order.push(line);
                }
            }
        }

        // Rebuild the merged time axis. The recency order is computed
        // first (it needs both maps intact), then `later`'s lines are
        // absorbed into `self.lines` *in place*: re-allocating a merged
        // map per shard merge showed up as the dominant allocation in
        // sharded studies, and the order vector already carries every
        // final timestamp, so the flag union is all the map itself needs.
        let mut order: Vec<(u8, usize, u32)> =
            Vec::with_capacity(self.lines.len() + later.lines.len());
        for (&line, info) in &self.lines {
            if !later.lines.contains_key(&line) {
                order.push((0, info.last_time, line));
            }
        }
        for (&line, info) in &later.lines {
            order.push((1, info.last_time, line));
        }
        order.sort_unstable();

        // The merged footprint can exceed either side's axis; grow
        // before the rebuild exactly like `touch` does.
        self.cap = self.cap.max(later.cap);
        if order.len() * 2 > self.cap {
            self.cap = (order.len() * 4).next_power_of_two();
        }
        self.lines.reserve(later.lines.len());
        for (line, b) in later.lines {
            match self.lines.entry(line) {
                // Sharing flags mean "≥ 2 distinct warps/blocks ever
                // touched the line", so they survive re-anchoring to
                // self's first warp.
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let a = e.get_mut();
                    a.multi_warp = a.multi_warp || b.multi_warp || a.first_warp != b.first_warp;
                    a.multi_block =
                        a.multi_block || b.multi_block || a.first_warp.0 != b.first_warp.0;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(b);
                }
            }
        }
        self.fenwick = Fenwick::new(self.cap);
        for (new_t, &(_, _, line)) in order.iter().enumerate() {
            self.lines
                .get_mut(&line)
                .expect("line in merged map")
                .last_time = new_t;
            self.fenwick.add(new_t, 1);
        }
        self.now = order.len();
        assert!(
            self.now < self.cap,
            "footprint exceeds locality time-axis capacity"
        );
    }
}

impl TraceObserver for LocalityObserver {
    fn on_mem(&mut self, e: &MemEvent<'_>) {
        if e.space != Space::Global {
            return;
        }
        // Stack-buffered line extraction: at most 32 lanes, so the sort
        // and dedup run on a fixed array with no per-event allocation.
        let mut lines = [0u32; gwc_simt::WARP_SIZE];
        let mut n = 0usize;
        for a in e.active_addrs() {
            lines[n] = a / SEGMENT_BYTES;
            n += 1;
        }
        lines[..n].sort_unstable();
        let mut prev = u32::MAX;
        for (i, &line) in lines[..n].iter().enumerate() {
            if i == 0 || line != prev {
                self.touch(line, (e.block, e.warp));
            }
            prev = line;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(o: &mut LocalityObserver, line: u32) {
        o.touch(line, (0, 0));
    }

    #[test]
    fn fenwick_basics() {
        let mut f = Fenwick::new(16);
        f.add(3, 1);
        f.add(7, 1);
        f.add(10, 1);
        assert_eq!(f.prefix(15), 3);
        assert_eq!(f.range(4, 9), 1);
        assert_eq!(f.range(0, 3), 1);
        f.add(7, -1);
        assert_eq!(f.range(4, 9), 0);
        assert_eq!(f.range(5, 4), 0);
    }

    #[test]
    fn immediate_reuse_distance_zero() {
        let mut o = LocalityObserver::with_capacity(64);
        touch(&mut o, 1);
        touch(&mut o, 1);
        assert_eq!(o.touches(), 2);
        assert_eq!(o.cold_frac(), 0.5);
        // Distance 0 <= 16: bucket 0.
        assert_eq!(o.reuse_cdf(0), 1.0);
    }

    #[test]
    fn stack_distance_counts_distinct_lines() {
        let mut o = LocalityObserver::with_capacity(4096);
        // Touch A, then 20 distinct lines, then A again: distance 20.
        touch(&mut o, 0);
        for l in 1..=20 {
            touch(&mut o, l);
        }
        touch(&mut o, 0);
        // 20 > 16 -> bucket 1 (<= 256). CDF(0) = 0, CDF(1) = 1.
        assert_eq!(o.reuse_cdf(0), 0.0);
        assert_eq!(o.reuse_cdf(1), 1.0);
    }

    #[test]
    fn repeated_intermediate_lines_count_once() {
        let mut o = LocalityObserver::with_capacity(4096);
        touch(&mut o, 0);
        // Touch line 1 ten times: only ONE distinct line between reuses.
        for _ in 0..10 {
            touch(&mut o, 1);
        }
        touch(&mut o, 0);
        // Distance 1 <= 16.
        assert!(o.reuse_cdf(0) > 0.0);
    }

    #[test]
    fn compression_preserves_distances() {
        let mut o = LocalityObserver::with_capacity(64);
        // Generate enough touches to force several compressions.
        for round in 0..20 {
            for l in 0..30u32 {
                touch(&mut o, l);
            }
            let _ = round;
        }
        // Every line reuse sees 29 distinct other lines: bucket 1.
        assert_eq!(o.reuse_cdf(0), 0.0);
        assert_eq!(o.reuse_cdf(1), 1.0);
        assert_eq!(o.footprint_lines(), 30);
    }

    #[test]
    fn sharing_flags() {
        let mut o = LocalityObserver::with_capacity(64);
        o.touch(0, (0, 0));
        o.touch(0, (0, 1)); // same block, different warp
        o.touch(1, (0, 0));
        o.touch(1, (2, 0)); // different block
        o.touch(2, (1, 1)); // private
        assert!((o.inter_warp_sharing() - 2.0 / 3.0).abs() < 1e-12);
        assert!((o.inter_block_sharing() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn non_global_ignored() {
        use crate::coalescing::addr_array;
        use gwc_simt::trace::AccessKind;
        let mut o = LocalityObserver::new();
        let (arr, mask) = addr_array(&[0, 4, 8]);
        o.on_mem(&MemEvent {
            block: 0,
            warp: 0,
            pc: 0,
            space: Space::Shared,
            kind: AccessKind::Load,
            bytes: 4,
            active: mask,
            addrs: &arr,
        });
        assert_eq!(o.touches(), 0);
    }

    fn assert_same_state(a: &LocalityObserver, b: &LocalityObserver) {
        assert_eq!(a.hist, b.hist, "reuse histograms differ");
        assert_eq!(a.cold, b.cold);
        assert_eq!(a.touches, b.touches);
        assert_eq!(a.footprint_lines(), b.footprint_lines());
        assert_eq!(
            a.inter_warp_sharing().to_bits(),
            b.inter_warp_sharing().to_bits()
        );
        assert_eq!(
            a.inter_block_sharing().to_bits(),
            b.inter_block_sharing().to_bits()
        );
    }

    /// Pseudo-random touch stream: every split of it, merged, must equal
    /// serial observation — including for *future* touches, which checks
    /// the rebuilt time axis preserves recency order.
    #[test]
    fn merge_any_split_matches_serial() {
        use crate::merge::MergeableObserver;
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let stream: Vec<(u32, (u32, u32))> = (0..400)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let line = (x >> 8) as u32 % 48;
                let block = (x >> 16) as u32 % 4;
                let warp = (x >> 24) as u32 % 2;
                (line, (block, warp))
            })
            .collect();
        for split in [0, 1, 17, 200, 399, 400] {
            let mut serial = LocalityObserver::with_capacity(128);
            for &(line, warp) in &stream {
                serial.touch(line, warp);
            }
            let mut first = LocalityObserver::with_capacity(128);
            let mut second = LocalityObserver::with_capacity(128);
            for &(line, warp) in &stream[..split] {
                first.touch(line, warp);
            }
            for &(line, warp) in &stream[split..] {
                second.touch(line, warp);
            }
            first.merge(second);
            assert_same_state(&first, &serial);
            // The merged stack must keep behaving like the serial one.
            for &(line, warp) in stream.iter().rev().take(100) {
                serial.touch(line, warp);
                first.touch(line, warp);
            }
            assert_same_state(&first, &serial);
        }
    }

    /// Three-way merge in block order equals serial — shards reduce
    /// left-to-right exactly as the runtime does.
    #[test]
    fn merge_three_shards_matches_serial() {
        use crate::merge::MergeableObserver;
        let stream: Vec<u32> = (0..300).map(|i| (i * 7 + i / 13) % 40).collect();
        let mut serial = LocalityObserver::with_capacity(128);
        for &l in &stream {
            serial.touch(l, (0, 0));
        }
        let mut merged = LocalityObserver::with_capacity(128);
        for chunk in stream.chunks(100) {
            let mut shard = LocalityObserver::with_capacity(128);
            for &l in chunk {
                shard.touch(l, (0, 0));
            }
            merged.merge(shard);
        }
        assert_same_state(&merged, &serial);
    }

    #[test]
    fn warp_access_touches_each_line_once() {
        use crate::coalescing::addr_array;
        use gwc_simt::trace::AccessKind;
        let mut o = LocalityObserver::new();
        // 32 lanes over 2 lines (16 lanes per 128B line at stride 8).
        let addrs: Vec<u32> = (0..32u32).map(|i| i * 8).collect();
        let (arr, mask) = addr_array(&addrs);
        o.on_mem(&MemEvent {
            block: 0,
            warp: 0,
            pc: 0,
            space: Space::Global,
            kind: AccessKind::Load,
            bytes: 4,
            active: mask,
            addrs: &arr,
        });
        assert_eq!(o.touches(), 2);
        assert_eq!(o.footprint_lines(), 2);
    }
}
