//! Order-aware merging of observer state, the reduction half of the
//! parallel characterization runtime.
//!
//! When one launch's blocks are sharded across threads (see
//! `Device::run_block_range`), each shard streams its events into a fresh
//! observer; afterwards the shards are folded back into the master
//! observer **in ascending block order**. Every observer guarantees that
//! this reduction is *bit-identical* to having observed the whole stream
//! serially — which is why the accumulators are kept in integer domains
//! (exact, associative) and only converted to floating point at read
//! time, in a fixed order.

use gwc_simt::trace::{LaunchStats, TraceObserver};

/// An observer whose per-shard state can be reduced in block order.
///
/// # Contract
///
/// `self.merge(later)` must leave `self` in exactly the state a single
/// observer would hold after seeing `self`'s event stream followed by
/// `later`'s. Callers must merge shards in ascending block order, and
/// `later` must have observed only events of the *same* launch that
/// `self`'s most recent events belong to (shards never span launch
/// boundaries; the master observer alone sees `on_launch` /
/// `on_launch_end`).
pub trait MergeableObserver: TraceObserver {
    /// Absorbs `later`, whose events all follow `self`'s in block order.
    fn merge(&mut self, later: Self);
}

/// Field-wise sum of per-shard launch statistics; with shard stats
/// produced by disjoint block ranges of one launch, the sum equals the
/// serial launch's stats exactly.
pub fn merge_stats(total: &mut LaunchStats, shard: &LaunchStats) {
    total.warp_instrs += shard.warp_instrs;
    total.thread_instrs += shard.thread_instrs;
    total.blocks += shard.blocks;
    total.warps += shard.warps;
    total.barriers += shard.barriers;
}
