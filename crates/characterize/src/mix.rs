//! Instruction-mix observer.

use gwc_simt::instr::InstrClass;
use gwc_simt::trace::{InstrEvent, TraceObserver};

/// Streams thread-level instruction counts per [`InstrClass`].
#[derive(Debug, Clone, Default)]
pub struct MixObserver {
    counts: [u64; InstrClass::ALL.len()],
    total: u64,
}

impl MixObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(class: InstrClass) -> usize {
        InstrClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class in ALL")
    }

    /// Thread-level instruction count for `class`.
    pub fn count(&self, class: InstrClass) -> u64 {
        self.counts[Self::slot(class)]
    }

    /// Total thread-level instructions observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of thread-level instructions in `class` (0 when empty).
    pub fn fraction(&self, class: InstrClass) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(class) as f64 / self.total as f64
        }
    }
}

impl TraceObserver for MixObserver {
    fn on_instr(&mut self, e: &InstrEvent<'_>) {
        let lanes = e.active_lanes() as u64;
        self.counts[Self::slot(e.class)] += lanes;
        self.total += lanes;
    }
}

impl crate::merge::MergeableObserver for MixObserver {
    fn merge(&mut self, later: Self) {
        for (a, b) in self.counts.iter_mut().zip(later.counts) {
            *a += b;
        }
        self.total += later.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(class: InstrClass, active: u32) -> InstrEvent<'static> {
        InstrEvent {
            block: 0,
            warp: 0,
            pc: 0,
            class,
            active,
            live: u32::MAX,
            dst: None,
            srcs: &[],
        }
    }

    #[test]
    fn counts_active_lanes() {
        let mut m = MixObserver::new();
        m.on_instr(&event(InstrClass::IntAlu, 0b1111));
        m.on_instr(&event(InstrClass::FpAlu, 0b1));
        assert_eq!(m.count(InstrClass::IntAlu), 4);
        assert_eq!(m.count(InstrClass::FpAlu), 1);
        assert_eq!(m.total(), 5);
        assert!((m.fraction(InstrClass::IntAlu) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let m = MixObserver::new();
        assert_eq!(m.fraction(InstrClass::Sfu), 0.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut m = MixObserver::new();
        for (i, &c) in InstrClass::ALL.iter().enumerate() {
            m.on_instr(&event(c, (1 << (i + 1)) - 1));
        }
        let sum: f64 = InstrClass::ALL.iter().map(|&c| m.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
