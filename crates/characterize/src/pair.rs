//! Pairwise-interference characterization of co-scheduled kernels.
//!
//! When two kernels co-reside (see `gwc_simt::sched` and
//! `Device::launch_pair`), each kernel's own execution — its retired
//! instructions, memory values, and per-kernel event stream — is
//! bit-identical to its solo launch: every dispatch policy keeps a
//! kernel's blocks in ascending order and the kernels' buffers are
//! disjoint. What co-residence changes is the *memory timeline*: both
//! kernels' lines now share one LRU stack, so the partner's traffic sits
//! between a kernel's consecutive touches and widens its reuse
//! distances, exactly as co-resident kernels contend for a shared cache.
//!
//! This module measures that effect exactly, with two timelines observed
//! in one pass:
//!
//! * a **shared stack** ([`InterferenceStack`]) fed both members'
//!   global accesses in dispatch order, accumulating reuse statistics
//!   *per member* — the co-resident (contention-adjusted) locality;
//! * one **solo stack** per member (a plain
//!   [`crate::locality::LocalityObserver`]) fed only that member's
//!   accesses — the isolated baseline, bit-identical to what a solo
//!   launch of the member would measure.
//!
//! The interference delta of a member is `co − solo` per statistic: a
//! pure partner effect, exact by construction because both timelines
//! observe the same single execution. Both stacks run the same
//! last-access-time + Fenwick algorithm at 128-byte granularity with the
//! [`crate::locality::REUSE_THRESHOLDS`] buckets, so co and solo numbers
//! are directly comparable.

use gwc_simt::instr::Space;
use gwc_simt::kernel::Kernel;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::sched::CoScheduleObserver;
use gwc_simt::trace::{MemEvent, TraceObserver};

use crate::coalescing::SEGMENT_BYTES;
use crate::fxhash::FxHashMap;
use crate::locality::{Fenwick, LocalityObserver, REUSE_THRESHOLDS};

/// Per-line state of the shared stack: recency plus a member-ownership
/// bitmask (bit `k` set iff member `k` touched the line).
#[derive(Debug, Clone, Copy)]
struct SharedLine {
    last_time: usize,
    owners: u8,
}

/// Initial time-axis capacity; grows geometrically like the solo
/// observer's (see `locality::INITIAL_CAP` rationale).
const INITIAL_CAP: usize = 1 << 12;

/// A reuse-distance stack over the *merged* access stream of two
/// co-scheduled kernels, attributing every touch to the member that
/// issued it.
///
/// Same exact algorithm as [`LocalityObserver`] — last-access-time with
/// a Fenwick tree over the time axis, geometric capacity growth,
/// order-preserving compression — but the histogram, cold and touch
/// counters are per member, and each line carries an owner bitmask for
/// footprint-overlap accounting.
#[derive(Debug)]
pub struct InterferenceStack {
    lines: FxHashMap<u32, SharedLine>,
    fenwick: Fenwick,
    now: usize,
    cap: usize,
    hist: [[u64; 4]; 2],
    cold: [u64; 2],
    touches: [u64; 2],
}

impl Default for InterferenceStack {
    fn default() -> Self {
        Self::with_capacity(INITIAL_CAP)
    }
}

impl InterferenceStack {
    /// Creates a stack with the default time-axis capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a stack compressing its time axis every `cap` touches.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            lines: FxHashMap::default(),
            fenwick: Fenwick::new(cap),
            now: 0,
            cap,
            hist: [[0; 4]; 2],
            cold: [0; 2],
            touches: [0; 2],
        }
    }

    /// Records a touch of `line` by `member` on the shared timeline.
    ///
    /// # Panics
    ///
    /// Panics if `member >= 2`.
    pub fn touch(&mut self, member: usize, line: u32) {
        self.touches[member] += 1;
        if self.now >= self.cap {
            if self.lines.len() * 2 > self.cap {
                self.cap = (self.lines.len() * 4).next_power_of_two();
            }
            self.compress();
        }
        match self.lines.get_mut(&line) {
            Some(info) => {
                let t = info.last_time;
                let distance = self.fenwick.range(t + 1, self.now.saturating_sub(1));
                let bucket = REUSE_THRESHOLDS
                    .iter()
                    .position(|&th| distance <= th)
                    .unwrap_or(REUSE_THRESHOLDS.len());
                self.hist[member][bucket] += 1;
                self.fenwick.add(t, -1);
                self.fenwick.add(self.now, 1);
                info.last_time = self.now;
                info.owners |= 1 << member;
            }
            None => {
                self.cold[member] += 1;
                self.fenwick.add(self.now, 1);
                self.lines.insert(
                    line,
                    SharedLine {
                        last_time: self.now,
                        owners: 1 << member,
                    },
                );
            }
        }
        self.now += 1;
    }

    /// Reassigns time slots densely, preserving recency order (and with
    /// it every future distance).
    fn compress(&mut self) {
        let mut order: Vec<(usize, u32)> = self
            .lines
            .iter()
            .map(|(&line, info)| (info.last_time, line))
            .collect();
        order.sort_unstable();
        self.fenwick = Fenwick::new(self.cap);
        for (new_t, &(_, line)) in order.iter().enumerate() {
            self.lines.get_mut(&line).expect("line exists").last_time = new_t;
            self.fenwick.add(new_t, 1);
        }
        self.now = order.len();
        assert!(
            self.now < self.cap,
            "footprint exceeds interference time-axis capacity"
        );
    }

    /// Member `m`'s line touches on the shared timeline.
    pub fn touches(&self, m: usize) -> u64 {
        self.touches[m]
    }

    /// Member `m`'s cold-touch fraction on the shared timeline.
    pub fn cold_frac(&self, m: usize) -> f64 {
        if self.touches[m] == 0 {
            0.0
        } else {
            self.cold[m] as f64 / self.touches[m] as f64
        }
    }

    /// Member `m`'s cumulative reuse CDF at
    /// `REUSE_THRESHOLDS[bucket]` on the shared timeline.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= 3`.
    pub fn reuse_cdf(&self, m: usize, bucket: usize) -> f64 {
        assert!(bucket < REUSE_THRESHOLDS.len());
        let reuses: u64 = self.hist[m].iter().sum();
        if reuses == 0 {
            return 0.0;
        }
        let upto: u64 = self.hist[m].iter().take(bucket + 1).sum();
        upto as f64 / reuses as f64
    }

    /// Distinct lines on the shared timeline (the combined footprint).
    pub fn footprint_lines(&self) -> u64 {
        self.lines.len() as u64
    }

    /// Distinct lines touched by member `m`.
    pub fn member_lines(&self, m: usize) -> u64 {
        let bit = 1u8 << m;
        self.lines.values().filter(|l| l.owners & bit != 0).count() as u64
    }

    /// Lines touched by *both* members. Registry pairs allocate disjoint
    /// buffers, so this is normally zero — it is a sanity metric (a
    /// nonzero value means the pair genuinely shares data).
    pub fn overlap_lines(&self) -> u64 {
        self.lines.values().filter(|l| l.owners == 0b11).count() as u64
    }
}

/// One timeline's locality summary for one member, in the units the
/// solo characterization reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalitySummary {
    /// Line touches.
    pub touches: u64,
    /// First-touch fraction.
    pub cold_frac: f64,
    /// Cumulative reuse CDF at [`REUSE_THRESHOLDS`].
    pub reuse_cdf: [f64; 3],
    /// Distinct 128-byte lines.
    pub footprint_lines: u64,
}

/// One member's solo-vs-co-resident locality characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct PairMemberProfile {
    /// Workload / kernel name of the member.
    pub name: String,
    /// Isolated baseline (in-pass solo timeline).
    pub solo: LocalitySummary,
    /// Contention-adjusted (shared timeline).
    pub co: LocalitySummary,
}

impl PairMemberProfile {
    /// Contention-adjusted reuse-CDF delta at `bucket`: `co − solo`.
    /// Negative means the partner's traffic pushed this member's reuses
    /// past the threshold (lost cache hits at that capacity).
    pub fn reuse_delta(&self, bucket: usize) -> f64 {
        self.co.reuse_cdf[bucket] - self.solo.reuse_cdf[bucket]
    }

    /// Cold-fraction delta, `co − solo`. Zero unless the pair shares
    /// lines (first touches are timeline-independent otherwise).
    pub fn cold_delta(&self) -> f64 {
        self.co.cold_frac - self.solo.cold_frac
    }

    /// Mean absolute reuse-CDF delta across the three thresholds — the
    /// member's scalar interference magnitude.
    pub fn interference(&self) -> f64 {
        (0..REUSE_THRESHOLDS.len())
            .map(|b| self.reuse_delta(b).abs())
            .sum::<f64>()
            / REUSE_THRESHOLDS.len() as f64
    }
}

/// The pairwise-interference profile of one co-scheduled kernel pair
/// under one dispatch policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PairProfile {
    /// The two members' solo/co characteristics.
    pub members: [PairMemberProfile; 2],
    /// Dispatch policy the pair ran under.
    pub policy: &'static str,
    /// Combined footprint of the shared timeline, in lines.
    pub footprint_lines: u64,
    /// Lines touched by both members (normally zero — disjoint buffers).
    pub overlap_lines: u64,
}

impl PairProfile {
    /// Fraction of the combined footprint touched by both members.
    pub fn overlap_frac(&self) -> f64 {
        if self.footprint_lines == 0 {
            0.0
        } else {
            self.overlap_lines as f64 / self.footprint_lines as f64
        }
    }

    /// Pair-level interference score: the mean of the members' scalar
    /// interference magnitudes.
    pub fn interference(&self) -> f64 {
        (self.members[0].interference() + self.members[1].interference()) / 2.0
    }

    /// The interference signature this pair clusters by (experiment
    /// E14): each member's three reuse-CDF deltas and cold delta, plus
    /// the footprint-overlap fraction. Deterministic, dimension order
    /// fixed ([`PairProfile::SIGNATURE_DIMS`]).
    pub fn signature(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(Self::SIGNATURE_DIMS.len());
        for m in &self.members {
            for b in 0..REUSE_THRESHOLDS.len() {
                v.push(m.reuse_delta(b));
            }
            v.push(m.cold_delta());
        }
        v.push(self.overlap_frac());
        v
    }

    /// Names of the signature dimensions, in [`PairProfile::signature`]
    /// order.
    pub const SIGNATURE_DIMS: [&'static str; 9] = [
        "a_reuse_d16",
        "a_reuse_d256",
        "a_reuse_d4096",
        "a_cold_d",
        "b_reuse_d16",
        "b_reuse_d256",
        "b_reuse_d4096",
        "b_cold_d",
        "overlap",
    ];
}

/// Observes a co-scheduled pair launch (or a sequence of them) and
/// produces the [`PairProfile`]: routes every global access to the
/// shared stack (attributed to the issuing member) *and* to that
/// member's solo stack, so both timelines are measured in one pass over
/// one execution.
///
/// Keep one observer across all of a pair scenario's co-scheduled
/// launches: the stacks carry reuse state across launches exactly like
/// a solo workload characterization does.
#[derive(Debug, Default)]
pub struct PairObserver {
    shared: InterferenceStack,
    solo: [LocalityObserver; 2],
    current: usize,
}

impl PairObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared (contention) timeline.
    pub fn shared(&self) -> &InterferenceStack {
        &self.shared
    }

    /// Attributes subsequent events to member `m`. The co-scheduled path
    /// routes via [`CoScheduleObserver::on_slice`]; use this when a
    /// member's leftover launches run solo (the pair's timeline
    /// continues, just without partner traffic).
    pub fn set_member(&mut self, m: usize) {
        assert!(m < 2);
        self.current = m;
    }

    /// Member `m`'s solo timeline.
    pub fn solo(&self, m: usize) -> &LocalityObserver {
        &self.solo[m]
    }

    fn summary(&self, m: usize) -> (LocalitySummary, LocalitySummary) {
        let solo = LocalitySummary {
            touches: self.solo[m].touches(),
            cold_frac: self.solo[m].cold_frac(),
            reuse_cdf: [
                self.solo[m].reuse_cdf(0),
                self.solo[m].reuse_cdf(1),
                self.solo[m].reuse_cdf(2),
            ],
            footprint_lines: self.solo[m].footprint_lines(),
        };
        let co = LocalitySummary {
            touches: self.shared.touches(m),
            cold_frac: self.shared.cold_frac(m),
            reuse_cdf: [
                self.shared.reuse_cdf(m, 0),
                self.shared.reuse_cdf(m, 1),
                self.shared.reuse_cdf(m, 2),
            ],
            footprint_lines: self.shared.member_lines(m),
        };
        (solo, co)
    }

    /// Finalizes the profile. `names` label the members (workload or
    /// kernel names); `policy` is the dispatch policy's canonical name.
    pub fn finish(self, names: [&str; 2], policy: &'static str) -> PairProfile {
        let (solo_a, co_a) = self.summary(0);
        let (solo_b, co_b) = self.summary(1);
        PairProfile {
            members: [
                PairMemberProfile {
                    name: names[0].to_string(),
                    solo: solo_a,
                    co: co_a,
                },
                PairMemberProfile {
                    name: names[1].to_string(),
                    solo: solo_b,
                    co: co_b,
                },
            ],
            policy,
            footprint_lines: self.shared.footprint_lines(),
            overlap_lines: self.shared.overlap_lines(),
        }
    }
}

impl TraceObserver for PairObserver {
    fn on_mem(&mut self, e: &MemEvent<'_>) {
        if e.space != Space::Global {
            return;
        }
        // The solo stack consumes the raw event (its own line
        // extraction); the shared stack gets the identically deduped
        // per-warp line set, attributed to the current member.
        self.solo[self.current].on_mem(e);
        let mut lines = [0u32; gwc_simt::WARP_SIZE];
        let mut n = 0usize;
        for a in e.active_addrs() {
            lines[n] = a / SEGMENT_BYTES;
            n += 1;
        }
        lines[..n].sort_unstable();
        let mut prev = u32::MAX;
        for (i, &line) in lines[..n].iter().enumerate() {
            if i == 0 || line != prev {
                self.shared.touch(self.current, line);
            }
            prev = line;
        }
    }
}

impl CoScheduleObserver for PairObserver {
    fn on_member_launch(&mut self, _kernel: usize, _k: &Kernel, _config: &LaunchConfig) {}

    fn on_slice(&mut self, kernel: usize, _blocks: &std::ops::Range<u32>) {
        self.current = kernel;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A member alone on the shared stack measures exactly what the solo
    /// observer measures — the timelines only diverge when the partner
    /// actually interleaves.
    #[test]
    fn lone_member_matches_solo_observer() {
        let mut shared = InterferenceStack::with_capacity(64);
        let mut solo = LocalityObserver::with_capacity(64);
        let stream: Vec<u32> = (0..200).map(|i| (i * 13 + i / 7) % 30).collect();
        for &l in &stream {
            shared.touch(0, l);
            solo.touch(l, (0, 0));
        }
        assert_eq!(shared.touches(0), solo.touches());
        assert_eq!(shared.cold_frac(0).to_bits(), solo.cold_frac().to_bits());
        for b in 0..3 {
            assert_eq!(
                shared.reuse_cdf(0, b).to_bits(),
                solo.reuse_cdf(b).to_bits(),
                "bucket {b}"
            );
        }
        assert_eq!(shared.footprint_lines(), solo.footprint_lines());
        assert_eq!(shared.member_lines(0), solo.footprint_lines());
        assert_eq!(shared.member_lines(1), 0);
        assert_eq!(shared.overlap_lines(), 0);
    }

    /// An interleaved partner widens the victim's reuse distances: the
    /// victim alternates between two lines (distance 1 solo) while the
    /// partner streams 40 distinct lines between the victim's touches,
    /// pushing every victim reuse past the 16-line threshold.
    #[test]
    fn partner_traffic_widens_reuse_distances() {
        let mut obs = PairObserver::new();
        for round in 0..10u32 {
            obs.current = 0;
            obs.shared.touch(0, round % 2);
            obs.solo[0].touch(round % 2, (0, 0));
            obs.current = 1;
            for l in 0..40u32 {
                obs.shared.touch(1, 1000 + l);
                obs.solo[1].touch(1000 + l, (0, 0));
            }
        }
        let profile = obs.finish(["victim", "aggressor"], "round-robin");
        let victim = &profile.members[0];
        // Solo: every reuse at distance 1 (bucket 0). Co-resident: every
        // reuse sits behind the partner's 40 lines (bucket 1).
        assert_eq!(victim.solo.reuse_cdf[0], 1.0);
        assert_eq!(victim.co.reuse_cdf[0], 0.0);
        assert!(
            victim.reuse_delta(0) < -0.99,
            "delta {}",
            victim.reuse_delta(0)
        );
        assert!(victim.interference() > 0.3);
        // Footprints are timeline-independent (disjoint lines).
        assert_eq!(victim.solo.footprint_lines, victim.co.footprint_lines);
        assert_eq!(victim.cold_delta(), 0.0);
        assert_eq!(profile.overlap_lines, 0);
        assert_eq!(
            profile.footprint_lines,
            victim.solo.footprint_lines + profile.members[1].solo.footprint_lines
        );
        assert_eq!(profile.signature().len(), PairProfile::SIGNATURE_DIMS.len());
    }

    /// Shared lines set both owner bits and register as overlap.
    #[test]
    fn overlap_accounting() {
        let mut s = InterferenceStack::with_capacity(64);
        s.touch(0, 1);
        s.touch(1, 1);
        s.touch(0, 2);
        s.touch(1, 3);
        assert_eq!(s.footprint_lines(), 3);
        assert_eq!(s.overlap_lines(), 1);
        assert_eq!(s.member_lines(0), 2);
        assert_eq!(s.member_lines(1), 2);
    }

    /// Compression (forced by a tiny capacity) preserves distances, as
    /// in the solo observer.
    #[test]
    fn compression_preserves_member_distances() {
        let mut small = InterferenceStack::with_capacity(64);
        let mut big = InterferenceStack::with_capacity(1 << 14);
        let mut x = 0x9E37_79B9u64;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let m = (x & 1) as usize;
            let line = ((x >> 8) % 50) as u32 + (m as u32 * 1000);
            small.touch(m, line);
            big.touch(m, line);
        }
        for m in 0..2 {
            assert_eq!(small.hist[m], big.hist[m], "member {m} histograms");
            assert_eq!(small.cold[m], big.cold[m]);
        }
        assert_eq!(small.footprint_lines(), big.footprint_lines());
    }
}
