//! Kernel profiles: the measured characteristic vector plus raw counters.

use crate::schema;
use gwc_simt::trace::LaunchStats;

/// Raw event counts preserved alongside the normalized characteristics.
///
/// The analytical timing model ([`gwc-timing`]) consumes these; the
/// characteristic vector itself stays microarchitecture independent.
///
/// [`gwc-timing`]: https://docs.rs/gwc-timing
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RawCounts {
    /// Warp-level dynamic instructions.
    pub warp_instrs: u64,
    /// Thread-level dynamic instructions.
    pub thread_instrs: u64,
    /// Warp-level global memory accesses.
    pub global_accesses: u64,
    /// 128-byte segments (memory transactions) those accesses produced.
    pub global_transactions: u64,
    /// Warp-level shared memory accesses.
    pub shared_accesses: u64,
    /// Serialized shared-memory cycles (>= shared_accesses; equality means
    /// conflict-free).
    pub shared_serialized: u64,
    /// Thread-level SFU instructions.
    pub sfu_thread_instrs: u64,
    /// Block-wide barriers released.
    pub barriers: u64,
    /// Thread-level atomic operations.
    pub atomic_thread_ops: u64,
    /// Total threads launched.
    pub total_threads: u64,
    /// Threads per block.
    pub threads_per_block: u64,
    /// Blocks in the grid.
    pub blocks: u64,
    /// Distinct 128-byte global lines touched.
    pub footprint_lines: u64,
}

/// The characterization result for one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    name: String,
    values: Vec<f64>,
    raw: RawCounts,
    stats: LaunchStats,
}

impl KernelProfile {
    /// Creates a profile; `values` must match the schema length.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != schema::len()` (programming error in an
    /// observer, not user input).
    pub fn new(
        name: impl Into<String>,
        values: Vec<f64>,
        raw: RawCounts,
        stats: LaunchStats,
    ) -> Self {
        assert_eq!(values.len(), schema::len(), "characteristic vector size");
        Self {
            name: name.into(),
            values,
            raw,
            stats,
        }
    }

    /// Kernel (launch) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full characteristic vector in schema order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value of the characteristic called `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not in the schema.
    pub fn get(&self, name: &str) -> f64 {
        self.values[schema::index_of(name)]
    }

    /// Raw counters for timing models.
    pub fn raw(&self) -> &RawCounts {
        &self.raw
    }

    /// Executor launch statistics.
    pub fn stats(&self) -> &LaunchStats {
        &self.stats
    }

    /// Renders the profile as a two-column table (name, value).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("kernel: {}\n", self.name));
        for (def, v) in schema::SCHEMA.iter().zip(&self.values) {
            out.push_str(&format!("  {:<28} {:>12.6}\n", def.name, v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KernelProfile {
        let mut values = vec![0.0; schema::len()];
        values[schema::index_of("mix_int_alu")] = 0.5;
        KernelProfile::new("k", values, RawCounts::default(), LaunchStats::default())
    }

    #[test]
    fn get_by_name() {
        let p = sample();
        assert_eq!(p.get("mix_int_alu"), 0.5);
        assert_eq!(p.get("mix_sfu"), 0.0);
    }

    #[test]
    #[should_panic(expected = "characteristic vector size")]
    fn wrong_length_panics() {
        KernelProfile::new(
            "k",
            vec![0.0; 3],
            RawCounts::default(),
            LaunchStats::default(),
        );
    }

    #[test]
    fn render_mentions_all_names() {
        let table = sample().render_table();
        for def in schema::SCHEMA {
            assert!(table.contains(def.name));
        }
    }
}
