//! The combined profiler: runs every observer over one launch and
//! assembles the canonical characteristic vector.

use gwc_simt::exec::Device;
use gwc_simt::instr::{InstrClass, Value};
use gwc_simt::kernel::Kernel;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::trace::{BranchEvent, InstrEvent, LaunchStats, MemEvent, TraceObserver};
use gwc_simt::SimtError;

use crate::coalescing::CoalescingObserver;
use crate::divergence::DivergenceObserver;
use crate::ilp::IlpObserver;
use crate::locality::LocalityObserver;
use crate::merge::MergeableObserver;
use crate::mix::MixObserver;
use crate::profile::{KernelProfile, RawCounts};
use crate::schema;
use crate::sketch::{ObserverTier, SketchLocalityObserver};

/// Tier-selected locality state: the exact per-line observer or its
/// bounded-memory sketch. Both sides expose the same derived
/// characteristics and the same serial-equivalent shard merge, so the
/// profiler treats them uniformly.
#[derive(Debug)]
pub enum LocalityState {
    Exact(LocalityObserver),
    Sketch(SketchLocalityObserver),
}

impl LocalityState {
    fn new(tier: ObserverTier) -> Self {
        match tier {
            ObserverTier::Exact => LocalityState::Exact(LocalityObserver::new()),
            ObserverTier::Sketch => LocalityState::Sketch(SketchLocalityObserver::new()),
        }
    }

    fn tier(&self) -> ObserverTier {
        match self {
            LocalityState::Exact(_) => ObserverTier::Exact,
            LocalityState::Sketch(_) => ObserverTier::Sketch,
        }
    }

    fn reuse_cdf(&self, bucket: usize) -> f64 {
        match self {
            LocalityState::Exact(o) => o.reuse_cdf(bucket),
            LocalityState::Sketch(o) => o.reuse_cdf(bucket),
        }
    }

    fn cold_frac(&self) -> f64 {
        match self {
            LocalityState::Exact(o) => o.cold_frac(),
            LocalityState::Sketch(o) => o.cold_frac(),
        }
    }

    fn inter_warp_sharing(&self) -> f64 {
        match self {
            LocalityState::Exact(o) => o.inter_warp_sharing(),
            LocalityState::Sketch(o) => o.inter_warp_sharing(),
        }
    }

    fn inter_block_sharing(&self) -> f64 {
        match self {
            LocalityState::Exact(o) => o.inter_block_sharing(),
            LocalityState::Sketch(o) => o.inter_block_sharing(),
        }
    }

    fn footprint_lines(&self) -> u64 {
        match self {
            LocalityState::Exact(o) => o.footprint_lines(),
            LocalityState::Sketch(o) => o.footprint_lines(),
        }
    }

    fn bytes_in_use(&self) -> u64 {
        match self {
            LocalityState::Exact(o) => o.bytes_in_use(),
            LocalityState::Sketch(o) => o.bytes_in_use(),
        }
    }

    fn on_mem(&mut self, e: &MemEvent<'_>) {
        match self {
            LocalityState::Exact(o) => o.on_mem(e),
            LocalityState::Sketch(o) => o.on_mem(e),
        }
    }

    fn merge(&mut self, later: LocalityState) {
        match (self, later) {
            (LocalityState::Exact(a), LocalityState::Exact(b)) => a.merge(b),
            (LocalityState::Sketch(a), LocalityState::Sketch(b)) => a.merge(b),
            _ => unreachable!("shards always share the master's observer tier"),
        }
    }
}

/// Runs all characterization observers over a launch.
///
/// Use [`characterize_launch`] unless you need to keep the profiler
/// around (e.g. to profile several launches of the same logical kernel
/// into one profile — the observers accumulate across launches).
#[derive(Debug)]
pub struct Profiler {
    mix: MixObserver,
    ilp: IlpObserver,
    divergence: DivergenceObserver,
    coalescing: CoalescingObserver,
    locality: LocalityState,
    stats: LaunchStats,
    launch_shape: Option<(u64, u64, u64)>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::with_tier(ObserverTier::Exact)
    }
}

impl Profiler {
    /// Creates an empty profiler on the exact (default) tier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty profiler with the given observer tier.
    pub fn with_tier(tier: ObserverTier) -> Self {
        Self {
            mix: MixObserver::default(),
            ilp: IlpObserver::default(),
            divergence: DivergenceObserver::default(),
            coalescing: CoalescingObserver::default(),
            locality: LocalityState::new(tier),
            stats: LaunchStats::default(),
            launch_shape: None,
        }
    }

    /// The observer tier this profiler runs. Shards must be created on
    /// the same tier so their merges stay serial-equivalent.
    pub fn tier(&self) -> ObserverTier {
        self.locality.tier()
    }

    /// Creates a profiler for one *shard* of a launch: block-range events
    /// will be streamed into it without launch boundary events (the
    /// master profiler owns those), and it is later folded back into the
    /// master with [`MergeableObserver::merge`].
    pub fn shard(kernel: &Kernel, config: &LaunchConfig) -> Self {
        Self::shard_with(kernel, config, ObserverTier::Exact)
    }

    /// [`Profiler::shard`] with an explicit observer tier — must match
    /// the master profiler's tier.
    pub fn shard_with(kernel: &Kernel, config: &LaunchConfig, tier: ObserverTier) -> Self {
        let mut p = Self::with_tier(tier);
        // Prime the ILP observer with the kernel's register count; the
        // fold inside is a no-op on a fresh observer, and `launch_shape`
        // stays unset so merging never double-counts the launch.
        p.ilp.on_launch(kernel, config);
        p
    }

    /// Approximate heap bytes held by the heavy (locality + coalescing)
    /// observers right now; feeds the `observer.bytes_peak` gauge.
    pub fn observer_bytes(&self) -> u64 {
        self.locality.bytes_in_use() + self.coalescing.bytes_in_use()
    }

    /// Finalizes the accumulated observations into a [`KernelProfile`]
    /// named `name`.
    pub fn finish(self, name: impl Into<String>) -> KernelProfile {
        let (total_threads, threads_per_block, blocks) = self.launch_shape.unwrap_or((0, 0, 0));
        let thread_instrs = self.mix.total().max(1);
        let mut v = vec![0.0; schema::len()];
        let mut set = |n: &str, val: f64| v[schema::index_of(n)] = val;

        set("mix_int_alu", self.mix.fraction(InstrClass::IntAlu));
        set("mix_fp_alu", self.mix.fraction(InstrClass::FpAlu));
        set("mix_sfu", self.mix.fraction(InstrClass::Sfu));
        set("mix_mem_global", self.mix.fraction(InstrClass::MemGlobal));
        set("mix_mem_shared", self.mix.fraction(InstrClass::MemShared));
        set(
            "mix_mem_other",
            self.mix.fraction(InstrClass::MemLocal) + self.mix.fraction(InstrClass::MemConst),
        );
        set("mix_ctrl", self.mix.fraction(InstrClass::Ctrl));
        set("mix_sync", self.mix.fraction(InstrClass::Sync));
        set("mix_atomic", self.mix.fraction(InstrClass::Atomic));
        set("mix_move", self.mix.fraction(InstrClass::Move));

        set("ilp_dataflow", self.ilp.ilp());
        set("ilp_dep_distance", self.ilp.dep_distance());

        set("div_branch_density", self.divergence.branch_density());
        set("div_branch_frac", self.divergence.divergent_branch_frac());
        set("div_simd_activity", self.divergence.simd_activity());
        set("div_warp_instr_frac", self.divergence.diverged_instr_frac());

        set(
            "coal_segments_per_access",
            self.coalescing.segments_per_access(),
        );
        set("coal_unit_stride_frac", self.coalescing.unit_stride_frac());
        set("coal_broadcast_frac", self.coalescing.broadcast_frac());
        set("coal_scatter_frac", self.coalescing.scatter_frac());

        set("smem_bank_conflict", self.coalescing.bank_conflict_factor());

        set("loc_reuse_le16", self.locality.reuse_cdf(0));
        set("loc_reuse_le256", self.locality.reuse_cdf(1));
        set("loc_reuse_le4096", self.locality.reuse_cdf(2));
        set("loc_cold_frac", self.locality.cold_frac());

        set("share_inter_warp", self.locality.inter_warp_sharing());
        set("share_inter_block", self.locality.inter_block_sharing());

        let warp_instrs = self.stats.warp_instrs.max(1);
        set(
            "sync_barrier_kinstr",
            self.stats.barriers as f64 * 1000.0 / warp_instrs as f64,
        );
        set(
            "sync_atomic_kinstr",
            self.mix.count(InstrClass::Atomic) as f64 * 1000.0 / thread_instrs as f64,
        );

        set("shape_log_threads", (total_threads.max(1) as f64).log2());
        set(
            "shape_log_instrs_per_thread",
            (thread_instrs as f64 / total_threads.max(1) as f64)
                .max(1.0)
                .log2(),
        );
        set("shape_block_occupancy", threads_per_block as f64 / 1024.0);
        set(
            "shape_log_footprint",
            (self.locality.footprint_lines().max(1) as f64).log2(),
        );

        let raw = RawCounts {
            warp_instrs: self.stats.warp_instrs,
            thread_instrs: self.mix.total(),
            global_accesses: self.coalescing.global_accesses(),
            global_transactions: self.coalescing.global_segments(),
            shared_accesses: self.coalescing.shared_accesses(),
            shared_serialized: self.coalescing.shared_serialized(),
            sfu_thread_instrs: self.mix.count(InstrClass::Sfu),
            barriers: self.stats.barriers,
            atomic_thread_ops: self.mix.count(InstrClass::Atomic),
            total_threads,
            threads_per_block,
            blocks,
            footprint_lines: self.locality.footprint_lines(),
        };
        KernelProfile::new(name, v, raw, self.stats)
    }
}

impl TraceObserver for Profiler {
    fn on_launch(&mut self, kernel: &Kernel, config: &LaunchConfig) {
        self.ilp.on_launch(kernel, config);
        let shape = self.launch_shape.get_or_insert((0, 0, 0));
        shape.0 += config.total_threads() as u64;
        shape.1 = config.threads_per_block() as u64;
        shape.2 += config.blocks() as u64;
    }
    fn on_instr(&mut self, e: &InstrEvent<'_>) {
        self.mix.on_instr(e);
        self.ilp.on_instr(e);
        self.divergence.on_instr(e);
    }
    fn on_mem(&mut self, e: &MemEvent<'_>) {
        self.coalescing.on_mem(e);
        self.locality.on_mem(e);
    }
    fn on_branch(&mut self, e: &BranchEvent) {
        self.divergence.on_branch(e);
    }
    fn on_launch_end(&mut self, stats: &LaunchStats) {
        self.stats.warp_instrs += stats.warp_instrs;
        self.stats.thread_instrs += stats.thread_instrs;
        self.stats.blocks += stats.blocks;
        self.stats.warps += stats.warps;
        self.stats.barriers += stats.barriers;
        gwc_obs::count_max("observer.bytes_peak", self.observer_bytes());
    }
}

impl MergeableObserver for Profiler {
    /// Folds a shard profiler (created with [`Profiler::shard`]) back
    /// into the master, in ascending block order. Shards carry no launch
    /// boundary state — the master accumulates `launch_shape` and stats
    /// through its own `on_launch`/`on_launch_end` — so only the
    /// streaming observers merge here.
    fn merge(&mut self, later: Self) {
        debug_assert!(
            later.launch_shape.is_none(),
            "merge expects a shard profiler, not one that saw on_launch"
        );
        // The true peak is while master and shard state coexist.
        gwc_obs::count_max(
            "observer.bytes_peak",
            self.observer_bytes() + later.observer_bytes(),
        );
        self.mix.merge(later.mix);
        self.ilp.merge(later.ilp);
        self.divergence.merge(later.divergence);
        self.coalescing.merge(later.coalescing);
        self.locality.merge(later.locality);
    }
}

/// Characterizes a single kernel launch: runs it under a fresh
/// [`Profiler`] and returns the resulting profile (named after the
/// kernel).
///
/// # Errors
///
/// Propagates any [`SimtError`] from the launch.
pub fn characterize_launch(
    device: &mut Device,
    kernel: &Kernel,
    config: &LaunchConfig,
    args: &[Value],
) -> Result<KernelProfile, SimtError> {
    let mut profiler = Profiler::new();
    device.launch_observed(kernel, config, args, &mut profiler)?;
    Ok(profiler.finish(kernel.name()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gwc_simt::builder::KernelBuilder;

    fn device_with(n: usize) -> (Device, gwc_simt::exec::BufferHandle) {
        let mut dev = Device::new();
        let buf = dev.alloc_zeroed_f32(n);
        (dev, buf)
    }

    #[test]
    fn coalesced_streaming_kernel_profile() {
        let mut b = KernelBuilder::new("stream");
        let out = b.param_u32("out");
        let i = b.global_tid_x();
        let f = b.to_f32(i);
        let g = b.mul_f32(f, Value::F32(2.0));
        let oi = b.index(out, i, 4);
        b.st_global_f32(oi, g);
        let k = b.build().unwrap();

        let (mut dev, buf) = device_with(4096);
        let p = characterize_launch(&mut dev, &k, &LaunchConfig::linear(4096, 256), &[buf.arg()])
            .unwrap();

        assert!(p.get("coal_segments_per_access") < 1.01);
        assert_eq!(p.get("coal_unit_stride_frac"), 1.0);
        assert_eq!(p.get("div_simd_activity"), 1.0);
        assert_eq!(p.get("div_branch_frac"), 0.0);
        assert_eq!(p.get("loc_cold_frac"), 1.0, "streaming never reuses");
        assert!(p.get("mix_fp_alu") > 0.0);
        assert_eq!(p.raw().total_threads, 4096);
        let sum: f64 = schema::SCHEMA
            .iter()
            .filter(|d| d.group == schema::Group::Mix)
            .map(|d| p.get(d.name))
            .sum();
        assert!((sum - 1.0).abs() < 1e-9, "mix fractions sum to 1: {sum}");
    }

    #[test]
    fn divergent_kernel_profile() {
        // Odd lanes do extra work in a data-dependent loop.
        let mut b = KernelBuilder::new("div");
        let out = b.param_u32("out");
        let i = b.global_tid_x();
        let bit = b.and_u32(i, Value::U32(1));
        let odd = b.eq_u32(bit, Value::U32(1));
        let acc = b.var_u32(Value::U32(0));
        b.if_(odd, |b| {
            b.for_range_u32(Value::U32(0), Value::U32(32), 1, |b, j| {
                let n = b.add_u32(acc, j);
                b.assign(acc, n);
            });
        });
        let oi = b.index(out, i, 4);
        b.st_global_u32(oi, acc);
        let k = b.build().unwrap();

        let (mut dev, buf) = device_with(256);
        let p =
            characterize_launch(&mut dev, &k, &LaunchConfig::new(2, 128), &[buf.arg()]).unwrap();
        assert!(p.get("div_branch_frac") > 0.0, "guard branch diverges");
        assert!(
            p.get("div_simd_activity") < 0.8,
            "half the lanes idle through the loop: {}",
            p.get("div_simd_activity")
        );
        assert!(p.get("div_warp_instr_frac") > 0.3);
    }

    #[test]
    fn reuse_heavy_kernel_profile() {
        // Every thread reads the same small table repeatedly.
        let mut b = KernelBuilder::new("reuse");
        let table = b.param_u32("table");
        let out = b.param_u32("out");
        let i = b.global_tid_x();
        let acc = b.var_f32(Value::F32(0.0));
        b.for_range_u32(Value::U32(0), Value::U32(16), 1, |b, j| {
            let sel = b.rem_u32(j, Value::U32(8));
            let ta = b.index(table, sel, 4);
            let v = b.ld_global_f32(ta);
            let n = b.add_f32(acc, v);
            b.assign(acc, n);
        });
        let oi = b.index(out, i, 4);
        b.st_global_f32(oi, acc);
        let k = b.build().unwrap();

        let mut dev = Device::new();
        let table = dev.alloc_f32(&[1.0; 8]);
        let buf = dev.alloc_zeroed_f32(128);
        let p = characterize_launch(
            &mut dev,
            &k,
            &LaunchConfig::new(1, 128),
            &[table.arg(), buf.arg()],
        )
        .unwrap();
        assert!(p.get("loc_reuse_le16") > 0.9, "table reuse is near");
        assert!(p.get("loc_cold_frac") < 0.1);
        assert!(p.get("share_inter_warp") > 0.0, "table shared across warps");
    }

    #[test]
    fn barrier_and_shared_kernel_profile() {
        let mut b = KernelBuilder::new("smem");
        let smem = b.alloc_shared(128 * 4);
        let tid = b.var_u32(b.tid_x());
        let sa = b.index(smem, tid, 4);
        b.st_shared_u32(sa, tid);
        b.barrier();
        let nb = b.sub_u32(Value::U32(127), tid);
        let na = b.index(smem, nb, 4);
        let v = b.ld_shared_u32(na);
        let _ = v;
        b.ret();
        let k = b.build().unwrap();

        let mut dev = Device::new();
        let p = characterize_launch(&mut dev, &k, &LaunchConfig::new(4, 128), &[]).unwrap();
        assert!(p.get("mix_mem_shared") > 0.0);
        assert!(p.get("sync_barrier_kinstr") > 0.0);
        assert_eq!(
            p.get("smem_bank_conflict"),
            1.0,
            "reversal is conflict-free"
        );
    }

    #[test]
    fn profiler_accumulates_multiple_launches() {
        let mut b = KernelBuilder::new("tiny");
        let out = b.param_u32("out");
        let i = b.global_tid_x();
        let oi = b.index(out, i, 4);
        b.st_global_u32(oi, i);
        let k = b.build().unwrap();

        let mut dev = Device::new();
        let buf = dev.alloc_zeroed_u32(64);
        let mut profiler = Profiler::new();
        for _ in 0..3 {
            dev.launch_observed(&k, &LaunchConfig::new(2, 32), &[buf.arg()], &mut profiler)
                .unwrap();
        }
        let p = profiler.finish("tiny_x3");
        assert_eq!(p.raw().total_threads, 3 * 64);
        assert_eq!(p.raw().blocks, 6);
        assert!(p.stats().warp_instrs > 0);
        assert_eq!(p.name(), "tiny_x3");
    }
}
