//! Block-sharded launch execution: the std-only parallel path that runs
//! one launch's blocks across threads and reduces the shard observers
//! back to a state bit-identical to serial execution.
//!
//! # How a sharded launch runs
//!
//! 1. The master [`Profiler`] sees `on_launch` (launch shape, ILP fold).
//! 2. The grid's blocks are split into ≤ `threads` contiguous ranges;
//!    each range executes on a [`Device::fork`] with its own copy of
//!    global memory, streaming into a fresh [`Profiler::shard`].
//! 3. In ascending block order, each shard is folded into the master
//!    ([`MergeableObserver::merge`]), its stats summed, and its global
//!    writes absorbed ([`Device::absorb_writes`]).
//! 4. The master sees `on_launch_end` with the summed stats — exactly
//!    the stats the serial launch reports.
//!
//! # Safety contract
//!
//! Sharding is only applied when [`Kernel::is_block_shardable`] holds
//! (no global atomics in the IR — see its docs for why plain global
//! stores are fine under the CUDA block-independence model). Kernels
//! that fail the check, single-block grids, and `threads <= 1` all fall
//! back to the serial path, so this function is always safe to call.

use std::thread;

use gwc_simt::exec::Device;
use gwc_simt::instr::Value;
use gwc_simt::kernel::Kernel;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::trace::{LaunchStats, TraceObserver};
use gwc_simt::SimtError;

use crate::merge::{merge_stats, MergeableObserver};
use crate::profile::KernelProfile;
use crate::profiler::Profiler;

/// Minimum blocks per shard; below this the fork + merge overhead beats
/// any speedup, so the launch runs serially.
const MIN_BLOCKS_PER_SHARD: usize = 2;

/// Runs one launch into `profiler`, sharding its blocks across up to
/// `threads` threads when the kernel meets the block-sharding contract,
/// and falling back to [`Device::launch_observed`] otherwise. The
/// profiler ends up in a state bit-identical to the serial path either
/// way.
///
/// # Errors
///
/// Propagates any [`SimtError`]; with several failing shards, the error
/// of the lowest block range wins (the one serial execution would have
/// hit first). The instruction budget applies per shard.
pub fn profile_launch_sharded(
    device: &mut Device,
    kernel: &Kernel,
    config: &LaunchConfig,
    args: &[Value],
    profiler: &mut Profiler,
    threads: usize,
) -> Result<LaunchStats, SimtError> {
    let blocks = config.blocks();
    let shards = threads.min(blocks / MIN_BLOCKS_PER_SHARD);
    let blocker = kernel.shard_blocker();
    if shards <= 1 || blocker.is_some() {
        // Only a *fallback* when parallelism was actually requested:
        // surface why this launch runs serially (the shardability
        // contract failed, or the grid is too small to split).
        if threads > 1 {
            if let Some(rec) = gwc_obs::recorder() {
                let reason = blocker.unwrap_or("too-few-blocks");
                rec.record_shard_fallback(kernel.name(), reason);
                rec.add_counter("shard.serial_fallbacks", 1);
            }
        }
        return device.launch_observed(kernel, config, args, profiler);
    }

    config.validate()?;
    kernel.check_args(args)?;
    profiler.on_launch(kernel, config);
    // Every launch counts its backend exactly once: serial launches in
    // `launch_observed`, sharded launches here (shards inherit the
    // backend through `fork`, so one launch = one engine).
    gwc_obs::count(device.backend().counter_name(), 1);

    // One relaxed load + branch when no recorder is installed.
    let launch_t0 = gwc_obs::enabled().then(std::time::Instant::now);
    let base = device.global_image().to_vec();
    // Shards must observe on the master's tier or the merge would mix
    // exact and sketch state; capture it before the borrow moves into
    // the worker closures.
    let tier = profiler.tier();
    let dev = &*device;
    let results: Vec<Result<(Device, Profiler, LaunchStats), SimtError>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|i| {
                let first = (blocks * i / shards) as u32;
                let last = (blocks * (i + 1) / shards) as u32;
                scope.spawn(move || {
                    // Worker threads have no inherited span stack, so
                    // the observe span carries an explicit path.
                    let t0 = gwc_obs::enabled().then(std::time::Instant::now);
                    let _observe = gwc_obs::span!("shard/observe");
                    let mut shard_dev = dev.fork();
                    let mut shard = Profiler::shard_with(kernel, config, tier);
                    let stats =
                        shard_dev.run_block_range(kernel, config, args, first, last, &mut shard)?;
                    if let Some(t0) = t0 {
                        gwc_obs::hist("shard.observe_ns", t0.elapsed().as_nanos() as u64);
                    }
                    Ok((shard_dev, shard, stats))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });

    let mut total = LaunchStats::default();
    // Exec profiles merge exactly like the shard observers: elementwise,
    // in ascending block order (the merge is commutative anyway).
    let mut exec_total: Option<gwc_simt::profile::ExecProfile> = None;
    {
        let _merge = gwc_obs::span!("shard/merge");
        for result in results {
            let t0 = gwc_obs::enabled().then(std::time::Instant::now);
            let (mut shard_dev, shard, stats) = result?;
            profiler.merge(shard);
            merge_stats(&mut total, &stats);
            if let Some(shard_exec) = shard_dev.take_exec_profile() {
                match &mut exec_total {
                    Some(t) => t.merge(&shard_exec),
                    None => exec_total = Some(shard_exec),
                }
            }
            device.absorb_writes(&base, &shard_dev);
            if let Some(t0) = t0 {
                gwc_obs::hist("shard.merge_ns", t0.elapsed().as_nanos() as u64);
            }
        }
    }
    profiler.on_launch_end(&total);
    let wall_ns = launch_t0.map(|t0| t0.elapsed().as_nanos() as u64);
    gwc_simt::trace::record_launch(kernel.name(), &total, wall_ns.unwrap_or(0));
    if let Some(exec) = &exec_total {
        gwc_simt::trace::record_exec_profile(kernel, exec);
    }
    // Deposit the merged profile (or clear a stale one) so
    // `take_exec_profile` works the same as after a serial launch.
    device.store_exec_profile(exec_total);
    if let Some(ns) = wall_ns {
        gwc_obs::hist("launch.latency_ns", ns);
    }
    gwc_obs::count("shard.sharded_launches", 1);
    gwc_obs::count("shard.shards", shards as u64);
    // The serial/fallback path ticks inside `launch_observed`; the
    // sharded path owns the launch boundary, so it ticks here — exactly
    // one launch tick either way.
    gwc_obs::progress::tick(&gwc_obs::progress::LAUNCHES, 1);
    Ok(total)
}

/// Characterizes a single launch like
/// [`characterize_launch`](crate::characterize_launch), but sharded
/// across up to `threads` threads.
///
/// # Errors
///
/// Propagates any [`SimtError`] from the launch.
pub fn characterize_launch_sharded(
    device: &mut Device,
    kernel: &Kernel,
    config: &LaunchConfig,
    args: &[Value],
    threads: usize,
) -> Result<KernelProfile, SimtError> {
    let mut profiler = Profiler::new();
    profile_launch_sharded(device, kernel, config, args, &mut profiler, threads)?;
    Ok(profiler.finish(kernel.name()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gwc_simt::builder::KernelBuilder;

    /// A kernel that stresses every observer: divergence, shared memory
    /// with barrier, global loads of a shared table (reuse + sharing),
    /// and a strided store.
    fn busy_kernel() -> Kernel {
        let mut b = KernelBuilder::new("busy");
        let table = b.param_u32("table");
        let out = b.param_u32("out");
        let smem = b.alloc_shared(64 * 4);
        let i = b.global_tid_x();
        let tid = b.var_u32(b.tid_x());
        let sa = b.index(smem, tid, 4);
        b.st_shared_u32(sa, i);
        b.barrier();
        let bit = b.and_u32(i, Value::U32(1));
        let odd = b.eq_u32(bit, Value::U32(1));
        let acc = b.var_f32(Value::F32(0.0));
        b.if_(odd, |b| {
            b.for_range_u32(Value::U32(0), Value::U32(8), 1, |b, j| {
                let sel = b.rem_u32(j, Value::U32(16));
                let ta = b.index(table, sel, 4);
                let v = b.ld_global_f32(ta);
                let n = b.add_f32(acc, v);
                b.assign(acc, n);
            });
        });
        let oi = b.index(out, i, 4);
        b.st_global_f32(oi, acc);
        b.build().unwrap()
    }

    fn setup(dev: &mut Device) -> Vec<Value> {
        let table = dev.alloc_f32(&[1.5; 16]);
        let out = dev.alloc_zeroed_f32(64 * 24);
        vec![table.arg(), out.arg()]
    }

    #[test]
    fn sharded_profile_is_bit_identical_to_serial() {
        let k = busy_kernel();
        let config = LaunchConfig::new(24, 64);

        let mut dev_s = Device::new();
        let args = setup(&mut dev_s);
        let serial = crate::characterize_launch(&mut dev_s, &k, &config, &args).unwrap();

        for threads in [2, 3, 4, 8] {
            let mut dev_p = Device::new();
            let args = setup(&mut dev_p);
            let sharded =
                characterize_launch_sharded(&mut dev_p, &k, &config, &args, threads).unwrap();
            for (i, (a, b)) in serial.values().iter().zip(sharded.values()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "dim {i} differs at {threads} threads: {a} vs {b}"
                );
            }
            assert_eq!(serial.raw(), sharded.raw());
            assert_eq!(
                dev_s.global_image(),
                dev_p.global_image(),
                "global memory diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn sharded_sketch_tier_is_bit_identical_to_serial() {
        use crate::sketch::ObserverTier;

        let k = busy_kernel();
        let config = LaunchConfig::new(24, 64);

        let mut dev_s = Device::new();
        let args = setup(&mut dev_s);
        let mut serial_p = Profiler::with_tier(ObserverTier::Sketch);
        profile_launch_sharded(&mut dev_s, &k, &config, &args, &mut serial_p, 1).unwrap();
        let serial = serial_p.finish("busy");

        for threads in [2, 3, 4, 8] {
            let mut dev_p = Device::new();
            let args = setup(&mut dev_p);
            let mut sharded_p = Profiler::with_tier(ObserverTier::Sketch);
            profile_launch_sharded(&mut dev_p, &k, &config, &args, &mut sharded_p, threads)
                .unwrap();
            assert_eq!(sharded_p.tier(), ObserverTier::Sketch);
            let sharded = sharded_p.finish("busy");
            for (i, (a, b)) in serial.values().iter().zip(sharded.values()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "sketch dim {i} differs at {threads} threads: {a} vs {b}"
                );
            }
            assert_eq!(serial.raw(), sharded.raw());
        }
    }

    #[test]
    fn exec_profiles_are_thread_count_invariant() {
        use gwc_simt::profile::ExecProfile;

        let k = busy_kernel();
        let config = LaunchConfig::new(24, 64);
        let mut reference: Option<ExecProfile> = None;
        for threads in [1usize, 2, 4, 8] {
            let mut dev = Device::new();
            dev.set_exec_profiling(Some(true));
            let args = setup(&mut dev);
            characterize_launch_sharded(&mut dev, &k, &config, &args, threads).unwrap();
            let exec = dev.take_exec_profile().expect("profile collected");
            let total = exec.total();
            assert!(total.warp_uops > 0 && total.lane_uops > 0);
            // Shard merging is elementwise addition, so the merged
            // profile must be bit-identical no matter how the blocks
            // were split.
            match &reference {
                Some(r) => assert_eq!(r, &exec, "exec profile differs at {threads} threads"),
                None => reference = Some(exec),
            }
        }
    }

    #[test]
    fn global_atomics_fall_back_to_serial() {
        let mut b = KernelBuilder::new("atomic");
        let out = b.param_u32("out");
        let i = b.global_tid_x();
        let slot = b.rem_u32(i, Value::U32(4));
        let oa = b.index(out, slot, 4);
        b.atomic_add_global_u32(oa, Value::U32(1));
        let k = b.build().unwrap();
        assert!(!k.is_block_shardable());

        let config = LaunchConfig::new(16, 32);
        let mut dev_s = Device::new();
        let out_s = dev_s.alloc_zeroed_u32(4);
        let serial = crate::characterize_launch(&mut dev_s, &k, &config, &[out_s.arg()]).unwrap();

        let mut dev_p = Device::new();
        let out_p = dev_p.alloc_zeroed_u32(4);
        let sharded =
            characterize_launch_sharded(&mut dev_p, &k, &config, &[out_p.arg()], 4).unwrap();
        assert_eq!(serial.values(), sharded.values());
        assert_eq!(dev_s.read_u32(&out_s), dev_p.read_u32(&out_p));
        assert_eq!(dev_s.read_u32(&out_s), vec![128; 4]);
    }

    #[test]
    fn fallback_reason_reaches_the_recorder() {
        use gwc_obs::metrics::MetricsRecorder;
        use std::sync::Arc;

        // A kernel with inter-block atomics: outside the block-sharding
        // contract, so a parallel request must fall back to serial and
        // say why.
        let mut b = KernelBuilder::new("atomic_fallback_probe");
        let out = b.param_u32("out");
        let i = b.global_tid_x();
        let slot = b.rem_u32(i, Value::U32(2));
        let oa = b.index(out, slot, 4);
        b.atomic_add_global_u32(oa, Value::U32(1));
        let k = b.build().unwrap();
        assert_eq!(k.shard_blocker(), Some("global-atomics"));

        let rec = Arc::new(MetricsRecorder::default());
        let guard = gwc_obs::install(rec.clone());
        let mut dev = Device::new();
        let out = dev.alloc_zeroed_u32(2);
        characterize_launch_sharded(&mut dev, &k, &LaunchConfig::new(8, 32), &[out.arg()], 4)
            .unwrap();
        drop(guard);

        let snap = rec.snapshot();
        let fb = snap
            .fallbacks
            .iter()
            .find(|f| f.kernel == "atomic_fallback_probe")
            .expect("fallback recorded");
        assert_eq!(fb.reason, "global-atomics");
        assert_eq!(fb.count, 1);
        // The launch itself still retired (through the serial path).
        assert!(snap
            .kernels
            .iter()
            .any(|k| k.name == "atomic_fallback_probe" && k.launches == 1));
    }

    #[test]
    fn no_fallback_recorded_when_serial_was_requested() {
        use gwc_obs::metrics::MetricsRecorder;
        use std::sync::Arc;

        let mut b = KernelBuilder::new("serial_request_probe");
        let out = b.param_u32("out");
        let i = b.global_tid_x();
        let oa = b.index(out, i, 4);
        b.atomic_add_global_u32(oa, Value::U32(1));
        let k = b.build().unwrap();

        let rec = Arc::new(MetricsRecorder::default());
        let guard = gwc_obs::install(rec.clone());
        let mut dev = Device::new();
        let out = dev.alloc_zeroed_u32(8 * 32);
        characterize_launch_sharded(&mut dev, &k, &LaunchConfig::new(8, 32), &[out.arg()], 1)
            .unwrap();
        drop(guard);
        assert!(
            rec.snapshot()
                .fallbacks
                .iter()
                .all(|f| f.kernel != "serial_request_probe"),
            "threads=1 is a request for serial execution, not a fallback"
        );
    }

    #[test]
    fn sharded_write_back_reproduces_serial_memory() {
        let mut b = KernelBuilder::new("stream");
        let out = b.param_u32("out");
        let i = b.global_tid_x();
        let sq = b.mul_u32(i, i);
        let oi = b.index(out, i, 4);
        b.st_global_u32(oi, sq);
        let k = b.build().unwrap();

        let n = 1024;
        let config = LaunchConfig::linear(n, 64);
        let mut dev = Device::new();
        let out = dev.alloc_zeroed_u32(n as usize);
        characterize_launch_sharded(&mut dev, &k, &config, &[out.arg()], 4).unwrap();
        let got = dev.read_u32(&out);
        for (i, &v) in got.iter().enumerate() {
            assert_eq!(v, (i as u32).wrapping_mul(i as u32), "element {i}");
        }
    }
}
