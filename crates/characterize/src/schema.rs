//! The canonical characteristic vector layout.
//!
//! Every kernel is summarized by the same 33-dimensional vector. The
//! dimensions are grouped so subspace analyses (branch divergence, memory
//! coalescing, ...) can select coherent column subsets, mirroring the
//! paper's workload-subspace studies.

/// A characteristic's group, used for subspace selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// Dynamic instruction mix (fractions of thread-level instructions).
    Mix,
    /// Instruction-level parallelism within a thread.
    Ilp,
    /// Branch-divergence behaviour.
    Divergence,
    /// Global-memory coalescing behaviour.
    Coalescing,
    /// Shared-memory bank behaviour.
    SharedMem,
    /// Temporal locality (reuse distances) of global memory.
    Locality,
    /// Inter-warp / inter-block data sharing.
    Sharing,
    /// Synchronization intensity.
    Sync,
    /// Kernel launch shape and footprint.
    Shape,
}

impl Group {
    /// Short lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            Group::Mix => "mix",
            Group::Ilp => "ilp",
            Group::Divergence => "divergence",
            Group::Coalescing => "coalescing",
            Group::SharedMem => "shared_mem",
            Group::Locality => "locality",
            Group::Sharing => "sharing",
            Group::Sync => "sync",
            Group::Shape => "shape",
        }
    }
}

/// Definition of one characteristic dimension.
#[derive(Debug, Clone, Copy)]
pub struct CharacteristicDef {
    /// Stable snake_case identifier (also the column name in reports).
    pub name: &'static str,
    /// Group for subspace selection.
    pub group: Group,
    /// One-line description.
    pub desc: &'static str,
}

/// The canonical schema: 33 microarchitecture-independent characteristics.
pub const SCHEMA: &[CharacteristicDef] = &[
    // --- instruction mix (fractions of thread-level dynamic instructions) ---
    CharacteristicDef {
        name: "mix_int_alu",
        group: Group::Mix,
        desc: "integer ALU fraction",
    },
    CharacteristicDef {
        name: "mix_fp_alu",
        group: Group::Mix,
        desc: "floating-point ALU fraction",
    },
    CharacteristicDef {
        name: "mix_sfu",
        group: Group::Mix,
        desc: "special-function-unit fraction",
    },
    CharacteristicDef {
        name: "mix_mem_global",
        group: Group::Mix,
        desc: "global load/store fraction",
    },
    CharacteristicDef {
        name: "mix_mem_shared",
        group: Group::Mix,
        desc: "shared load/store fraction",
    },
    CharacteristicDef {
        name: "mix_mem_other",
        group: Group::Mix,
        desc: "local+const access fraction",
    },
    CharacteristicDef {
        name: "mix_ctrl",
        group: Group::Mix,
        desc: "control-flow fraction",
    },
    CharacteristicDef {
        name: "mix_sync",
        group: Group::Mix,
        desc: "barrier fraction",
    },
    CharacteristicDef {
        name: "mix_atomic",
        group: Group::Mix,
        desc: "atomic fraction",
    },
    CharacteristicDef {
        name: "mix_move",
        group: Group::Mix,
        desc: "move/select/convert fraction",
    },
    // --- ILP -----------------------------------------------------------------
    CharacteristicDef {
        name: "ilp_dataflow",
        group: Group::Ilp,
        desc: "per-thread instrs / register-dataflow critical path",
    },
    CharacteristicDef {
        name: "ilp_dep_distance",
        group: Group::Ilp,
        desc: "mean producer-consumer distance in instructions",
    },
    // --- branch divergence ---------------------------------------------------
    CharacteristicDef {
        name: "div_branch_density",
        group: Group::Divergence,
        desc: "conditional branches per warp instruction",
    },
    CharacteristicDef {
        name: "div_branch_frac",
        group: Group::Divergence,
        desc: "fraction of dynamic branches that diverge the warp",
    },
    CharacteristicDef {
        name: "div_simd_activity",
        group: Group::Divergence,
        desc: "mean active/live lane ratio per warp instruction",
    },
    CharacteristicDef {
        name: "div_warp_instr_frac",
        group: Group::Divergence,
        desc: "fraction of warp instructions issued diverged",
    },
    // --- memory coalescing ---------------------------------------------------
    CharacteristicDef {
        name: "coal_segments_per_access",
        group: Group::Coalescing,
        desc: "mean 128B segments touched per global warp access",
    },
    CharacteristicDef {
        name: "coal_unit_stride_frac",
        group: Group::Coalescing,
        desc: "fraction of global accesses with unit-stride lanes",
    },
    CharacteristicDef {
        name: "coal_broadcast_frac",
        group: Group::Coalescing,
        desc: "fraction of global accesses where lanes share one address",
    },
    CharacteristicDef {
        name: "coal_scatter_frac",
        group: Group::Coalescing,
        desc: "fraction of global accesses touching > 8 segments",
    },
    // --- shared memory -------------------------------------------------------
    CharacteristicDef {
        name: "smem_bank_conflict",
        group: Group::SharedMem,
        desc: "mean serialization degree of shared accesses (1 = conflict-free)",
    },
    // --- temporal locality ---------------------------------------------------
    CharacteristicDef {
        name: "loc_reuse_le16",
        group: Group::Locality,
        desc: "global-line reuses with stack distance <= 16 lines",
    },
    CharacteristicDef {
        name: "loc_reuse_le256",
        group: Group::Locality,
        desc: "reuses with stack distance <= 256 lines",
    },
    CharacteristicDef {
        name: "loc_reuse_le4096",
        group: Group::Locality,
        desc: "reuses with stack distance <= 4096 lines",
    },
    CharacteristicDef {
        name: "loc_cold_frac",
        group: Group::Locality,
        desc: "fraction of line touches that are first-touch",
    },
    // --- data sharing ---------------------------------------------------------
    CharacteristicDef {
        name: "share_inter_warp",
        group: Group::Sharing,
        desc: "fraction of lines touched by more than one warp",
    },
    CharacteristicDef {
        name: "share_inter_block",
        group: Group::Sharing,
        desc: "fraction of lines touched by more than one block",
    },
    // --- synchronization -------------------------------------------------------
    CharacteristicDef {
        name: "sync_barrier_kinstr",
        group: Group::Sync,
        desc: "barriers per 1000 warp instructions",
    },
    CharacteristicDef {
        name: "sync_atomic_kinstr",
        group: Group::Sync,
        desc: "atomics per 1000 thread instructions",
    },
    // --- kernel shape ----------------------------------------------------------
    CharacteristicDef {
        name: "shape_log_threads",
        group: Group::Shape,
        desc: "log2 of total threads",
    },
    CharacteristicDef {
        name: "shape_log_instrs_per_thread",
        group: Group::Shape,
        desc: "log2 of mean dynamic instructions per thread",
    },
    CharacteristicDef {
        name: "shape_block_occupancy",
        group: Group::Shape,
        desc: "threads per block / 1024",
    },
    CharacteristicDef {
        name: "shape_log_footprint",
        group: Group::Shape,
        desc: "log2 of global footprint in 128B lines",
    },
];

/// Version of the characteristic schema *and* of the observer semantics
/// behind it. The persistent profile cache mixes this into every cache
/// key, so bump it whenever a characteristic is added, removed,
/// reordered, or when an observer's computation changes in any way that
/// can alter a profile's values — the cache cannot see those changes
/// through the kernel IR fingerprint alone.
pub const VERSION: u32 = 1;

/// Number of characteristic dimensions.
pub fn len() -> usize {
    SCHEMA.len()
}

/// Index of characteristic `name`.
///
/// # Panics
///
/// Panics if `name` is not in the schema (programming error).
pub fn index_of(name: &str) -> usize {
    SCHEMA
        .iter()
        .position(|d| d.name == name)
        .unwrap_or_else(|| panic!("unknown characteristic `{name}`"))
}

/// Column indices belonging to `group`.
pub fn indices_of(group: Group) -> Vec<usize> {
    SCHEMA
        .iter()
        .enumerate()
        .filter(|(_, d)| d.group == group)
        .map(|(i, _)| i)
        .collect()
}

/// Column indices of the paper's *branch divergence* subspace:
/// the divergence group plus the control-flow mix fraction.
pub fn divergence_subspace() -> Vec<usize> {
    let mut idx = indices_of(Group::Divergence);
    idx.push(index_of("mix_ctrl"));
    idx.sort_unstable();
    idx
}

/// Column indices of the paper's *memory coalescing* subspace:
/// the coalescing group plus the global-memory mix fraction.
pub fn coalescing_subspace() -> Vec<usize> {
    let mut idx = indices_of(Group::Coalescing);
    idx.push(index_of("mix_mem_global"));
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = SCHEMA.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SCHEMA.len());
    }

    #[test]
    fn expected_dimension_count() {
        assert_eq!(len(), 33);
    }

    #[test]
    fn index_of_roundtrip() {
        for (i, d) in SCHEMA.iter().enumerate() {
            assert_eq!(index_of(d.name), i);
        }
    }

    #[test]
    #[should_panic(expected = "unknown characteristic")]
    fn index_of_unknown_panics() {
        index_of("nope");
    }

    #[test]
    fn groups_partition_schema() {
        let total: usize = [
            Group::Mix,
            Group::Ilp,
            Group::Divergence,
            Group::Coalescing,
            Group::SharedMem,
            Group::Locality,
            Group::Sharing,
            Group::Sync,
            Group::Shape,
        ]
        .iter()
        .map(|&g| indices_of(g).len())
        .sum();
        assert_eq!(total, SCHEMA.len());
    }

    #[test]
    fn subspaces_are_nonempty_and_sorted() {
        for sub in [divergence_subspace(), coalescing_subspace()] {
            assert!(sub.len() >= 5);
            assert!(sub.windows(2).all(|w| w[0] < w[1]));
            assert!(sub.iter().all(|&i| i < len()));
        }
    }
}
