//! Versioned, bit-exact serialization of [`KernelProfile`].
//!
//! The persistent profile cache stores profiles through the shared
//! `gwc-obs` JSON layer rather than a second hand-rolled format. The one
//! subtlety is floating point: a cached profile must be **bit-identical**
//! to a freshly computed one (the same contract the parallel runtime
//! honours against the serial one), and a decimal text round-trip does
//! not guarantee that for every `f64`. Characteristic values therefore
//! serialize as their raw IEEE-754 bit patterns (`f64::to_bits`, a
//! [`Json::UInt`], which round-trips at full u64 precision); every raw
//! counter is a `u64` already.

use gwc_obs::json::Json;
use gwc_simt::trace::LaunchStats;

use crate::profile::{KernelProfile, RawCounts};
use crate::schema;

/// Version of the serialized profile layout. Bump on any change to the
/// field set or encoding below; readers reject other versions (and the
/// cache then recomputes).
pub const PROFILE_FORMAT_VERSION: u32 = 1;

fn uint_field(name: &str, v: u64) -> (String, Json) {
    (name.to_string(), Json::UInt(v))
}

fn raw_to_json(raw: &RawCounts) -> Json {
    Json::Obj(vec![
        uint_field("warp_instrs", raw.warp_instrs),
        uint_field("thread_instrs", raw.thread_instrs),
        uint_field("global_accesses", raw.global_accesses),
        uint_field("global_transactions", raw.global_transactions),
        uint_field("shared_accesses", raw.shared_accesses),
        uint_field("shared_serialized", raw.shared_serialized),
        uint_field("sfu_thread_instrs", raw.sfu_thread_instrs),
        uint_field("barriers", raw.barriers),
        uint_field("atomic_thread_ops", raw.atomic_thread_ops),
        uint_field("total_threads", raw.total_threads),
        uint_field("threads_per_block", raw.threads_per_block),
        uint_field("blocks", raw.blocks),
        uint_field("footprint_lines", raw.footprint_lines),
    ])
}

fn stats_to_json(stats: &LaunchStats) -> Json {
    Json::Obj(vec![
        uint_field("warp_instrs", stats.warp_instrs),
        uint_field("thread_instrs", stats.thread_instrs),
        uint_field("blocks", stats.blocks),
        uint_field("warps", stats.warps),
        uint_field("barriers", stats.barriers),
    ])
}

/// Serializes one profile. The characteristic vector is emitted as raw
/// `f64` bit patterns under `values_bits`.
pub fn profile_to_json(profile: &KernelProfile) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(profile.name().to_string())),
        (
            "values_bits".to_string(),
            Json::Arr(
                profile
                    .values()
                    .iter()
                    .map(|v| Json::UInt(v.to_bits()))
                    .collect(),
            ),
        ),
        ("raw".to_string(), raw_to_json(profile.raw())),
        ("stats".to_string(), stats_to_json(profile.stats())),
    ])
}

fn get_u64(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key)?.as_u64()
}

fn raw_from_json(doc: &Json) -> Option<RawCounts> {
    Some(RawCounts {
        warp_instrs: get_u64(doc, "warp_instrs")?,
        thread_instrs: get_u64(doc, "thread_instrs")?,
        global_accesses: get_u64(doc, "global_accesses")?,
        global_transactions: get_u64(doc, "global_transactions")?,
        shared_accesses: get_u64(doc, "shared_accesses")?,
        shared_serialized: get_u64(doc, "shared_serialized")?,
        sfu_thread_instrs: get_u64(doc, "sfu_thread_instrs")?,
        barriers: get_u64(doc, "barriers")?,
        atomic_thread_ops: get_u64(doc, "atomic_thread_ops")?,
        total_threads: get_u64(doc, "total_threads")?,
        threads_per_block: get_u64(doc, "threads_per_block")?,
        blocks: get_u64(doc, "blocks")?,
        footprint_lines: get_u64(doc, "footprint_lines")?,
    })
}

fn stats_from_json(doc: &Json) -> Option<LaunchStats> {
    Some(LaunchStats {
        warp_instrs: get_u64(doc, "warp_instrs")?,
        thread_instrs: get_u64(doc, "thread_instrs")?,
        blocks: get_u64(doc, "blocks")?,
        warps: get_u64(doc, "warps")?,
        barriers: get_u64(doc, "barriers")?,
    })
}

/// Deserializes one profile. Returns `None` — never panics — on any
/// missing field, type mismatch, or a characteristic vector whose length
/// disagrees with the current schema, so corrupt cache entries degrade
/// to a recompute.
pub fn profile_from_json(doc: &Json) -> Option<KernelProfile> {
    let name = doc.get("name")?.as_str()?;
    let bits = doc.get("values_bits")?.as_arr()?;
    if bits.len() != schema::len() {
        return None;
    }
    let values: Vec<f64> = bits
        .iter()
        .map(|b| b.as_u64().map(f64::from_bits))
        .collect::<Option<_>>()?;
    let raw = raw_from_json(doc.get("raw")?)?;
    let stats = stats_from_json(doc.get("stats")?)?;
    Some(KernelProfile::new(name, values, raw, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KernelProfile {
        let mut values = vec![0.0; schema::len()];
        // Values that a decimal text round-trip can mangle: a denormal,
        // a negative zero, and an irrational fraction.
        values[0] = f64::from_bits(1);
        values[1] = -0.0;
        values[2] = 1.0 / 3.0;
        values[3] = 0.123_456_789_012_345_67;
        KernelProfile::new(
            "k",
            values,
            RawCounts {
                warp_instrs: u64::MAX,
                thread_instrs: 42,
                ..RawCounts::default()
            },
            LaunchStats {
                warp_instrs: u64::MAX,
                thread_instrs: 1,
                blocks: 2,
                warps: 3,
                barriers: 4,
            },
        )
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let p = sample();
        let text = profile_to_json(&p).render();
        let back = profile_from_json(&gwc_obs::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.name(), p.name());
        assert_eq!(back.raw(), p.raw());
        assert_eq!(back.stats(), p.stats());
        for (a, b) in p.values().iter().zip(back.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn malformed_documents_return_none() {
        let good = profile_to_json(&sample());
        // Wrong vector length.
        let mut short = good.clone();
        if let Json::Obj(fields) = &mut short {
            for (k, v) in fields.iter_mut() {
                if k == "values_bits" {
                    *v = Json::Arr(vec![Json::UInt(0)]);
                }
            }
        }
        assert!(profile_from_json(&short).is_none());
        // Missing counters object.
        let Json::Obj(mut fields) = good else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "raw");
        assert!(profile_from_json(&Json::Obj(fields)).is_none());
        // Not an object at all.
        assert!(profile_from_json(&Json::Null).is_none());
    }
}
