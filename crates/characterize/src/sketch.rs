//! Bounded-memory streaming tier for the locality observer.
//!
//! The exact [`LocalityObserver`](crate::locality::LocalityObserver)
//! keeps one map entry per distinct 128-byte line for the lifetime of a
//! launch, so its memory grows linearly with the address footprint. The
//! sketch tier replaces that state with two fixed-size summaries chosen
//! so that everything the profile schema actually consumes is either
//! *exact* or carries a declared error bound (see [`bounds`]):
//!
//! 1. **Bounded recency window** of the `W = REUSE_THRESHOLDS[2] + 1`
//!    most recently touched distinct lines, running the same
//!    last-access-time + Fenwick algorithm as the exact observer. A
//!    touch that hits the window has a true LRU stack distance of at
//!    most `REUSE_THRESHOLDS[2]`, so the three bounded histogram
//!    buckets the schema reports (`reuse_cdf(0..=2)`) are **exact** —
//!    the window is precisely the region the thresholds can see. A
//!    touch that misses the window is either a cold touch or a reuse at
//!    distance `> REUSE_THRESHOLDS[2]`; only that *split* is estimated.
//! 2. **KMV (bottom-k) distinct sample** over line ids: the `K`
//!    smallest `splitmix64` images of the lines seen, each carrying the
//!    line's first-toucher warp and sharing flags. It yields the
//!    footprint estimate used to split window misses into cold vs. far
//!    reuse, and an unbiased sample for the inter-warp/inter-block
//!    sharing fractions. `splitmix64` is a bijection on `u64`, so
//!    distinct lines can never collide and membership tests are exact.
//!
//! When a launch's footprint fits both summaries (`<= K` distinct lines
//! and `<= W` window slots) every derived characteristic is
//! bit-identical to the exact tier. Shard merges reproduce the serial
//! sketch bit for bit (the same cross-shard stack-merge argument as the
//! exact observer, restricted to the window), so the sketch tier keeps
//! the any-thread-count determinism guarantee.
//!
//! A tiny space-saving top-K structure rides along as a *diagnostic*
//! (hottest lines by touch count); it feeds no profile value.

use std::collections::BTreeMap;

use gwc_simt::instr::Space;
use gwc_simt::trace::{MemEvent, TraceObserver};

use crate::coalescing::SEGMENT_BYTES;
use crate::fxhash::FxHashMap;
use crate::locality::{Fenwick, REUSE_THRESHOLDS};

/// Which implementation backs the heavy observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObserverTier {
    /// Full per-line state; the bit-identical oracle (default).
    #[default]
    Exact,
    /// Bounded-memory sketches with declared error bounds.
    Sketch,
}

impl ObserverTier {
    pub fn name(self) -> &'static str {
        match self {
            ObserverTier::Exact => "exact",
            ObserverTier::Sketch => "sketch",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "exact" => Some(ObserverTier::Exact),
            "sketch" => Some(ObserverTier::Sketch),
            _ => None,
        }
    }
}

/// Profiles observed under the sketch tier are *different artifacts*
/// from exact ones (estimated characteristics); this salt is XORed into
/// the workload fingerprint so the two tiers can never alias in the
/// profile or matrix caches.
pub const CACHE_SALT: u64 = 0x9d3c_5f21_7a86_44b1;

/// Recency-window depth in distinct lines. One more than the largest
/// reuse-distance threshold: every in-window reuse lands in a bounded
/// histogram bucket, every eviction corresponds exactly to the exact
/// tier's overflow bucket.
pub const WINDOW_LINES: usize = REUSE_THRESHOLDS[2] as usize + 1;

/// KMV sample size. Relative standard error of the footprint estimate
/// is ~`1/sqrt(K - 1)` ≈ 3.1%.
pub const KMV_K: usize = 1024;

/// Fixed time-axis capacity for the window Fenwick. The live footprint
/// never exceeds `WINDOW_LINES`, so compression always has headroom and
/// the axis never grows.
const SKETCH_CAP: usize = (WINDOW_LINES * 4).next_power_of_two();

/// Number of heavy-hitter lines the diagnostic space-saving sketch
/// tracks.
pub const HOT_LINES: usize = 16;

/// Declared error bounds for sketch-derived characteristics, asserted
/// by the exact-vs-sketch cross-check suite. All bounds are conditional
/// only on the KMV estimate (the reuse histogram buckets are exact):
/// at `K = 1024` the footprint estimator's relative standard error is
/// ~3.1%, and the bounds below sit at roughly 5 standard errors.
pub mod bounds {
    /// Relative error of `footprint_lines` (exact below `KMV_K`).
    pub const FOOTPRINT_REL: f64 = 0.2;
    /// Absolute error of `cold_frac`.
    pub const COLD_FRAC_ABS: f64 = 0.05;
    /// Absolute error of each `reuse_cdf` bucket (numerators exact;
    /// only the far-reuse share of the denominator is estimated).
    pub const REUSE_CDF_ABS: f64 = 0.08;
    /// Absolute error of the inter-warp / inter-block sharing
    /// fractions (binomial error of a >=1024-line uniform sample).
    pub const SHARING_ABS: f64 = 0.10;
}

/// `splitmix64` finalizer: a bijective mixer on `u64`, so distinct line
/// ids map to distinct, uniformly spread hash values.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[derive(Debug, Clone, Copy)]
struct KmvEntry {
    first_warp: (u32, u32),
    multi_warp: bool,
    multi_block: bool,
}

/// Bottom-k distinct sample keyed by `splitmix64(line)`, with exact
/// sharing flags for every surviving entry. The acceptance threshold
/// (the k-th smallest hash) only ever decreases, so a line rejected at
/// its first touch stays rejected and a surviving entry was inserted at
/// the line's true first touch — its flags are exact.
#[derive(Debug, Default)]
struct KmvSketch {
    entries: BTreeMap<u64, KmvEntry>,
}

impl KmvSketch {
    fn observe(&mut self, hash: u64, warp: (u32, u32)) {
        if let Some(e) = self.entries.get_mut(&hash) {
            if e.first_warp != warp {
                e.multi_warp = true;
                if e.first_warp.0 != warp.0 {
                    e.multi_block = true;
                }
            }
            return;
        }
        if self.entries.len() < KMV_K {
            self.entries.insert(
                hash,
                KmvEntry {
                    first_warp: warp,
                    multi_warp: false,
                    multi_block: false,
                },
            );
            return;
        }
        let (&max, _) = self.entries.last_key_value().expect("sketch is full");
        if hash < max {
            self.entries.insert(
                hash,
                KmvEntry {
                    first_warp: warp,
                    multi_warp: false,
                    multi_block: false,
                },
            );
            self.entries.pop_last();
        }
    }

    /// Estimated number of distinct lines: exact while the sample is
    /// not full, the standard `(K - 1) / h_(K)` estimator afterwards.
    fn footprint_estimate(&self) -> f64 {
        if self.entries.len() < KMV_K {
            return self.entries.len() as f64;
        }
        let (&kth, _) = self.entries.last_key_value().expect("sketch is full");
        (KMV_K as f64 - 1.0) * 18_446_744_073_709_551_616.0 / (kth as f64 + 1.0)
    }

    fn sharing(&self, pred: impl Fn(&KmvEntry) -> bool) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let shared = self.entries.values().filter(|e| pred(e)).count();
        shared as f64 / self.entries.len() as f64
    }

    /// Union merge: identical to observing both streams serially. The
    /// k smallest hashes of the union are present in at least one side
    /// (each side keeps its own k smallest), and flag union over the
    /// two sides' exact flags is the serial flag set.
    fn merge(&mut self, later: KmvSketch) {
        for (hash, b) in later.entries {
            match self.entries.entry(hash) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let a = e.get_mut();
                    a.multi_warp = a.multi_warp || b.multi_warp || a.first_warp != b.first_warp;
                    a.multi_block =
                        a.multi_block || b.multi_block || a.first_warp.0 != b.first_warp.0;
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(b);
                }
            }
        }
        while self.entries.len() > KMV_K {
            self.entries.pop_last();
        }
    }

    fn bytes_in_use(&self) -> usize {
        // BTreeMap node overhead is amortized ~2/3 occupancy; count the
        // payload plus a conservative per-entry overhead.
        self.entries.len() * (std::mem::size_of::<(u64, KmvEntry)>() + 16)
    }
}

/// Space-saving heavy hitters over line touches — a diagnostic for
/// "which lines are hottest", not a profile input. Count is an
/// over-estimate by at most `error`.
#[derive(Debug, Default)]
pub struct SpaceSaving {
    entries: Vec<(u32, u64, u64)>, // (line, count, error)
}

impl SpaceSaving {
    pub fn observe(&mut self, line: u32) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == line) {
            e.1 += 1;
            return;
        }
        if self.entries.len() < HOT_LINES {
            self.entries.push((line, 1, 0));
            return;
        }
        let min = self
            .entries
            .iter_mut()
            .min_by_key(|e| (e.1, e.0))
            .expect("table is full");
        *min = (line, min.1 + 1, min.1);
    }

    /// Hottest lines as `(line, count_over_estimate, max_error)`,
    /// sorted by descending count with line id as the tie-break.
    pub fn hot_lines(&self) -> Vec<(u32, u64, u64)> {
        let mut out = self.entries.clone();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Approximate merge: sums counts/errors for common lines, keeps
    /// the top entries. Diagnostic-grade — the profile never reads it.
    pub fn merge(&mut self, later: &SpaceSaving) {
        for &(line, count, error) in &later.entries {
            if let Some(e) = self.entries.iter_mut().find(|e| e.0 == line) {
                e.1 += count;
                e.2 += error;
            } else {
                self.entries.push((line, count, error));
            }
        }
        self.entries
            .sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        self.entries.truncate(HOT_LINES);
    }
}

/// Bounded-memory replacement for `LocalityObserver`: fixed-size
/// recency window + KMV distinct sample + space-saving diagnostic.
/// Peak memory is O(`WINDOW_LINES` + `KMV_K`), independent of the
/// address footprint.
#[derive(Debug)]
pub struct SketchLocalityObserver {
    /// Lines currently inside the recency window, by last access time.
    window: FxHashMap<u32, usize>,
    /// Inverse index `last_time -> line` (times are unique): O(log W)
    /// LRU eviction and deterministic compression order.
    by_time: BTreeMap<usize, u32>,
    fenwick: Fenwick,
    now: usize,
    /// In-window reuses bucketed by [`REUSE_THRESHOLDS`] — exact; an
    /// in-window distance never exceeds `REUSE_THRESHOLDS[2]`.
    hist: [u64; 3],
    /// Touches that missed the window: cold touches plus reuses at
    /// distance `> REUSE_THRESHOLDS[2]`, split via the KMV estimate.
    misses: u64,
    touches: u64,
    kmv: KmvSketch,
    hot: SpaceSaving,
    /// First `WINDOW_LINES` first-touch lines in stream order — the
    /// later-shard side of the cross-shard stack merge. Entries past
    /// the cap can never resolve to an in-window distance (their merge
    /// position alone exceeds every threshold), so the cap loses
    /// nothing. While this list is below its cap no eviction can have
    /// happened yet, so "miss" and "first touch" coincide exactly.
    first_touch_order: Vec<u32>,
}

impl Default for SketchLocalityObserver {
    fn default() -> Self {
        Self {
            window: FxHashMap::default(),
            by_time: BTreeMap::new(),
            fenwick: Fenwick::new(SKETCH_CAP),
            now: 0,
            hist: [0; 3],
            misses: 0,
            touches: 0,
            kmv: KmvSketch::default(),
            hot: SpaceSaving::default(),
            first_touch_order: Vec::new(),
        }
    }
}

impl SketchLocalityObserver {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn touches(&self) -> u64 {
        self.touches
    }

    /// Estimated distinct 128-byte lines touched (exact below
    /// [`KMV_K`]).
    pub fn footprint_lines(&self) -> u64 {
        self.kmv.footprint_estimate().round() as u64
    }

    fn cold_estimate(&self) -> f64 {
        // Every cold touch is a window miss, and the number of cold
        // touches is exactly the distinct-line count the KMV estimates.
        self.kmv.footprint_estimate().min(self.misses as f64)
    }

    /// Estimated reuses at distance beyond the window (bit-exact zero
    /// when the footprint fits the summaries).
    fn far_reuse_estimate(&self) -> f64 {
        (self.misses as f64 - self.cold_estimate()).max(0.0)
    }

    /// Fraction of touches that were first-touch (cold), estimated.
    pub fn cold_frac(&self) -> f64 {
        if self.touches == 0 {
            0.0
        } else {
            self.cold_estimate() / self.touches as f64
        }
    }

    /// Fraction of reuses with stack distance at most
    /// `REUSE_THRESHOLDS[bucket]`; numerators exact, denominator's
    /// far-reuse share estimated.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= 3`.
    pub fn reuse_cdf(&self, bucket: usize) -> f64 {
        assert!(bucket < REUSE_THRESHOLDS.len());
        let in_window: u64 = self.hist.iter().sum();
        let reuses = in_window as f64 + self.far_reuse_estimate();
        if reuses == 0.0 {
            return 0.0;
        }
        let upto: u64 = self.hist.iter().take(bucket + 1).sum();
        upto as f64 / reuses
    }

    /// Fraction of sampled lines touched by at least two warps.
    pub fn inter_warp_sharing(&self) -> f64 {
        self.kmv.sharing(|e| e.multi_warp)
    }

    /// Fraction of sampled lines touched by at least two blocks.
    pub fn inter_block_sharing(&self) -> f64 {
        self.kmv.sharing(|e| e.multi_block)
    }

    /// Hottest lines diagnostic (space-saving over-estimates).
    pub fn hot_lines(&self) -> Vec<(u32, u64, u64)> {
        self.hot.hot_lines()
    }

    /// Approximate heap bytes held. Bounded by construction:
    /// O(`WINDOW_LINES` + `KMV_K`) whatever the footprint.
    pub fn bytes_in_use(&self) -> u64 {
        let window_entry = std::mem::size_of::<(u32, usize)>() + 1;
        let by_time_entry = std::mem::size_of::<(usize, u32)>() + 16;
        (self.window.capacity() * window_entry
            + self.by_time.len() * by_time_entry
            + self.fenwick.slots() * std::mem::size_of::<u32>()
            + self.first_touch_order.capacity() * std::mem::size_of::<u32>()
            + self.kmv.bytes_in_use()) as u64
    }

    pub(crate) fn touch(&mut self, line: u32, warp: (u32, u32)) {
        self.touches += 1;
        self.kmv.observe(splitmix64(line as u64), warp);
        self.hot.observe(line);
        if self.now >= SKETCH_CAP {
            self.compress();
        }
        match self.window.get(&line).copied() {
            Some(t) => {
                let distance = self.fenwick.range(t + 1, self.now.saturating_sub(1));
                let bucket = REUSE_THRESHOLDS
                    .iter()
                    .position(|&th| distance <= th)
                    .expect("in-window distance is at most REUSE_THRESHOLDS[2]");
                self.hist[bucket] += 1;
                self.fenwick.add(t, -1);
                self.fenwick.add(self.now, 1);
                self.by_time.remove(&t);
                self.by_time.insert(self.now, line);
                self.window.insert(line, self.now);
            }
            None => {
                self.misses += 1;
                if self.first_touch_order.len() < WINDOW_LINES {
                    self.first_touch_order.push(line);
                }
                self.fenwick.add(self.now, 1);
                self.window.insert(line, self.now);
                self.by_time.insert(self.now, line);
                if self.window.len() > WINDOW_LINES {
                    let (&t_old, &lru) = self.by_time.first_key_value().expect("window not empty");
                    self.by_time.remove(&t_old);
                    self.window.remove(&lru);
                    self.fenwick.add(t_old, -1);
                }
            }
        }
        self.now += 1;
    }

    /// Reassigns time slots densely, preserving recency order — same
    /// invariant as the exact observer's compression.
    fn compress(&mut self) {
        let order: Vec<u32> = self.by_time.values().copied().collect();
        self.fenwick = Fenwick::new(SKETCH_CAP);
        self.by_time.clear();
        for (new_t, &line) in order.iter().enumerate() {
            self.window.insert(line, new_t);
            self.by_time.insert(new_t, line);
            self.fenwick.add(new_t, 1);
        }
        self.now = order.len();
        assert!(self.now < SKETCH_CAP, "window exceeds sketch time axis");
    }
}

impl crate::merge::MergeableObserver for SketchLocalityObserver {
    /// Exact stack merge of a later shard, restricted to the window:
    /// the merged sketch is bit-identical to observing both substreams
    /// serially, so sketch-tier profiles stay deterministic at any
    /// thread count.
    ///
    /// `later`'s in-window reuses add directly (every intervening line
    /// is inside `later`'s substream). `later`'s first touches resolve
    /// against `self`'s window with the same distance formula as the
    /// exact merge — a line still in `self`'s window has *all* more
    /// recent lines still in the window too (anything evicted after it
    /// would have evicted it first), so the window Fenwick sees the
    /// full serial distance. A resolved distance within the thresholds
    /// is a serial window hit (distance <= REUSE_THRESHOLDS[2] is
    /// exactly the window-residency condition); anything else stays a
    /// miss. The merged window is the union's `WINDOW_LINES` most
    /// recent lines, which is the serial window.
    fn merge(&mut self, later: Self) {
        self.touches += later.touches;
        for (a, b) in self.hist.iter_mut().zip(later.hist) {
            *a += b;
        }

        let mut resolved_hits = 0u64;
        let mut aux = Fenwick::new(SKETCH_CAP);
        let self_top = self.now.saturating_sub(1);
        for (pos, &line) in later.first_touch_order.iter().enumerate() {
            match self.window.get(&line).copied() {
                Some(t) => {
                    let in_self = self.fenwick.range(t + 1, self_top);
                    let dup = aux.range(t + 1, self_top);
                    let distance = in_self + pos as u64 - dup;
                    if distance <= REUSE_THRESHOLDS[2] {
                        let bucket = REUSE_THRESHOLDS
                            .iter()
                            .position(|&th| distance <= th)
                            .expect("distance within thresholds");
                        self.hist[bucket] += 1;
                        resolved_hits += 1;
                    }
                    // Counted by both the window Fenwick and `pos` for
                    // every later entry after this one, hit or not.
                    aux.add(t, 1);
                }
                None => {
                    if self.first_touch_order.len() < WINDOW_LINES {
                        self.first_touch_order.push(line);
                    }
                }
            }
        }
        self.misses += later.misses - resolved_hits;

        self.kmv.merge(later.kmv);
        self.hot.merge(&later.hot);

        // Rebuild the merged window: union ranked by recency (later's
        // lines outrank all self-only lines), truncated to the most
        // recent WINDOW_LINES.
        let mut order: Vec<(u8, usize, u32)> =
            Vec::with_capacity(self.window.len() + later.window.len());
        for (&line, &t) in &self.window {
            if !later.window.contains_key(&line) {
                order.push((0, t, line));
            }
        }
        for (&line, &t) in &later.window {
            order.push((1, t, line));
        }
        order.sort_unstable();
        let keep_from = order.len().saturating_sub(WINDOW_LINES);
        self.window.clear();
        self.by_time.clear();
        self.fenwick = Fenwick::new(SKETCH_CAP);
        for (new_t, &(_, _, line)) in order[keep_from..].iter().enumerate() {
            self.window.insert(line, new_t);
            self.by_time.insert(new_t, line);
            self.fenwick.add(new_t, 1);
        }
        self.now = order.len() - keep_from;
    }
}

impl TraceObserver for SketchLocalityObserver {
    fn on_mem(&mut self, e: &MemEvent<'_>) {
        if e.space != Space::Global {
            return;
        }
        // Identical lane handling to the exact observer: stack-buffered
        // line extraction, per-warp dedup, global space only.
        let mut lines = [0u32; gwc_simt::WARP_SIZE];
        let mut n = 0usize;
        for a in e.active_addrs() {
            lines[n] = a / SEGMENT_BYTES;
            n += 1;
        }
        lines[..n].sort_unstable();
        let mut prev = u32::MAX;
        for (i, &line) in lines[..n].iter().enumerate() {
            if i == 0 || line != prev {
                self.touch(line, (e.block, e.warp));
            }
            prev = line;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::LocalityObserver;
    use crate::merge::MergeableObserver;

    fn xorshift_stream(len: usize, lines: u32) -> Vec<(u32, (u32, u32))> {
        let mut x = 0x243f_6a88_85a3_08d3u64;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let line = (x >> 8) as u32 % lines;
                let block = (x >> 16) as u32 % 4;
                let warp = (x >> 24) as u32 % 2;
                (line, (block, warp))
            })
            .collect()
    }

    fn assert_bits_equal_exact(s: &SketchLocalityObserver, e: &LocalityObserver) {
        assert_eq!(s.touches(), e.touches());
        assert_eq!(s.footprint_lines(), e.footprint_lines());
        assert_eq!(s.cold_frac().to_bits(), e.cold_frac().to_bits());
        for b in 0..REUSE_THRESHOLDS.len() {
            assert_eq!(s.reuse_cdf(b).to_bits(), e.reuse_cdf(b).to_bits());
        }
        assert_eq!(
            s.inter_warp_sharing().to_bits(),
            e.inter_warp_sharing().to_bits()
        );
        assert_eq!(
            s.inter_block_sharing().to_bits(),
            e.inter_block_sharing().to_bits()
        );
    }

    /// Below both sketch capacities the sketch IS the exact observer,
    /// bit for bit, on every derived characteristic.
    #[test]
    fn small_footprint_is_bit_identical_to_exact() {
        let stream = xorshift_stream(5000, 700);
        let mut sketch = SketchLocalityObserver::new();
        let mut exact = LocalityObserver::new();
        for &(line, warp) in &stream {
            sketch.touch(line, warp);
            exact.touch(line, warp);
        }
        assert_bits_equal_exact(&sketch, &exact);
    }

    /// Beyond the window: in-window buckets stay exact, the footprint
    /// stays exact below KMV_K... here we push past both and check the
    /// declared bounds instead.
    #[test]
    fn large_footprint_within_declared_bounds() {
        // Footprint 40_000 lines >> KMV_K and >> WINDOW_LINES, with a
        // mix of near reuse (stride-1 revisits) and far scans.
        let mut sketch = SketchLocalityObserver::new();
        let mut exact = LocalityObserver::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..200_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = (x >> 8) as u32 % 40_000;
            let warp = ((x >> 16) as u32 % 4, (x >> 24) as u32 % 2);
            sketch.touch(line, warp);
            exact.touch(line, warp);
        }
        let fp_err = (sketch.footprint_lines() as f64 - exact.footprint_lines() as f64).abs()
            / exact.footprint_lines() as f64;
        assert!(fp_err <= bounds::FOOTPRINT_REL, "footprint err {fp_err}");
        assert!((sketch.cold_frac() - exact.cold_frac()).abs() <= bounds::COLD_FRAC_ABS);
        for b in 0..REUSE_THRESHOLDS.len() {
            assert!((sketch.reuse_cdf(b) - exact.reuse_cdf(b)).abs() <= bounds::REUSE_CDF_ABS);
        }
        assert!(
            (sketch.inter_warp_sharing() - exact.inter_warp_sharing()).abs() <= bounds::SHARING_ABS
        );
        assert!(
            (sketch.inter_block_sharing() - exact.inter_block_sharing()).abs()
                <= bounds::SHARING_ABS
        );
    }

    /// Memory stays flat while the exact observer's grows with the
    /// footprint.
    #[test]
    fn sketch_memory_is_flat_in_footprint() {
        let mut small = SketchLocalityObserver::new();
        for line in 0..1_000u32 {
            small.touch(line, (0, 0));
        }
        let mut big = SketchLocalityObserver::new();
        for line in 0..400_000u32 {
            big.touch(line, (0, 0));
        }
        // Same allocation class: within 2x of each other.
        assert!(big.bytes_in_use() < small.bytes_in_use() * 2);

        let mut exact = LocalityObserver::new();
        for line in 0..400_000u32 {
            exact.touch(line, (0, 0));
        }
        assert!(exact.bytes_in_use() > big.bytes_in_use() * 5);
    }

    /// Any split of any stream, merged, equals serial sketching — the
    /// same determinism contract the exact observer holds, including
    /// streams that overflow the window and the KMV sample.
    #[test]
    fn merge_any_split_matches_serial() {
        for (len, lines) in [(400, 48), (20_000, 9_000)] {
            let stream = xorshift_stream(len, lines);
            let mut serial = SketchLocalityObserver::new();
            for &(line, warp) in &stream {
                serial.touch(line, warp);
            }
            for split in [0, 1, 17, len / 2, len - 1, len] {
                let mut first = SketchLocalityObserver::new();
                let mut second = SketchLocalityObserver::new();
                for &(line, warp) in &stream[..split] {
                    first.touch(line, warp);
                }
                for &(line, warp) in &stream[split..] {
                    second.touch(line, warp);
                }
                first.merge(second);
                assert_eq!(first.hist, serial.hist, "split {split}");
                assert_eq!(first.misses, serial.misses, "split {split}");
                assert_eq!(first.touches, serial.touches);
                // `now` is a dense rebuild after a merge but sparse
                // serially; only the recency *order* is the invariant.
                let fw: Vec<_> = first.by_time.values().collect();
                let sw: Vec<_> = serial.by_time.values().collect();
                assert_eq!(fw, sw, "window order, split {split}");
                assert_eq!(
                    first.kmv.entries.len(),
                    serial.kmv.entries.len(),
                    "kmv size"
                );
                for ((ha, a), (hb, b)) in first.kmv.entries.iter().zip(&serial.kmv.entries) {
                    assert_eq!(ha, hb);
                    assert_eq!(a.first_warp, b.first_warp);
                    assert_eq!(a.multi_warp, b.multi_warp);
                    assert_eq!(a.multi_block, b.multi_block);
                }
                // Merged observer keeps behaving like the serial one.
                for &(line, warp) in stream.iter().rev().take(200) {
                    serial.touch(line, warp);
                    first.touch(line, warp);
                }
                assert_eq!(first.hist, serial.hist, "post-merge split {split}");
                assert_eq!(first.misses, serial.misses);
                // Undo the extra touches for the next split round.
                serial = SketchLocalityObserver::new();
                for &(line, warp) in &stream {
                    serial.touch(line, warp);
                }
            }
        }
    }

    /// Three-way merge in shard order equals serial, as the runtime
    /// reduces shards left to right.
    #[test]
    fn merge_three_shards_matches_serial() {
        let stream = xorshift_stream(15_000, 6_000);
        let mut serial = SketchLocalityObserver::new();
        for &(line, warp) in &stream {
            serial.touch(line, warp);
        }
        let mut merged = SketchLocalityObserver::new();
        for chunk in stream.chunks(5_000) {
            let mut shard = SketchLocalityObserver::new();
            for &(line, warp) in chunk {
                shard.touch(line, warp);
            }
            merged.merge(shard);
        }
        assert_eq!(merged.hist, serial.hist);
        assert_eq!(merged.misses, serial.misses);
        assert_eq!(merged.touches, serial.touches);
        assert_eq!(
            merged.footprint_lines().to_le_bytes(),
            serial.footprint_lines().to_le_bytes()
        );
        assert_eq!(
            merged.inter_warp_sharing().to_bits(),
            serial.inter_warp_sharing().to_bits()
        );
    }

    #[test]
    fn eviction_matches_exact_overflow_bucket() {
        // Touch W+1 distinct lines, then the first again: the exact
        // observer puts the reuse in the overflow bucket; the sketch
        // counts a miss (and no in-window reuse).
        let mut sketch = SketchLocalityObserver::new();
        let mut exact = LocalityObserver::new();
        for line in 0..=(WINDOW_LINES as u32) {
            sketch.touch(line, (0, 0));
            exact.touch(line, (0, 0));
        }
        sketch.touch(0, (0, 0));
        exact.touch(0, (0, 0));
        assert_eq!(sketch.hist.iter().sum::<u64>(), 0);
        assert_eq!(sketch.misses, WINDOW_LINES as u64 + 2);
        // Exact: one reuse, in the overflow bucket -> cdf(2) = 0.
        assert_eq!(exact.reuse_cdf(2), 0.0);
        assert_eq!(sketch.reuse_cdf(2), 0.0);
    }

    #[test]
    fn splitmix64_is_injective_on_lines() {
        // Bijectivity spot check over a contiguous id range.
        let mut seen = std::collections::BTreeSet::new();
        for line in 0..100_000u64 {
            assert!(seen.insert(splitmix64(line)));
        }
    }

    #[test]
    fn space_saving_finds_heavy_hitter() {
        let mut ss = SpaceSaving::default();
        for i in 0..10_000u32 {
            ss.observe(i % 500); // background noise
            if i % 2 == 0 {
                ss.observe(7); // heavy hitter
            }
        }
        let hot = ss.hot_lines();
        assert_eq!(hot[0].0, 7);
        assert!(hot[0].1 >= 5_000);
    }

    #[test]
    fn tier_parse_round_trips() {
        for tier in [ObserverTier::Exact, ObserverTier::Sketch] {
            assert_eq!(ObserverTier::parse(tier.name()), Some(tier));
        }
        assert_eq!(ObserverTier::parse("bogus"), None);
        assert_eq!(ObserverTier::default(), ObserverTier::Exact);
    }
}
