//! Offline randomized partition test: the seeded twin of
//! `extras/tests/merge_properties.rs` (which runs the same property
//! under proptest when network access allows building it).
//!
//! For dozens of seeded random kernels, launch geometries, and block
//! partitions, observing each shard separately and merging must equal
//! observing the whole trace — bit for bit — and the absorbed global
//! memory must match the serial run byte for byte.

use gwc_characterize::merge::{merge_stats, MergeableObserver};
use gwc_characterize::{characterize_launch, KernelProfile, Profiler};
use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::Device;
use gwc_simt::instr::Value;
use gwc_simt::kernel::Kernel;
use gwc_simt::launch::LaunchConfig;
use gwc_simt::trace::{LaunchStats, TraceObserver};

const TABLE_LEN: u32 = 32;

/// splitmix64: a self-contained generator so this test needs no deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Builds a random, block-shardable kernel from `seed`. No global
/// atomics are ever emitted and the only global store targets the
/// thread's own `out` slot, so the block-sharding contract holds by
/// construction.
fn random_kernel(seed: u64) -> Kernel {
    let mut rng = Rng(seed);
    let mut b = KernelBuilder::new("random");
    let table = b.param_u32("table");
    let out = b.param_u32("out");
    let gid = b.global_tid_x();
    let facc = b.var_f32(Value::F32(1.0));
    let iacc = b.var_u32(gid);

    if rng.below(2) == 0 {
        // Shared-memory stage: block-local exchange through a barrier.
        let smem = b.alloc_shared(128 * 4);
        let tid = b.var_u32(b.tid_x());
        let sa = b.index(smem, tid, 4);
        b.st_shared_u32(sa, gid);
        b.barrier();
        let v = b.ld_shared_u32(sa);
        let x = b.xor_u32(iacc, v);
        b.assign(iacc, x);
    }

    for _ in 0..1 + rng.below(6) {
        match rng.below(5) {
            0 => {
                // Integer arithmetic on the accumulator.
                let c = 1 + rng.below(999) as u32;
                let m = b.mul_u32(iacc, Value::U32(c | 1));
                let s = b.add_u32(m, Value::U32(c));
                b.assign(iacc, s);
            }
            1 => {
                // Data-dependent table load.
                let sel = b.rem_u32(iacc, Value::U32(TABLE_LEN));
                let ta = b.index(table, sel, 4);
                let v = b.ld_global_f32(ta);
                let n = b.add_f32(facc, v);
                b.assign(facc, n);
            }
            2 => {
                // Divergent guard: a lane-dependent subset loops.
                let mask = 1u32 << rng.below(3);
                let trip = 2 + rng.below(4) as u32;
                let bit = b.and_u32(gid, Value::U32(mask));
                let hit = b.eq_u32(bit, Value::U32(mask));
                b.if_(hit, |b| {
                    b.for_range_u32(Value::U32(0), Value::U32(trip), 1, |b, j| {
                        let n = b.add_u32(iacc, j);
                        b.assign(iacc, n);
                    });
                });
            }
            3 => {
                // SFU work.
                let a = b.abs_f32(facc);
                let r = b.sqrt_f32(a);
                let n = b.add_f32(r, Value::F32(0.25));
                b.assign(facc, n);
            }
            _ => {
                // Strided table loop: reuse at a random stride.
                let stride = 1 + rng.below(4) as u32;
                let trip = 2 + rng.below(3) as u32;
                b.for_range_u32(Value::U32(0), Value::U32(trip), 1, |b, j| {
                    let sj = b.mul_u32(j, Value::U32(stride));
                    let base = b.add_u32(sj, gid);
                    let sel = b.rem_u32(base, Value::U32(TABLE_LEN));
                    let ta = b.index(table, sel, 4);
                    let v = b.ld_global_f32(ta);
                    let n = b.add_f32(facc, v);
                    b.assign(facc, n);
                });
            }
        }
    }

    let fi = b.to_f32(iacc);
    let total = b.add_f32(facc, fi);
    let oi = b.index(out, gid, 4);
    b.st_global_f32(oi, total);
    b.build().expect("random kernel is well-formed")
}

fn setup(dev: &mut Device, total_threads: usize) -> Vec<Value> {
    let table_vals: Vec<f32> = (0..TABLE_LEN).map(|i| 1.0 + i as f32 * 0.5).collect();
    let table = dev.alloc_f32(&table_vals);
    let out = dev.alloc_zeroed_f32(total_threads);
    vec![table.arg(), out.arg()]
}

/// Runs the launch shard-by-shard over the given block-range `bounds`
/// (`bounds[i]..bounds[i+1]` per shard), merging observers in ascending
/// block order — the same protocol as
/// `gwc_characterize::profile_launch_sharded`, but with an arbitrary
/// partition instead of an even one.
fn profile_partitioned(
    dev: &mut Device,
    kernel: &Kernel,
    config: &LaunchConfig,
    args: &[Value],
    bounds: &[u32],
) -> KernelProfile {
    let mut master = Profiler::new();
    master.on_launch(kernel, config);
    let base = dev.global_image().to_vec();
    // Fork every shard from the pre-launch state first (parallel
    // semantics), then fold in ascending order.
    let shards: Vec<(Device, Profiler, LaunchStats)> = bounds
        .windows(2)
        .map(|w| {
            let mut sd = dev.fork();
            let mut sp = Profiler::shard(kernel, config);
            let stats = sd
                .run_block_range(kernel, config, args, w[0], w[1], &mut sp)
                .expect("shard runs");
            (sd, sp, stats)
        })
        .collect();
    let mut total = LaunchStats::default();
    for (sd, sp, stats) in shards {
        master.merge(sp);
        merge_stats(&mut total, &stats);
        dev.absorb_writes(&base, &sd);
    }
    master.on_launch_end(&total);
    master.finish(kernel.name())
}

#[test]
fn random_partitions_match_whole_trace() {
    for seed in 0..48u64 {
        let mut rng = Rng(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) + 1);
        let kernel = random_kernel(rng.next());
        assert!(kernel.is_block_shardable(), "seed {seed}");
        let blocks = 2 + rng.below(8) as u32;
        let tpb = [16u32, 32, 64, 128][rng.below(4) as usize];
        let config = LaunchConfig::new(blocks, tpb);
        let total_threads = (blocks * tpb) as usize;

        let mut dev_s = Device::new();
        let args_s = setup(&mut dev_s, total_threads);
        let serial =
            characterize_launch(&mut dev_s, &kernel, &config, &args_s).expect("serial launch");

        let mut bounds = vec![0u32, blocks];
        for _ in 0..rng.below(4) {
            let c = rng.below(blocks as u64) as u32;
            if c != 0 {
                bounds.push(c);
            }
        }
        bounds.sort_unstable();
        bounds.dedup();

        let mut dev_p = Device::new();
        let args_p = setup(&mut dev_p, total_threads);
        let merged = profile_partitioned(&mut dev_p, &kernel, &config, &args_p, &bounds);

        for (dim, (a, b)) in serial.values().iter().zip(merged.values()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "seed {seed}: dim {dim} differs for partition {bounds:?}: {a} vs {b}"
            );
        }
        assert_eq!(serial.raw(), merged.raw(), "seed {seed}");
        assert_eq!(
            dev_s.global_image(),
            dev_p.global_image(),
            "seed {seed}: global memory diverged"
        );
    }
}
