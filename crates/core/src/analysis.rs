//! Stage 3: clustering and representative selection in the reduced space.

use gwc_stats::hclust::{hierarchical, Dendrogram, Linkage};
use gwc_stats::kmeans::{kmeans, kmeans_best_bic, KMeans};
use gwc_stats::{Matrix, StatsError};

/// The clustering artifacts for one (sub)space.
#[derive(Debug)]
pub struct ClusterAnalysis {
    dendrogram: Dendrogram,
    kmeans: KMeans,
    representatives: Vec<usize>,
}

impl ClusterAnalysis {
    /// Clusters PC-space scores: average-linkage dendrogram plus
    /// BIC-selected k-means, with per-cluster representatives (the member
    /// closest to its centroid).
    ///
    /// # Errors
    ///
    /// Propagates [`StatsError`] from the clustering primitives.
    pub fn fit(scores: &Matrix, max_k: usize, seed: u64) -> Result<Self, StatsError> {
        let dendrogram = hierarchical(scores, Linkage::Average)?;
        let kmeans = kmeans_best_bic(scores, max_k, seed)?;
        let representatives = kmeans.representatives(scores);
        Ok(Self {
            dendrogram,
            kmeans,
            representatives,
        })
    }

    /// Clusters with a fixed `k` instead of BIC selection.
    ///
    /// # Errors
    ///
    /// Propagates [`StatsError`] (e.g. bad cluster counts).
    pub fn fit_k(scores: &Matrix, k: usize, seed: u64) -> Result<Self, StatsError> {
        let dendrogram = hierarchical(scores, Linkage::Average)?;
        let kmeans = kmeans(scores, k, seed)?;
        let representatives = kmeans.representatives(scores);
        Ok(Self {
            dendrogram,
            kmeans,
            representatives,
        })
    }

    /// The hierarchical-clustering dendrogram.
    pub fn dendrogram(&self) -> &Dendrogram {
        &self.dendrogram
    }

    /// The k-means result.
    pub fn kmeans(&self) -> &KMeans {
        &self.kmeans
    }

    /// Selected cluster count.
    pub fn k(&self) -> usize {
        self.kmeans.k()
    }

    /// Row indices of the cluster representatives.
    pub fn representatives(&self) -> &[usize] {
        &self.representatives
    }

    /// Cluster label per row.
    pub fn labels(&self) -> &[usize] {
        &self.kmeans.labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)] {
            for i in 0..4 {
                rows.push(vec![cx + 0.1 * i as f64, cy - 0.1 * i as f64]);
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn finds_the_three_blobs() {
        let a = ClusterAnalysis::fit(&blobs(), 6, 42).unwrap();
        assert_eq!(a.k(), 3);
        assert_eq!(a.representatives().len(), 3);
        // Dendrogram cut at 3 agrees with k-means up to relabeling.
        let cut = a.dendrogram().cut(3).unwrap();
        for blob in 0..3 {
            for i in 1..4 {
                assert_eq!(cut[blob * 4], cut[blob * 4 + i]);
                assert_eq!(a.labels()[blob * 4], a.labels()[blob * 4 + i]);
            }
        }
    }

    #[test]
    fn fixed_k_override() {
        let a = ClusterAnalysis::fit_k(&blobs(), 2, 1).unwrap();
        assert_eq!(a.k(), 2);
        assert_eq!(a.representatives().len(), 2);
    }

    #[test]
    fn representatives_belong_to_their_cluster() {
        let a = ClusterAnalysis::fit(&blobs(), 6, 9).unwrap();
        for (c, &r) in a.representatives().iter().enumerate() {
            assert_eq!(a.labels()[r], c);
        }
    }
}
