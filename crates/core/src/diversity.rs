//! Stage 5: suite-diversity statistics in the reduced space.

use gwc_stats::distance::euclidean;
use gwc_stats::Matrix;
use gwc_workloads::Suite;

use crate::study::Study;

/// Coverage statistics of one suite in a common PC space.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteDiversity {
    /// The suite.
    pub suite: Suite,
    /// Number of kernels the suite contributes.
    pub kernels: usize,
    /// Mean pairwise distance between the suite's kernels.
    pub mean_pairwise: f64,
    /// Per-dimension span product (log-volume proxy of the bounding box).
    pub log_volume: f64,
    /// Mean distance of suite kernels to the global centroid (how far the
    /// suite reaches from the population centre).
    pub mean_reach: f64,
}

/// Computes per-suite diversity over PC-space `scores` whose rows align
/// with `study.records()`.
pub fn suite_diversity(study: &Study, scores: &Matrix) -> Vec<SuiteDiversity> {
    let dims = scores.cols();
    let n = scores.rows();
    let mut global_centroid = vec![0.0; dims];
    for r in 0..n {
        for (c, v) in global_centroid.iter_mut().enumerate() {
            *v += scores.get(r, c);
        }
    }
    for v in &mut global_centroid {
        *v /= n.max(1) as f64;
    }

    Suite::ALL
        .iter()
        .map(|&suite| {
            let rows = study.rows_of_suite(suite);
            let kernels = rows.len();
            let mean_pairwise = if kernels < 2 {
                0.0
            } else {
                let mut sum = 0.0;
                let mut count = 0u64;
                for (a, &ra) in rows.iter().enumerate() {
                    for &rb in rows.iter().skip(a + 1) {
                        sum += euclidean(scores.row(ra), scores.row(rb));
                        count += 1;
                    }
                }
                sum / count as f64
            };
            let log_volume = if kernels < 2 {
                0.0
            } else {
                (0..dims)
                    .map(|c| {
                        let vals: Vec<f64> = rows.iter().map(|&r| scores.get(r, c)).collect();
                        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        (hi - lo).max(1e-9).ln()
                    })
                    .sum()
            };
            let mean_reach = if kernels == 0 {
                0.0
            } else {
                rows.iter()
                    .map(|&r| euclidean(scores.row(r), &global_centroid))
                    .sum::<f64>()
                    / kernels as f64
            };
            SuiteDiversity {
                suite,
                kernels,
                mean_pairwise,
                log_volume,
                mean_reach,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};
    use gwc_workloads::Scale;

    // A shared mini-study for diversity tests (two SDK workloads only
    // would not cover all suites, so use run-one over a few workloads).
    fn mini_study() -> Study {
        // Running the full registry at Tiny scale is fast enough and the
        // only way to get genuine suite coverage.
        Study::run(&StudyConfig {
            seed: 5,
            scale: Scale::Tiny,
            verify: false,
            ..StudyConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn all_suites_covered_and_finite() {
        let study = mini_study();
        let space = crate::reduce::ReducedSpace::fit(&study.matrix(), 0.9).unwrap();
        let div = suite_diversity(&study, space.scores());
        assert_eq!(div.len(), 4);
        for d in &div {
            assert!(d.kernels > 0, "{:?} empty", d.suite);
            assert!(d.mean_pairwise.is_finite());
            assert!(d.mean_reach.is_finite());
        }
        // The big suites span more kernels than the `Other` pair.
        let of = |s: Suite| div.iter().find(|d| d.suite == s).unwrap().kernels;
        assert!(of(Suite::CudaSdk) > of(Suite::Other));
        assert!(of(Suite::Rodinia) > of(Suite::Other));
    }
}
