//! Stage 6: design-space evaluation metrics.
//!
//! The paper's methodological payoff: instead of simulating every kernel
//! at every design point, simulate only the cluster representatives and
//! estimate suite-wide outcomes. This module quantifies how good that
//! estimate is — against the full-population truth and against random
//! subsets of the same size — and selects stress workloads per
//! functional block.

use gwc_characterize::schema;
use gwc_stats::describe::{mean, relative_error};
use gwc_timing::{speedups, DesignPoint, GpuConfig};

use crate::parallel::parallel_map_named;
use crate::study::Study;

/// Per-design-point estimation errors of a subset-based evaluation.
#[derive(Debug, Clone)]
pub struct SubsetEvaluation {
    /// The subset of kernel row indices evaluated.
    pub subset: Vec<usize>,
    /// `(config name, truth, estimate, relative error)` per design point.
    pub rows: Vec<(String, f64, f64, f64)>,
}

impl SubsetEvaluation {
    /// Mean relative error across design points.
    pub fn mean_error(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.3).collect::<Vec<_>>())
    }

    /// Maximum relative error across design points.
    pub fn max_error(&self) -> f64 {
        self.rows.iter().map(|r| r.3).fold(0.0, f64::max)
    }
}

/// Evaluates how well `subset` predicts the full population's mean
/// speedup at every design point.
pub fn evaluate_subset(
    study: &Study,
    baseline: &GpuConfig,
    configs: &[GpuConfig],
    subset: &[usize],
) -> SubsetEvaluation {
    evaluate_subset_threads(study, baseline, configs, subset, 1)
}

/// [`evaluate_subset`] with the design-point sweep fanned out across up
/// to `threads` threads (one task per design point). Each point's
/// timing model runs unchanged on one thread and rows are reassembled
/// in config order, so the result is bit-identical to the serial sweep.
pub fn evaluate_subset_threads(
    study: &Study,
    baseline: &GpuConfig,
    configs: &[GpuConfig],
    subset: &[usize],
    threads: usize,
) -> SubsetEvaluation {
    let profiles: Vec<_> = study.records().iter().map(|r| r.profile.clone()).collect();
    let rows = parallel_map_named("eval.sweep", configs.len(), threads, |i| {
        let sweep = speedups(&profiles, baseline, &configs[i..i + 1]);
        let p: &DesignPoint = &sweep.points[0];
        let truth = p.mean_speedup();
        let estimate = p.subset_mean(subset);
        (
            p.config.name.clone(),
            truth,
            estimate,
            relative_error(estimate, truth),
        )
    });
    SubsetEvaluation {
        subset: subset.to_vec(),
        rows,
    }
}

/// Draws `count` random subsets of size `size` (deterministic in `seed`)
/// and returns their mean errors — the baseline the representative subset
/// must beat.
pub fn random_subset_errors(
    study: &Study,
    baseline: &GpuConfig,
    configs: &[GpuConfig],
    size: usize,
    count: usize,
    seed: u64,
) -> Vec<f64> {
    random_subset_errors_threads(study, baseline, configs, size, count, seed, 1)
}

/// [`random_subset_errors`] with the draws fanned out across up to
/// `threads` threads. The subsets themselves are drawn serially from the
/// seeded generator before any evaluation starts, so the returned errors
/// are bit-identical to the serial path at any thread count.
#[allow(clippy::too_many_arguments)]
pub fn random_subset_errors_threads(
    study: &Study,
    baseline: &GpuConfig,
    configs: &[GpuConfig],
    size: usize,
    count: usize,
    seed: u64,
    threads: usize,
) -> Vec<f64> {
    let n = study.records().len();
    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        state
    };
    let subsets: Vec<Vec<usize>> = (0..count)
        .map(|_| {
            let mut subset: Vec<usize> = Vec::with_capacity(size);
            while subset.len() < size.min(n) {
                let pick = (next() % n as u64) as usize;
                if !subset.contains(&pick) {
                    subset.push(pick);
                }
            }
            subset
        })
        .collect();
    parallel_map_named("eval.random", subsets.len(), threads, |i| {
        evaluate_subset(study, baseline, configs, &subsets[i]).mean_error()
    })
}

/// A stress-workload recommendation: the kernels that exercise one
/// functional block hardest.
#[derive(Debug, Clone)]
pub struct StressSelection {
    /// The functional block ("divergence handling", ...).
    pub block: &'static str,
    /// The characteristic the ranking used.
    pub characteristic: &'static str,
    /// `(kernel label, value)` for the top kernels, most stressing first.
    pub top: Vec<(String, f64)>,
}

/// Ranks kernels as stressors of each functional block the paper calls
/// out, using the single most indicative characteristic per block.
pub fn stress_selection(study: &Study, top_n: usize) -> Vec<StressSelection> {
    // (block, characteristic, higher-is-more-stress)
    let specs: [(&str, &str, bool); 5] = [
        ("divergence handling", "div_simd_activity", false),
        (
            "memory coalescing hardware",
            "coal_segments_per_access",
            true,
        ),
        ("shared memory banks", "smem_bank_conflict", true),
        ("special function units", "mix_sfu", true),
        ("atomic units", "sync_atomic_kinstr", true),
    ];
    specs
        .iter()
        .map(|&(block, characteristic, higher)| {
            let col = schema::index_of(characteristic);
            let mut ranked: Vec<(String, f64)> = study
                .records()
                .iter()
                .map(|r| (r.label(), r.profile.values()[col]))
                .collect();
            ranked.sort_by(|a, b| {
                let ord = a.1.partial_cmp(&b.1).expect("finite characteristic");
                if higher {
                    ord.reverse()
                } else {
                    ord
                }
            });
            ranked.truncate(top_n);
            StressSelection {
                block,
                characteristic,
                top: ranked,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use gwc_timing::sweep::default_design_space;
    use gwc_workloads::Scale;

    fn study() -> Study {
        Study::run(&StudyConfig {
            seed: 11,
            scale: Scale::Tiny,
            verify: false,
            ..StudyConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn full_population_subset_has_zero_error() {
        let s = study();
        let all: Vec<usize> = (0..s.records().len()).collect();
        let eval = evaluate_subset(&s, &GpuConfig::baseline(), &default_design_space(), &all);
        assert!(eval.mean_error() < 1e-12);
        assert_eq!(eval.rows.len(), default_design_space().len());
    }

    #[test]
    fn random_subsets_are_deterministic_per_seed() {
        let s = study();
        let cfgs = default_design_space();
        let a = random_subset_errors(&s, &GpuConfig::baseline(), &cfgs, 4, 3, 99);
        let b = random_subset_errors(&s, &GpuConfig::baseline(), &cfgs, 4, 3, 99);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn stress_selection_names_plausible_kernels() {
        let s = study();
        let sel = stress_selection(&s, 5);
        assert_eq!(sel.len(), 5);
        let sfu = sel
            .iter()
            .find(|x| x.block == "special function units")
            .unwrap();
        // Black-Scholes or MRI-Q should top the SFU ranking.
        let names: Vec<&str> = sfu.top.iter().map(|(n, _)| n.as_str()).collect();
        assert!(
            names.iter().any(|n| n.contains("black_scholes")
                || n.contains("compute_q")
                || n.contains("cp_lattice")),
            "SFU top-5: {names:?}"
        );
        let atomics = sel.iter().find(|x| x.block == "atomic units").unwrap();
        let names: Vec<&str> = atomics.top.iter().map(|(n, _)| n.as_str()).collect();
        assert!(
            names
                .iter()
                .any(|n| n.contains("histogram") || n.contains("bucket") || n.contains("tpacf")),
            "atomic top-5: {names:?}"
        );
    }
}
