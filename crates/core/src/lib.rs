//! The GPGPU workload characterization pipeline (the paper's primary
//! contribution).
//!
//! Stages, mirroring IISWC 2010:
//!
//! 1. [`study`] — run every workload in the registry under the SIMT
//!    simulator and collect one microarchitecture-independent profile per
//!    kernel;
//! 2. [`reduce`] — normalize the kernel × characteristic matrix and apply
//!    correlated dimensionality reduction (PCA);
//! 3. [`analysis`] — hierarchical clustering (dendrograms), k-means with
//!    BIC, and cluster-representative selection;
//! 4. [`subspace`] — repeat the analysis in characteristic subspaces
//!    (branch divergence, memory coalescing) and rank workloads by
//!    intra-workload variation;
//! 5. [`diversity`] — per-suite coverage statistics;
//! 6. [`eval`] — design-space evaluation metrics: estimate suite-wide
//!    outcomes from cluster representatives and quantify the error against
//!    full simulation and random subsets;
//! 7. [`report`] — plain-text tables and ASCII scatter plots for every
//!    experiment artifact.
//!
//! # Example
//!
//! ```no_run
//! use gwc_core::study::{Study, StudyConfig};
//! use gwc_core::reduce::ReducedSpace;
//! use gwc_workloads::Scale;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let study = Study::run(&StudyConfig {
//!     seed: 7,
//!     scale: Scale::Small,
//!     verify: true,
//!     ..StudyConfig::default()
//! })?;
//! let space = ReducedSpace::fit(&study.matrix(), 0.9)?;
//! println!("{} kernels, {} PCs", study.records().len(), space.kept());
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod diversity;
pub mod eval;
pub mod pairs;
pub mod parallel;
pub mod pipeline;
pub mod reduce;
pub mod report;
pub mod study;
pub mod subspace;

pub use parallel::{available_threads, parallel_map};
pub use pipeline::{ArtifactKind, Artifacts, PipelineConfig, Stage, StageId};
pub use study::{KernelRecord, Study, StudyConfig};
