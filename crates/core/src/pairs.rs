//! The pair study: co-schedules the curated kernel-pair scenarios and
//! collects their pairwise-interference profiles.
//!
//! For each [`gwc_workloads::pairs::PAIR_SCENARIOS`] entry, both member
//! workloads set up on **one shared device** (allocations are disjoint;
//! constant memory is handle-based) and their launches co-schedule
//! through [`Device::launch_pair`] under the configured dispatch
//! policy, observed by a [`PairObserver`] that measures the shared and
//! per-member solo memory timelines in one pass. Members whose launch
//! sequences differ in length run their leftover launches solo on the
//! same timeline. Both members verify against their CPU references
//! afterwards — co-residence must not change results.
//!
//! The co-run is serial by nature (a shared timeline is a total order),
//! so pair records are bit-identical at any worker-thread count; the
//! solo *reference* columns come from the (profile-cache-backed) solo
//! study artifact, which is where threads and the content-addressed
//! cache pay off.

use gwc_characterize::{PairObserver, PairProfile};
use gwc_simt::exec::{Device, PairLaunch};
use gwc_simt::sched::SchedPolicy;
use gwc_stats::{Matrix, MatrixBuilder};
use gwc_workloads::pairs::{partner_member, registry_member, PairScenario, PAIR_SCENARIOS};

use crate::pipeline::StudyArtifact;
use crate::study::Study;

/// Solo-study reference row for one pair member: the workload-mean
/// locality characteristics from the cached solo study, in
/// [`SOLO_REF_DIMS`] order. `None` when the member is not in the study
/// population (the `kgen` thrasher).
pub type SoloRef = Option<[f64; 4]>;

/// Dimension names of a [`SoloRef`] row.
pub const SOLO_REF_DIMS: [&str; 4] = [
    "loc_reuse_le16",
    "loc_reuse_le256",
    "loc_reuse_le4096",
    "loc_cold_frac",
];

/// One co-scheduled scenario's measured outcome.
#[derive(Debug)]
pub struct PairRecord {
    /// The scenario that ran.
    pub scenario: PairScenario,
    /// Measured interference profile (solo and co timelines + deltas).
    pub profile: PairProfile,
    /// Solo-study reference rows for the two members.
    pub solo_ref: [SoloRef; 2],
}

/// The full pair study: every curated scenario co-run under one policy.
#[derive(Debug)]
pub struct PairStudy {
    policy: SchedPolicy,
    records: Vec<PairRecord>,
}

impl PairStudy {
    /// Co-runs every curated scenario under `policy`, seeding members
    /// from `seed` (the same derivation as the solo study, so the study
    /// artifact's rows are input-identical baselines). `solo` provides
    /// the reference columns; `verify` gates CPU-reference checks.
    ///
    /// # Panics
    ///
    /// Panics if a member fails to set up, launch, or verify — the pair
    /// study feeds batch tools, like the pipeline stages.
    pub fn run(
        seed: u64,
        scale: gwc_workloads::Scale,
        verify: bool,
        policy: SchedPolicy,
        solo: &Study,
    ) -> Self {
        let records = PAIR_SCENARIOS
            .iter()
            .map(|&scenario| {
                let _span = gwc_obs::span!("study/pairs/{}", scenario.name);
                gwc_obs::count("pair.scenarios", 1);
                run_scenario(scenario, seed, scale, verify, policy, solo)
            })
            .collect();
        Self { policy, records }
    }

    /// The dispatch policy the study ran under.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Scenario records, in curated order.
    pub fn records(&self) -> &[PairRecord] {
        &self.records
    }

    /// The pair × interference-signature matrix (rows in record order,
    /// columns per [`PairProfile::SIGNATURE_DIMS`]) with its row labels
    /// — the clustering input of experiment E14.
    ///
    /// # Panics
    ///
    /// Panics if the study is empty (the curated set never is).
    pub fn signature_matrix(&self) -> (Vec<String>, Matrix) {
        let mut builder = MatrixBuilder::new(PairProfile::SIGNATURE_DIMS.len());
        let mut labels = Vec::with_capacity(self.records.len());
        for r in &self.records {
            builder
                .push_row(&r.profile.signature())
                .expect("signatures share the dimension count");
            labels.push(r.scenario.name.to_string());
        }
        (labels, builder.finish().expect("pair study is never empty"))
    }
}

/// Workload-mean locality reference from the solo study, or `None` if
/// the workload is not in the population.
fn solo_reference(solo: &Study, workload: &str) -> SoloRef {
    let rows = solo.rows_of_workload(workload);
    if rows.is_empty() {
        return None;
    }
    let records = solo.records();
    let mut acc = [0.0f64; 4];
    for &i in &rows {
        for (a, dim) in acc.iter_mut().zip(SOLO_REF_DIMS) {
            *a += records[i].profile.get(dim);
        }
    }
    Some(acc.map(|v| v / rows.len() as f64))
}

fn run_scenario(
    scenario: PairScenario,
    seed: u64,
    scale: gwc_workloads::Scale,
    verify: bool,
    policy: SchedPolicy,
    solo: &Study,
) -> PairRecord {
    let mut a = registry_member(scenario.a, seed);
    let mut b = partner_member(scenario.partner, seed);
    let names = [a.meta().name, b.meta().name];

    let mut dev = Device::new();
    let launches_a = a.setup(&mut dev, scale).expect("member a sets up");
    let launches_b = b.setup(&mut dev, scale).expect("member b sets up");
    gwc_obs::progress::declare(
        &gwc_obs::progress::LAUNCHES,
        (launches_a.len() + launches_b.len()) as u64,
    );

    let mut obs = PairObserver::new();
    let paired = launches_a.len().min(launches_b.len());
    for (la, lb) in launches_a.iter().zip(&launches_b) {
        dev.launch_pair(
            PairLaunch {
                kernel: &la.kernel,
                config: &la.config,
                args: &la.args,
            },
            PairLaunch {
                kernel: &lb.kernel,
                config: &lb.config,
                args: &lb.args,
            },
            policy,
            &mut obs,
        )
        .unwrap_or_else(|e| panic!("{}: pair launch failed: {e:?}", scenario.name));
    }
    // Leftover launches of the longer member run solo; the shared
    // timeline continues without partner traffic.
    for (member, launches) in [(0usize, &launches_a), (1, &launches_b)] {
        obs.set_member(member);
        for l in launches.iter().skip(paired) {
            dev.launch_observed(&l.kernel, &l.config, &l.args, &mut obs)
                .unwrap_or_else(|e| panic!("{}: leftover launch failed: {e:?}", scenario.name));
        }
    }

    if verify {
        a.verify(&dev).unwrap_or_else(|e| {
            panic!(
                "{}: member {} failed verify under co-scheduling: {}",
                scenario.name, names[0], e.detail
            )
        });
        b.verify(&dev).unwrap_or_else(|e| {
            panic!(
                "{}: member {} failed verify under co-scheduling: {}",
                scenario.name, names[1], e.detail
            )
        });
    }

    let profile = obs.finish([names[0], names[1]], policy.name());
    let solo_ref = [
        solo_reference(solo, names[0]),
        solo_reference(solo, names[1]),
    ];
    PairRecord {
        scenario,
        profile,
        solo_ref,
    }
}

/// Convenience used by the pipeline stage and tests: runs the pair
/// study off a study artifact's configuration-consistent population.
pub fn run_from_artifact(
    cfg: &crate::pipeline::PipelineConfig,
    study: &StudyArtifact,
) -> PairStudy {
    PairStudy::run(
        cfg.study.seed,
        cfg.study.scale,
        cfg.study.verify,
        cfg.pair_policy,
        &study.study,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use gwc_workloads::Scale;

    fn tiny_solo() -> Study {
        let config = StudyConfig {
            seed: 7,
            scale: Scale::Tiny,
            verify: true,
            ..StudyConfig::default()
        };
        Study::run(&config).expect("tiny study runs")
    }

    #[test]
    fn pair_study_runs_verifies_and_produces_deltas() {
        let solo = tiny_solo();
        let pairs = PairStudy::run(7, Scale::Tiny, true, SchedPolicy::RoundRobin, &solo);
        assert_eq!(pairs.records().len(), PAIR_SCENARIOS.len());
        // The acceptance bar: at least one pair shows a non-zero
        // contention-adjusted locality delta vs its in-pass solo
        // baseline, and its members carry cached solo-study references.
        let interfering = pairs
            .records()
            .iter()
            .find(|r| r.profile.interference() > 0.0)
            .expect("no pair showed any interference");
        assert!(interfering.solo_ref[0].is_some() || interfering.solo_ref[1].is_some());
        // Footprints are timeline-independent for disjoint members.
        for r in pairs.records() {
            for m in &r.profile.members {
                assert_eq!(
                    m.solo.footprint_lines, m.co.footprint_lines,
                    "{}",
                    r.scenario.name
                );
                assert_eq!(m.solo.touches, m.co.touches, "{}", r.scenario.name);
            }
        }
        let (labels, matrix) = pairs.signature_matrix();
        assert_eq!(labels.len(), PAIR_SCENARIOS.len());
        assert_eq!(matrix.cols(), PairProfile::SIGNATURE_DIMS.len());
    }

    #[test]
    fn pair_study_is_deterministic_per_policy() {
        let solo = tiny_solo();
        for policy in SchedPolicy::ALL {
            let x = PairStudy::run(7, Scale::Tiny, false, policy, &solo);
            let y = PairStudy::run(7, Scale::Tiny, false, policy, &solo);
            for (rx, ry) in x.records().iter().zip(y.records()) {
                assert_eq!(
                    rx.profile,
                    ry.profile,
                    "{} under {}",
                    rx.scenario.name,
                    policy.name()
                );
            }
        }
    }
}
