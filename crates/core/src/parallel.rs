//! Std-only work-stealing thread pool for the characterization pipeline.
//!
//! The runtime has no external dependencies: [`parallel_map`] is built on
//! [`std::thread::scope`] plus an atomic work counter, so idle workers
//! steal the next index as soon as they finish one — a chunked
//! work-stealing schedule without any channel or queue machinery.
//!
//! Determinism contract: the *schedule* (which worker runs which index,
//! and in what wall-clock order) is nondeterministic, but results are
//! always reassembled in index order, so any computation whose items are
//! independent produces output bit-identical to a serial loop. Every
//! parallel path in the pipeline (workload fan-out in
//! [`Study::run_threads`](crate::study::Study::run_threads), the E12
//! design-point sweep in [`eval`](crate::eval)) is built on this
//! property, and `tests/determinism.rs` verifies it end to end.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Instant;

use gwc_obs::recorder::PoolWorker;

/// Threads to use by default: the machine's available parallelism, or 1
/// if that cannot be determined.
pub fn available_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every index in `0..n` on up to `threads` worker
/// threads and returns the results in index order.
///
/// Workers pull indices from a shared atomic counter (work stealing), so
/// uneven item costs balance automatically. With `threads <= 1` (or a
/// single item) this is exactly a serial loop on the calling thread.
///
/// Equivalent to [`parallel_map_named`] with the pool name `"pool"`.
///
/// # Panics
///
/// Propagates a panic from `f` (the first panicking worker observed).
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_named("pool", n, threads, f)
}

/// [`parallel_map`] with a pool name for observability: when a recorder
/// is installed (see `gwc-obs`), every worker reports its task count,
/// steal count (tasks claimed beyond an even `n / workers` share), busy
/// time, and wall time under this name, and each task's duration lands
/// in the `pool.task_ns.{name}` latency histogram. With no recorder
/// installed the per-task clock reads are skipped entirely and the
/// schedule is unchanged — results are bit-identical either way.
///
/// # Panics
///
/// Propagates a panic from `f` (the first panicking worker observed).
pub fn parallel_map_named<T, F>(pool: &str, n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let rec = gwc_obs::recorder();
    let workers = threads.min(n);
    gwc_obs::progress::declare(&gwc_obs::progress::TASKS, n as u64);
    if workers <= 1 {
        let Some(rec) = rec else {
            return (0..n).map(f).collect();
        };
        let task_hist = format!("pool.task_ns.{pool}");
        let wall = Instant::now();
        let mut busy_ns = 0u64;
        let out = (0..n)
            .map(|i| {
                let t0 = Instant::now();
                let v = f(i);
                let task_ns = t0.elapsed().as_nanos() as u64;
                busy_ns += task_ns;
                rec.record_hist(&task_hist, task_ns);
                gwc_obs::progress::tick(&gwc_obs::progress::TASKS, 1);
                v
            })
            .collect();
        rec.record_pool_worker(
            pool,
            0,
            &PoolWorker {
                tasks: n as u64,
                steals: 0,
                busy_ns,
                wall_ns: wall.elapsed().as_nanos() as u64,
            },
        );
        return out;
    }
    // `Option<&dyn Recorder>` is `Copy`, so each worker closure can
    // take its own copy without touching the `Arc`.
    let rec = rec.as_deref();
    let fair_share = (n / workers) as u64;
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    thread::scope(|scope| {
        let next = &next;
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let task_hist = rec.map(|_| format!("pool.task_ns.{pool}"));
                    let wall = Instant::now();
                    let mut busy_ns = 0u64;
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let t0 = rec.map(|_| Instant::now());
                        produced.push((i, f(i)));
                        gwc_obs::progress::tick(&gwc_obs::progress::TASKS, 1);
                        if let (Some(t0), Some(rec)) = (t0, rec) {
                            let task_ns = t0.elapsed().as_nanos() as u64;
                            busy_ns += task_ns;
                            rec.record_hist(
                                task_hist.as_deref().unwrap_or("pool.task_ns"),
                                task_ns,
                            );
                        }
                    }
                    if let Some(rec) = rec {
                        let tasks = produced.len() as u64;
                        rec.record_pool_worker(
                            pool,
                            w,
                            &PoolWorker {
                                tasks,
                                steals: tasks.saturating_sub(fair_share),
                                busy_ns,
                                wall_ns: wall.elapsed().as_nanos() as u64,
                            },
                        );
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|v| v.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(100, threads, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "at {threads} threads");
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        parallel_map(hits.len(), 7, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 41), vec![41]);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still land in order.
        let got = parallel_map(32, 4, |i| {
            let spin = if i % 7 == 0 { 20_000 } else { 10 };
            let mut acc = i as u64;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            }
            (i, acc)
        });
        for (i, (idx, _)) in got.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn named_pool_reports_per_worker_stats() {
        use gwc_obs::metrics::MetricsRecorder;
        use std::sync::Arc;

        let rec = Arc::new(MetricsRecorder::default());
        let guard = gwc_obs::install(rec.clone());
        let got = parallel_map_named("pool-stats-probe", 64, 4, |i| i);
        drop(guard);
        assert_eq!(got, (0..64).collect::<Vec<_>>());
        let snap = rec.snapshot();
        let workers = snap
            .pools
            .iter()
            .find(|(name, _)| name == "pool-stats-probe")
            .map(|(_, w)| w)
            .expect("pool recorded");
        assert!(!workers.is_empty() && workers.len() <= 4);
        let tasks: u64 = workers.iter().map(|(_, s)| s.tasks).sum();
        assert_eq!(tasks, 64, "every task attributed to exactly one worker");
        for (_, s) in workers {
            assert!(s.wall_ns >= s.busy_ns, "busy time bounded by wall time");
        }
    }

    #[test]
    fn serial_named_pool_records_single_worker() {
        use gwc_obs::metrics::MetricsRecorder;
        use std::sync::Arc;

        let rec = Arc::new(MetricsRecorder::default());
        let guard = gwc_obs::install(rec.clone());
        let got = parallel_map_named("pool-serial-probe", 5, 1, |i| i * 2);
        drop(guard);
        assert_eq!(got, vec![0, 2, 4, 6, 8]);
        let snap = rec.snapshot();
        let workers = snap
            .pools
            .iter()
            .find(|(name, _)| name == "pool-serial-probe")
            .map(|(_, w)| w)
            .expect("pool recorded");
        assert_eq!(workers.len(), 1);
        assert_eq!(workers[0].1.tasks, 5);
        assert_eq!(workers[0].1.steals, 0);
    }
}
