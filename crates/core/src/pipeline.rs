//! The staged characterization pipeline: typed artifacts, an explicit
//! stage DAG, and one entry point shared by `regen`, the examples and the
//! perf harness.
//!
//! Before this module, every consumer re-spelled the same ad-hoc call
//! chain (run study → drop `vector_add` → build matrix → fit PCA → fit
//! clustering) and the chain's structure existed only by convention. Here
//! each step is a [`Stage`] with a typed input and output artifact, the
//! dependencies are data ([`StageId::deps`]), and [`Artifacts::collect`]
//! is the single driver that walks the DAG in topological order under the
//! canonical observability spans (`study`, `reduce/matrix`, `reduce`,
//! `cluster` — the matrix stage deliberately records *under* `reduce` so
//! the top-level stage set, and therefore every metrics report and perf
//! baseline, is unchanged).
//!
//! The study stage is cache-aware: give [`PipelineConfig::cache_dir`] a
//! directory and workloads whose fingerprints hit the persistent profile
//! cache skip simulation entirely, with bit-identical results.

use std::path::PathBuf;

use gwc_characterize::{MatrixBlock, MatrixCache, ProfileCache};
use gwc_simt::sched::SchedPolicy;
use gwc_stats::{Matrix, MatrixBuilder};
use gwc_workloads::Scale;

use crate::analysis::ClusterAnalysis;
use crate::reduce::ReducedSpace;
use crate::study::{Study, StudyConfig};

/// Identity of a pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StageId {
    /// Run the workload registry and collect kernel profiles.
    Study,
    /// Co-run the curated kernel pairs and collect interference
    /// profiles. Lazy: not in [`StageId::ALL`] — it runs on demand
    /// (experiment E14), not in every [`Artifacts::collect`], so
    /// pipelines that never look at pairs pay nothing.
    Pairs,
    /// Assemble the kernel × characteristic matrix with row labels.
    Matrix,
    /// Normalize and reduce dimensionality (PCA).
    Reduce,
    /// Cluster in the reduced space and pick representatives.
    Cluster,
}

impl StageId {
    /// Every *eagerly collected* stage, in the one valid topological
    /// order ([`StageId::Pairs`] is lazy and deliberately absent).
    pub const ALL: [StageId; 4] = [
        StageId::Study,
        StageId::Matrix,
        StageId::Reduce,
        StageId::Cluster,
    ];

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            StageId::Study => "study",
            StageId::Pairs => "pairs",
            StageId::Matrix => "matrix",
            StageId::Reduce => "reduce",
            StageId::Cluster => "cluster",
        }
    }

    /// The observability span path the driver opens around the stage.
    ///
    /// `Matrix` records under `reduce/` so the set of *top-level* stages
    /// in a metrics report stays `{study, reduce, cluster}`, exactly as
    /// before the matrix assembly became its own stage; `rollup_ns`
    /// still attributes its time to `reduce`.
    pub fn span_path(self) -> &'static str {
        match self {
            StageId::Study => "study",
            StageId::Pairs => "study/pairs",
            StageId::Matrix => "reduce/matrix",
            StageId::Reduce => "reduce",
            StageId::Cluster => "cluster",
        }
    }

    /// The stages whose output artifacts this stage consumes.
    pub fn deps(self) -> &'static [StageId] {
        match self {
            StageId::Study => &[],
            StageId::Pairs => &[StageId::Study],
            StageId::Matrix => &[StageId::Study],
            StageId::Reduce => &[StageId::Matrix],
            StageId::Cluster => &[StageId::Reduce],
        }
    }

    /// The artifact this stage produces.
    pub fn output(self) -> ArtifactKind {
        match self {
            StageId::Study => ArtifactKind::Study,
            StageId::Pairs => ArtifactKind::Pairs,
            StageId::Matrix => ArtifactKind::Matrix,
            StageId::Reduce => ArtifactKind::Reduced,
            StageId::Cluster => ArtifactKind::Clustering,
        }
    }
}

/// Kind tag for the typed artifacts, used by consumers (e.g. the
/// experiment registry in `gwc-bench`) to declare what they read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// [`StudyArtifact`].
    Study,
    /// [`PairArtifact`].
    Pairs,
    /// [`MatrixArtifact`].
    Matrix,
    /// [`ReducedArtifact`].
    Reduced,
    /// [`ClusteringArtifact`].
    Clustering,
}

impl ArtifactKind {
    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Study => "study",
            ArtifactKind::Pairs => "pairs",
            ArtifactKind::Matrix => "matrix",
            ArtifactKind::Reduced => "reduced",
            ArtifactKind::Clustering => "clustering",
        }
    }
}

/// Configuration of one full pipeline run. [`PipelineConfig::default`]
/// is the canonical configuration every committed result was produced
/// under (seed 7, `Scale::Small`, verification on, `vector_add`
/// excluded from the population, 90% variance, k ≤ 12, cluster seed 7,
/// no cache).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Study stage configuration (seed, scale, verification).
    pub study: StudyConfig,
    /// Worker threads for the study fan-out and downstream experiment
    /// stages. Results are bit-identical at any thread count.
    pub threads: usize,
    /// Workload dropped from the population after the study runs (the
    /// quickstart `vector_add` by default — it is a smoke test, not part
    /// of the paper's population).
    pub exclude_workload: Option<&'static str>,
    /// Fraction of variance the reduction must retain.
    pub variance: f64,
    /// Upper bound for the BIC scan over k.
    pub max_k: usize,
    /// Seed for k-means initialization.
    pub cluster_seed: u64,
    /// Directory of the persistent profile cache; `None` disables
    /// caching (every workload simulates).
    pub cache_dir: Option<PathBuf>,
    /// Dispatch policy the (lazy) pair-study stage co-schedules under.
    pub pair_policy: SchedPolicy,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            study: StudyConfig {
                seed: 7,
                scale: Scale::Small,
                verify: true,
                ..StudyConfig::default()
            },
            threads: 1,
            exclude_workload: Some("vector_add"),
            variance: 0.9,
            max_k: 12,
            cluster_seed: 7,
            cache_dir: None,
            pair_policy: SchedPolicy::RoundRobin,
        }
    }
}

/// Output of [`StageId::Study`]: the profiled workload population.
#[derive(Debug)]
pub struct StudyArtifact {
    /// The study, with [`PipelineConfig::exclude_workload`] already
    /// dropped.
    pub study: Study,
}

/// Output of [`StageId::Pairs`]: the pairwise-interference study.
#[derive(Debug)]
pub struct PairArtifact {
    /// The co-scheduled pair study.
    pub pairs: crate::pairs::PairStudy,
}

/// Output of [`StageId::Matrix`]: the kernel × characteristic matrix.
#[derive(Debug)]
pub struct MatrixArtifact {
    /// Row labels (`workload/kernel`), in study order.
    pub labels: Vec<String>,
    /// The raw (unnormalized) matrix.
    pub matrix: Matrix,
}

/// Output of [`StageId::Reduce`]: the reduced (PC) space.
#[derive(Debug)]
pub struct ReducedArtifact {
    /// The fitted reduction.
    pub space: ReducedSpace,
}

/// Output of [`StageId::Cluster`]: clustering and representatives.
#[derive(Debug)]
pub struct ClusteringArtifact {
    /// The fitted clustering.
    pub analysis: ClusterAnalysis,
}

/// One pipeline stage: a typed transformation from its input artifact(s)
/// to its output artifact. The associated `ID` ties the type-level
/// contract to the data-level DAG in [`StageId`]; a unit test checks the
/// two agree.
pub trait Stage {
    /// Which stage this is.
    const ID: StageId;
    /// Borrowed input artifact(s).
    type Input<'a>;
    /// Produced artifact.
    type Output;

    /// Runs the stage.
    ///
    /// # Panics
    ///
    /// Stages panic on failure: the pipeline feeds batch tools
    /// (`regen`, `bench_run`, the examples) for which a failed stage has
    /// nothing to print, and the canonical configuration is covered by
    /// the test suite.
    fn run(cfg: &PipelineConfig, input: Self::Input<'_>) -> Self::Output;
}

/// The study stage (cache-aware).
pub struct StudyStage;

impl Stage for StudyStage {
    const ID: StageId = StageId::Study;
    type Input<'a> = ();
    type Output = StudyArtifact;

    fn run(cfg: &PipelineConfig, (): ()) -> StudyArtifact {
        let cache = cfg.cache_dir.as_ref().map(ProfileCache::new);
        let study = Study::run_threads_cached(&cfg.study, cfg.threads, cache.as_ref())
            .expect("study runs and verifies");
        let study = match cfg.exclude_workload {
            Some(name) => study.without_workload(name),
            None => study,
        };
        StudyArtifact { study }
    }
}

/// The (lazy) pair-study stage: co-schedules the curated kernel pairs
/// under [`PipelineConfig::pair_policy`] and profiles their
/// interference, using the study artifact for the cache-backed solo
/// reference columns. Run on demand (experiment E14 is its consumer),
/// never inside [`Artifacts::collect`].
pub struct PairsStage;

impl Stage for PairsStage {
    const ID: StageId = StageId::Pairs;
    type Input<'a> = &'a StudyArtifact;
    type Output = PairArtifact;

    fn run(cfg: &PipelineConfig, input: &StudyArtifact) -> PairArtifact {
        let _span = gwc_obs::span!("{}", StageId::Pairs.span_path());
        PairArtifact {
            pairs: crate::pairs::run_from_artifact(cfg, input),
        }
    }
}

/// The matrix-assembly stage (incremental and cache-aware).
///
/// Rows are assembled one per-workload column block at a time through
/// [`MatrixBuilder`], so peak memory is one matrix. With a cache
/// directory configured, each block is keyed on its workload's content
/// fingerprint in a [`MatrixCache`] living alongside the profile cache:
/// appending a workload to a cached study re-reads every existing block
/// (values stored as raw `f64` bits, so reuse is bit-exact) and computes
/// only the new one. Hit/miss totals land on `matrix.cache.hits` /
/// `matrix.cache.misses`. A cached block whose labels disagree with the
/// study (stale or corrupt entry) is recomputed and re-stored.
pub struct MatrixStage;

impl Stage for MatrixStage {
    const ID: StageId = StageId::Matrix;
    type Input<'a> = &'a StudyArtifact;
    type Output = MatrixArtifact;

    fn run(cfg: &PipelineConfig, input: &StudyArtifact) -> MatrixArtifact {
        let study = &input.study;
        let records = study.records();
        let cache = cfg.cache_dir.as_ref().map(MatrixCache::new);
        let cols = records
            .first()
            .map(|r| r.profile.values().len())
            .unwrap_or(0);
        let mut labels: Vec<String> = Vec::with_capacity(records.len());
        let mut builder = MatrixBuilder::new(cols);
        for name in study.workload_names() {
            let rows_idx = study.rows_of_workload(name);
            let fingerprint = records[rows_idx[0]].fingerprint;
            let block_labels: Vec<String> = rows_idx.iter().map(|&i| records[i].label()).collect();
            let cached = cache
                .as_ref()
                .and_then(|c| c.load(fingerprint))
                .filter(|b| b.labels == block_labels);
            if let Some(block) = cached {
                gwc_obs::count("matrix.cache.hits", 1);
                for row in &block.rows {
                    builder
                        .push_row(row)
                        .expect("block width validated on load");
                }
            } else {
                if cache.is_some() {
                    gwc_obs::count("matrix.cache.misses", 1);
                }
                let rows: Vec<Vec<f64>> = rows_idx
                    .iter()
                    .map(|&i| records[i].profile.values().to_vec())
                    .collect();
                for row in &rows {
                    builder
                        .push_row(row)
                        .expect("profiles share the schema width");
                }
                if let Some(c) = &cache {
                    c.store(
                        fingerprint,
                        &MatrixBlock {
                            labels: block_labels.clone(),
                            rows,
                        },
                    );
                }
            }
            labels.extend(block_labels);
        }
        MatrixArtifact {
            labels,
            matrix: builder.finish().expect("study is never empty"),
        }
    }
}

/// The dimensionality-reduction stage.
pub struct ReduceStage;

impl Stage for ReduceStage {
    const ID: StageId = StageId::Reduce;
    type Input<'a> = &'a MatrixArtifact;
    type Output = ReducedArtifact;

    fn run(cfg: &PipelineConfig, input: &MatrixArtifact) -> ReducedArtifact {
        ReducedArtifact {
            space: ReducedSpace::fit(&input.matrix, cfg.variance).expect("reduction fits"),
        }
    }
}

/// The clustering stage.
pub struct ClusterStage;

impl Stage for ClusterStage {
    const ID: StageId = StageId::Cluster;
    type Input<'a> = &'a ReducedArtifact;
    type Output = ClusteringArtifact;

    fn run(cfg: &PipelineConfig, input: &ReducedArtifact) -> ClusteringArtifact {
        ClusteringArtifact {
            analysis: ClusterAnalysis::fit(input.space.scores(), cfg.max_k, cfg.cluster_seed)
                .expect("clustering fits"),
        }
    }
}

/// Every artifact of one full pipeline run.
#[derive(Debug)]
pub struct Artifacts {
    /// Study-stage output.
    pub study: StudyArtifact,
    /// Matrix-stage output.
    pub matrix: MatrixArtifact,
    /// Reduce-stage output.
    pub reduced: ReducedArtifact,
    /// Cluster-stage output.
    pub clustering: ClusteringArtifact,
    /// The configuration the artifacts were collected under. Downstream
    /// consumers read it for worker threads (experiment E12's
    /// design-point sweep) and to run the lazy pair stage (experiment
    /// E14) against the same seed, scale, and dispatch policy.
    pub config: PipelineConfig,
}

impl Artifacts {
    /// Runs every stage in DAG order under the canonical spans and
    /// returns the full artifact set.
    ///
    /// # Panics
    ///
    /// Panics if any stage fails (see [`Stage::run`]).
    pub fn collect(cfg: &PipelineConfig) -> Self {
        use gwc_obs::progress::{self, STAGES};
        progress::declare(&STAGES, StageId::ALL.len() as u64);
        let study = {
            let _span = gwc_obs::span!("{}", StageId::Study.span_path());
            progress::set_stage(StageId::Study.name());
            StudyStage::run(cfg, ())
        };
        progress::tick(&STAGES, 1);
        let matrix = {
            let _span = gwc_obs::span!("{}", StageId::Matrix.span_path());
            progress::set_stage(StageId::Matrix.name());
            MatrixStage::run(cfg, &study)
        };
        progress::tick(&STAGES, 1);
        let reduced = {
            let _span = gwc_obs::span!("{}", StageId::Reduce.span_path());
            progress::set_stage(StageId::Reduce.name());
            ReduceStage::run(cfg, &matrix)
        };
        progress::tick(&STAGES, 1);
        let clustering = {
            let _span = gwc_obs::span!("{}", StageId::Cluster.span_path());
            progress::set_stage(StageId::Cluster.name());
            ClusterStage::run(cfg, &reduced)
        };
        progress::tick(&STAGES, 1);
        Self {
            study,
            matrix,
            reduced,
            clustering,
            config: cfg.clone(),
        }
    }

    /// Convenience: the canonical configuration on `threads` workers
    /// (no cache). Bit-identical to `collect` of a default config at
    /// any thread count.
    pub fn collect_threads(threads: usize) -> Self {
        Self::collect(&PipelineConfig {
            threads,
            ..PipelineConfig::default()
        })
    }

    /// The study population.
    pub fn study(&self) -> &Study {
        &self.study.study
    }

    /// The reduced (PC) space.
    pub fn space(&self) -> &ReducedSpace {
        &self.reduced.space
    }

    /// The whole-space clustering.
    pub fn analysis(&self) -> &ClusterAnalysis {
        &self.clustering.analysis
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_a_topological_order() {
        for (i, stage) in StageId::ALL.iter().enumerate() {
            for dep in stage.deps() {
                let j = StageId::ALL
                    .iter()
                    .position(|s| s == dep)
                    .expect("dep is a stage");
                assert!(j < i, "{:?} depends on later {:?}", stage, dep);
            }
        }
    }

    #[test]
    fn stage_impls_agree_with_dag() {
        assert_eq!(StudyStage::ID, StageId::Study);
        assert_eq!(PairsStage::ID, StageId::Pairs);
        assert_eq!(MatrixStage::ID, StageId::Matrix);
        assert_eq!(ReduceStage::ID, StageId::Reduce);
        assert_eq!(ClusterStage::ID, StageId::Cluster);
    }

    /// The lazy pair stage must stay out of the eager driver: its cost
    /// belongs to E14 alone, and `collect` timing baselines depend on
    /// the stage set staying fixed.
    #[test]
    fn pairs_stage_is_lazy_with_valid_deps() {
        assert!(!StageId::ALL.contains(&StageId::Pairs));
        assert_eq!(StageId::Pairs.deps(), &[StageId::Study]);
        assert_eq!(StageId::Pairs.output(), ArtifactKind::Pairs);
        assert_eq!(StageId::Pairs.name(), "pairs");
        assert_eq!(StageId::Pairs.span_path(), "study/pairs");
        assert_eq!(ArtifactKind::Pairs.name(), "pairs");
    }

    #[test]
    fn span_paths_keep_top_level_stage_set() {
        let top: Vec<&str> = StageId::ALL
            .iter()
            .map(|s| s.span_path())
            .filter(|p| !p.contains('/'))
            .collect();
        assert_eq!(top, ["study", "reduce", "cluster"]);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(StageId::Matrix.name(), "matrix");
        assert_eq!(StageId::Matrix.output().name(), "matrix");
        assert_eq!(ArtifactKind::Reduced.name(), "reduced");
    }

    #[test]
    fn default_config_is_canonical() {
        let cfg = PipelineConfig::default();
        assert_eq!(cfg.study.seed, 7);
        assert_eq!(cfg.exclude_workload, Some("vector_add"));
        assert_eq!(cfg.variance, 0.9);
        assert_eq!(cfg.max_k, 12);
        assert_eq!(cfg.cluster_seed, 7);
        assert!(cfg.cache_dir.is_none());
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.pair_policy, SchedPolicy::RoundRobin);
    }
}
