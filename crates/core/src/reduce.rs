//! Stage 2: normalization and correlated dimensionality reduction.

use gwc_stats::normalize::{varying_columns, zscore, ColumnStats};
use gwc_stats::pca::Pca;
use gwc_stats::{Matrix, StatsError};

/// A fitted reduced space: z-scored characteristics projected onto the
/// principal components that explain the requested variance fraction.
#[derive(Debug, Clone)]
pub struct ReducedSpace {
    varying: Vec<usize>,
    stats: ColumnStats,
    pca: Pca,
    kept: usize,
    scores: Matrix,
}

impl ReducedSpace {
    /// Fits the reduction to a raw kernel × characteristic matrix:
    /// drop constant columns → z-score → PCA → keep the leading
    /// components reaching `variance_fraction`.
    ///
    /// # Errors
    ///
    /// Propagates [`StatsError`] from normalization or the eigensolver.
    pub fn fit(raw: &Matrix, variance_fraction: f64) -> Result<Self, StatsError> {
        raw.check_finite()?;
        let varying = varying_columns(raw, 1e-12);
        let filtered = raw.select_cols(&varying);
        let (z, stats) = zscore(&filtered);
        let pca = Pca::fit(&z)?;
        let kept = pca.components_for(variance_fraction);
        let scores = pca.transform(&z, kept)?;
        Ok(Self {
            varying,
            stats,
            pca,
            kept,
            scores,
        })
    }

    /// Number of principal components kept.
    pub fn kept(&self) -> usize {
        self.kept
    }

    /// Number of characteristics that actually varied across the study.
    pub fn varying_dims(&self) -> usize {
        self.varying.len()
    }

    /// Indices (into the original schema) of the varying characteristics.
    pub fn varying_columns(&self) -> &[usize] {
        &self.varying
    }

    /// The kernels' coordinates in PC space (rows × kept).
    pub fn scores(&self) -> &Matrix {
        &self.scores
    }

    /// The underlying PCA fit.
    pub fn pca(&self) -> &Pca {
        &self.pca
    }

    /// Fraction of variance explained by the kept components.
    pub fn variance_explained(&self) -> f64 {
        self.pca.variance_explained(self.kept)
    }

    /// Projects a new raw characteristic vector into the fitted space.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ShapeMismatch`] if the vector length differs
    /// from the schema the space was fitted on.
    pub fn project(&self, raw_row: &[f64]) -> Result<Vec<f64>, StatsError> {
        let max = self.varying.iter().copied().max().unwrap_or(0);
        if raw_row.len() <= max {
            return Err(StatsError::ShapeMismatch {
                expected: max + 1,
                found: raw_row.len(),
            });
        }
        let filtered: Vec<f64> = self.varying.iter().map(|&c| raw_row[c]).collect();
        let z = self.stats.apply(&filtered);
        let m = Matrix::from_rows(&[z])?;
        let t = self.pca.transform(&m, self.kept)?;
        Ok(t.row(0).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        // 6 observations, 4 dims; dim 2 constant, dim 1 = 2 * dim 0.
        Matrix::from_rows(&[
            vec![1.0, 2.0, 5.0, 0.3],
            vec![2.0, 4.0, 5.0, -0.7],
            vec![3.0, 6.0, 5.0, 0.9],
            vec![4.0, 8.0, 5.0, -0.1],
            vec![5.0, 10.0, 5.0, 0.4],
            vec![6.0, 12.0, 5.0, -0.6],
        ])
        .unwrap()
    }

    #[test]
    fn drops_constant_columns() {
        let space = ReducedSpace::fit(&sample(), 0.95).unwrap();
        assert_eq!(space.varying_dims(), 3);
        assert!(!space.varying_columns().contains(&2));
    }

    #[test]
    fn correlated_columns_collapse() {
        let space = ReducedSpace::fit(&sample(), 0.99).unwrap();
        // Three varying dims, but dims 0 and 1 are perfectly correlated:
        // two PCs suffice for 99% of variance.
        assert!(space.kept() <= 2, "kept {} PCs", space.kept());
        assert!(space.variance_explained() >= 0.99);
    }

    #[test]
    fn scores_shape() {
        let space = ReducedSpace::fit(&sample(), 0.9).unwrap();
        assert_eq!(space.scores().rows(), 6);
        assert_eq!(space.scores().cols(), space.kept());
    }

    #[test]
    fn project_matches_fitted_scores() {
        let m = sample();
        let space = ReducedSpace::fit(&m, 0.9).unwrap();
        for r in 0..m.rows() {
            let p = space.project(m.row(r)).unwrap();
            for (c, &pv) in p.iter().enumerate().take(space.kept()) {
                assert!(
                    (pv - space.scores().get(r, c)).abs() < 1e-9,
                    "row {r} pc {c}"
                );
            }
        }
    }

    #[test]
    fn project_rejects_short_rows() {
        let space = ReducedSpace::fit(&sample(), 0.9).unwrap();
        assert!(space.project(&[1.0]).is_err());
    }

    #[test]
    fn rejects_nan_matrix() {
        let mut m = sample();
        m.set(0, 0, f64::NAN);
        assert!(ReducedSpace::fit(&m, 0.9).is_err());
    }
}
