//! Stage 7: plain-text rendering of the experiment artifacts.

use gwc_stats::Matrix;

/// Renders a labeled table: one row per label, columns formatted to 4
/// decimals.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the matrix row count.
pub fn render_matrix(labels: &[String], headers: &[&str], m: &Matrix) -> String {
    assert_eq!(labels.len(), m.rows(), "one label per row");
    let label_w = labels.iter().map(String::len).max().unwrap_or(8).max(8);
    let mut out = String::new();
    out.push_str(&format!("{:<label_w$}", "kernel"));
    for h in headers.iter().take(m.cols()) {
        out.push_str(&format!(" {h:>12}"));
    }
    out.push('\n');
    for (r, label) in labels.iter().enumerate() {
        out.push_str(&format!("{label:<label_w$}"));
        for c in 0..m.cols() {
            out.push_str(&format!(" {:>12.4}", m.get(r, c)));
        }
        out.push('\n');
    }
    out
}

/// Renders a 2-D ASCII scatter plot of (x, y) points labelled by index
/// markers, with a legend mapping markers back to labels. This is the
/// textual stand-in for the paper's PC scatter figures.
pub fn render_scatter(
    labels: &[String],
    xs: &[f64],
    ys: &[f64],
    width: usize,
    height: usize,
) -> String {
    assert_eq!(labels.len(), xs.len());
    assert_eq!(xs.len(), ys.len());
    if xs.is_empty() {
        return String::from("(no points)\n");
    }
    let (x_lo, x_hi) = bounds(xs);
    let (y_lo, y_hi) = bounds(ys);
    let mut grid = vec![vec![' '; width]; height];
    let marker = |i: usize| -> char {
        let alphabet: Vec<char> = ('a'..='z').chain('A'..='Z').chain('0'..='9').collect();
        alphabet[i % alphabet.len()]
    };
    for (i, (&x, &y)) in xs.iter().zip(ys).enumerate() {
        let cx = scale(x, x_lo, x_hi, width - 1);
        // Flip y so larger values print higher.
        let cy = height - 1 - scale(y, y_lo, y_hi, height - 1);
        grid[cy][cx] = marker(i);
    }
    let mut out = String::new();
    out.push_str(&format!(
        "y: [{y_lo:.2}, {y_hi:.2}]  x: [{x_lo:.2}, {x_hi:.2}]\n"
    ));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!("+{}\n", "-".repeat(width)));
    for (i, label) in labels.iter().enumerate() {
        out.push_str(&format!("  {} = {label}\n", marker(i)));
    }
    out
}

/// Renders a labeled matrix as CSV (header row of `headers`, one data row
/// per label) for downstream plotting tools.
///
/// # Panics
///
/// Panics if `labels` or `headers` disagree with the matrix shape.
pub fn render_csv(labels: &[String], headers: &[&str], m: &Matrix) -> String {
    assert_eq!(labels.len(), m.rows(), "one label per row");
    assert_eq!(headers.len(), m.cols(), "one header per column");
    let mut out = String::from("kernel");
    for h in headers {
        out.push(',');
        out.push_str(h);
    }
    out.push('\n');
    for (r, label) in labels.iter().enumerate() {
        out.push_str(label);
        for c in 0..m.cols() {
            out.push_str(&format!(",{}", m.get(r, c)));
        }
        out.push('\n');
    }
    out
}

fn bounds(vals: &[f64]) -> (f64, f64) {
    let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if (hi - lo).abs() < 1e-12 {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}

fn scale(v: f64, lo: f64, hi: f64, max: usize) -> usize {
    (((v - lo) / (hi - lo)) * max as f64).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_table_contains_labels_and_values() {
        let m = Matrix::from_rows(&[vec![1.5, 2.0], vec![-0.25, 4.0]]).unwrap();
        let t = render_matrix(&["alpha".into(), "beta".into()], &["pc1", "pc2"], &m);
        assert!(t.contains("alpha"));
        assert!(t.contains("pc2"));
        assert!(t.contains("1.5000"));
        assert!(t.contains("-0.2500"));
    }

    #[test]
    fn scatter_plots_all_markers() {
        let labels: Vec<String> = (0..3).map(|i| format!("k{i}")).collect();
        let s = render_scatter(&labels, &[0.0, 1.0, 2.0], &[0.0, 2.0, 1.0], 20, 10);
        for m in ['a', 'b', 'c'] {
            assert!(s.matches(m).count() >= 1, "marker {m} missing:\n{s}");
        }
        assert!(s.contains("k2"));
    }

    #[test]
    fn scatter_handles_degenerate_range() {
        let labels = vec!["only".to_string()];
        let s = render_scatter(&labels, &[1.0], &[1.0], 10, 5);
        assert!(s.contains('a'));
    }

    #[test]
    fn csv_round_trips_values() {
        let m = Matrix::from_rows(&[vec![1.5, -2.0]]).unwrap();
        let csv = render_csv(&["k0".into()], &["a", "b"], &m);
        assert_eq!(csv, "kernel,a,b\nk0,1.5,-2\n");
    }

    #[test]
    #[should_panic(expected = "one header per column")]
    fn csv_header_mismatch_panics() {
        let m = Matrix::from_rows(&[vec![1.0]]).unwrap();
        render_csv(&["k".into()], &[], &m);
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn mismatched_labels_panic() {
        let m = Matrix::from_rows(&[vec![1.0]]).unwrap();
        render_matrix(&[], &["x"], &m);
    }
}
