//! Stage 1: run the workload population and collect kernel profiles.

use std::collections::BTreeMap;
use std::sync::Mutex;

use gwc_characterize::{
    profile_launch_sharded, sketch, KernelProfile, ObserverTier, ProfileCache, Profiler,
};
use gwc_simt::exec::Device;
use gwc_stats::Matrix;
use gwc_workloads::fingerprint::workload_fingerprint;
use gwc_workloads::{registry, Scale, StudyScale, Suite, Workload, WorkloadError};

use crate::parallel::parallel_map_named;

/// Configuration of a characterization study.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Master seed; every workload derives its own input seed from it.
    pub seed: u64,
    /// Problem scale for every workload.
    pub scale: Scale,
    /// Verify GPU results against CPU references after each workload
    /// (recommended; adds CPU-side time only).
    pub verify: bool,
    /// Memory tier of the heavyweight observers: [`ObserverTier::Exact`]
    /// (the default, per-address state, the bit-exact oracle) or
    /// [`ObserverTier::Sketch`] (bounded-memory streaming sketches).
    pub observer_tier: ObserverTier,
    /// Size of the study population ([`StudyScale::Standard`] = the
    /// canonical 26-workload registry).
    pub study_scale: StudyScale,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            scale: Scale::Small,
            verify: true,
            observer_tier: ObserverTier::Exact,
            study_scale: StudyScale::Standard,
        }
    }
}

/// One row of the study: a kernel and its profile.
#[derive(Debug, Clone)]
pub struct KernelRecord {
    /// Workload name.
    pub workload: &'static str,
    /// Suite attribution.
    pub suite: Suite,
    /// Kernel label (launches sharing a label were profiled together).
    pub kernel: String,
    /// The measured profile.
    pub profile: KernelProfile,
    /// Content fingerprint of the workload instance this record came
    /// from (salted by observer tier) — the key downstream incremental
    /// caches (e.g. the matrix column cache) reuse rows under. Every
    /// record of one workload shares its fingerprint.
    pub fingerprint: u64,
}

impl KernelRecord {
    /// `workload/kernel` display label.
    pub fn label(&self) -> String {
        format!("{}/{}", self.workload, self.kernel)
    }
}

/// A completed study: one profile per kernel of every workload.
#[derive(Debug)]
pub struct Study {
    records: Vec<KernelRecord>,
}

impl Study {
    /// Runs the full registry under the given configuration.
    ///
    /// Kernel launches sharing a label within a workload (e.g. wavefront
    /// or ping-pong relaunches) accumulate into a single profile, matching
    /// the paper's per-kernel granularity.
    ///
    /// # Errors
    ///
    /// Returns the first simulation or verification error.
    pub fn run(config: &StudyConfig) -> Result<Study, WorkloadError> {
        Self::run_threads(config, 1)
    }

    /// Runs the full registry like [`Study::run`], fanning whole
    /// workloads out across up to `threads` worker threads.
    ///
    /// Each workload still executes on exactly one thread (its launches
    /// are sequentially dependent), so the result is bit-identical to the
    /// serial run: records are reassembled in registry order and every
    /// profile is computed by the same code on the same inputs.
    ///
    /// # Errors
    ///
    /// Returns the error of the earliest-registered failing workload —
    /// the one the serial run would have hit first. (Unlike the serial
    /// run, later workloads may already have executed by then.)
    pub fn run_threads(config: &StudyConfig, threads: usize) -> Result<Study, WorkloadError> {
        Self::run_threads_cached(config, threads, None)
    }

    /// Runs the full registry like [`Study::run_threads`], consulting a
    /// persistent profile cache when one is given.
    ///
    /// A workload whose fingerprint has a valid cache entry skips all of
    /// its kernel launches (and verification — no device result exists to
    /// verify); the cached profiles are bit-identical to recomputed ones,
    /// so the study result is unchanged. Misses run normally and populate
    /// the cache for next time. Hit/miss totals land on the
    /// `cache.hits` / `cache.misses` metrics counters.
    ///
    /// # Errors
    ///
    /// Returns the error of the earliest-registered failing workload.
    pub fn run_threads_cached(
        config: &StudyConfig,
        threads: usize,
        cache: Option<&ProfileCache>,
    ) -> Result<Study, WorkloadError> {
        let mut workloads = registry::study_workloads(config.seed, config.study_scale);
        gwc_obs::progress::declare(&gwc_obs::progress::WORKLOADS, workloads.len() as u64);
        if threads <= 1 {
            let mut records = Vec::new();
            for w in workloads.iter_mut() {
                records.extend(Self::run_one_cached(w.as_mut(), config, 1, cache)?);
                gwc_obs::progress::tick(&gwc_obs::progress::WORKLOADS, 1);
            }
            return Ok(Study { records });
        }
        // Hand each worker exclusive ownership of the workloads it steals.
        let slots: Vec<Mutex<Option<Box<dyn Workload>>>> =
            workloads.into_iter().map(|w| Mutex::new(Some(w))).collect();
        let results = parallel_map_named("study", slots.len(), threads, |i| {
            let mut w = slots[i]
                .lock()
                .expect("workload slot poisoned")
                .take()
                .expect("each slot taken once");
            let r = Self::run_one_cached(w.as_mut(), config, 1, cache);
            gwc_obs::progress::tick(&gwc_obs::progress::WORKLOADS, 1);
            r
        });
        let mut records = Vec::new();
        for r in results {
            records.extend(r?);
        }
        Ok(Study { records })
    }

    /// Runs a single workload and returns one record per kernel label.
    ///
    /// # Errors
    ///
    /// Returns the first simulation or verification error.
    pub fn run_one(
        workload: &mut dyn Workload,
        config: &StudyConfig,
    ) -> Result<Vec<KernelRecord>, WorkloadError> {
        Self::run_one_threads(workload, config, 1)
    }

    /// Runs a single workload, sharding each launch's blocks across up to
    /// `threads` threads when its kernel meets the block-sharding
    /// contract (see `gwc_characterize::runtime`). Profiles are
    /// bit-identical to [`Study::run_one`] at any thread count.
    ///
    /// # Errors
    ///
    /// Returns the first simulation or verification error.
    pub fn run_one_threads(
        workload: &mut dyn Workload,
        config: &StudyConfig,
        threads: usize,
    ) -> Result<Vec<KernelRecord>, WorkloadError> {
        Self::run_one_cached(workload, config, threads, None)
    }

    /// Runs a single workload like [`Study::run_one_threads`], consulting
    /// a persistent profile cache when one is given.
    ///
    /// Setup always runs — it is what produces the kernels the
    /// fingerprint hashes, and it is cheap next to simulation. On a cache
    /// hit every launch and the CPU verification are skipped (the device
    /// buffers were never written, so there is nothing to verify; the
    /// profiles were verified when they were first computed and stored).
    ///
    /// # Errors
    ///
    /// Returns the first setup, simulation or verification error.
    pub fn run_one_cached(
        workload: &mut dyn Workload,
        config: &StudyConfig,
        threads: usize,
        cache: Option<&ProfileCache>,
    ) -> Result<Vec<KernelRecord>, WorkloadError> {
        let meta = workload.meta();
        let rec = gwc_obs::recorder();
        let start = rec.as_ref().map(|_| std::time::Instant::now());
        let mut dev = Device::new();
        let launches = workload.setup(&mut dev, config.scale)?;
        // Sketch-tier profiles are a different (approximate) function of
        // the same inputs, so the tier salts the fingerprint: the two
        // tiers can never alias each other's cache entries.
        let tier_salt = match config.observer_tier {
            ObserverTier::Exact => 0,
            ObserverTier::Sketch => sketch::CACHE_SALT,
        };
        let fingerprint =
            workload_fingerprint(meta.name, config.seed, config.scale, &launches) ^ tier_salt;
        let cached = cache.and_then(|c| c.load(fingerprint));
        let records: Vec<KernelRecord> = if let Some(profiles) = cached {
            gwc_obs::count("cache.hits", 1);
            profiles
                .into_iter()
                .map(|profile| KernelRecord {
                    workload: meta.name,
                    suite: meta.suite,
                    kernel: profile.name().to_string(),
                    profile,
                    fingerprint,
                })
                .collect()
        } else {
            if cache.is_some() {
                gwc_obs::count("cache.misses", 1);
            }
            // Launches are only declared on the miss path: a cache hit
            // skips them entirely, so counting them would leave the
            // launch total permanently short of done.
            gwc_obs::progress::declare(&gwc_obs::progress::LAUNCHES, launches.len() as u64);
            injected_test_stall();
            // Insertion-ordered grouping by label.
            let mut order: Vec<String> = Vec::new();
            let mut profilers: BTreeMap<String, Profiler> = BTreeMap::new();
            for launch in &launches {
                if !profilers.contains_key(&launch.label) {
                    order.push(launch.label.clone());
                    profilers.insert(
                        launch.label.clone(),
                        Profiler::with_tier(config.observer_tier),
                    );
                }
                let profiler = profilers.get_mut(&launch.label).expect("just inserted");
                profile_launch_sharded(
                    &mut dev,
                    &launch.kernel,
                    &launch.config,
                    &launch.args,
                    profiler,
                    threads,
                )?;
            }
            if config.verify {
                workload.verify(&dev)?;
            }
            let records: Vec<KernelRecord> = order
                .into_iter()
                .map(|label| {
                    let profiler = profilers.remove(&label).expect("grouped");
                    let profile = profiler.finish(label.clone());
                    KernelRecord {
                        workload: meta.name,
                        suite: meta.suite,
                        kernel: label,
                        profile,
                        fingerprint,
                    }
                })
                .collect();
            if let Some(c) = cache {
                let profiles: Vec<KernelProfile> =
                    records.iter().map(|r| r.profile.clone()).collect();
                c.store(fingerprint, &profiles);
            }
            records
        };
        if let (Some(rec), Some(start)) = (rec, start) {
            let nanos = start.elapsed().as_nanos() as u64;
            rec.record_workload(meta.name, records.len() as u64, nanos);
            // Workloads run on pool workers with no inherited span
            // stack, so the span carries its parent explicitly.
            rec.record_span(&format!("study/workload/{}", meta.name), nanos);
        }
        Ok(records)
    }

    /// The kernel records, in registry/launch order.
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Row labels (`workload/kernel`).
    pub fn labels(&self) -> Vec<String> {
        self.records.iter().map(KernelRecord::label).collect()
    }

    /// The kernel × characteristic matrix (raw, unnormalized).
    pub fn matrix(&self) -> Matrix {
        let rows: Vec<Vec<f64>> = self
            .records
            .iter()
            .map(|r| r.profile.values().to_vec())
            .collect();
        Matrix::from_rows(&rows).expect("study is never empty")
    }

    /// Row indices belonging to `workload`.
    pub fn rows_of_workload(&self, workload: &str) -> Vec<usize> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.workload == workload)
            .map(|(i, _)| i)
            .collect()
    }

    /// Row indices belonging to `suite`.
    pub fn rows_of_suite(&self, suite: Suite) -> Vec<usize> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.suite == suite)
            .map(|(i, _)| i)
            .collect()
    }

    /// Distinct workload names, in first-appearance order.
    pub fn workload_names(&self) -> Vec<&'static str> {
        let mut names = Vec::new();
        for r in &self.records {
            if !names.contains(&r.workload) {
                names.push(r.workload);
            }
        }
        names
    }

    /// Drops rows belonging to the named workload (used to exclude the
    /// quickstart `vector_add` from suite-diversity statistics).
    pub fn without_workload(&self, workload: &str) -> Study {
        Study {
            records: self
                .records
                .iter()
                .filter(|r| r.workload != workload)
                .cloned()
                .collect(),
        }
    }
}

/// Test-only stall injection: with `GWC_TEST_STALL_MS=<millis>` set, the
/// first workload to reach its launch loop in this process sleeps that
/// long *before* any launch ticks, giving the stall watchdog's
/// end-to-end test a deterministic window with declared-but-unmoving
/// progress. Unset (the production case) this is one relaxed atomic
/// load.
fn injected_test_stall() {
    use std::sync::atomic::{AtomicBool, Ordering};
    static ARMED: AtomicBool = AtomicBool::new(false);
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        let ms = std::env::var("GWC_TEST_STALL_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        if ms > 0 {
            ARMED.store(true, Ordering::Relaxed);
        }
    });
    if ARMED.swap(false, Ordering::Relaxed) {
        let ms = std::env::var("GWC_TEST_STALL_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gwc_workloads::sdk::ParallelReduction;

    #[test]
    fn run_one_groups_by_label() {
        let mut w = ParallelReduction::new(3);
        let records = Study::run_one(
            &mut w,
            &StudyConfig {
                seed: 3,
                scale: Scale::Tiny,
                verify: true,
                ..StudyConfig::default()
            },
        )
        .unwrap();
        // Four kernel variants; the final pass shares the sequential label.
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].kernel, "reduce_interleaved");
        assert_eq!(records[1].kernel, "reduce_sequential");
        assert_eq!(records[2].kernel, "reduce_first_add");
        assert_eq!(records[3].kernel, "reduce_grid_stride");
        // The sequential profile saw two launches.
        assert_eq!(records[1].profile.raw().blocks, 4 + 1);
    }

    #[test]
    fn interleaved_variant_is_more_divergent() {
        let mut w = ParallelReduction::new(3);
        let records = Study::run_one(
            &mut w,
            &StudyConfig {
                seed: 3,
                scale: Scale::Tiny,
                verify: false,
                ..StudyConfig::default()
            },
        )
        .unwrap();
        let inter = &records[0].profile;
        let seq = &records[1].profile;
        assert!(
            inter.get("div_simd_activity") < seq.get("div_simd_activity"),
            "interleaved addressing diverges more: {} vs {}",
            inter.get("div_simd_activity"),
            seq.get("div_simd_activity")
        );
    }
}
