//! Stage 4: characteristic-subspace analysis and workload-variation
//! ranking.
//!
//! The paper repeats the clustering analysis in subspaces (branch
//! divergence, memory coalescing) and reports which *workloads* exhibit
//! the largest variation across their own kernels there — those are the
//! workloads that stress the corresponding functional block in multiple
//! distinct ways.

use gwc_characterize::schema;
use gwc_stats::distance::euclidean;
use gwc_stats::{Matrix, StatsError};

use crate::reduce::ReducedSpace;
use crate::study::Study;

/// A named characteristic subspace.
#[derive(Debug, Clone)]
pub struct Subspace {
    /// Display name.
    pub name: &'static str,
    /// Schema column indices the subspace selects.
    pub columns: Vec<usize>,
}

impl Subspace {
    /// The paper's branch-divergence subspace.
    pub fn divergence() -> Self {
        Self {
            name: "branch_divergence",
            columns: schema::divergence_subspace(),
        }
    }

    /// The paper's memory-coalescing subspace.
    pub fn coalescing() -> Self {
        Self {
            name: "memory_coalescing",
            columns: schema::coalescing_subspace(),
        }
    }

    /// A custom subspace from one characteristic group.
    pub fn of_group(group: schema::Group) -> Self {
        Self {
            name: group.name_static(),
            columns: schema::indices_of(group),
        }
    }
}

/// Helper: `Group::name` returning `&'static str` (the schema names are
/// already static).
trait GroupNameStatic {
    fn name_static(&self) -> &'static str;
}
impl GroupNameStatic for schema::Group {
    fn name_static(&self) -> &'static str {
        self.name()
    }
}

/// A fitted subspace analysis: the reduced space over the selected
/// columns plus per-workload variation scores.
#[derive(Debug)]
pub struct SubspaceAnalysis {
    /// The subspace definition.
    pub subspace: Subspace,
    /// Reduction fitted on the subspace columns.
    pub space: ReducedSpace,
    /// `(workload, variation)` sorted descending by variation.
    pub variation: Vec<(&'static str, f64)>,
}

impl SubspaceAnalysis {
    /// Fits the subspace reduction and ranks workloads by
    /// intra-workload variation (mean distance of the workload's kernels
    /// to their own centroid in the subspace's normalized PC space).
    /// Workloads with a single kernel score 0.
    ///
    /// # Errors
    ///
    /// Propagates [`StatsError`] from the reduction.
    pub fn fit(study: &Study, subspace: Subspace) -> Result<Self, StatsError> {
        let raw = study.matrix().select_cols(&subspace.columns);
        let space = ReducedSpace::fit(&raw, 0.95)?;
        let scores = space.scores();
        let mut variation: Vec<(&'static str, f64)> = study
            .workload_names()
            .into_iter()
            .map(|w| (w, workload_spread(scores, &study.rows_of_workload(w))))
            .collect();
        variation.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite spread"));
        Ok(Self {
            subspace,
            space,
            variation,
        })
    }

    /// The top `n` most-varying workloads.
    pub fn top(&self, n: usize) -> Vec<&'static str> {
        self.variation.iter().take(n).map(|(w, _)| *w).collect()
    }

    /// Rank (0 = most varying) of `workload`, if present.
    pub fn rank_of(&self, workload: &str) -> Option<usize> {
        self.variation.iter().position(|(w, _)| *w == workload)
    }
}

/// Mean distance of the given rows to their centroid.
fn workload_spread(scores: &Matrix, rows: &[usize]) -> f64 {
    if rows.len() < 2 {
        return 0.0;
    }
    let dims = scores.cols();
    let mut centroid = vec![0.0; dims];
    for &r in rows {
        for (c, v) in centroid.iter_mut().enumerate() {
            *v += scores.get(r, c);
        }
    }
    for v in &mut centroid {
        *v /= rows.len() as f64;
    }
    rows.iter()
        .map(|&r| euclidean(scores.row(r), &centroid))
        .sum::<f64>()
        / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subspace_definitions_are_disjointish() {
        let d = Subspace::divergence();
        let c = Subspace::coalescing();
        assert!(!d.columns.is_empty());
        assert!(!c.columns.is_empty());
        // They share no columns: divergence uses ctrl mix, coalescing the
        // global-memory mix.
        for col in &d.columns {
            assert!(!c.columns.contains(col));
        }
    }

    #[test]
    fn spread_of_identical_rows_is_zero() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![1.0, 2.0], vec![5.0, 5.0]]).unwrap();
        assert_eq!(workload_spread(&m, &[0, 1]), 0.0);
        assert_eq!(workload_spread(&m, &[2]), 0.0, "singletons score zero");
    }

    #[test]
    fn spread_grows_with_scatter() {
        let tight = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.1, 0.0]]).unwrap();
        let wide = Matrix::from_rows(&[vec![0.0, 0.0], vec![10.0, 0.0]]).unwrap();
        assert!(workload_spread(&wide, &[0, 1]) > workload_spread(&tight, &[0, 1]) * 10.0);
    }

    #[test]
    fn group_subspace_selects_group_columns() {
        let s = Subspace::of_group(schema::Group::Locality);
        assert_eq!(s.columns, schema::indices_of(schema::Group::Locality));
        assert_eq!(s.name, "locality");
    }
}
