//! Log-bucketed latency histograms.
//!
//! A [`Histogram`] buckets `u64` samples (nanoseconds throughout the
//! pipeline) into power-of-2 buckets — HDR-style with one bucket per
//! binary order of magnitude — so memory is a fixed 65 counters no
//! matter how many samples are recorded or how wide their range is.
//!
//! Histograms obey the same merge contract as counters: [`merge`] is a
//! plain element-wise sum, so it is associative and commutative, and a
//! histogram merged from per-thread shards is **identical** (bucket for
//! bucket) to one recorded serially from the same samples, in any order.
//! `tests/hist_merge.rs` pins both properties at 1/2/4/8 threads.
//!
//! Quantiles are upper bounds: [`Histogram::quantile`] returns the
//! inclusive upper edge of the bucket containing the requested rank, so
//! the reported p50/p90/p99 never understate a latency by more than the
//! bucket's width (a factor of 2). The maximum is tracked exactly.
//!
//! [`merge`]: Histogram::merge

/// Buckets: one for zero plus one per binary order of magnitude of u64.
pub const BUCKETS: usize = 65;

/// A mergeable power-of-2-bucketed histogram of `u64` samples.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// The bucket a value lands in: 0 for 0, else `floor(log2(v)) + 1`
/// (so bucket `i > 0` covers `[2^(i-1), 2^i - 1]`).
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive upper edge of a bucket (`u64::MAX` for the last).
pub fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Folds `other` in: element-wise bucket sums, summed counts, the
    /// larger maximum. Associative and commutative, so shard merge order
    /// never changes the result.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (u128: 2^64 samples of u64::MAX cannot wrap).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The exact largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts (index by [`bucket_index`]).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Upper bound of the value at quantile `q` in `[0, 1]`: the
    /// inclusive upper edge of the bucket holding the `ceil(q * count)`-th
    /// smallest sample, except the top bucket reports the exact maximum.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The histogram's true max is a tighter bound than any
                // bucket edge at or above it.
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value's bucket upper bound is >= the value.
        for v in [0u64, 1, 2, 3, 5, 1023, 1024, 1 << 40, u64::MAX] {
            assert!(bucket_upper(bucket_index(v)) >= v, "value {v}");
        }
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        // p50's true value is 500; the bucket upper bound is 511.
        assert_eq!(h.quantile(0.5), 511);
        assert!(h.quantile(0.99) >= 990);
        assert_eq!(h.quantile(1.0), 1000, "top quantile is the exact max");
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_serial_recording() {
        let values: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(2654435761) >> 7)
            .collect();
        let mut serial = Histogram::new();
        for &v in &values {
            serial.record(v);
        }
        let (a, b) = values.split_at(137);
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for &v in a {
            left.record(v);
        }
        for &v in b {
            right.record(v);
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, serial);
        // Commutative.
        let mut flipped = right.clone();
        flipped.merge(&left);
        assert_eq!(flipped, serial);
    }
}
