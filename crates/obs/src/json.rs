//! A minimal JSON value, writer, and parser.
//!
//! The workspace builds fully offline with zero external dependencies,
//! so the metrics report carries its own JSON layer instead of serde.
//! Scope is exactly what the report needs:
//!
//! * objects preserve insertion order (deterministic output),
//! * unsigned integers round-trip exactly ([`Json::UInt`] — counters can
//!   exceed `f64`'s 2^53 integer range),
//! * the writer emits a stable, pretty-printed form, and
//! * the parser accepts anything the writer emits (plus standard JSON),
//!   which is what the schema validator's round-trip check relies on.

use std::fmt::Write as _;

/// A JSON value.
///
/// Equality is numeric-aware: `UInt(4)` equals `Num(4.0)`, because the
/// writer prints integral floats without a fraction and the parser
/// reads bare integers as [`Json::UInt`] — a render/parse round-trip
/// must compare equal.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (round-trips exactly at u64 precision).
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, keys assumed unique.
    Obj(Vec<(String, Json)>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::UInt(a), Json::UInt(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::UInt(a), Json::Num(b)) | (Json::Num(b), Json::UInt(a)) => *a as f64 == *b,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            _ => false,
        }
    }
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an f64 ([`Json::UInt`] converts).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no trailing newline — one NDJSON
    /// record (the heartbeat stream's line format).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    // JSON has no NaN/Inf; degrade to null.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn bytes(&self) -> &[u8] {
        self.input.as_bytes()
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.input.as_bytes().get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes()[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .input
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("invalid codepoint at byte {start}"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // The cursor only ever advances by whole ASCII
                    // tokens or whole chars, so `pos` is a boundary.
                    let c = self.input[self.pos..].chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let integral_end = self.pos;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        if self.pos == integral_end && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structure() {
        let v = Json::Obj(vec![
            ("schema_version".into(), Json::UInt(1)),
            ("big".into(), Json::UInt(u64::MAX)),
            ("frac".into(), Json::Num(0.75)),
            ("neg".into(), Json::Num(-2.5)),
            (
                "arr".into(),
                Json::Arr(vec![
                    Json::Null,
                    Json::Bool(true),
                    Json::Str("a\"b\n".into()),
                ]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        // u64 precision survives (this value is not representable in f64).
        assert_eq!(back.get("big").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn compact_render_is_one_line_and_round_trips() {
        let v = Json::Obj(vec![
            ("type".into(), Json::Str("tick".into())),
            ("seq".into(), Json::UInt(3)),
            (
                "arr".into(),
                Json::Arr(vec![Json::Null, Json::Str("a\nb".into())]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let line = v.render_compact();
        assert!(!line.contains('\n'), "compact output must be one line");
        assert_eq!(parse(&line).unwrap(), v);
    }

    #[test]
    fn parses_standard_json() {
        let v = parse(r#"{"a": [1, 2.5, "x", {"b": false}], "c": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("\u{1}tab\there".into());
        let text = v.render();
        assert!(text.contains("\\u0001"));
        assert_eq!(parse(&text).unwrap(), v);
    }
}
