//! Observability for the characterization pipeline: hierarchical spans,
//! counters/gauges, log-bucketed latency histograms ([`hist`]), bounded
//! span timelines ([`trace`]), live progress accounting ([`progress`])
//! with a background sampler and stall watchdog ([`sampler`]), and a
//! pluggable [`Recorder`].
//!
//! The pipeline is instrumented at every layer — `gwc-simt` records
//! per-kernel launch statistics and serial-fallback reasons, the
//! `gwc-core` pool records per-worker utilization, `gwc-characterize`
//! records per-shard observe/merge durations, and `gwc-bench` records
//! per-stage and per-experiment wall times — but all of it flows through
//! one process-global [`Recorder`] that is **absent by default**.
//!
//! # Disabled-path cost contract
//!
//! With no recorder installed, every instrumentation call is one relaxed
//! atomic load and a branch — no allocation, no clock read, no lock. The
//! [`span!`] macro defers even its `format!` until the enabled check has
//! passed, so dynamic span names cost nothing when recording is off.
//! `tests/noop_alloc.rs` enforces zero allocations on the disabled hot
//! path with a counting global allocator, and the pipeline's determinism
//! and golden-snapshot suites run without a recorder, demonstrating that
//! instrumentation does not perturb results.
//!
//! # Recording
//!
//! Install a recorder (usually [`metrics::MetricsRecorder`]) for the
//! lifetime of a run:
//!
//! ```
//! use std::sync::Arc;
//! use gwc_obs::metrics::MetricsRecorder;
//!
//! let rec = Arc::new(MetricsRecorder::default());
//! let guard = gwc_obs::install(rec.clone());
//! {
//!     let _study = gwc_obs::span!("study");
//!     gwc_obs::count("kernels.profiled", 3);
//! }
//! drop(guard); // recording stops; `rec` keeps the data
//! let snap = rec.snapshot();
//! assert_eq!(snap.counters[0], ("kernels.profiled".to_string(), 3));
//! ```
//!
//! Spans nest per thread: a span opened while another is active on the
//! same thread records under the parent's path (`"study/observe"`).
//! Cross-thread nesting is expressed with explicit `/`-separated paths
//! at the call site (worker threads start with an empty span stack).

pub mod hist;
pub mod json;
pub mod metrics;
pub mod progress;
pub mod recorder;
pub mod report;
pub mod sampler;
pub mod selftime;
pub mod span;
pub mod trace;

pub use recorder::{
    install, recorder, ExecClass, ExecHotspot, NoopRecorder, Recorder, RecorderGuard, TeeRecorder,
};
pub use sampler::{Sampler, SamplerConfig};
pub use span::SpanGuard;
pub use trace::TraceRecorder;

use std::sync::atomic::Ordering;

/// Whether a recorder is currently installed (the one-branch fast path).
#[inline]
pub fn enabled() -> bool {
    recorder::ENABLED.load(Ordering::Relaxed)
}

/// Adds `delta` to the named counter. One branch when disabled.
#[inline]
pub fn count(name: &str, delta: u64) {
    if let Some(r) = recorder() {
        r.add_counter(name, delta);
    }
}

/// Folds `value` into the named counter as a running maximum — for
/// high-water marks like `observer.bytes_peak`. One branch when
/// disabled.
#[inline]
pub fn count_max(name: &str, value: u64) {
    if let Some(r) = recorder() {
        r.max_counter(name, value);
    }
}

/// Sets the named gauge to `value`. One branch when disabled.
#[inline]
pub fn gauge(name: &str, value: f64) {
    if let Some(r) = recorder() {
        r.set_gauge(name, value);
    }
}

/// Records one sample into the named latency histogram (see
/// [`hist::Histogram`]). One branch when disabled.
#[inline]
pub fn hist(name: &str, value: u64) {
    if let Some(r) = recorder() {
        r.record_hist(name, value);
    }
}

/// Reports a launch's execution-cost profile
/// ([`Recorder::record_exec_profile`]). The slices may borrow from the
/// caller's stack; one branch when disabled.
#[inline]
pub fn exec_profile(kernel: &str, classes: &[ExecClass], hotspots: &[ExecHotspot]) {
    if let Some(r) = recorder() {
        r.record_exec_profile(kernel, classes, hotspots);
    }
}

/// Opens a timed span; the span ends (and records) when the returned
/// guard drops. The name is a `format!` spec evaluated **only when a
/// recorder is installed**, so dynamic names are free on the disabled
/// path. Use `/` in the name to place the span under an explicit parent
/// (worker threads have no inherited span stack).
#[macro_export]
macro_rules! span {
    ($($arg:tt)*) => {
        if $crate::enabled() {
            $crate::SpanGuard::begin(format!($($arg)*))
        } else {
            $crate::SpanGuard::noop()
        }
    };
}
