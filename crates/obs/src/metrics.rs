//! [`MetricsRecorder`]: the aggregating recorder behind `regen
//! --metrics` and `--trace-summary`.
//!
//! Everything aggregates into ordered maps keyed by name, so a
//! snapshot's *shape* is deterministic for a given pipeline run — only
//! the recorded durations vary between runs. That is what makes the
//! metrics report schema snapshot-testable while timings are not.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::hist::Histogram;
use crate::recorder::{ExecClass, ExecHotspot, KernelLaunch, PoolWorker, Recorder};

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Times the span closed.
    pub count: u64,
    /// Summed duration.
    pub total_ns: u64,
}

/// One span path with its aggregate (snapshot form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// `/`-separated hierarchical span name.
    pub path: String,
    /// Times the span closed.
    pub count: u64,
    /// Summed duration.
    pub total_ns: u64,
}

/// One workload's characterization record (snapshot form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadStat {
    /// Workload name.
    pub name: String,
    /// Kernels (profile labels) the workload produced.
    pub kernels: u64,
    /// Wall time of the workload's characterization run.
    pub wall_ns: u64,
}

/// One kernel's launch aggregate (snapshot form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelStat {
    /// Kernel name.
    pub name: String,
    /// Launches retired.
    pub launches: u64,
    /// Summed launch statistics.
    pub totals: KernelLaunch,
}

/// One µop class's totals within a kernel's execution-cost aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecClassStat {
    /// Class name (`int_alu`, `fp_alu`, `mem_global`, …).
    pub class: &'static str,
    /// Warp-level µops retired in this class, summed over launches.
    pub warp_uops: u64,
    /// Active lane-slots summed over those µops.
    pub lane_uops: u64,
}

/// One hotspot pc within a kernel's execution-cost aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecHotspotStat {
    /// Decoded µop index within the kernel.
    pub pc: u64,
    /// The µop's class name.
    pub class: &'static str,
    /// Warp-level µops retired at this pc, summed over launches.
    pub warp_uops: u64,
    /// Active lane-slots summed over those µops.
    pub lane_uops: u64,
}

/// One kernel's execution-cost aggregate (snapshot form). Classes are
/// ordered by name, hotspots by pc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecStat {
    /// Kernel name.
    pub kernel: String,
    /// Per-µop-class totals, summed over the kernel's launches.
    pub classes: Vec<ExecClassStat>,
    /// Hotspot pcs, summed over the kernel's launches.
    pub hotspots: Vec<ExecHotspotStat>,
}

/// One serial-fallback aggregate (snapshot form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FallbackStat {
    /// Kernel that fell back.
    pub kernel: String,
    /// Why it could not shard.
    pub reason: &'static str,
    /// Launches that fell back for this reason.
    pub count: u64,
}

/// A thread-safe aggregating [`Recorder`].
///
/// Install it with [`crate::install`], run the pipeline, then call
/// [`MetricsRecorder::snapshot`] for the frozen, deterministically
/// ordered view the report builder consumes.
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    spans: Mutex<BTreeMap<String, SpanAgg>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    kernels: Mutex<BTreeMap<String, (u64, KernelLaunch)>>,
    fallbacks: Mutex<BTreeMap<(String, &'static str), u64>>,
    pools: Mutex<BTreeMap<String, BTreeMap<usize, PoolWorker>>>,
    workloads: Mutex<BTreeMap<String, (u64, u64)>>,
    hists: Mutex<BTreeMap<String, Histogram>>,
    execs: Mutex<BTreeMap<String, ExecAgg>>,
}

/// Per-kernel execution-cost aggregation: class totals keyed by class
/// name, hotspot totals keyed by pc.
#[derive(Debug, Default)]
struct ExecAgg {
    classes: BTreeMap<&'static str, (u64, u64)>,
    hotspots: BTreeMap<u64, (&'static str, u64, u64)>,
}

/// A frozen, ordered view of everything a [`MetricsRecorder`] saw.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Span aggregates, ordered by path.
    pub spans: Vec<SpanStat>,
    /// Counters, ordered by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, ordered by name.
    pub gauges: Vec<(String, f64)>,
    /// Per-kernel launch aggregates, ordered by kernel name.
    pub kernels: Vec<KernelStat>,
    /// Serial-fallback aggregates, ordered by (kernel, reason).
    pub fallbacks: Vec<FallbackStat>,
    /// Per-pool, per-worker statistics, ordered by pool name then
    /// worker index.
    pub pools: Vec<(String, Vec<(usize, PoolWorker)>)>,
    /// Per-workload statistics, ordered by workload name.
    pub workloads: Vec<WorkloadStat>,
    /// Latency histograms, ordered by name. The full [`Histogram`] is
    /// kept (not just quantiles) so shard-merge equality is testable
    /// bucket for bucket.
    pub hists: Vec<(String, Histogram)>,
    /// Per-kernel execution-cost aggregates, ordered by kernel name.
    pub execs: Vec<ExecStat>,
}

impl MetricsSnapshot {
    /// Top-level spans (no `/` in the path): the stage table.
    pub fn stages(&self) -> Vec<&SpanStat> {
        self.spans
            .iter()
            .filter(|s| !s.path.contains('/'))
            .collect()
    }

    /// Total recorded time under `path`: the span's own aggregate plus
    /// every descendant (`path/...`). Nested spans thereby aggregate to
    /// their parent even when children were recorded from worker
    /// threads under explicit `parent/child` paths.
    pub fn rollup_ns(&self, path: &str) -> u64 {
        let prefix = format!("{path}/");
        self.spans
            .iter()
            .filter(|s| s.path == path || s.path.starts_with(&prefix))
            .map(|s| s.total_ns)
            .sum()
    }

    /// Spans sorted by total time, descending (ties broken by path so
    /// the order is deterministic), truncated to `n`.
    pub fn top_spans(&self, n: usize) -> Vec<&SpanStat> {
        let mut sorted: Vec<&SpanStat> = self.spans.iter().collect();
        sorted.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.path.cmp(&b.path)));
        sorted.truncate(n);
        sorted
    }
}

impl MetricsRecorder {
    /// Freezes the current aggregates into an ordered snapshot.
    ///
    /// # Panics
    ///
    /// Panics if an aggregate mutex was poisoned (a recorder method
    /// panicked mid-update — instrumentation never should).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            spans: self
                .spans
                .lock()
                .expect("spans poisoned")
                .iter()
                .map(|(path, agg)| SpanStat {
                    path: path.clone(),
                    count: agg.count,
                    total_ns: agg.total_ns,
                })
                .collect(),
            counters: self
                .counters
                .lock()
                .expect("counters poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("gauges poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            kernels: self
                .kernels
                .lock()
                .expect("kernels poisoned")
                .iter()
                .map(|(name, (launches, totals))| KernelStat {
                    name: name.clone(),
                    launches: *launches,
                    totals: *totals,
                })
                .collect(),
            fallbacks: self
                .fallbacks
                .lock()
                .expect("fallbacks poisoned")
                .iter()
                .map(|((kernel, reason), count)| FallbackStat {
                    kernel: kernel.clone(),
                    reason,
                    count: *count,
                })
                .collect(),
            pools: self
                .pools
                .lock()
                .expect("pools poisoned")
                .iter()
                .map(|(name, workers)| {
                    (
                        name.clone(),
                        workers.iter().map(|(w, s)| (*w, *s)).collect(),
                    )
                })
                .collect(),
            workloads: self
                .workloads
                .lock()
                .expect("workloads poisoned")
                .iter()
                .map(|(name, (kernels, wall_ns))| WorkloadStat {
                    name: name.clone(),
                    kernels: *kernels,
                    wall_ns: *wall_ns,
                })
                .collect(),
            hists: self
                .hists
                .lock()
                .expect("hists poisoned")
                .iter()
                .map(|(name, h)| (name.clone(), h.clone()))
                .collect(),
            execs: self
                .execs
                .lock()
                .expect("execs poisoned")
                .iter()
                .map(|(kernel, agg)| ExecStat {
                    kernel: kernel.clone(),
                    classes: agg
                        .classes
                        .iter()
                        .map(|(&class, &(warp_uops, lane_uops))| ExecClassStat {
                            class,
                            warp_uops,
                            lane_uops,
                        })
                        .collect(),
                    hotspots: agg
                        .hotspots
                        .iter()
                        .map(|(&pc, &(class, warp_uops, lane_uops))| ExecHotspotStat {
                            pc,
                            class,
                            warp_uops,
                            lane_uops,
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

impl Recorder for MetricsRecorder {
    fn record_span(&self, path: &str, nanos: u64) {
        let mut spans = self.spans.lock().expect("spans poisoned");
        let agg = spans.entry(path.to_string()).or_default();
        agg.count += 1;
        agg.total_ns += nanos;
    }

    fn add_counter(&self, name: &str, delta: u64) {
        let mut counters = self.counters.lock().expect("counters poisoned");
        *counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn max_counter(&self, name: &str, value: u64) {
        let mut counters = self.counters.lock().expect("counters poisoned");
        let e = counters.entry(name.to_string()).or_insert(0);
        *e = (*e).max(value);
    }

    fn set_gauge(&self, name: &str, value: f64) {
        self.gauges
            .lock()
            .expect("gauges poisoned")
            .insert(name.to_string(), value);
    }

    fn record_kernel_launch(&self, kernel: &str, stats: &KernelLaunch) {
        let mut kernels = self.kernels.lock().expect("kernels poisoned");
        let (launches, totals) = kernels.entry(kernel.to_string()).or_default();
        *launches += 1;
        totals.warp_instrs += stats.warp_instrs;
        totals.thread_instrs += stats.thread_instrs;
        totals.blocks += stats.blocks;
        totals.warps += stats.warps;
        totals.barriers += stats.barriers;
        totals.wall_ns += stats.wall_ns;
    }

    fn record_exec_profile(&self, kernel: &str, classes: &[ExecClass], hotspots: &[ExecHotspot]) {
        let mut execs = self.execs.lock().expect("execs poisoned");
        let agg = execs.entry(kernel.to_string()).or_default();
        for c in classes {
            let slot = agg.classes.entry(c.class).or_insert((0, 0));
            slot.0 += c.warp_uops;
            slot.1 += c.lane_uops;
        }
        for h in hotspots {
            let slot = agg.hotspots.entry(h.pc).or_insert((h.class, 0, 0));
            slot.1 += h.warp_uops;
            slot.2 += h.lane_uops;
        }
    }

    fn record_stall(&self, open_spans: &[String], stalled_ms: u64) {
        let _ = (open_spans, stalled_ms);
        self.add_counter("telemetry.stalls", 1);
    }

    fn record_shard_fallback(&self, kernel: &str, reason: &'static str) {
        let mut fallbacks = self.fallbacks.lock().expect("fallbacks poisoned");
        *fallbacks.entry((kernel.to_string(), reason)).or_insert(0) += 1;
    }

    fn record_pool_worker(&self, pool: &str, worker: usize, stats: &PoolWorker) {
        let mut pools = self.pools.lock().expect("pools poisoned");
        let workers = pools.entry(pool.to_string()).or_default();
        let slot = workers.entry(worker).or_default();
        slot.tasks += stats.tasks;
        slot.steals += stats.steals;
        slot.busy_ns += stats.busy_ns;
        slot.wall_ns += stats.wall_ns;
    }

    fn record_workload(&self, name: &str, kernels: u64, nanos: u64) {
        let mut workloads = self.workloads.lock().expect("workloads poisoned");
        let (k, ns) = workloads.entry(name.to_string()).or_default();
        *k += kernels;
        *ns += nanos;
    }

    fn record_hist(&self, name: &str, value: u64) {
        let mut hists = self.hists.lock().expect("hists poisoned");
        hists.entry(name.to_string()).or_default().record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_aggregate_by_path() {
        let rec = MetricsRecorder::default();
        rec.record_span("a", 10);
        rec.record_span("a", 5);
        rec.record_span("a/b", 3);
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].path, "a");
        assert_eq!(snap.spans[0].count, 2);
        assert_eq!(snap.spans[0].total_ns, 15);
        assert_eq!(snap.rollup_ns("a"), 18, "child folds into parent rollup");
        assert_eq!(snap.stages().len(), 1, "only `a` is top-level");
    }

    #[test]
    fn rollup_does_not_match_sibling_prefixes() {
        let rec = MetricsRecorder::default();
        rec.record_span("eval", 10);
        rec.record_span("evaluate", 100);
        assert_eq!(rec.snapshot().rollup_ns("eval"), 10);
    }

    #[test]
    fn top_spans_sort_descending_with_deterministic_ties() {
        let rec = MetricsRecorder::default();
        rec.record_span("b", 5);
        rec.record_span("a", 5);
        rec.record_span("c", 9);
        let snap = rec.snapshot();
        let top: Vec<&str> = snap.top_spans(2).iter().map(|s| s.path.as_str()).collect();
        assert_eq!(top, ["c", "a"]);
    }

    #[test]
    fn pool_worker_busy_frac() {
        let w = PoolWorker {
            tasks: 4,
            steals: 1,
            busy_ns: 30,
            wall_ns: 40,
        };
        assert!((w.busy_frac() - 0.75).abs() < 1e-12);
        assert_eq!(PoolWorker::default().busy_frac(), 0.0);
    }

    #[test]
    fn histograms_aggregate_by_name() {
        let rec = MetricsRecorder::default();
        rec.record_hist("launch.latency_ns", 100);
        rec.record_hist("launch.latency_ns", 900);
        rec.record_hist("shard.observe_ns", 5);
        let snap = rec.snapshot();
        assert_eq!(snap.hists.len(), 2);
        assert_eq!(snap.hists[0].0, "launch.latency_ns");
        assert_eq!(snap.hists[0].1.count(), 2);
        assert_eq!(snap.hists[0].1.max(), 900);
        assert_eq!(snap.hists[1].0, "shard.observe_ns");
        assert_eq!(snap.hists[1].1.count(), 1);
    }

    #[test]
    fn kernel_launches_accumulate() {
        let rec = MetricsRecorder::default();
        let s = KernelLaunch {
            warp_instrs: 10,
            thread_instrs: 300,
            blocks: 2,
            warps: 4,
            barriers: 1,
            wall_ns: 50,
        };
        rec.record_kernel_launch("k", &s);
        rec.record_kernel_launch("k", &s);
        let snap = rec.snapshot();
        assert_eq!(snap.kernels.len(), 1);
        assert_eq!(snap.kernels[0].launches, 2);
        assert_eq!(snap.kernels[0].totals.warp_instrs, 20);
        assert_eq!(snap.kernels[0].totals.barriers, 2);
        assert_eq!(snap.kernels[0].totals.wall_ns, 100);
    }

    #[test]
    fn exec_profiles_accumulate_across_launches() {
        let rec = MetricsRecorder::default();
        let classes = [
            ExecClass {
                class: "fp_alu",
                warp_uops: 3,
                lane_uops: 96,
            },
            ExecClass {
                class: "int_alu",
                warp_uops: 1,
                lane_uops: 32,
            },
        ];
        let hotspots = [ExecHotspot {
            pc: 7,
            class: "fp_alu",
            warp_uops: 3,
            lane_uops: 96,
        }];
        rec.record_exec_profile("k", &classes, &hotspots);
        rec.record_exec_profile("k", &classes[..1], &hotspots);
        let snap = rec.snapshot();
        assert_eq!(snap.execs.len(), 1);
        let e = &snap.execs[0];
        assert_eq!(e.kernel, "k");
        // Ordered by class name: fp_alu before int_alu.
        assert_eq!(e.classes[0].class, "fp_alu");
        assert_eq!(e.classes[0].warp_uops, 6);
        assert_eq!(e.classes[0].lane_uops, 192);
        assert_eq!(e.classes[1].class, "int_alu");
        assert_eq!(e.classes[1].warp_uops, 1);
        assert_eq!(e.hotspots.len(), 1);
        assert_eq!(e.hotspots[0].pc, 7);
        assert_eq!(e.hotspots[0].lane_uops, 192);
    }
}
