//! Live progress accounting: work-unit totals and completion ticks.
//!
//! Every execution layer declares how many work units it is about to
//! run ([`declare`]) and ticks a completion counter as units retire
//! ([`tick`]), each against one of a fixed set of [`Domain`]s — whole
//! workloads, kernel launches, block ranges, pipeline stages, and pool
//! tasks. The counters are plain process-global atomics, so the
//! background sampler ([`crate::sampler`]) can read a consistent
//! [`ProgressSnapshot`] at any instant without touching engine state,
//! and derive throughput and an ETA from consecutive snapshots.
//!
//! Like every other instrumentation site, progress calls are gated on
//! [`crate::enabled`]: with no recorder installed each call is one
//! relaxed atomic load and a branch — no allocation, no lock
//! (`tests/noop_alloc.rs` pins this). [`crate::install`] resets the
//! counters and bumps the *epoch*, so consumers that outlive several
//! recorder installations (e.g. a heartbeat across `bench_run`
//! iterations) can tell a counter reset from a counter decrease:
//! within one epoch, every value is monotone non-decreasing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One progress domain: completed vs declared work units.
#[derive(Debug)]
pub struct Domain {
    done: AtomicU64,
    total: AtomicU64,
}

impl Domain {
    const fn new() -> Domain {
        Domain {
            done: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    fn counts(&self) -> Counts {
        Counts {
            done: self.done.load(Ordering::Relaxed),
            total: self.total.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.done.store(0, Ordering::Relaxed);
        self.total.store(0, Ordering::Relaxed);
    }
}

/// Workloads characterized by the study loop.
pub static WORKLOADS: Domain = Domain::new();
/// Kernel launches retired (serial or sharded, one unit per launch).
pub static LAUNCHES: Domain = Domain::new();
/// Blocks executed by the interpreter (both backends, every shard).
pub static BLOCKS: Domain = Domain::new();
/// Pipeline stages completed.
pub static STAGES: Domain = Domain::new();
/// Pool tasks completed by `parallel_map` fan-outs.
pub static TASKS: Domain = Domain::new();

/// Bumped on every [`reset`]; lets consumers distinguish a counter
/// reset (new run) from a decrease (impossible within an epoch).
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// The most recently entered pipeline stage, for display ("study",
/// "reduce", ...). Empty before the first stage of an epoch.
static STAGE: Mutex<String> = Mutex::new(String::new());

/// Declares `n` more work units in a domain. One branch when disabled.
#[inline]
pub fn declare(domain: &Domain, n: u64) {
    if crate::enabled() {
        domain.total.fetch_add(n, Ordering::Relaxed);
    }
}

/// Marks `n` work units of a domain complete. One branch when disabled.
#[inline]
pub fn tick(domain: &Domain, n: u64) {
    if crate::enabled() {
        domain.done.fetch_add(n, Ordering::Relaxed);
    }
}

/// Records the name of the pipeline stage now running. One branch when
/// disabled (the copy into the slot happens only when enabled).
#[inline]
pub fn set_stage(name: &str) {
    if crate::enabled() {
        let mut stage = STAGE.lock().unwrap_or_else(|p| p.into_inner());
        stage.clear();
        stage.push_str(name);
    }
}

/// Zeroes every domain, clears the stage label, and bumps the epoch.
/// Called by [`crate::install`] so each recorded run starts from a
/// clean progress slate.
pub(crate) fn reset() {
    for d in [&WORKLOADS, &LAUNCHES, &BLOCKS, &STAGES, &TASKS] {
        d.reset();
    }
    STAGE.lock().unwrap_or_else(|p| p.into_inner()).clear();
    EPOCH.fetch_add(1, Ordering::Relaxed);
}

/// `(done, total)` of one domain at a snapshot instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Work units completed.
    pub done: u64,
    /// Work units declared. May trail `done` transiently (totals are
    /// declared incrementally as work is discovered) and may exceed it
    /// at the end of a run that skipped declared work.
    pub total: u64,
}

/// A consistent view of every progress domain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Reset generation the counts belong to.
    pub epoch: u64,
    /// Current pipeline stage name ("" before the first stage).
    pub stage: String,
    /// Workload progress.
    pub workloads: Counts,
    /// Launch progress.
    pub launches: Counts,
    /// Block progress.
    pub blocks: Counts,
    /// Stage progress.
    pub stages: Counts,
    /// Pool-task progress.
    pub tasks: Counts,
}

impl ProgressSnapshot {
    /// Every domain as `(name, counts)`, in a fixed order.
    pub fn domains(&self) -> [(&'static str, Counts); 5] {
        [
            ("workloads", self.workloads),
            ("launches", self.launches),
            ("blocks", self.blocks),
            ("stages", self.stages),
            ("tasks", self.tasks),
        ]
    }

    /// Sum of completed units across all domains — the stall watchdog's
    /// "any progress at all" signal.
    pub fn done_sum(&self) -> u64 {
        self.domains().iter().map(|(_, c)| c.done).sum()
    }
}

/// Reads all domains. The epoch is read before and after; on a
/// concurrent [`reset`] the read retries, so the returned counts all
/// belong to the returned epoch.
pub fn snapshot() -> ProgressSnapshot {
    loop {
        let epoch = EPOCH.load(Ordering::Relaxed);
        let snap = ProgressSnapshot {
            epoch,
            stage: STAGE.lock().unwrap_or_else(|p| p.into_inner()).clone(),
            workloads: WORKLOADS.counts(),
            launches: LAUNCHES.counts(),
            blocks: BLOCKS.counts(),
            stages: STAGES.counts(),
            tasks: TASKS.counts(),
        };
        if EPOCH.load(Ordering::Relaxed) == epoch {
            return snap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRecorder;
    use std::sync::Arc;

    #[test]
    fn disabled_calls_do_not_move_counters() {
        let _gate = crate::recorder::test_gate();
        let before = snapshot();
        declare(&WORKLOADS, 5);
        tick(&WORKLOADS, 2);
        set_stage("study");
        let after = snapshot();
        assert_eq!(before, after, "disabled progress calls must be inert");
    }

    #[test]
    fn install_resets_and_bumps_epoch() {
        let rec = Arc::new(MetricsRecorder::default());
        let guard = crate::install(rec.clone());
        let epoch_a = snapshot().epoch;
        declare(&LAUNCHES, 3);
        tick(&LAUNCHES, 1);
        set_stage("study");
        let mid = snapshot();
        assert_eq!(mid.launches, Counts { done: 1, total: 3 });
        assert_eq!(mid.stage, "study");
        drop(guard);

        let rec2 = Arc::new(MetricsRecorder::default());
        let guard2 = crate::install(rec2);
        let fresh = snapshot();
        assert_eq!(fresh.launches, Counts::default());
        assert_eq!(fresh.stage, "");
        assert!(fresh.epoch > epoch_a, "install bumps the epoch");
        drop(guard2);
    }

    #[test]
    fn done_sum_spans_all_domains() {
        let rec = Arc::new(MetricsRecorder::default());
        let _guard = crate::install(rec);
        tick(&WORKLOADS, 1);
        tick(&BLOCKS, 4);
        tick(&TASKS, 2);
        assert_eq!(snapshot().done_sum(), 7);
    }
}
