//! The [`Recorder`] trait and the process-global installation point.
//!
//! Instrumentation sites call the free functions in the crate root
//! ([`crate::count`], [`crate::span!`], …); those route to whatever
//! recorder is installed here, or do nothing. Typed hooks
//! ([`Recorder::record_pool_worker`], [`Recorder::record_shard_fallback`],
//! …) exist for the structured facts the metrics report tabulates — they
//! keep the report builder free of name-parsing.

use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

/// Receives observability events from the instrumented pipeline.
///
/// Every method has a no-op default body, so recorders implement only
/// what they aggregate. Methods take `&self` and must be thread-safe:
/// the pipeline calls them concurrently from pool workers and shard
/// threads.
pub trait Recorder: Send + Sync {
    /// A span closed: `path` is its `/`-separated hierarchical name.
    fn record_span(&self, path: &str, nanos: u64) {
        let _ = (path, nanos);
    }

    /// A span closed, with its full timeline event: the recording
    /// thread's ordinal (see [`crate::span::thread_ord`]) and the span's
    /// monotonic start/end instants. Aggregating recorders usually want
    /// [`Recorder::record_span`] instead; timeline recorders
    /// ([`crate::trace::TraceRecorder`]) override this one.
    fn record_span_event(&self, path: &str, thread: u64, start: Instant, end: Instant) {
        let _ = (path, thread, start, end);
    }

    /// Records one sample into the named latency histogram.
    fn record_hist(&self, name: &str, value: u64) {
        let _ = (name, value);
    }

    /// Adds `delta` to a monotonic counter.
    fn add_counter(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Folds `value` into the named counter as a running maximum — a
    /// high-water mark (e.g. `observer.bytes_peak`) rather than a sum.
    fn max_counter(&self, name: &str, value: u64) {
        let _ = (name, value);
    }

    /// Sets a gauge to its latest value.
    fn set_gauge(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// A kernel launch retired (serial or sharded — reported once per
    /// launch with the summed stats either way).
    fn record_kernel_launch(&self, kernel: &str, stats: &KernelLaunch) {
        let _ = (kernel, stats);
    }

    /// A launch that was asked to shard fell back to serial execution.
    fn record_shard_fallback(&self, kernel: &str, reason: &'static str) {
        let _ = (kernel, reason);
    }

    /// One pool worker finished its run of a `parallel_map`.
    fn record_pool_worker(&self, pool: &str, worker: usize, stats: &PoolWorker) {
        let _ = (pool, worker, stats);
    }

    /// One workload finished characterization.
    fn record_workload(&self, name: &str, kernels: u64, nanos: u64) {
        let _ = (name, kernels, nanos);
    }

    /// A kernel launch retired with an execution-cost profile: per-µop-
    /// class retired counts plus the launch's hottest pcs. Reported once
    /// per launch (after [`Recorder::record_kernel_launch`]), serial or
    /// sharded. The slices are borrowed from the caller's stack.
    fn record_exec_profile(&self, kernel: &str, classes: &[ExecClass], hotspots: &[ExecHotspot]) {
        let _ = (kernel, classes, hotspots);
    }

    /// The stall watchdog fired: no progress domain ticked for
    /// `stalled_ms`, and `open_spans` names the innermost open span path
    /// per stuck thread (see [`crate::span::open_span_paths`]). The
    /// aggregating recorder counts these under `telemetry.stalls`.
    fn record_stall(&self, open_spans: &[String], stalled_ms: u64) {
        let _ = (open_spans, stalled_ms);
    }
}

/// Per-launch statistics reported by [`Recorder::record_kernel_launch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelLaunch {
    /// Warp-level dynamic instructions (lock-step issues, "warp steps").
    pub warp_instrs: u64,
    /// Thread-level dynamic instructions retired.
    pub thread_instrs: u64,
    /// Blocks executed.
    pub blocks: u64,
    /// Warps executed.
    pub warps: u64,
    /// Block-wide barriers released.
    pub barriers: u64,
    /// Launch wall time (0 when the caller did not time the launch,
    /// e.g. on the recorder-free path).
    pub wall_ns: u64,
}

/// One µop class's retired counts within an execution-cost profile
/// ([`Recorder::record_exec_profile`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecClass {
    /// Class name (`int_alu`, `fp_alu`, `mem_global`, …).
    pub class: &'static str,
    /// Warp-level µops retired in this class.
    pub warp_uops: u64,
    /// Active lane-slots summed over those µops.
    pub lane_uops: u64,
}

/// One hotspot pc within an execution-cost profile
/// ([`Recorder::record_exec_profile`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecHotspot {
    /// Decoded µop index within the kernel.
    pub pc: u64,
    /// The µop's class name.
    pub class: &'static str,
    /// Warp-level µops retired at this pc.
    pub warp_uops: u64,
    /// Active lane-slots summed over those µops.
    pub lane_uops: u64,
}

/// Per-worker statistics reported by [`Recorder::record_pool_worker`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolWorker {
    /// Tasks this worker claimed and ran.
    pub tasks: u64,
    /// Tasks claimed beyond an even `n / workers` share — work the
    /// stealing schedule moved here from slower workers.
    pub steals: u64,
    /// Time spent inside task bodies.
    pub busy_ns: u64,
    /// Worker lifetime (spawn to exit); `busy_ns / wall_ns` is the
    /// worker's busy fraction.
    pub wall_ns: u64,
}

impl PoolWorker {
    /// Fraction of the worker's lifetime spent inside task bodies.
    pub fn busy_frac(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.wall_ns as f64
        }
    }
}

/// A recorder that ignores every event (useful as an explicit stand-in).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Fans every event out to several recorders in order — how `regen`
/// runs the metrics aggregator and the trace timeline side by side
/// through the single global install point.
#[derive(Default)]
pub struct TeeRecorder {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl TeeRecorder {
    /// A tee over `sinks`; events fan out in the given order.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        Self { sinks }
    }
}

impl std::fmt::Debug for TeeRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeRecorder")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl Recorder for TeeRecorder {
    fn record_span(&self, path: &str, nanos: u64) {
        for s in &self.sinks {
            s.record_span(path, nanos);
        }
    }
    fn record_span_event(&self, path: &str, thread: u64, start: Instant, end: Instant) {
        for s in &self.sinks {
            s.record_span_event(path, thread, start, end);
        }
    }
    fn record_hist(&self, name: &str, value: u64) {
        for s in &self.sinks {
            s.record_hist(name, value);
        }
    }
    fn add_counter(&self, name: &str, delta: u64) {
        for s in &self.sinks {
            s.add_counter(name, delta);
        }
    }
    fn max_counter(&self, name: &str, value: u64) {
        for s in &self.sinks {
            s.max_counter(name, value);
        }
    }
    fn set_gauge(&self, name: &str, value: f64) {
        for s in &self.sinks {
            s.set_gauge(name, value);
        }
    }
    fn record_kernel_launch(&self, kernel: &str, stats: &KernelLaunch) {
        for s in &self.sinks {
            s.record_kernel_launch(kernel, stats);
        }
    }
    fn record_shard_fallback(&self, kernel: &str, reason: &'static str) {
        for s in &self.sinks {
            s.record_shard_fallback(kernel, reason);
        }
    }
    fn record_pool_worker(&self, pool: &str, worker: usize, stats: &PoolWorker) {
        for s in &self.sinks {
            s.record_pool_worker(pool, worker, stats);
        }
    }
    fn record_workload(&self, name: &str, kernels: u64, nanos: u64) {
        for s in &self.sinks {
            s.record_workload(name, kernels, nanos);
        }
    }
    fn record_exec_profile(&self, kernel: &str, classes: &[ExecClass], hotspots: &[ExecHotspot]) {
        for s in &self.sinks {
            s.record_exec_profile(kernel, classes, hotspots);
        }
    }
    fn record_stall(&self, open_spans: &[String], stalled_ms: u64) {
        for s in &self.sinks {
            s.record_stall(open_spans, stalled_ms);
        }
    }
}

pub(crate) static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);
/// Serializes installations: tests that install a recorder hold this
/// for their whole scope, so concurrent recorder-using tests queue
/// instead of seeing each other's data.
static INSTALL_GATE: Mutex<()> = Mutex::new(());

/// Installs `rec` as the process-global recorder until the returned
/// guard drops. Installation is exclusive: a second caller blocks until
/// the first guard drops (this is what makes recorder-using tests safe
/// to run in the same process).
pub fn install(rec: Arc<dyn Recorder>) -> RecorderGuard {
    let gate = INSTALL_GATE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    *RECORDER.write().expect("recorder slot poisoned") = Some(rec);
    // Each recorded run starts from a clean progress slate; the epoch
    // bump lets heartbeat consumers spanning several installs tell a
    // reset from a decrease.
    crate::progress::reset();
    ENABLED.store(true, std::sync::atomic::Ordering::SeqCst);
    RecorderGuard { _gate: gate }
}

/// Uninstalls the global recorder when dropped.
pub struct RecorderGuard {
    _gate: MutexGuard<'static, ()>,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        ENABLED.store(false, std::sync::atomic::Ordering::SeqCst);
        *RECORDER.write().expect("recorder slot poisoned") = None;
    }
}

impl std::fmt::Debug for RecorderGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RecorderGuard")
    }
}

/// Holds the installation gate *without* installing a recorder — for
/// unit tests that exercise the disabled path and must not race with a
/// concurrently installed recorder.
#[cfg(test)]
pub(crate) fn test_gate() -> MutexGuard<'static, ()> {
    INSTALL_GATE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The installed recorder, if any. The disabled path is one relaxed
/// atomic load; the enabled path takes a read lock and clones the `Arc`.
#[inline]
pub fn recorder() -> Option<Arc<dyn Recorder>> {
    if !crate::enabled() {
        return None;
    }
    RECORDER.read().ok()?.clone()
}
