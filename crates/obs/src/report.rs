//! The schema-versioned metrics report behind `regen --metrics`.
//!
//! [`build_report`] turns a [`MetricsSnapshot`] into a JSON document
//! whose *shape* is deterministic for a given pipeline configuration —
//! every array is ordered by name, every record carries the same keys —
//! while the recorded durations vary run to run. [`validate`] checks a
//! parsed document against the schema (required keys, types, version),
//! and [`validate_str`] additionally round-trips it through the writer
//! and parser, which is what CI runs on every regen metrics artifact.

use crate::json::{parse, Json};
use crate::metrics::MetricsSnapshot;

/// Version stamped into every freshly built report. Schema v2 extends
/// v1 with a `histograms` array (latency distributions, p50/p90/p99/max
/// per histogram); schema v3 adds the execution-cost attribution
/// sections — `self_time` (the folded span tree, see
/// [`crate::selftime`]) and `exec_profiles` (per-kernel µop-class
/// counters and pc hotspots) — and a `wall_ns` column on `kernels`;
/// schema v4 adds the run-metadata header `meta` (wall-clock timestamp,
/// threads, backend, cache mode, label) and the live-telemetry
/// `timeseries` section (the sampler's ring, see [`crate::sampler`] —
/// an empty object when no sampler ran). [`validate`] still accepts
/// older documents, which simply lack the newer keys.
pub const SCHEMA_VERSION: u64 = 4;

/// Schema versions [`validate`] accepts.
pub const SUPPORTED_VERSIONS: [u64; 4] = [1, 2, 3, 4];

/// Required top-level keys of the current schema, in emission order.
pub const REQUIRED_KEYS: [&str; 17] = [
    "schema_version",
    "meta",
    "threads",
    "experiment_ids",
    "stages",
    "experiments",
    "workloads",
    "kernels",
    "pools",
    "fallbacks",
    "counters",
    "gauges",
    "histograms",
    "spans",
    "self_time",
    "exec_profiles",
    "timeseries",
];

/// Run provenance stamped into the v4 `meta` header: when and how the
/// report was produced. The snapshot itself records none of this.
#[derive(Debug, Clone, Default)]
pub struct RunMeta {
    /// Wall-clock milliseconds since the UNIX epoch at report time
    /// (0 when the clock is unavailable — e.g. in deterministic tests).
    pub timestamp_ms: u64,
    /// Execution backend name (`scalar`, `simd`).
    pub backend: String,
    /// Cache mode: the cache directory, or `off`.
    pub cache: String,
    /// Free-form run label (the producing binary or `bench_run --label`).
    pub label: String,
}

/// Run context the snapshot itself does not know.
#[derive(Debug, Clone, Default)]
pub struct ReportContext {
    /// Worker threads the run was configured with.
    pub threads: usize,
    /// Experiment ids the run regenerated, in execution order.
    pub experiment_ids: Vec<String>,
    /// Run provenance for the `meta` header.
    pub meta: RunMeta,
    /// The live-telemetry ring, when a sampler ran.
    pub timeseries: Option<crate::sampler::TimeSeries>,
}

/// Builds the metrics report document.
pub fn build_report(snap: &MetricsSnapshot, ctx: &ReportContext) -> Json {
    let stages = snap
        .stages()
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("name".into(), Json::Str(s.path.clone())),
                ("count".into(), Json::UInt(s.count)),
                ("wall_ns".into(), Json::UInt(s.total_ns)),
                ("rollup_ns".into(), Json::UInt(snap.rollup_ns(&s.path))),
            ])
        })
        .collect();
    let experiments = snap
        .spans
        .iter()
        .filter_map(|s| {
            let id = s.path.strip_prefix("experiment/")?;
            if id.contains('/') {
                return None;
            }
            Some(Json::Obj(vec![
                ("id".into(), Json::Str(id.to_string())),
                ("wall_ns".into(), Json::UInt(s.total_ns)),
            ]))
        })
        .collect();
    let workloads = snap
        .workloads
        .iter()
        .map(|w| {
            Json::Obj(vec![
                ("name".into(), Json::Str(w.name.clone())),
                ("kernels".into(), Json::UInt(w.kernels)),
                ("wall_ns".into(), Json::UInt(w.wall_ns)),
            ])
        })
        .collect();
    let kernels = snap
        .kernels
        .iter()
        .map(|k| {
            Json::Obj(vec![
                ("name".into(), Json::Str(k.name.clone())),
                ("launches".into(), Json::UInt(k.launches)),
                ("warp_instrs".into(), Json::UInt(k.totals.warp_instrs)),
                ("thread_instrs".into(), Json::UInt(k.totals.thread_instrs)),
                ("blocks".into(), Json::UInt(k.totals.blocks)),
                ("warps".into(), Json::UInt(k.totals.warps)),
                ("barriers".into(), Json::UInt(k.totals.barriers)),
                ("wall_ns".into(), Json::UInt(k.totals.wall_ns)),
            ])
        })
        .collect();
    let pools = snap
        .pools
        .iter()
        .map(|(name, workers)| {
            let rows = workers
                .iter()
                .map(|(idx, w)| {
                    Json::Obj(vec![
                        ("worker".into(), Json::UInt(*idx as u64)),
                        ("tasks".into(), Json::UInt(w.tasks)),
                        ("steals".into(), Json::UInt(w.steals)),
                        ("busy_ns".into(), Json::UInt(w.busy_ns)),
                        ("wall_ns".into(), Json::UInt(w.wall_ns)),
                        ("busy_frac".into(), Json::Num(w.busy_frac())),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("name".into(), Json::Str(name.clone())),
                ("workers".into(), Json::Arr(rows)),
            ])
        })
        .collect();
    let fallbacks = snap
        .fallbacks
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("kernel".into(), Json::Str(f.kernel.clone())),
                ("reason".into(), Json::Str(f.reason.to_string())),
                ("count".into(), Json::UInt(f.count)),
            ])
        })
        .collect();
    let counters = snap
        .counters
        .iter()
        .map(|(name, value)| {
            Json::Obj(vec![
                ("name".into(), Json::Str(name.clone())),
                ("value".into(), Json::UInt(*value)),
            ])
        })
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(name, value)| {
            Json::Obj(vec![
                ("name".into(), Json::Str(name.clone())),
                ("value".into(), Json::Num(*value)),
            ])
        })
        .collect();
    let histograms = snap
        .hists
        .iter()
        .map(|(name, h)| {
            Json::Obj(vec![
                ("name".into(), Json::Str(name.clone())),
                ("count".into(), Json::UInt(h.count())),
                (
                    "sum_ns".into(),
                    Json::UInt(h.sum().min(u64::MAX as u128) as u64),
                ),
                ("p50_ns".into(), Json::UInt(h.quantile(0.50))),
                ("p90_ns".into(), Json::UInt(h.quantile(0.90))),
                ("p99_ns".into(), Json::UInt(h.quantile(0.99))),
                ("max_ns".into(), Json::UInt(h.max())),
            ])
        })
        .collect();
    let spans = snap
        .spans
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("path".into(), Json::Str(s.path.clone())),
                ("count".into(), Json::UInt(s.count)),
                ("total_ns".into(), Json::UInt(s.total_ns)),
            ])
        })
        .collect();
    let self_time = crate::selftime::fold(&snap.spans)
        .nodes
        .into_iter()
        .map(|n| {
            Json::Obj(vec![
                ("path".into(), Json::Str(n.path)),
                ("depth".into(), Json::UInt(n.depth as u64)),
                ("count".into(), Json::UInt(n.count)),
                ("total_ns".into(), Json::UInt(n.total_ns)),
                ("inclusive_ns".into(), Json::UInt(n.inclusive_ns)),
                ("exclusive_ns".into(), Json::UInt(n.exclusive_ns)),
            ])
        })
        .collect();
    let exec_profiles = snap
        .execs
        .iter()
        .map(|e| {
            let classes = e
                .classes
                .iter()
                .map(|c| {
                    Json::Obj(vec![
                        ("class".into(), Json::Str(c.class.to_string())),
                        ("warp_uops".into(), Json::UInt(c.warp_uops)),
                        ("lane_uops".into(), Json::UInt(c.lane_uops)),
                    ])
                })
                .collect();
            let hotspots = e
                .hotspots
                .iter()
                .map(|h| {
                    Json::Obj(vec![
                        ("pc".into(), Json::UInt(h.pc)),
                        ("class".into(), Json::Str(h.class.to_string())),
                        ("warp_uops".into(), Json::UInt(h.warp_uops)),
                        ("lane_uops".into(), Json::UInt(h.lane_uops)),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("kernel".into(), Json::Str(e.kernel.clone())),
                ("classes".into(), Json::Arr(classes)),
                ("hotspots".into(), Json::Arr(hotspots)),
            ])
        })
        .collect();
    let meta = Json::Obj(vec![
        ("timestamp_ms".into(), Json::UInt(ctx.meta.timestamp_ms)),
        ("threads".into(), Json::UInt(ctx.threads as u64)),
        ("backend".into(), Json::Str(ctx.meta.backend.clone())),
        ("cache".into(), Json::Str(ctx.meta.cache.clone())),
        ("label".into(), Json::Str(ctx.meta.label.clone())),
    ]);
    let timeseries = match &ctx.timeseries {
        Some(series) => series.to_json(),
        None => Json::Obj(vec![]),
    };
    Json::Obj(vec![
        ("schema_version".into(), Json::UInt(SCHEMA_VERSION)),
        ("meta".into(), meta),
        ("threads".into(), Json::UInt(ctx.threads as u64)),
        (
            "experiment_ids".into(),
            Json::Arr(
                ctx.experiment_ids
                    .iter()
                    .map(|id| Json::Str(id.clone()))
                    .collect(),
            ),
        ),
        ("stages".into(), Json::Arr(stages)),
        ("experiments".into(), Json::Arr(experiments)),
        ("workloads".into(), Json::Arr(workloads)),
        ("kernels".into(), Json::Arr(kernels)),
        ("pools".into(), Json::Arr(pools)),
        ("fallbacks".into(), Json::Arr(fallbacks)),
        ("counters".into(), Json::Arr(counters)),
        ("gauges".into(), Json::Arr(gauges)),
        ("histograms".into(), Json::Arr(histograms)),
        ("spans".into(), Json::Arr(spans)),
        ("self_time".into(), Json::Arr(self_time)),
        ("exec_profiles".into(), Json::Arr(exec_profiles)),
        ("timeseries".into(), timeseries),
    ])
}

fn require_records(doc: &Json, key: &str, fields: &[&str]) -> Result<(), String> {
    let arr = doc
        .get(key)
        .ok_or_else(|| format!("missing key `{key}`"))?
        .as_arr()
        .ok_or_else(|| format!("`{key}` is not an array"))?;
    for (i, record) in arr.iter().enumerate() {
        for field in fields {
            record
                .get(field)
                .ok_or_else(|| format!("`{key}[{i}]` is missing `{field}`"))?;
        }
    }
    Ok(())
}

/// Validates a parsed report against the schema, accepting any
/// [`SUPPORTED_VERSIONS`] member. Equivalent to
/// [`validate_version`]`(doc, None)`.
///
/// # Errors
///
/// Returns a message naming the first missing/mistyped key or the
/// version mismatch.
pub fn validate(doc: &Json) -> Result<(), String> {
    validate_version(doc, None)
}

/// Validates a parsed report, optionally pinning the schema version
/// (`metrics_check --schema v1|v2|v3|v4`). With `expected: None`, any
/// supported version passes; older documents are not required to carry
/// newer keys (the v2-only `histograms`, the v3-only `self_time` and
/// `exec_profiles`, the v4-only `meta` and `timeseries`).
///
/// # Errors
///
/// Returns a message naming the first missing/mistyped key or the
/// version mismatch.
pub fn validate_version(doc: &Json, expected: Option<u64>) -> Result<(), String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("`schema_version` is missing or not an unsigned integer")?;
    if !SUPPORTED_VERSIONS.contains(&version) {
        return Err(format!(
            "schema_version {version} not in supported {SUPPORTED_VERSIONS:?}"
        ));
    }
    if let Some(want) = expected {
        if version != want {
            return Err(format!("schema_version {version} != pinned v{want}"));
        }
    }
    for key in REQUIRED_KEYS {
        if key == "histograms" && version < 2 {
            continue;
        }
        if matches!(key, "self_time" | "exec_profiles") && version < 3 {
            continue;
        }
        if matches!(key, "meta" | "timeseries") && version < 4 {
            continue;
        }
        if doc.get(key).is_none() {
            return Err(format!("missing key `{key}`"));
        }
    }
    doc.get("threads")
        .and_then(Json::as_u64)
        .ok_or("`threads` is not an unsigned integer")?;
    doc.get("experiment_ids")
        .and_then(Json::as_arr)
        .ok_or("`experiment_ids` is not an array")?;
    require_records(doc, "stages", &["name", "count", "wall_ns", "rollup_ns"])?;
    require_records(doc, "experiments", &["id", "wall_ns"])?;
    require_records(doc, "workloads", &["name", "kernels", "wall_ns"])?;
    require_records(
        doc,
        "kernels",
        &["name", "launches", "warp_instrs", "thread_instrs", "blocks"],
    )?;
    require_records(doc, "pools", &["name", "workers"])?;
    for (i, pool) in doc
        .get("pools")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .enumerate()
    {
        let workers = pool
            .get("workers")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("`pools[{i}].workers` is not an array"))?;
        for (j, w) in workers.iter().enumerate() {
            for field in [
                "worker",
                "tasks",
                "steals",
                "busy_ns",
                "wall_ns",
                "busy_frac",
            ] {
                w.get(field)
                    .ok_or_else(|| format!("`pools[{i}].workers[{j}]` is missing `{field}`"))?;
            }
        }
    }
    require_records(doc, "fallbacks", &["kernel", "reason", "count"])?;
    require_records(doc, "counters", &["name", "value"])?;
    require_records(doc, "gauges", &["name", "value"])?;
    if version >= 2 {
        require_records(
            doc,
            "histograms",
            &[
                "name", "count", "sum_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns",
            ],
        )?;
    }
    require_records(doc, "spans", &["path", "count", "total_ns"])?;
    if version >= 3 {
        require_records(
            doc,
            "self_time",
            &[
                "path",
                "depth",
                "count",
                "total_ns",
                "inclusive_ns",
                "exclusive_ns",
            ],
        )?;
        require_records(doc, "exec_profiles", &["kernel", "classes", "hotspots"])?;
        for (i, prof) in doc
            .get("exec_profiles")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            let classes = prof
                .get("classes")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("`exec_profiles[{i}].classes` is not an array"))?;
            for (j, c) in classes.iter().enumerate() {
                for field in ["class", "warp_uops", "lane_uops"] {
                    c.get(field).ok_or_else(|| {
                        format!("`exec_profiles[{i}].classes[{j}]` is missing `{field}`")
                    })?;
                }
            }
            let hotspots = prof
                .get("hotspots")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("`exec_profiles[{i}].hotspots` is not an array"))?;
            for (j, h) in hotspots.iter().enumerate() {
                for field in ["pc", "class", "warp_uops", "lane_uops"] {
                    h.get(field).ok_or_else(|| {
                        format!("`exec_profiles[{i}].hotspots[{j}]` is missing `{field}`")
                    })?;
                }
            }
        }
    }
    if version >= 4 {
        let meta = doc.get("meta").ok_or("missing key `meta`")?;
        for field in ["timestamp_ms", "threads", "backend", "cache", "label"] {
            meta.get(field)
                .ok_or_else(|| format!("`meta` is missing `{field}`"))?;
        }
        let ts = doc.get("timeseries").ok_or("missing key `timeseries`")?;
        let Json::Obj(ts_fields) = ts else {
            return Err("`timeseries` is not an object".into());
        };
        // An empty object means no sampler ran; otherwise the full ring
        // shape is required.
        if !ts_fields.is_empty() {
            for field in [
                "interval_ms",
                "capacity",
                "dropped",
                "stalls",
                "samples",
                "stall_events",
            ] {
                ts.get(field)
                    .ok_or_else(|| format!("`timeseries` is missing `{field}`"))?;
            }
            let samples = ts
                .get("samples")
                .and_then(Json::as_arr)
                .ok_or("`timeseries.samples` is not an array")?;
            for (i, s) in samples.iter().enumerate() {
                for field in [
                    "seq",
                    "t_ms",
                    "epoch",
                    "stage",
                    "progress",
                    "blocks_per_s",
                    "eta_ms",
                    "stalls",
                ] {
                    s.get(field)
                        .ok_or_else(|| format!("`timeseries.samples[{i}]` is missing `{field}`"))?;
                }
            }
            let events = ts
                .get("stall_events")
                .and_then(Json::as_arr)
                .ok_or("`timeseries.stall_events` is not an array")?;
            for (i, e) in events.iter().enumerate() {
                for field in ["seq", "t_ms", "stalled_ms", "open_spans"] {
                    e.get(field).ok_or_else(|| {
                        format!("`timeseries.stall_events[{i}]` is missing `{field}`")
                    })?;
                }
            }
        }
    }
    Ok(())
}

/// Parses, validates, and round-trips a report document.
///
/// The round-trip (`parse → render → parse → compare`) is the offline
/// stand-in for a serde round-trip: it proves the document survives the
/// writer/parser pair unchanged.
///
/// # Errors
///
/// Returns the first parse, schema, or round-trip failure.
pub fn validate_str(text: &str) -> Result<Json, String> {
    validate_str_version(text, None)
}

/// [`validate_str`] with an optional pinned schema version.
///
/// # Errors
///
/// Returns the first parse, schema, version-pin, or round-trip failure.
pub fn validate_str_version(text: &str, expected: Option<u64>) -> Result<Json, String> {
    let doc = parse(text).map_err(|e| format!("parse error: {e}"))?;
    validate_version(&doc, expected)?;
    let rendered = doc.render();
    let back = parse(&rendered).map_err(|e| format!("round-trip parse error: {e}"))?;
    if back != doc {
        return Err("document changed across a render/parse round-trip".into());
    }
    Ok(doc)
}

/// Renders the human-readable top-`n` span table `--trace-summary`
/// prints to stderr.
pub fn render_summary(snap: &MetricsSnapshot, n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "top {} spans by total time:\n{:<44} {:>8} {:>14} {:>12}\n",
        n.min(snap.spans.len()),
        "span",
        "count",
        "total",
        "mean"
    ));
    for s in snap.top_spans(n) {
        out.push_str(&format!(
            "{:<44} {:>8} {:>14} {:>12}\n",
            s.path,
            s.count,
            fmt_ns(s.total_ns),
            fmt_ns(s.total_ns / s.count.max(1)),
        ));
    }
    out
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRecorder;
    use crate::recorder::{ExecClass, ExecHotspot, KernelLaunch, PoolWorker, Recorder};

    fn sample_snapshot() -> MetricsSnapshot {
        let rec = MetricsRecorder::default();
        rec.record_span("study", 100);
        rec.record_span("study/workload/bfs", 60);
        rec.record_span("experiment/e1", 40);
        rec.add_counter("simt.warp_instrs", 1234);
        rec.set_gauge("pool.workers", 4.0);
        rec.record_kernel_launch(
            "bfs_step",
            &KernelLaunch {
                warp_instrs: 10,
                thread_instrs: 320,
                blocks: 2,
                warps: 10,
                barriers: 0,
                wall_ns: 900,
            },
        );
        rec.record_exec_profile(
            "bfs_step",
            &[
                ExecClass {
                    class: "int_alu",
                    warp_uops: 6,
                    lane_uops: 192,
                },
                ExecClass {
                    class: "mem_global",
                    warp_uops: 4,
                    lane_uops: 128,
                },
            ],
            &[ExecHotspot {
                pc: 3,
                class: "mem_global",
                warp_uops: 4,
                lane_uops: 128,
            }],
        );
        rec.record_shard_fallback("histogram", "global-atomics");
        rec.record_pool_worker(
            "study",
            0,
            &PoolWorker {
                tasks: 3,
                steals: 1,
                busy_ns: 80,
                wall_ns: 100,
            },
        );
        rec.record_workload("bfs", 1, 60);
        rec.record_hist("launch.latency_ns", 700);
        rec.record_hist("launch.latency_ns", 1_900);
        rec.snapshot()
    }

    fn sample_ctx() -> ReportContext {
        ReportContext {
            threads: 4,
            experiment_ids: vec!["e1".into()],
            meta: RunMeta {
                timestamp_ms: 1_700_000_000_000,
                backend: "simd".into(),
                cache: "off".into(),
                label: "test".into(),
            },
            timeseries: None,
        }
    }

    #[test]
    fn report_validates_and_round_trips() {
        let doc = build_report(&sample_snapshot(), &sample_ctx());
        let text = doc.render();
        let back = validate_str(&text).expect("valid report");
        assert_eq!(back, doc);
    }

    #[test]
    fn report_contains_the_recorded_facts() {
        let doc = build_report(&sample_snapshot(), &sample_ctx());
        assert_eq!(doc.get("schema_version").unwrap().as_u64(), Some(4));
        assert_eq!(doc.get("threads").unwrap().as_u64(), Some(4));
        let meta = doc.get("meta").unwrap();
        assert_eq!(
            meta.get("timestamp_ms").unwrap().as_u64(),
            Some(1_700_000_000_000)
        );
        assert_eq!(meta.get("threads").unwrap().as_u64(), Some(4));
        assert_eq!(meta.get("backend").unwrap().as_str(), Some("simd"));
        assert_eq!(meta.get("cache").unwrap().as_str(), Some("off"));
        assert_eq!(meta.get("label").unwrap().as_str(), Some("test"));
        assert_eq!(
            doc.get("timeseries").unwrap(),
            &Json::Obj(vec![]),
            "no sampler ran: the timeseries section is an empty object"
        );
        let stages = doc.get("stages").unwrap().as_arr().unwrap();
        assert_eq!(stages.len(), 1, "only `study` is top-level: {stages:?}");
        let study = &stages[0];
        assert_eq!(study.get("name").unwrap().as_str(), Some("study"));
        assert_eq!(study.get("wall_ns").unwrap().as_u64(), Some(100));
        assert_eq!(study.get("rollup_ns").unwrap().as_u64(), Some(160));
        let exps = doc.get("experiments").unwrap().as_arr().unwrap();
        assert_eq!(exps[0].get("id").unwrap().as_str(), Some("e1"));
        let fb = &doc.get("fallbacks").unwrap().as_arr().unwrap()[0];
        assert_eq!(fb.get("kernel").unwrap().as_str(), Some("histogram"));
        assert_eq!(fb.get("reason").unwrap().as_str(), Some("global-atomics"));
        let pool = &doc.get("pools").unwrap().as_arr().unwrap()[0];
        let w0 = &pool.get("workers").unwrap().as_arr().unwrap()[0];
        assert_eq!(w0.get("tasks").unwrap().as_u64(), Some(3));
        assert_eq!(w0.get("busy_frac").unwrap().as_f64(), Some(0.8));
        let h = &doc.get("histograms").unwrap().as_arr().unwrap()[0];
        assert_eq!(h.get("name").unwrap().as_str(), Some("launch.latency_ns"));
        assert_eq!(h.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(h.get("sum_ns").unwrap().as_u64(), Some(2_600));
        assert_eq!(h.get("max_ns").unwrap().as_u64(), Some(1_900));
        assert!(h.get("p50_ns").unwrap().as_u64().unwrap() >= 700);
        let k = &doc.get("kernels").unwrap().as_arr().unwrap()[0];
        assert_eq!(k.get("wall_ns").unwrap().as_u64(), Some(900));
        let st = doc.get("self_time").unwrap().as_arr().unwrap();
        let study = st
            .iter()
            .find(|n| n.get("path").unwrap().as_str() == Some("study"))
            .expect("study node in self_time");
        assert_eq!(study.get("inclusive_ns").unwrap().as_u64(), Some(100));
        assert_eq!(study.get("exclusive_ns").unwrap().as_u64(), Some(40));
        let ep = &doc.get("exec_profiles").unwrap().as_arr().unwrap()[0];
        assert_eq!(ep.get("kernel").unwrap().as_str(), Some("bfs_step"));
        let classes = ep.get("classes").unwrap().as_arr().unwrap();
        assert_eq!(classes[0].get("class").unwrap().as_str(), Some("int_alu"));
        assert_eq!(classes[0].get("lane_uops").unwrap().as_u64(), Some(192));
        let hs = &ep.get("hotspots").unwrap().as_arr().unwrap()[0];
        assert_eq!(hs.get("pc").unwrap().as_u64(), Some(3));
        assert_eq!(hs.get("class").unwrap().as_str(), Some("mem_global"));
    }

    /// Downgrades a freshly built report to `version`, stripping the
    /// keys that version does not know about.
    fn downgrade(version: u64) -> Json {
        let doc = build_report(&sample_snapshot(), &sample_ctx());
        let Json::Obj(mut fields) = doc else {
            unreachable!()
        };
        if version < 4 {
            fields.retain(|(k, _)| k != "meta" && k != "timeseries");
        }
        if version < 3 {
            fields.retain(|(k, _)| k != "self_time" && k != "exec_profiles");
        }
        if version < 2 {
            fields.retain(|(k, _)| k != "histograms");
        }
        for f in &mut fields {
            if f.0 == "schema_version" {
                f.1 = Json::UInt(version);
            }
        }
        Json::Obj(fields)
    }

    #[test]
    fn older_documents_still_validate_unless_pinned_newer() {
        let v1 = downgrade(1);
        validate(&v1).expect("v1 report without newer keys validates");
        validate_version(&v1, Some(1)).expect("pinning v1 accepts it");
        let err = validate_version(&v1, Some(2)).unwrap_err();
        assert!(err.contains("pinned v2"), "{err}");
        let v2 = downgrade(2);
        validate(&v2).expect("v2 report without v3 keys validates");
        let err = validate_version(&v2, Some(3)).unwrap_err();
        assert!(err.contains("pinned v3"), "{err}");
        let v3 = downgrade(3);
        validate(&v3).expect("v3 report without v4 keys validates");
        let err = validate_version(&v3, Some(4)).unwrap_err();
        assert!(err.contains("pinned v4"), "{err}");
        // A v2 document without histograms is malformed, as is a v3
        // document without the attribution sections.
        let Json::Obj(mut fields) = downgrade(2) else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "histograms");
        let err = validate(&Json::Obj(fields)).unwrap_err();
        assert!(err.contains("histograms"), "{err}");
        let Json::Obj(mut fields) = build_report(&sample_snapshot(), &sample_ctx()) else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "self_time");
        let err = validate(&Json::Obj(fields)).unwrap_err();
        assert!(err.contains("self_time"), "{err}");
    }

    #[test]
    fn timeseries_section_validates_and_round_trips() {
        use crate::progress::ProgressSnapshot;
        use crate::sampler::{StallEvent, TimeSample, TimeSeries};
        let mut ctx = sample_ctx();
        ctx.timeseries = Some(TimeSeries {
            interval_ms: 100,
            capacity: 8,
            samples: vec![TimeSample {
                seq: 0,
                t_ms: 0,
                progress: ProgressSnapshot::default(),
                blocks_per_s: 12.5,
                eta_ms: None,
                stalls: 1,
                counters: vec![("cache.hits".into(), 3)],
                hists: Vec::new(),
            }],
            dropped: 0,
            stalls: 1,
            stall_events: vec![StallEvent {
                seq: 1,
                t_ms: 400,
                stalled_ms: 400,
                open_spans: vec!["study/workload/bfs".into()],
            }],
        });
        let doc = build_report(&sample_snapshot(), &ctx);
        let back = validate_str(&doc.render()).expect("valid v4 report with timeseries");
        assert_eq!(back, doc);
        let ts = doc.get("timeseries").unwrap();
        assert_eq!(ts.get("stalls").unwrap().as_u64(), Some(1));
        let sample = &ts.get("samples").unwrap().as_arr().unwrap()[0];
        assert_eq!(sample.get("eta_ms").unwrap(), &Json::Null);
        let ev = &ts.get("stall_events").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            ev.get("open_spans").unwrap().as_arr().unwrap()[0].as_str(),
            Some("study/workload/bfs")
        );
        // A malformed (non-empty but incomplete) section is rejected.
        let Json::Obj(mut fields) = doc else {
            unreachable!()
        };
        for f in &mut fields {
            if f.0 == "timeseries" {
                f.1 = Json::Obj(vec![("interval_ms".into(), Json::UInt(100))]);
            }
        }
        let err = validate(&Json::Obj(fields)).unwrap_err();
        assert!(err.contains("timeseries"), "{err}");
    }

    #[test]
    fn validate_rejects_missing_and_mistyped_keys() {
        let doc = build_report(&sample_snapshot(), &sample_ctx());
        let Json::Obj(mut fields) = doc.clone() else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "pools");
        let err = validate(&Json::Obj(fields)).unwrap_err();
        assert!(err.contains("pools"), "{err}");

        let Json::Obj(mut fields) = doc else {
            unreachable!()
        };
        for f in &mut fields {
            if f.0 == "schema_version" {
                f.1 = Json::UInt(99);
            }
        }
        let err = validate(&Json::Obj(fields)).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn summary_lists_heaviest_spans_first() {
        let summary = render_summary(&sample_snapshot(), 2);
        let study_at = summary.find("study").unwrap();
        let e1_at = summary.find("experiment/e1");
        assert!(e1_at.is_none() || study_at < e1_at.unwrap());
        assert!(summary.contains("100ns"));
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_700), "1.700us");
        assert_eq!(fmt_ns(1_700_000), "1.700ms");
        assert_eq!(fmt_ns(1_700_000_000), "1.700s");
    }
}
