//! The background telemetry sampler: periodic snapshots of progress,
//! counters, and histogram quantiles, a bounded time-series ring, a
//! live NDJSON heartbeat stream, and a stall watchdog.
//!
//! A [`Sampler`] runs on its own thread for the lifetime of a recorded
//! run. At every tick (configurable interval, plus one tick at start
//! and one final tick at stop — so even an instant run emits ≥ 2) it
//! reads [`crate::progress::snapshot`] and, when given one, the
//! [`MetricsRecorder`]'s counters and histogram quantiles, derives
//! block throughput and an ETA, and
//!
//! * pushes a [`TimeSample`] into a bounded ring ([`TimeSeries`]) that
//!   the metrics report exports as its `timeseries` section, and
//! * writes one self-describing JSON object per tick to the heartbeat
//!   sink (`regen --heartbeat PATH|-`), newline-delimited.
//!
//! The sampler is strictly read-only over engine state: it observes
//! atomic progress counters and clones recorder aggregates, so results
//! are bit-identical with or without it.
//!
//! # The stall watchdog
//!
//! [`SamplerConfig::stall_after`] consecutive ticks with zero progress
//! (no domain ticked, same epoch) fire a stall event naming the
//! currently-open span paths (see [`crate::span::open_span_paths`]) to
//! stderr and the heartbeat stream, bump the `telemetry.stalls`
//! counter through [`crate::recorder::Recorder::record_stall`], and
//! append to [`TimeSeries::stall_events`]. The watchdog re-arms once
//! progress resumes, so one stuck phase fires once, not every tick.

use std::io::Write;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::metrics::MetricsRecorder;
use crate::progress::{self, ProgressSnapshot};

/// Configuration of a [`Sampler`].
pub struct SamplerConfig {
    /// Time between periodic ticks.
    pub interval: Duration,
    /// Ring capacity; the oldest samples are dropped (and counted in
    /// [`TimeSeries::dropped`]) once the run outgrows it.
    pub ring_capacity: usize,
    /// Consecutive zero-progress ticks before the watchdog fires;
    /// `0` disables the watchdog.
    pub stall_after: u32,
    /// Recorder whose counters and histogram quantiles each tick
    /// snapshots (`None`: progress only).
    pub metrics: Option<Arc<MetricsRecorder>>,
    /// Heartbeat sink: one JSON object per line per tick.
    pub heartbeat: Option<Box<dyn Write + Send>>,
    /// Whether stall events are also printed to stderr.
    pub stall_stderr: bool,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(500),
            ring_capacity: 512,
            stall_after: 8,
            metrics: None,
            heartbeat: None,
            stall_stderr: true,
        }
    }
}

/// Quantile summary of one histogram at a tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistQuantiles {
    /// Histogram name.
    pub name: String,
    /// Samples recorded so far.
    pub count: u64,
    /// p50 upper bucket edge, ns.
    pub p50_ns: u64,
    /// p90 upper bucket edge, ns.
    pub p90_ns: u64,
    /// p99 upper bucket edge, ns.
    pub p99_ns: u64,
    /// Largest recorded value, ns.
    pub max_ns: u64,
}

/// One sampler tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSample {
    /// Emission sequence number, strictly increasing across every
    /// object the sampler emits (ticks and stall events share it).
    pub seq: u64,
    /// Milliseconds since the sampler started.
    pub t_ms: u64,
    /// Progress counters at this instant.
    pub progress: ProgressSnapshot,
    /// Blocks completed per second since the previous tick.
    pub blocks_per_s: f64,
    /// Estimated milliseconds to completion, extrapolated from the
    /// first incomplete coarse domain (workloads, then stages); `None`
    /// before enough progress exists to extrapolate from.
    pub eta_ms: Option<u64>,
    /// Stall events fired so far (cumulative).
    pub stalls: u64,
    /// Counter values, ordered by name (empty without a recorder).
    pub counters: Vec<(String, u64)>,
    /// Histogram quantiles, ordered by name (empty without a recorder).
    pub hists: Vec<HistQuantiles>,
}

impl TimeSample {
    /// The tick as a self-describing JSON object (without the
    /// heartbeat's `"type"` tag — the report embeds these directly).
    pub fn to_json(&self) -> Json {
        let progress = self
            .progress
            .domains()
            .iter()
            .map(|(name, c)| {
                (
                    name.to_string(),
                    Json::Obj(vec![
                        ("done".into(), Json::UInt(c.done)),
                        ("total".into(), Json::UInt(c.total)),
                    ]),
                )
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| (name.clone(), Json::UInt(*v)))
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|h| {
                (
                    h.name.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::UInt(h.count)),
                        ("p50_ns".into(), Json::UInt(h.p50_ns)),
                        ("p90_ns".into(), Json::UInt(h.p90_ns)),
                        ("p99_ns".into(), Json::UInt(h.p99_ns)),
                        ("max_ns".into(), Json::UInt(h.max_ns)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("seq".into(), Json::UInt(self.seq)),
            ("t_ms".into(), Json::UInt(self.t_ms)),
            ("epoch".into(), Json::UInt(self.progress.epoch)),
            ("stage".into(), Json::Str(self.progress.stage.clone())),
            ("progress".into(), Json::Obj(progress)),
            ("blocks_per_s".into(), Json::Num(self.blocks_per_s)),
            (
                "eta_ms".into(),
                match self.eta_ms {
                    Some(ms) => Json::UInt(ms),
                    None => Json::Null,
                },
            ),
            ("stalls".into(), Json::UInt(self.stalls)),
            ("counters".into(), Json::Obj(counters)),
            ("hists".into(), Json::Obj(hists)),
        ])
    }
}

/// One watchdog firing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallEvent {
    /// Emission sequence number (shared with ticks).
    pub seq: u64,
    /// Milliseconds since the sampler started.
    pub t_ms: u64,
    /// How long progress had been flat when the watchdog fired.
    pub stalled_ms: u64,
    /// Innermost open span path of each thread with open spans, sorted.
    pub open_spans: Vec<String>,
}

impl StallEvent {
    /// The event as a JSON object (without the heartbeat `"type"` tag).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seq".into(), Json::UInt(self.seq)),
            ("t_ms".into(), Json::UInt(self.t_ms)),
            ("stalled_ms".into(), Json::UInt(self.stalled_ms)),
            (
                "open_spans".into(),
                Json::Arr(
                    self.open_spans
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The bounded time-series ring a [`Sampler`] accumulates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    /// Configured tick interval, ms.
    pub interval_ms: u64,
    /// Ring capacity the run was configured with.
    pub capacity: usize,
    /// Retained samples, oldest first.
    pub samples: Vec<TimeSample>,
    /// Samples dropped from the front once the ring filled.
    pub dropped: u64,
    /// Stall events fired.
    pub stalls: u64,
    /// The stall events themselves (bounded by [`MAX_STALL_EVENTS`]).
    pub stall_events: Vec<StallEvent>,
}

/// Retained stall events per run; further stalls still count in
/// [`TimeSeries::stalls`] but keep no per-event record.
pub const MAX_STALL_EVENTS: usize = 64;

impl TimeSeries {
    fn push(&mut self, sample: TimeSample) {
        if self.capacity > 0 && self.samples.len() == self.capacity {
            self.samples.remove(0);
            self.dropped += 1;
        }
        self.samples.push(sample);
    }

    /// The ring as the metrics report's `timeseries` section.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("interval_ms".into(), Json::UInt(self.interval_ms)),
            ("capacity".into(), Json::UInt(self.capacity as u64)),
            ("dropped".into(), Json::UInt(self.dropped)),
            ("stalls".into(), Json::UInt(self.stalls)),
            (
                "samples".into(),
                Json::Arr(self.samples.iter().map(TimeSample::to_json).collect()),
            ),
            (
                "stall_events".into(),
                Json::Arr(self.stall_events.iter().map(StallEvent::to_json).collect()),
            ),
        ])
    }
}

struct StopFlag {
    stopped: Mutex<bool>,
    cv: Condvar,
}

/// A running background sampler; stop it with [`Sampler::stop`] to
/// collect the ring. Only one sampler should run at a time (open-span
/// tracking is process-global).
pub struct Sampler {
    flag: Arc<StopFlag>,
    handle: JoinHandle<TimeSeries>,
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sampler")
    }
}

impl Sampler {
    /// Starts the sampler thread; the first tick is emitted immediately.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn the thread.
    pub fn start(cfg: SamplerConfig) -> Sampler {
        crate::span::set_open_tracking(true);
        let flag = Arc::new(StopFlag {
            stopped: Mutex::new(false),
            cv: Condvar::new(),
        });
        let thread_flag = flag.clone();
        let handle = std::thread::Builder::new()
            .name("gwc-sampler".into())
            .spawn(move || run(cfg, &thread_flag))
            .expect("spawn sampler thread");
        Sampler { flag, handle }
    }

    /// Signals the thread, waits for its final tick, and returns the
    /// accumulated ring.
    ///
    /// # Panics
    ///
    /// Panics if the sampler thread itself panicked.
    pub fn stop(self) -> TimeSeries {
        *self.flag.stopped.lock().unwrap_or_else(|p| p.into_inner()) = true;
        self.flag.cv.notify_all();
        let series = self.handle.join().expect("sampler thread panicked");
        crate::span::set_open_tracking(false);
        series
    }
}

/// Watchdog and throughput state carried between ticks.
struct Pacer {
    prev: Option<(u64, u64, u64)>, // (epoch, done_sum, blocks_done) at prev tick
    prev_t_ms: u64,
    last_progress_t_ms: u64,
    zero_streak: u32,
    latched: bool,
}

fn run(mut cfg: SamplerConfig, flag: &StopFlag) -> TimeSeries {
    let t0 = Instant::now();
    let mut series = TimeSeries {
        interval_ms: cfg.interval.as_millis() as u64,
        capacity: cfg.ring_capacity,
        ..TimeSeries::default()
    };
    let mut seq = 0u64;
    let mut pacer = Pacer {
        prev: None,
        prev_t_ms: 0,
        last_progress_t_ms: 0,
        zero_streak: 0,
        latched: false,
    };
    emit_tick(&mut cfg, &mut series, &mut seq, &mut pacer, t0);
    loop {
        let stopped = {
            let guard = flag.stopped.lock().unwrap_or_else(|p| p.into_inner());
            let (guard, _) = flag
                .cv
                .wait_timeout_while(guard, cfg.interval, |stopped| !*stopped)
                .unwrap_or_else(|p| p.into_inner());
            *guard
        };
        emit_tick(&mut cfg, &mut series, &mut seq, &mut pacer, t0);
        if stopped {
            return series;
        }
    }
}

fn emit_tick(
    cfg: &mut SamplerConfig,
    series: &mut TimeSeries,
    seq: &mut u64,
    pacer: &mut Pacer,
    t0: Instant,
) {
    let t_ms = t0.elapsed().as_millis() as u64;
    let progress = progress::snapshot();
    let (counters, hists) = match &cfg.metrics {
        Some(rec) => {
            let snap = rec.snapshot();
            let hists = snap
                .hists
                .iter()
                .map(|(name, h)| HistQuantiles {
                    name: name.clone(),
                    count: h.count(),
                    p50_ns: h.quantile(0.50),
                    p90_ns: h.quantile(0.90),
                    p99_ns: h.quantile(0.99),
                    max_ns: h.max(),
                })
                .collect();
            (snap.counters, hists)
        }
        None => (Vec::new(), Vec::new()),
    };

    // Throughput and the watchdog both key on "did any domain tick".
    let done_sum = progress.done_sum();
    let blocks_done = progress.blocks.done;
    let blocks_per_s = match pacer.prev {
        Some((epoch, _, prev_blocks)) if epoch == progress.epoch && t_ms > pacer.prev_t_ms => {
            blocks_done.saturating_sub(prev_blocks) as f64 / ((t_ms - pacer.prev_t_ms) as f64 / 1e3)
        }
        _ => 0.0,
    };
    let moved = match pacer.prev {
        Some((epoch, prev_done, _)) => epoch != progress.epoch || prev_done != done_sum,
        None => true,
    };
    if moved {
        pacer.zero_streak = 0;
        pacer.latched = false;
        pacer.last_progress_t_ms = t_ms;
    } else {
        pacer.zero_streak += 1;
    }
    pacer.prev = Some((progress.epoch, done_sum, blocks_done));
    pacer.prev_t_ms = t_ms;

    let sample = TimeSample {
        seq: *seq,
        t_ms,
        eta_ms: eta_ms(t_ms, &progress),
        progress,
        blocks_per_s,
        stalls: series.stalls,
        counters,
        hists,
    };
    *seq += 1;
    heartbeat_write(cfg, "tick", sample.to_json());
    series.push(sample);

    if cfg.stall_after > 0 && pacer.zero_streak >= cfg.stall_after && !pacer.latched {
        pacer.latched = true;
        let event = StallEvent {
            seq: *seq,
            t_ms,
            stalled_ms: t_ms.saturating_sub(pacer.last_progress_t_ms),
            open_spans: crate::span::open_span_paths(),
        };
        *seq += 1;
        series.stalls += 1;
        if let Some(last) = series.samples.last_mut() {
            last.stalls = series.stalls;
        }
        if cfg.stall_stderr {
            eprintln!(
                "gwc-telemetry: stall: no progress for {}ms ({} tick(s)); open spans: [{}]",
                event.stalled_ms,
                pacer.zero_streak,
                event.open_spans.join(", ")
            );
        }
        if let Some(rec) = crate::recorder() {
            rec.record_stall(&event.open_spans, event.stalled_ms);
        }
        heartbeat_write(cfg, "stall", event.to_json());
        if series.stall_events.len() < MAX_STALL_EVENTS {
            series.stall_events.push(event);
        }
    }
}

/// Extrapolated time to completion from the first incomplete coarse
/// domain: `elapsed * remaining / done`. `None` until something has
/// both been declared and completed.
fn eta_ms(t_ms: u64, p: &ProgressSnapshot) -> Option<u64> {
    let mut declared_any = false;
    for c in [p.workloads, p.stages] {
        if c.total == 0 {
            continue;
        }
        declared_any = true;
        if c.done < c.total {
            if c.done == 0 {
                return None;
            }
            return Some((t_ms as u128 * (c.total - c.done) as u128 / c.done as u128) as u64);
        }
    }
    declared_any.then_some(0)
}

fn heartbeat_write(cfg: &mut SamplerConfig, kind: &str, body: Json) {
    let Some(sink) = &mut cfg.heartbeat else {
        return;
    };
    let Json::Obj(fields) = body else {
        unreachable!("heartbeat bodies are objects")
    };
    let mut tagged = Vec::with_capacity(fields.len() + 1);
    tagged.push(("type".to_string(), Json::Str(kind.to_string())));
    tagged.extend(fields);
    // Best effort: a broken pipe must not kill the run being observed.
    let _ = writeln!(sink, "{}", Json::Obj(tagged).render_compact());
    let _ = sink.flush();
}

/// Summary returned by [`validate_heartbeat`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeartbeatSummary {
    /// `"tick"` objects seen.
    pub ticks: usize,
    /// `"stall"` objects seen.
    pub stalls: usize,
}

/// Validates a heartbeat NDJSON stream: every JSON line parses as an
/// object carrying a `type` tag and the fields the sampler emits,
/// `seq` strictly increases, `t_ms` never decreases, and within one
/// progress epoch every domain's `done`/`total` is monotone
/// non-decreasing across ticks.
///
/// Lines that do not start with `{` are skipped: `--heartbeat -`
/// multiplexes the stream onto stderr alongside the binaries' own
/// diagnostics, so a raw stderr capture interleaves human-readable
/// status lines with the JSON ticks.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_heartbeat(text: &str) -> Result<HeartbeatSummary, String> {
    let mut summary = HeartbeatSummary::default();
    let mut last_seq: Option<u64> = None;
    let mut last_t_ms = 0u64;
    // (epoch, per-domain (done, total) of the previous tick).
    let mut last_tick: Option<(u64, Vec<(u64, u64)>)> = None;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if !line.trim_start().starts_with('{') {
            continue;
        }
        let doc = crate::json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
        let field = |key: &str| {
            doc.get(key)
                .ok_or_else(|| format!("line {n}: missing `{key}`"))
        };
        let uint = |key: &str| {
            field(key)?
                .as_u64()
                .ok_or_else(|| format!("line {n}: `{key}` is not an unsigned integer"))
        };
        let seq = uint("seq")?;
        if last_seq.is_some_and(|prev| seq <= prev) {
            return Err(format!("line {n}: seq {seq} does not increase"));
        }
        last_seq = Some(seq);
        let t_ms = uint("t_ms")?;
        if t_ms < last_t_ms {
            return Err(format!("line {n}: t_ms {t_ms} went backwards"));
        }
        last_t_ms = t_ms;
        match field("type")?.as_str() {
            Some("tick") => {
                summary.ticks += 1;
                let epoch = uint("epoch")?;
                field("stage")?
                    .as_str()
                    .ok_or_else(|| format!("line {n}: `stage` is not a string"))?;
                if !matches!(field("eta_ms")?, Json::UInt(_) | Json::Null) {
                    return Err(format!("line {n}: `eta_ms` is not an integer or null"));
                }
                uint("stalls")?;
                let progress = field("progress")?;
                let mut counts = Vec::new();
                for name in ["workloads", "launches", "blocks", "stages", "tasks"] {
                    let d = progress
                        .get(name)
                        .ok_or_else(|| format!("line {n}: progress is missing `{name}`"))?;
                    let read = |key: &str| {
                        d.get(key).and_then(Json::as_u64).ok_or_else(|| {
                            format!("line {n}: progress.{name}.{key} is not an unsigned integer")
                        })
                    };
                    counts.push((read("done")?, read("total")?));
                }
                if let Some((prev_epoch, prev)) = &last_tick {
                    if *prev_epoch == epoch {
                        for (j, ((done, total), (pd, pt))) in
                            counts.iter().zip(prev.iter()).enumerate()
                        {
                            if done < pd || total < pt {
                                return Err(format!(
                                    "line {n}: progress domain #{j} decreased within epoch \
                                     {epoch} ({pd}/{pt} -> {done}/{total})"
                                ));
                            }
                        }
                    }
                }
                last_tick = Some((epoch, counts));
            }
            Some("stall") => {
                summary.stalls += 1;
                uint("stalled_ms")?;
                field("open_spans")?
                    .as_arr()
                    .ok_or_else(|| format!("line {n}: `open_spans` is not an array"))?;
            }
            Some(other) => return Err(format!("line {n}: unknown type `{other}`")),
            None => return Err(format!("line {n}: `type` is not a string")),
        }
    }
    if summary.ticks == 0 {
        return Err("no tick objects in the stream".into());
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_when_full() {
        let mut series = TimeSeries {
            capacity: 2,
            ..TimeSeries::default()
        };
        for seq in 0..5 {
            series.push(TimeSample {
                seq,
                t_ms: seq,
                progress: ProgressSnapshot::default(),
                blocks_per_s: 0.0,
                eta_ms: None,
                stalls: 0,
                counters: Vec::new(),
                hists: Vec::new(),
            });
        }
        assert_eq!(series.dropped, 3);
        let seqs: Vec<u64> = series.samples.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, [3, 4], "newest samples are retained");
    }

    #[test]
    fn eta_prefers_workloads_then_stages() {
        let mut p = ProgressSnapshot::default();
        assert_eq!(eta_ms(100, &p), None, "nothing declared yet");
        p.workloads = crate::progress::Counts { done: 0, total: 4 };
        assert_eq!(eta_ms(100, &p), None, "declared but nothing done");
        p.workloads.done = 1;
        assert_eq!(eta_ms(100, &p), Some(300), "3 remaining at 100ms each");
        p.workloads.done = 4;
        p.stages = crate::progress::Counts { done: 2, total: 4 };
        assert_eq!(eta_ms(100, &p), Some(100), "falls through to stages");
        p.stages.done = 4;
        assert_eq!(eta_ms(100, &p), Some(0), "everything declared is done");
    }

    #[test]
    fn heartbeat_validator_rejects_non_monotone_streams() {
        let tick = |seq: u64, t_ms: u64, done: u64| {
            format!(
                r#"{{"type": "tick", "seq": {seq}, "t_ms": {t_ms}, "epoch": 1, "stage": "study", "progress": {{"workloads": {{"done": {done}, "total": 4}}, "launches": {{"done": 0, "total": 0}}, "blocks": {{"done": 0, "total": 0}}, "stages": {{"done": 0, "total": 4}}, "tasks": {{"done": 0, "total": 0}}}}, "blocks_per_s": 0, "eta_ms": null, "stalls": 0, "counters": {{}}, "hists": {{}}}}"#
            )
        };
        let good = format!("{}\n{}\n", tick(0, 0, 1), tick(1, 10, 2));
        let summary = validate_heartbeat(&good).expect("valid stream");
        assert_eq!(summary.ticks, 2);

        let bad_seq = format!("{}\n{}\n", tick(1, 0, 1), tick(1, 10, 2));
        assert!(validate_heartbeat(&bad_seq).unwrap_err().contains("seq"));

        let bad_progress = format!("{}\n{}\n", tick(0, 0, 3), tick(1, 10, 2));
        assert!(validate_heartbeat(&bad_progress)
            .unwrap_err()
            .contains("decreased"));

        assert!(validate_heartbeat("").is_err(), "empty stream has no tick");
        assert!(validate_heartbeat("{nope\n").is_err());

        // `--heartbeat -` shares stderr with the binaries' own status
        // lines; a raw capture must still validate.
        let mixed = format!(
            "running the study...\n{}\ndone.\n{}\n",
            tick(0, 0, 1),
            tick(1, 10, 2)
        );
        assert_eq!(
            validate_heartbeat(&mixed).expect("skips diagnostics").ticks,
            2
        );
        assert!(
            validate_heartbeat("just diagnostics\n").is_err(),
            "a stream with no JSON at all still fails"
        );
    }
}
