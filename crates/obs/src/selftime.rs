//! Self-time trees: folding the aggregated span stream into an
//! inclusive/exclusive cost tree.
//!
//! A [`crate::metrics::MetricsSnapshot`] holds flat span aggregates
//! keyed by `/`-separated paths (`study`, `study/workload/fft`, …).
//! [`fold`] turns them into a tree where every node knows its
//! **inclusive** time (itself plus its descendants) and its
//! **exclusive** time (inclusive minus the children's inclusive sum —
//! the time unexplained by any finer-grained span). The fold is what a
//! flamegraph renders, so [`collapsed_stacks`] exports the tree in the
//! collapsed-stack format `flamegraph.pl` and inferno consume:
//! one `seg;seg;seg <value>` line per node with nonzero exclusive time.
//!
//! # Semantics
//!
//! Span aggregates may overlap in wall time (pool workers record
//! concurrently), so a parent's recorded total can be *smaller* than
//! its children's sum. A node's inclusive time is therefore
//! `max(own_total, Σ children inclusive)` — "total recorded time", a
//! CPU-time-like quantity — which makes the invariant exact by
//! construction: **the exclusive times of a subtree always sum to its
//! root's inclusive time.** Paths with recorded children but no recorded
//! aggregate of their own (e.g. `study/workload` when only
//! `study/workload/fft` was recorded) appear as synthetic nodes with
//! `count == 0` and zero exclusive time.

use crate::metrics::SpanStat;

/// One node of a folded self-time tree, in depth-first pre-order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfTimeNode {
    /// Full `/`-separated span path.
    pub path: String,
    /// Depth in the tree (top-level spans are 0).
    pub depth: usize,
    /// Times the span itself closed (0 for synthetic intermediate
    /// nodes).
    pub count: u64,
    /// The span's own recorded total (0 for synthetic nodes).
    pub total_ns: u64,
    /// Total recorded time of the subtree:
    /// `max(total_ns, Σ children inclusive_ns)`.
    pub inclusive_ns: u64,
    /// `inclusive_ns` minus the children's inclusive sum: time not
    /// explained by any child span.
    pub exclusive_ns: u64,
}

/// A folded span tree in depth-first pre-order (children in path
/// order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelfTimeTree {
    /// Nodes in pre-order; a node's children are the following nodes
    /// with `depth + 1` until the next node at `depth` or less.
    pub nodes: Vec<SelfTimeNode>,
}

impl SelfTimeTree {
    /// Sum of the top-level nodes' inclusive times — equivalently (by
    /// the fold invariant) the sum of every node's exclusive time.
    pub fn total_ns(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.depth == 0)
            .map(|n| n.inclusive_ns)
            .sum()
    }
}

/// Folds flat span aggregates into a [`SelfTimeTree`]. Empty input
/// returns an empty tree without allocating.
pub fn fold(spans: &[SpanStat]) -> SelfTimeTree {
    if spans.is_empty() {
        return SelfTimeTree::default();
    }
    // Materialize every node path: recorded spans plus the synthetic
    // ancestors their paths imply. Sorted path order IS pre-order,
    // because a parent path is a strict prefix of its children.
    let mut nodes: Vec<SelfTimeNode> = Vec::new();
    let mut push = |path: &str, count: u64, total_ns: u64| {
        let depth = path.matches('/').count();
        nodes.push(SelfTimeNode {
            path: path.to_string(),
            depth,
            count,
            total_ns,
            inclusive_ns: 0,
            exclusive_ns: 0,
        });
    };
    let mut known = std::collections::BTreeSet::new();
    for s in spans {
        known.insert(s.path.as_str());
    }
    for s in spans {
        // Synthetic ancestors first (sorted order restores position).
        let mut at = 0;
        while let Some(i) = s.path[at..].find('/') {
            let ancestor = &s.path[..at + i];
            if known.insert(ancestor) {
                push(ancestor, 0, 0);
            }
            at += i + 1;
        }
        push(&s.path, s.count, s.total_ns);
    }
    nodes.sort_by(|a, b| a.path.cmp(&b.path));

    // Children's inclusive sums, bottom-up: iterate in reverse sorted
    // order and fold each node into its parent via a depth stack.
    let mut child_sum = vec![0u64; nodes.len()];
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (depth, index)
    for i in (0..nodes.len()).rev() {
        let depth = nodes[i].depth;
        let mut sum = 0u64;
        while let Some(&(d, j)) = stack.last() {
            if d == depth + 1 {
                sum += child_sum[j].max(nodes[j].total_ns);
                stack.pop();
            } else {
                break;
            }
        }
        child_sum[i] = sum;
        stack.push((depth, i));
    }
    for (node, &children) in nodes.iter_mut().zip(&child_sum) {
        node.inclusive_ns = node.total_ns.max(children);
        node.exclusive_ns = node.inclusive_ns - children;
    }
    SelfTimeTree { nodes }
}

/// Renders a tree in the collapsed-stack format (`a;b;c <exclusive>`
/// per node, skipping zero-exclusive nodes). Frame separators inside
/// span names are replaced (`;` → `:`, space → `_`) so the output stays
/// parseable by `flamegraph.pl` / inferno.
pub fn collapsed_stacks(tree: &SelfTimeTree) -> String {
    let mut out = String::new();
    for node in &tree.nodes {
        if node.exclusive_ns == 0 {
            continue;
        }
        for (i, seg) in node.path.split('/').enumerate() {
            if i > 0 {
                out.push(';');
            }
            for ch in seg.chars() {
                out.push(match ch {
                    ';' => ':',
                    ' ' => '_',
                    c => c,
                });
            }
        }
        out.push(' ');
        out.push_str(&node.exclusive_ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(path: &str, count: u64, total_ns: u64) -> SpanStat {
        SpanStat {
            path: path.to_string(),
            count,
            total_ns,
        }
    }

    #[test]
    fn empty_input_folds_to_empty_tree() {
        let tree = fold(&[]);
        assert!(tree.nodes.is_empty());
        assert_eq!(tree.total_ns(), 0);
        assert_eq!(collapsed_stacks(&tree), "");
    }

    #[test]
    fn nested_spans_get_exclusive_times() {
        let tree = fold(&[
            span("study", 1, 100),
            span("study/observe", 4, 60),
            span("study/merge", 4, 15),
        ]);
        let paths: Vec<&str> = tree.nodes.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(paths, ["study", "study/merge", "study/observe"]);
        let study = &tree.nodes[0];
        assert_eq!(study.inclusive_ns, 100);
        assert_eq!(study.exclusive_ns, 25, "100 - (60 + 15)");
        assert_eq!(tree.nodes[1].exclusive_ns, 15);
        assert_eq!(tree.nodes[2].exclusive_ns, 60);
    }

    #[test]
    fn synthetic_intermediate_nodes_carry_no_exclusive_time() {
        let tree = fold(&[span("study", 1, 100), span("study/workload/fft", 2, 40)]);
        let mid = tree
            .nodes
            .iter()
            .find(|n| n.path == "study/workload")
            .expect("synthetic node exists");
        assert_eq!(mid.count, 0);
        assert_eq!(mid.total_ns, 0);
        assert_eq!(mid.inclusive_ns, 40);
        assert_eq!(mid.exclusive_ns, 0);
        assert_eq!(mid.depth, 1);
    }

    #[test]
    fn overlapping_children_grow_the_parent_inclusive() {
        // Two workers recorded 60ns each under a 70ns parent: the
        // children overlap in wall time, so inclusive becomes their sum
        // and the parent has no exclusive share.
        let tree = fold(&[
            span("study", 1, 70),
            span("study/a", 1, 60),
            span("study/b", 1, 60),
        ]);
        assert_eq!(tree.nodes[0].inclusive_ns, 120);
        assert_eq!(tree.nodes[0].exclusive_ns, 0);
    }

    #[test]
    fn exclusive_times_sum_to_inclusive_root() {
        let spans = [
            span("cluster", 1, 9),
            span("reduce", 1, 30),
            span("study", 1, 1000),
            span("study/merge", 8, 100),
            span("study/observe", 8, 700),
            span("study/observe/decode", 16, 50),
            span("study/workload/a", 3, 90),
            span("study/workload/b", 3, 260),
        ];
        let tree = fold(&spans);
        let exclusive_sum: u64 = tree.nodes.iter().map(|n| n.exclusive_ns).sum();
        assert_eq!(exclusive_sum, tree.total_ns());
        // Per-subtree too: every node's exclusive plus its children's
        // inclusive equals its own inclusive.
        for (i, node) in tree.nodes.iter().enumerate() {
            let children_sum: u64 = tree
                .nodes
                .iter()
                .skip(i + 1)
                .take_while(|m| m.depth > node.depth)
                .filter(|m| m.depth == node.depth + 1)
                .map(|m| m.inclusive_ns)
                .sum();
            assert_eq!(
                node.exclusive_ns + children_sum,
                node.inclusive_ns,
                "invariant broken at {}",
                node.path
            );
        }
    }

    #[test]
    fn collapsed_stacks_format() {
        let tree = fold(&[
            span("study", 1, 100),
            span("study/launch/my kernel;v2", 2, 40),
        ]);
        let out = collapsed_stacks(&tree);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines, ["study 60", "study;launch;my_kernel:v2 40"]);
    }
}
