//! Hierarchical timed spans.
//!
//! A [`SpanGuard`] measures the wall time between its creation and its
//! drop on a monotonic clock ([`std::time::Instant`]) and reports the
//! duration to the installed recorder under a `/`-separated path. Spans
//! opened while another span is active *on the same thread* nest under
//! it: the reported path is the thread's span stack joined with `/`.
//!
//! Construct spans with the [`crate::span!`] macro — it performs the
//! enabled check before evaluating the name, which keeps dynamic names
//! allocation-free on the disabled path.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    static THREAD_ORD: u64 = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
}

static NEXT_THREAD_ORD: AtomicU64 = AtomicU64::new(1);

/// When set, span open/close also maintains [`OPEN`] — a cross-thread
/// mirror of every thread's open-span paths, so the stall watchdog can
/// name what a stuck run is doing. Off by default: the mirror costs a
/// lock and a path join per span, which only the sampler should pay.
static OPEN_TRACKING: AtomicBool = AtomicBool::new(false);

/// Open span paths per thread ordinal, innermost last. Only maintained
/// while [`OPEN_TRACKING`] is set.
static OPEN: Mutex<BTreeMap<u64, Vec<String>>> = Mutex::new(BTreeMap::new());

/// Turns the open-span mirror on or off (off also clears it). Called by
/// the sampler around its lifetime.
pub(crate) fn set_open_tracking(enabled: bool) {
    OPEN_TRACKING.store(enabled, Ordering::SeqCst);
    if !enabled {
        OPEN.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }
}

/// The innermost currently-open span path of each thread that has one,
/// ordered by thread ordinal. Empty unless a sampler is running (the
/// mirror is only maintained then) — this is the stall watchdog's
/// "what is the run doing right now" answer.
pub fn open_span_paths() -> Vec<String> {
    let open = OPEN.lock().unwrap_or_else(|p| p.into_inner());
    open.values()
        .filter_map(|stack| stack.last().cloned())
        .collect()
}

/// A small stable ordinal for the calling thread, assigned on first use
/// (the process's first instrumented thread — usually main — is 1).
/// Trace timelines key their rows on this instead of
/// [`std::thread::ThreadId`], whose integer form is unstable.
pub fn thread_ord() -> u64 {
    THREAD_ORD.with(|t| *t)
}

/// An open span; ends (and records) on drop. See [`crate::span!`].
#[derive(Debug)]
pub struct SpanGuard {
    start: Option<Instant>,
}

impl SpanGuard {
    /// Opens a span named `name` on the current thread's span stack.
    ///
    /// Prefer [`crate::span!`], which skips this entirely (including the
    /// name construction) when no recorder is installed.
    pub fn begin(name: String) -> SpanGuard {
        STACK.with(|s| s.borrow_mut().push(name));
        if OPEN_TRACKING.load(Ordering::Relaxed) {
            let path = STACK.with(|s| s.borrow().join("/"));
            OPEN.lock()
                .unwrap_or_else(|p| p.into_inner())
                .entry(thread_ord())
                .or_default()
                .push(path);
        }
        SpanGuard {
            start: Some(Instant::now()),
        }
    }

    /// An inert span: no clock read, no stack push, nothing on drop.
    pub fn noop() -> SpanGuard {
        SpanGuard { start: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let end = Instant::now();
        let nanos = end.saturating_duration_since(start).as_nanos() as u64;
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        if OPEN_TRACKING.load(Ordering::Relaxed) {
            let mut open = OPEN.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(stack) = open.get_mut(&thread_ord()) {
                // Spans opened before tracking started have no mirror
                // entry; popping an empty stack is fine.
                stack.pop();
                if stack.is_empty() {
                    open.remove(&thread_ord());
                }
            }
        }
        // The recorder may have been uninstalled while the span was
        // open; the stack bookkeeping above must happen regardless.
        if let Some(r) = crate::recorder() {
            r.record_span(&path, nanos);
            r.record_span_event(&path, thread_ord(), start, end);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::metrics::MetricsRecorder;
    use std::sync::Arc;

    #[test]
    fn nested_spans_record_hierarchical_paths() {
        let rec = Arc::new(MetricsRecorder::default());
        let guard = crate::install(rec.clone());
        {
            let _outer = crate::span!("outer");
            let _inner = crate::span!("inner-{}", 1);
        }
        drop(guard);
        let snap = rec.snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["outer", "outer/inner-1"]);
    }

    #[test]
    fn open_span_mirror_tracks_innermost_paths() {
        let rec = Arc::new(MetricsRecorder::default());
        let _guard = crate::install(rec);
        super::set_open_tracking(true);
        {
            let _outer = crate::span!("outer");
            let _inner = crate::span!("inner");
            assert_eq!(super::open_span_paths(), ["outer/inner"]);
        }
        assert!(
            super::open_span_paths().is_empty(),
            "closed spans leave the mirror"
        );
        super::set_open_tracking(false);
    }

    #[test]
    fn disabled_spans_leave_no_trace() {
        let _gate = crate::recorder::test_gate();
        let rec = Arc::new(MetricsRecorder::default());
        {
            let _s = crate::span!("not-recorded");
        }
        // Never installed: nothing may have been recorded anywhere.
        assert!(rec.snapshot().spans.is_empty());
    }
}
