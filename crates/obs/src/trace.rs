//! [`TraceRecorder`]: a bounded span-timeline recorder with
//! Chrome/Perfetto trace-event export — the engine behind
//! `regen --trace`.
//!
//! Where [`crate::metrics::MetricsRecorder`] aggregates (how much total),
//! the trace recorder keeps every span *event* — path, thread ordinal,
//! monotonic start and end — so the run can be replayed as a timeline
//! (when did what run, on which thread, nested how).
//!
//! # Bounded memory
//!
//! Events land in a fixed-capacity ring of write-once slots. A writer
//! claims a slot with one `fetch_add` on an atomic ticket counter and
//! publishes the event through a [`OnceLock`]; there is no shared lock,
//! no resize, and no allocation after construction beyond the event's
//! own path string. When the ring is full, **new events are dropped and
//! counted** (the earliest events — the ones that established the
//! timeline — are kept): [`TraceRecorder::dropped`] exposes the count,
//! the export embeds it as `metadata.dropped_events`, and `regen`
//! forwards it to the metrics report as a `trace.dropped_events`
//! counter. Nothing is ever truncated silently.
//!
//! # Export format
//!
//! [`TraceRecorder::export`] emits the Chrome trace-event JSON object
//! form (`{"traceEvents": [...], "metadata": {...}}`) with one complete
//! (`"ph": "X"`) event per span, timestamps in fractional microseconds
//! relative to the recorder's construction. Perfetto and
//! `chrome://tracing` load it directly; spans nest per thread by
//! interval containment, which the span stack guarantees.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::json::Json;
use crate::recorder::Recorder;

/// Default event capacity (see [`TraceRecorder::with_capacity`]).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// One recorded span occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// `/`-separated hierarchical span name.
    pub path: String,
    /// Recording thread's ordinal (see [`crate::span::thread_ord`]).
    pub thread: u64,
    /// Start, in nanoseconds since the recorder was constructed.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A bounded, allocation-light span-timeline [`Recorder`].
#[derive(Debug)]
pub struct TraceRecorder {
    epoch: Instant,
    slots: Vec<OnceLock<TraceEvent>>,
    next: AtomicUsize,
    dropped: AtomicU64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl TraceRecorder {
    /// A recorder holding up to [`DEFAULT_CAPACITY`] events.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder holding up to `capacity` events; all slots are
    /// allocated up front, so recording never grows memory.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            slots: (0..capacity.max(1)).map(|_| OnceLock::new()).collect(),
            next: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Event capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The recorded events, in claim order. Slots claimed by a writer
    /// that has not yet published (a race only while recording is live)
    /// are skipped.
    pub fn events(&self) -> Vec<&TraceEvent> {
        let claimed = self.next.load(Ordering::Acquire).min(self.slots.len());
        self.slots[..claimed]
            .iter()
            .filter_map(OnceLock::get)
            .collect()
    }

    /// Renders the timeline as a Chrome trace-event JSON document.
    ///
    /// Events are sorted by start time (thread, then path, on ties) so
    /// the document's shape is a deterministic function of the recorded
    /// timeline. `metadata` carries the ring accounting:
    /// `recorded_events`, `dropped_events`, and `capacity`.
    pub fn export(&self) -> Json {
        let mut events = self.events();
        events.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(a.thread.cmp(&b.thread))
                .then(a.path.cmp(&b.path))
        });
        let mut rows: Vec<Json> = Vec::with_capacity(events.len());
        // Name the single simulated process and each thread row first —
        // Perfetto shows these as track labels.
        rows.push(meta_event("process_name", 0, "gwc"));
        let mut seen_threads: Vec<u64> = Vec::new();
        for e in &events {
            if !seen_threads.contains(&e.thread) {
                seen_threads.push(e.thread);
            }
        }
        seen_threads.sort_unstable();
        for t in seen_threads {
            let label = if t == 1 {
                "main".to_string()
            } else {
                format!("thread-{t}")
            };
            rows.push(meta_event("thread_name", t, &label));
        }
        for e in events {
            rows.push(Json::Obj(vec![
                ("name".into(), Json::Str(e.path.clone())),
                ("cat".into(), Json::Str("span".into())),
                ("ph".into(), Json::Str("X".into())),
                ("pid".into(), Json::UInt(1)),
                ("tid".into(), Json::UInt(e.thread)),
                ("ts".into(), Json::Num(e.start_ns as f64 / 1e3)),
                ("dur".into(), Json::Num(e.dur_ns as f64 / 1e3)),
            ]));
        }
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(rows)),
            ("displayTimeUnit".into(), Json::Str("ms".into())),
            (
                "metadata".into(),
                Json::Obj(vec![
                    ("tool".into(), Json::Str("gwc-obs".into())),
                    (
                        "recorded_events".into(),
                        Json::UInt(self.events().len() as u64),
                    ),
                    ("dropped_events".into(), Json::UInt(self.dropped())),
                    ("capacity".into(), Json::UInt(self.capacity() as u64)),
                ]),
            ),
        ])
    }
}

fn meta_event(name: &str, tid: u64, value: &str) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(name.into())),
        ("ph".into(), Json::Str("M".into())),
        ("pid".into(), Json::UInt(1)),
        ("tid".into(), Json::UInt(tid)),
        (
            "args".into(),
            Json::Obj(vec![("name".into(), Json::Str(value.into()))]),
        ),
    ])
}

impl Recorder for TraceRecorder {
    fn record_span_event(&self, path: &str, thread: u64, start: Instant, end: Instant) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        if ticket >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let start_ns = start.saturating_duration_since(self.epoch).as_nanos() as u64;
        let dur_ns = end.saturating_duration_since(start).as_nanos() as u64;
        let _ = self.slots[ticket].set(TraceEvent {
            path: path.to_string(),
            thread,
            start_ns,
            dur_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn event(rec: &TraceRecorder, path: &str, thread: u64, at_ns: u64, dur_ns: u64) {
        let start = rec.epoch + std::time::Duration::from_nanos(at_ns);
        let end = start + std::time::Duration::from_nanos(dur_ns);
        rec.record_span_event(path, thread, start, end);
    }

    #[test]
    fn records_span_events_with_relative_timestamps() {
        let rec = TraceRecorder::with_capacity(8);
        event(&rec, "study", 1, 100, 1_000);
        event(&rec, "study/observe", 2, 150, 200);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].path, "study");
        assert_eq!(events[0].start_ns, 100);
        assert_eq!(events[0].dur_ns, 1_000);
        assert_eq!(events[1].thread, 2);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn overflow_drops_and_counts_instead_of_truncating_silently() {
        let rec = TraceRecorder::with_capacity(4);
        for i in 0..10u64 {
            event(&rec, "s", 1, i, 1);
        }
        assert_eq!(rec.events().len(), 4, "earliest events are kept");
        assert_eq!(rec.dropped(), 6);
        let doc = rec.export();
        let meta = doc.get("metadata").unwrap();
        assert_eq!(meta.get("dropped_events").unwrap().as_u64(), Some(6));
        assert_eq!(meta.get("capacity").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn export_is_valid_chrome_trace_json() {
        let rec = TraceRecorder::with_capacity(16);
        event(&rec, "study", 1, 0, 10_000);
        event(&rec, "study/inner", 1, 2_000, 3_000);
        let doc = rec.export();
        let text = doc.render();
        let back = crate::json::parse(&text).expect("export parses");
        let rows = back.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 1 thread_name + 2 spans.
        assert_eq!(rows.len(), 4);
        let span = rows
            .iter()
            .find(|r| r.get("name").unwrap().as_str() == Some("study"))
            .unwrap();
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(0.0));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(10.0));
        // The child interval is contained in the parent's: that is what
        // makes the spans nest per thread in Perfetto.
        let child = rows
            .iter()
            .find(|r| r.get("name").unwrap().as_str() == Some("study/inner"))
            .unwrap();
        let (cts, cdur) = (
            child.get("ts").unwrap().as_f64().unwrap(),
            child.get("dur").unwrap().as_f64().unwrap(),
        );
        assert!(cts >= 0.0 && cts + cdur <= 10.0);
    }

    #[test]
    fn concurrent_writers_never_lose_events_below_capacity() {
        let rec = TraceRecorder::with_capacity(1024);
        thread::scope(|scope| {
            for t in 0..8u64 {
                let rec = &rec;
                scope.spawn(move || {
                    for i in 0..100 {
                        event(rec, "w", t + 1, i, 1);
                    }
                });
            }
        });
        assert_eq!(rec.events().len(), 800);
        assert_eq!(rec.dropped(), 0);
    }
}
