//! Determinism-style counter merge test: totals recorded through the
//! installed recorder are invariant to how many threads produced them.

use std::sync::Arc;
use std::thread;

use gwc_obs::metrics::MetricsRecorder;

/// Splits 8_400 increments of three counters across `threads` threads
/// and returns the aggregated totals.
fn totals_at(threads: usize) -> Vec<(String, u64)> {
    const EVENTS: usize = 8_400; // divisible by 1, 2, 4, 8 and by 3
    let rec = Arc::new(MetricsRecorder::default());
    let guard = gwc_obs::install(rec.clone());
    thread::scope(|scope| {
        for t in 0..threads {
            let per = EVENTS / threads;
            scope.spawn(move || {
                for i in 0..per {
                    let event = t * per + i;
                    match event % 3 {
                        0 => gwc_obs::count("alpha", 1),
                        1 => gwc_obs::count("beta", 2),
                        _ => gwc_obs::count("gamma", event as u64),
                    }
                }
            });
        }
    });
    drop(guard);
    rec.snapshot().counters
}

#[test]
fn counter_totals_are_thread_count_invariant() {
    let serial = totals_at(1);
    let names: Vec<&str> = serial.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, ["alpha", "beta", "gamma"]);
    assert_eq!(serial[0].1, 2_800);
    assert_eq!(serial[1].1, 2 * 2_800);
    for threads in [2usize, 4, 8] {
        assert_eq!(
            totals_at(threads),
            serial,
            "counter totals diverged at {threads} threads"
        );
    }
}

#[test]
fn pool_worker_stats_merge_across_threads() {
    use gwc_obs::recorder::{PoolWorker, Recorder};
    let rec = MetricsRecorder::default();
    thread::scope(|scope| {
        for w in 0..4usize {
            let rec = &rec;
            scope.spawn(move || {
                rec.record_pool_worker(
                    "study",
                    w,
                    &PoolWorker {
                        tasks: (w + 1) as u64,
                        steals: w as u64,
                        busy_ns: 10,
                        wall_ns: 20,
                    },
                );
            });
        }
    });
    let snap = rec.snapshot();
    assert_eq!(snap.pools.len(), 1);
    let (name, workers) = &snap.pools[0];
    assert_eq!(name, "study");
    assert_eq!(workers.len(), 4);
    let tasks: u64 = workers.iter().map(|(_, s)| s.tasks).sum();
    assert_eq!(tasks, 1 + 2 + 3 + 4);
    assert_eq!(workers[3].1.steals, 3);
}
