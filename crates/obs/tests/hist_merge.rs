//! Merge-contract tests for [`gwc_obs::hist::Histogram`], mirroring the
//! counter merge tests: the aggregated histogram a recorder reports is
//! invariant to how many threads produced the samples, and `merge`
//! itself is associative and commutative.

use std::sync::Arc;
use std::thread;

use gwc_obs::hist::Histogram;
use gwc_obs::metrics::MetricsRecorder;

/// Deterministic pseudo-random sample for event `i`: a multiplicative
/// hash spread across many orders of magnitude so every power-of-2
/// bucket band gets traffic.
fn sample(i: u64) -> u64 {
    let h = i.wrapping_mul(2_654_435_761).rotate_left((i % 31) as u32);
    h >> (i % 48)
}

/// Splits 8_400 histogram samples of two series across `threads`
/// threads and returns the aggregated snapshot histograms.
fn hists_at(threads: usize) -> Vec<(String, Histogram)> {
    const EVENTS: usize = 8_400; // divisible by 1, 2, 4, 8
    let rec = Arc::new(MetricsRecorder::default());
    let guard = gwc_obs::install(rec.clone());
    thread::scope(|scope| {
        for t in 0..threads {
            let per = EVENTS / threads;
            scope.spawn(move || {
                for i in 0..per {
                    let event = (t * per + i) as u64;
                    if event.is_multiple_of(2) {
                        gwc_obs::hist("launch.latency_ns", sample(event));
                    } else {
                        gwc_obs::hist("shard.observe_ns", sample(event) | 1);
                    }
                }
            });
        }
    });
    drop(guard);
    rec.snapshot().hists
}

#[test]
fn recorded_histograms_are_thread_count_invariant() {
    let serial = hists_at(1);
    let names: Vec<&str> = serial.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, ["launch.latency_ns", "shard.observe_ns"]);
    assert_eq!(serial[0].1.count() + serial[1].1.count(), 8_400);
    for threads in [2usize, 4, 8] {
        let sharded = hists_at(threads);
        assert_eq!(
            sharded, serial,
            "histogram contents diverged at {threads} threads"
        );
        // Bucket-for-bucket equality, not just summary equality.
        for ((name, a), (_, b)) in serial.iter().zip(sharded.iter()) {
            assert_eq!(a.buckets(), b.buckets(), "{name} buckets at {threads}");
            assert_eq!(a.max(), b.max(), "{name} max at {threads}");
            assert_eq!(a.sum(), b.sum(), "{name} sum at {threads}");
        }
    }
}

#[test]
fn merge_is_commutative() {
    let mut a = Histogram::default();
    let mut b = Histogram::default();
    for i in 0..500u64 {
        a.record(sample(i));
        b.record(sample(i + 10_000) | 1);
    }
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab, ba);
    assert_eq!(ab.count(), 1_000);
}

#[test]
fn merge_is_associative() {
    let mut parts = [
        Histogram::default(),
        Histogram::default(),
        Histogram::default(),
    ];
    for i in 0..900u64 {
        parts[(i % 3) as usize].record(sample(i));
    }
    let [a, b, c] = parts;
    // (a + b) + c
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    // a + (b + c)
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);
    assert_eq!(left, right);
    assert_eq!(left.count(), 900);
}

#[test]
fn merge_of_shards_equals_serial_recording() {
    for shards in [2usize, 4, 8] {
        let mut serial = Histogram::default();
        let mut parts: Vec<Histogram> = vec![Histogram::default(); shards];
        for i in 0..8_400u64 {
            let v = sample(i);
            serial.record(v);
            parts[(i as usize) % shards].record(v);
        }
        let mut merged = Histogram::default();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, serial, "at {shards} shards");
        assert_eq!(merged.quantile(0.99), serial.quantile(0.99));
    }
}
