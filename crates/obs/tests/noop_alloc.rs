//! The disabled-path cost contract: with no recorder installed, the
//! span/counter/gauge/histogram hot paths perform **zero heap
//! allocations**.
//!
//! This file contains exactly one test so no sibling test can allocate
//! concurrently on another thread while the window is being measured.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates verbatim to `System`; only bumps a counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One measurement window: 10_000 passes over every disabled
/// instrumentation site, returning the allocations observed.
fn measure_window() -> usize {
    let classes = [gwc_obs::ExecClass {
        class: "int_alu",
        warp_uops: 1,
        lane_uops: 32,
    }];
    let hotspots = [gwc_obs::ExecHotspot {
        pc: 0,
        class: "int_alu",
        warp_uops: 1,
        lane_uops: 32,
    }];
    let before = ALLOCS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        // Dynamic span names: the format! must not run while disabled.
        let _s = gwc_obs::span!("hot/kernel-{i}");
        gwc_obs::count("simt.warp_instrs", i);
        gwc_obs::count_max("observer.bytes_peak", i);
        gwc_obs::gauge("pool.busy", i as f64);
        gwc_obs::hist("launch.latency_ns", i);
        // Exec-profile reporting borrows stack slices either way.
        gwc_obs::exec_profile("kernel", &classes, &hotspots);
        gwc_obs::exec_profile("kernel", &[], &[]);
        // Progress accounting: one relaxed load and out while disabled.
        gwc_obs::progress::declare(&gwc_obs::progress::BLOCKS, i);
        gwc_obs::progress::tick(&gwc_obs::progress::BLOCKS, 1);
        gwc_obs::progress::set_stage("stage");
        // Folding an empty span stream must not allocate either: the
        // recorder-free pipeline calls this with nothing recorded.
        let tree = gwc_obs::selftime::fold(&[]);
        std::hint::black_box(tree);
    }
    ALLOCS.load(Ordering::SeqCst) - before
}

#[test]
fn disabled_hot_path_never_allocates() {
    assert!(!gwc_obs::enabled(), "no recorder is installed in this test");
    // Warm up any lazy one-time initialization outside the window.
    {
        let _s = gwc_obs::span!("warmup/{}", 0);
        gwc_obs::count("warmup", 1);
        gwc_obs::count_max("warmup", 1);
        gwc_obs::gauge("warmup", 0.0);
        gwc_obs::hist("warmup", 1);
        gwc_obs::progress::declare(&gwc_obs::progress::TASKS, 1);
        gwc_obs::progress::tick(&gwc_obs::progress::TASKS, 1);
        gwc_obs::progress::set_stage("warmup");
    }
    // The counter is process-global, so the libtest harness thread can
    // contribute a stray allocation while a window runs. Take the best
    // of several windows: ambient noise is a rare one-off, while a real
    // hot-path allocation fires >= 10_000 times in *every* window.
    let best = (0..5).map(|_| measure_window()).min().unwrap();
    assert_eq!(best, 0, "disabled instrumentation path allocated");
}
