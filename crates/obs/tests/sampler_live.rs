//! Live-sampler behavior against a real installed recorder: ticks are
//! monotone and reflect progress, and the stall watchdog fires —
//! naming the open span — when progress freezes.
//!
//! These tests install the global recorder; `gwc_obs::install` is
//! exclusive, so they serialize against each other automatically.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gwc_obs::metrics::MetricsRecorder;
use gwc_obs::progress::{self, WORKLOADS};
use gwc_obs::sampler::validate_heartbeat;
use gwc_obs::{Sampler, SamplerConfig};

/// An in-memory heartbeat sink the test can read back after the
/// sampler thread (which owns the `Box<dyn Write>`) is joined.
#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl SharedSink {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("heartbeat is UTF-8")
    }
}

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn sampler_ticks_are_monotone_and_track_progress() {
    let rec = Arc::new(MetricsRecorder::default());
    let guard = gwc_obs::install(rec.clone());
    let sink = SharedSink::default();
    let sampler = Sampler::start(SamplerConfig {
        interval: Duration::from_millis(5),
        stall_after: 0,
        metrics: Some(rec.clone()),
        heartbeat: Some(Box::new(sink.clone())),
        ..SamplerConfig::default()
    });
    progress::declare(&WORKLOADS, 4);
    for _ in 0..4 {
        progress::tick(&WORKLOADS, 1);
        std::thread::sleep(Duration::from_millis(12));
    }
    let series = sampler.stop();
    drop(guard);

    // The validator holds the full monotonicity contract: parseable
    // lines, strictly increasing seq, non-decreasing time and progress.
    let summary = validate_heartbeat(&sink.contents()).expect("heartbeat stream validates");
    assert!(summary.ticks >= 2, "expected >= 2 ticks, got {summary:?}");
    assert_eq!(summary.stalls, 0, "no stall with the watchdog disabled");

    assert_eq!(series.stalls, 0);
    assert_eq!(series.dropped, 0);
    assert!(series.samples.len() >= 2);
    for pair in series.samples.windows(2) {
        assert!(pair[1].seq > pair[0].seq, "seq not strictly increasing");
        assert!(pair[1].t_ms >= pair[0].t_ms, "time went backwards");
    }
    let last = series.samples.last().unwrap();
    assert_eq!(last.progress.workloads.done, 4);
    assert_eq!(last.progress.workloads.total, 4);
    assert_eq!(last.eta_ms, Some(0), "all declared work done");
}

#[test]
fn watchdog_fires_on_frozen_progress_and_names_the_open_span() {
    let rec = Arc::new(MetricsRecorder::default());
    let guard = gwc_obs::install(rec.clone());
    let sink = SharedSink::default();
    let interval = Duration::from_millis(10);
    let sampler = Sampler::start(SamplerConfig {
        interval,
        stall_after: 3,
        metrics: Some(rec.clone()),
        heartbeat: Some(Box::new(sink.clone())),
        stall_stderr: false,
        ..SamplerConfig::default()
    });
    // A span opened after the sampler enabled open-tracking, then a
    // single progress tick followed by silence: the watchdog's target.
    let _outer = gwc_obs::span!("study");
    let _inner = gwc_obs::span!("simulate");
    progress::declare(&WORKLOADS, 2);
    progress::tick(&WORKLOADS, 1);
    // stall_after=3 at a 10ms interval fires by ~40ms; 250ms is lots of
    // slack for a loaded CI box without being a timing assertion.
    std::thread::sleep(Duration::from_millis(250));
    let series = sampler.stop();
    drop(_inner);
    drop(_outer);
    drop(guard);

    let summary = validate_heartbeat(&sink.contents()).expect("heartbeat stream validates");
    assert!(summary.stalls >= 1, "watchdog never fired: {summary:?}");

    assert!(series.stalls >= 1);
    let event = series.stall_events.first().expect("stall event recorded");
    assert!(
        event.open_spans.iter().any(|p| p == "study/simulate"),
        "stall event does not name the open span: {:?}",
        event.open_spans
    );
    assert!(
        event.stalled_ms >= 3 * interval.as_millis() as u64,
        "stall fired before the configured streak: {}ms",
        event.stalled_ms
    );

    // The stall is also an ordinary counter in the metrics snapshot.
    let snap = rec.snapshot();
    let stalls = snap
        .counters
        .iter()
        .find(|(name, _)| name == "telemetry.stalls")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(stalls >= 1, "telemetry.stalls counter not bumped");
}
