//! Runtime-selectable warp execution backends.
//!
//! The device can execute warps through two engines that are required to
//! be bit-identical in every observable way (traces, profiles, memory,
//! stats, errors):
//!
//! * **scalar** — the reference interpreter: one lane at a time through a
//!   `match` over the µop stream. Simple, obviously correct, slow.
//! * **simd** — the production engine: the 32 warp lanes are processed as
//!   four 8-wide lane groups over `[u32; 8]` value vectors the
//!   autovectorizer can lower to real SIMD, with the active mask applied
//!   as a blend mask, plus superinstruction fusion of hot adjacent µop
//!   pairs ([`crate::decode::Fusion`]).
//!
//! Selection is per-[`Device`](crate::exec::Device): [`BackendKind::from_env`]
//! resolves the default at device creation (process override set by
//! [`set_default`], else the `GWC_BACKEND` env var, else SIMD), and
//! [`Device::set_backend`](crate::exec::Device::set_backend) overrides it
//! per device. Forked shard devices inherit their parent's backend, so a
//! sharded launch uses one engine throughout.
//!
//! The scalar engine ignores the fusion table: it is the semantic
//! baseline the differential harness (`tests/backend_diff.rs`) measures
//! the SIMD engine against.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::exec::{LaunchCtx, Warp};
use crate::trace::TraceObserver;
use crate::SimtError;

/// Which warp engine a [`Device`](crate::exec::Device) executes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The one-lane-at-a-time reference interpreter.
    Scalar,
    /// The 8-wide lane-group engine with µop fusion (the default).
    #[default]
    Simd,
}

impl BackendKind {
    /// Both backends, scalar (the reference) first.
    pub const ALL: [BackendKind; 2] = [BackendKind::Scalar, BackendKind::Simd];

    /// Parses a backend name as accepted by `GWC_BACKEND` and the bench
    /// binaries' `--backend` flag (case-insensitive `scalar` / `simd`).
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(BackendKind::Scalar),
            "simd" => Some(BackendKind::Simd),
            _ => None,
        }
    }

    /// Stable lower-case name (`"scalar"` / `"simd"`), used for env/CLI
    /// selection and embedded in bench report metadata.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Simd => "simd",
        }
    }

    /// The observability counter bumped once per launch on this backend.
    pub fn counter_name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "simt.backend.scalar",
            BackendKind::Simd => "simt.backend.simd",
        }
    }

    /// Resolves the process-default backend: a [`set_default`] override
    /// wins, else `GWC_BACKEND`, else [`BackendKind::Simd`]. This is what
    /// [`Device::new`](crate::exec::Device::new) uses.
    ///
    /// # Panics
    ///
    /// Panics if `GWC_BACKEND` is set to something other than `scalar`
    /// or `simd` — a misconfigured run must not silently measure the
    /// wrong engine.
    pub fn from_env() -> BackendKind {
        match OVERRIDE.load(Ordering::Relaxed) {
            1 => return BackendKind::Scalar,
            2 => return BackendKind::Simd,
            _ => {}
        }
        static ENV: OnceLock<BackendKind> = OnceLock::new();
        *ENV.get_or_init(|| match std::env::var("GWC_BACKEND") {
            Ok(v) => BackendKind::parse(&v).unwrap_or_else(|| {
                panic!("GWC_BACKEND={v:?} is not a backend (expected \"scalar\" or \"simd\")")
            }),
            Err(_) => BackendKind::default(),
        })
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Process-wide backend override: 0 = unset, 1 = scalar, 2 = simd.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Overrides the process-default backend for every `Device` created
/// afterwards. This is how the bench binaries implement `--backend`
/// (devices are created deep inside the study pipeline); it takes
/// precedence over `GWC_BACKEND`. Tests comparing backends should use
/// [`Device::set_backend`](crate::exec::Device::set_backend) instead —
/// it is per-device and safe under the parallel test runner.
pub fn set_default(kind: BackendKind) {
    OVERRIDE.store(
        match kind {
            BackendKind::Scalar => 1,
            BackendKind::Simd => 2,
        },
        Ordering::Relaxed,
    );
}

/// Whether newly created devices run the decode-time µop fusion table
/// (SIMD backend only). On unless `GWC_FUSION` is `0`/`off`/`false`.
///
/// # Panics
///
/// Panics on an unrecognized `GWC_FUSION` value.
pub fn fusion_from_env() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("GWC_FUSION") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "1" | "on" | "true" => true,
            "0" | "off" | "false" => false,
            _ => panic!("GWC_FUSION={v:?} is not a switch (expected 0/1/on/off/true/false)"),
        },
        Err(_) => true,
    })
}

/// A warp execution engine.
///
/// The contract is total behavioral equivalence with the scalar
/// reference: for any kernel, launch and observer, an implementation
/// must produce the same observer event stream, the same register /
/// memory effects, the same [`LaunchStats`](crate::trace::LaunchStats)
/// accounting and the same errors (at the same pc, with the same partial
/// state). `run_warp` advances one warp until it exits, empties its
/// reconvergence stack, or parks at a barrier (`warp.at_barrier`).
///
/// The trait is public so backends can be named in bounds, but its
/// operands ([`LaunchCtx`], [`Warp`]) have crate-private fields — new
/// engines live in `gwc-simt` where the differential harness can hold
/// them to the contract.
pub trait ExecBackend {
    /// Stable lower-case engine name.
    const NAME: &'static str;

    /// Runs one warp until exit or barrier. See the trait docs for the
    /// equivalence contract.
    ///
    /// # Errors
    ///
    /// Exactly the scalar reference's errors: out-of-bounds accesses,
    /// divide-by-zero, barrier divergence, instruction-budget overrun.
    fn run_warp<O: TraceObserver + ?Sized>(
        ctx: &mut LaunchCtx<'_>,
        block: u32,
        warp: &mut Warp,
        shared: &mut [u8],
        local: &mut [u8],
        observer: &mut O,
    ) -> Result<(), SimtError>;
}

/// The one-lane-at-a-time reference interpreter.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl ExecBackend for ScalarBackend {
    const NAME: &'static str = "scalar";

    fn run_warp<O: TraceObserver + ?Sized>(
        ctx: &mut LaunchCtx<'_>,
        block: u32,
        warp: &mut Warp,
        shared: &mut [u8],
        local: &mut [u8],
        observer: &mut O,
    ) -> Result<(), SimtError> {
        ctx.run_warp_scalar(block, warp, shared, local, observer)
    }
}

/// The 8-wide lane-group engine with superinstruction fusion.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdBackend;

impl ExecBackend for SimdBackend {
    const NAME: &'static str = "simd";

    fn run_warp<O: TraceObserver + ?Sized>(
        ctx: &mut LaunchCtx<'_>,
        block: u32,
        warp: &mut Warp,
        shared: &mut [u8],
        local: &mut [u8],
        observer: &mut O,
    ) -> Result<(), SimtError> {
        crate::simd::run_warp_simd(ctx, block, warp, shared, local, observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_both_names_case_insensitively() {
        assert_eq!(BackendKind::parse("scalar"), Some(BackendKind::Scalar));
        assert_eq!(BackendKind::parse("SIMD"), Some(BackendKind::Simd));
        assert_eq!(BackendKind::parse("Simd"), Some(BackendKind::Simd));
        assert_eq!(BackendKind::parse("avx512"), None);
        assert_eq!(BackendKind::parse(""), None);
    }

    #[test]
    fn names_round_trip() {
        for k in BackendKind::ALL {
            assert_eq!(BackendKind::parse(k.name()), Some(k));
            assert_eq!(k.to_string(), k.name());
        }
    }

    #[test]
    fn default_is_simd() {
        assert_eq!(BackendKind::default(), BackendKind::Simd);
    }
}
