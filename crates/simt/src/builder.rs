//! An ergonomic DSL for constructing kernels.
//!
//! [`KernelBuilder`] keeps per-register type information, allocates virtual
//! registers on demand, and lowers structured control flow (`if_`,
//! `while_`, `for_range_u32`) to plain conditional branches — exactly the
//! form the SIMT executor diverges and reconverges on. Workloads are
//! written against this builder, never against raw [`Instr`] lists.
//!
//! # Example
//!
//! ```
//! use gwc_simt::builder::KernelBuilder;
//!
//! # fn main() -> Result<(), gwc_simt::SimtError> {
//! let mut b = KernelBuilder::new("saxpy");
//! let alpha = b.param_f32("alpha");
//! let x = b.param_u32("x");
//! let y = b.param_u32("y");
//! let n = b.param_u32("n");
//! let i = b.global_tid_x();
//! let p = b.lt_u32(i, n);
//! b.if_(p, |b| {
//!     let xa = b.index(x, i, 4);
//!     let xv = b.ld_global_f32(xa);
//!     let ya = b.index(y, i, 4);
//!     let yv = b.ld_global_f32(ya);
//!     let r = b.mad_f32(alpha, xv, yv);
//!     b.st_global_f32(ya, r);
//! });
//! let kernel = b.build()?;
//! assert_eq!(kernel.name(), "saxpy");
//! # Ok(())
//! # }
//! ```

use crate::instr::{
    Addr, AtomOp, BinOp, BranchCond, CmpOp, Instr, Operand, Reg, Space, SpecialReg, Type, UnOp,
    Value,
};
use crate::kernel::{Kernel, ParamDecl};
use crate::SimtError;

/// An unresolved branch target allocated by [`KernelBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Builds a [`Kernel`] incrementally. See the [module docs](self) for an
/// example.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instr>,
    reg_types: Vec<Type>,
    params: Vec<ParamDecl>,
    labels: Vec<Option<usize>>,
    /// Instruction indices whose `Bra.target` holds a label id to patch.
    patches: Vec<usize>,
    shared_bytes: u32,
    local_bytes: u32,
}

macro_rules! bin_method {
    ($(#[$doc:meta])* $name:ident, $op:expr, $ty:expr) => {
        $(#[$doc])*
        pub fn $name(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
            let dst = self.reg($ty);
            self.instrs.push(Instr::Bin {
                op: $op,
                dst,
                a: a.into(),
                b: b.into(),
            });
            dst
        }
    };
}

macro_rules! un_method {
    ($(#[$doc:meta])* $name:ident, $op:expr, $ty:expr) => {
        $(#[$doc])*
        pub fn $name(&mut self, a: impl Into<Operand>) -> Reg {
            let dst = self.reg($ty);
            self.instrs.push(Instr::Un {
                op: $op,
                dst,
                a: a.into(),
            });
            dst
        }
    };
}

macro_rules! cmp_method {
    ($(#[$doc:meta])* $name:ident, $op:expr) => {
        $(#[$doc])*
        pub fn $name(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
            let dst = self.reg(Type::Pred);
            self.instrs.push(Instr::Cmp {
                op: $op,
                dst,
                a: a.into(),
                b: b.into(),
            });
            dst
        }
    };
}

macro_rules! ld_method {
    ($(#[$doc:meta])* $name:ident, $space:expr, $ty:expr) => {
        $(#[$doc])*
        pub fn $name(&mut self, addr: Addr) -> Reg {
            let dst = self.reg($ty);
            self.instrs.push(Instr::Ld {
                dst,
                space: $space,
                addr,
            });
            dst
        }
    };
}

macro_rules! st_method {
    ($(#[$doc:meta])* $name:ident, $space:expr) => {
        $(#[$doc])*
        pub fn $name(&mut self, addr: Addr, src: impl Into<Operand>) {
            self.instrs.push(Instr::St {
                space: $space,
                addr,
                src: src.into(),
            });
        }
    };
}

impl KernelBuilder {
    /// Starts a new kernel named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            instrs: Vec::new(),
            reg_types: Vec::new(),
            params: Vec::new(),
            labels: Vec::new(),
            patches: Vec::new(),
            shared_bytes: 0,
            local_bytes: 0,
        }
    }

    /// Allocates a fresh virtual register of type `ty`.
    pub fn reg(&mut self, ty: Type) -> Reg {
        let id = self.reg_types.len();
        assert!(id <= u16::MAX as usize, "register file exhausted");
        self.reg_types.push(ty);
        Reg(id as u16)
    }

    fn param(&mut self, name: &str, ty: Type) -> Operand {
        let idx = self.params.len();
        assert!(idx <= u16::MAX as usize, "parameter list exhausted");
        self.params.push(ParamDecl {
            name: name.to_owned(),
            ty,
        });
        Operand::Param(idx as u16)
    }

    /// Declares a `u32` kernel parameter (pointers are `u32` byte addresses).
    pub fn param_u32(&mut self, name: &str) -> Operand {
        self.param(name, Type::U32)
    }

    /// Declares an `i32` kernel parameter.
    pub fn param_i32(&mut self, name: &str) -> Operand {
        self.param(name, Type::I32)
    }

    /// Declares an `f32` kernel parameter.
    pub fn param_f32(&mut self, name: &str) -> Operand {
        self.param(name, Type::F32)
    }

    /// Reserves `bytes` of per-block shared memory and returns its base
    /// byte address (16-byte aligned) as an immediate operand.
    pub fn alloc_shared(&mut self, bytes: u32) -> Operand {
        let base = (self.shared_bytes + 15) & !15;
        self.shared_bytes = base + bytes;
        Operand::Imm(Value::U32(base))
    }

    /// Reserves `bytes` of per-thread local memory and returns its base
    /// byte address (16-byte aligned) as an immediate operand.
    pub fn alloc_local(&mut self, bytes: u32) -> Operand {
        let base = (self.local_bytes + 15) & !15;
        self.local_bytes = base + bytes;
        Operand::Imm(Value::U32(base))
    }

    // --- special registers --------------------------------------------------

    /// Thread index within the block (x).
    pub fn tid_x(&self) -> Operand {
        Operand::Sreg(SpecialReg::TidX)
    }
    /// Thread index within the block (y).
    pub fn tid_y(&self) -> Operand {
        Operand::Sreg(SpecialReg::TidY)
    }
    /// Block size (x).
    pub fn ntid_x(&self) -> Operand {
        Operand::Sreg(SpecialReg::NTidX)
    }
    /// Block size (y).
    pub fn ntid_y(&self) -> Operand {
        Operand::Sreg(SpecialReg::NTidY)
    }
    /// Block index (x).
    pub fn ctaid_x(&self) -> Operand {
        Operand::Sreg(SpecialReg::CtaIdX)
    }
    /// Block index (y).
    pub fn ctaid_y(&self) -> Operand {
        Operand::Sreg(SpecialReg::CtaIdY)
    }
    /// Grid size in blocks (x).
    pub fn nctaid_x(&self) -> Operand {
        Operand::Sreg(SpecialReg::NCtaIdX)
    }
    /// Grid size in blocks (y).
    pub fn nctaid_y(&self) -> Operand {
        Operand::Sreg(SpecialReg::NCtaIdY)
    }
    /// Lane index within the warp.
    pub fn lane_id(&self) -> Operand {
        Operand::Sreg(SpecialReg::LaneId)
    }

    /// Computes the global thread index in x:
    /// `ctaid.x * ntid.x + tid.x`.
    pub fn global_tid_x(&mut self) -> Reg {
        let dst = self.reg(Type::U32);
        self.instrs.push(Instr::Mad {
            dst,
            a: self.ctaid_x(),
            b: self.ntid_x(),
            c: self.tid_x(),
        });
        dst
    }

    /// Computes the global thread index in y:
    /// `ctaid.y * ntid.y + tid.y`.
    pub fn global_tid_y(&mut self) -> Reg {
        let dst = self.reg(Type::U32);
        self.instrs.push(Instr::Mad {
            dst,
            a: self.ctaid_y(),
            b: self.ntid_y(),
            c: self.tid_y(),
        });
        dst
    }

    // --- arithmetic ---------------------------------------------------------

    bin_method!(
        #[doc = "`u32` wrapping addition."]
        add_u32,
        BinOp::Add,
        Type::U32
    );
    bin_method!(
        #[doc = "`u32` wrapping subtraction."]
        sub_u32,
        BinOp::Sub,
        Type::U32
    );
    bin_method!(
        #[doc = "`u32` wrapping multiplication."]
        mul_u32,
        BinOp::Mul,
        Type::U32
    );
    bin_method!(
        #[doc = "`u32` division (runtime error on zero divisor)."]
        div_u32,
        BinOp::Div,
        Type::U32
    );
    bin_method!(
        #[doc = "`u32` remainder (runtime error on zero divisor)."]
        rem_u32,
        BinOp::Rem,
        Type::U32
    );
    bin_method!(
        #[doc = "`u32` minimum."]
        min_u32,
        BinOp::Min,
        Type::U32
    );
    bin_method!(
        #[doc = "`u32` maximum."]
        max_u32,
        BinOp::Max,
        Type::U32
    );
    bin_method!(
        #[doc = "Bitwise and."]
        and_u32,
        BinOp::And,
        Type::U32
    );
    bin_method!(
        #[doc = "Bitwise or."]
        or_u32,
        BinOp::Or,
        Type::U32
    );
    bin_method!(
        #[doc = "Bitwise xor."]
        xor_u32,
        BinOp::Xor,
        Type::U32
    );
    bin_method!(
        #[doc = "Left shift (count mod 32)."]
        shl_u32,
        BinOp::Shl,
        Type::U32
    );
    bin_method!(
        #[doc = "Logical right shift (count mod 32)."]
        shr_u32,
        BinOp::Shr,
        Type::U32
    );

    bin_method!(
        #[doc = "`i32` wrapping addition."]
        add_i32,
        BinOp::Add,
        Type::I32
    );
    bin_method!(
        #[doc = "`i32` wrapping subtraction."]
        sub_i32,
        BinOp::Sub,
        Type::I32
    );
    bin_method!(
        #[doc = "`i32` wrapping multiplication."]
        mul_i32,
        BinOp::Mul,
        Type::I32
    );
    bin_method!(
        #[doc = "`i32` division (runtime error on zero divisor)."]
        div_i32,
        BinOp::Div,
        Type::I32
    );
    bin_method!(
        #[doc = "`i32` remainder (runtime error on zero divisor)."]
        rem_i32,
        BinOp::Rem,
        Type::I32
    );
    bin_method!(
        #[doc = "`i32` minimum."]
        min_i32,
        BinOp::Min,
        Type::I32
    );
    bin_method!(
        #[doc = "`i32` maximum."]
        max_i32,
        BinOp::Max,
        Type::I32
    );
    bin_method!(
        #[doc = "`i32` arithmetic right shift."]
        shr_i32,
        BinOp::Shr,
        Type::I32
    );

    bin_method!(
        #[doc = "`f32` addition."]
        add_f32,
        BinOp::Add,
        Type::F32
    );
    bin_method!(
        #[doc = "`f32` subtraction."]
        sub_f32,
        BinOp::Sub,
        Type::F32
    );
    bin_method!(
        #[doc = "`f32` multiplication."]
        mul_f32,
        BinOp::Mul,
        Type::F32
    );
    bin_method!(
        #[doc = "`f32` division (IEEE semantics)."]
        div_f32,
        BinOp::Div,
        Type::F32
    );
    bin_method!(
        #[doc = "`f32` minimum."]
        min_f32,
        BinOp::Min,
        Type::F32
    );
    bin_method!(
        #[doc = "`f32` maximum."]
        max_f32,
        BinOp::Max,
        Type::F32
    );

    bin_method!(
        #[doc = "Predicate logical and."]
        and_pred,
        BinOp::And,
        Type::Pred
    );
    bin_method!(
        #[doc = "Predicate logical or."]
        or_pred,
        BinOp::Or,
        Type::Pred
    );

    un_method!(
        #[doc = "`i32` negation."]
        neg_i32,
        UnOp::Neg,
        Type::I32
    );
    un_method!(
        #[doc = "`f32` negation."]
        neg_f32,
        UnOp::Neg,
        Type::F32
    );
    un_method!(
        #[doc = "`i32` absolute value."]
        abs_i32,
        UnOp::Abs,
        Type::I32
    );
    un_method!(
        #[doc = "`f32` absolute value."]
        abs_f32,
        UnOp::Abs,
        Type::F32
    );
    un_method!(
        #[doc = "Bitwise not."]
        not_u32,
        UnOp::Not,
        Type::U32
    );
    un_method!(
        #[doc = "Predicate logical not."]
        not_pred,
        UnOp::Not,
        Type::Pred
    );
    un_method!(
        #[doc = "Square root (SFU)."]
        sqrt_f32,
        UnOp::Sqrt,
        Type::F32
    );
    un_method!(
        #[doc = "Reciprocal square root (SFU)."]
        rsqrt_f32,
        UnOp::Rsqrt,
        Type::F32
    );
    un_method!(
        #[doc = "Base-2 exponential (SFU)."]
        exp2_f32,
        UnOp::Exp2,
        Type::F32
    );
    un_method!(
        #[doc = "Base-2 logarithm (SFU)."]
        log2_f32,
        UnOp::Log2,
        Type::F32
    );
    un_method!(
        #[doc = "Sine (SFU)."]
        sin_f32,
        UnOp::Sin,
        Type::F32
    );
    un_method!(
        #[doc = "Cosine (SFU)."]
        cos_f32,
        UnOp::Cos,
        Type::F32
    );
    un_method!(
        #[doc = "Reciprocal (SFU)."]
        recip_f32,
        UnOp::Recip,
        Type::F32
    );

    /// `u32` fused multiply-add: `a * b + c`.
    pub fn mad_u32(
        &mut self,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> Reg {
        let dst = self.reg(Type::U32);
        self.instrs.push(Instr::Mad {
            dst,
            a: a.into(),
            b: b.into(),
            c: c.into(),
        });
        dst
    }

    /// `f32` fused multiply-add: `a * b + c`.
    pub fn mad_f32(
        &mut self,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> Reg {
        let dst = self.reg(Type::F32);
        self.instrs.push(Instr::Mad {
            dst,
            a: a.into(),
            b: b.into(),
            c: c.into(),
        });
        dst
    }

    // --- comparisons ----------------------------------------------------------

    cmp_method!(
        #[doc = "`a == b` (any numeric type)."]
        eq_u32,
        CmpOp::Eq
    );
    cmp_method!(
        #[doc = "`a != b` (any numeric type)."]
        ne_u32,
        CmpOp::Ne
    );
    cmp_method!(
        #[doc = "`a < b`."]
        lt_u32,
        CmpOp::Lt
    );
    cmp_method!(
        #[doc = "`a <= b`."]
        le_u32,
        CmpOp::Le
    );
    cmp_method!(
        #[doc = "`a > b`."]
        gt_u32,
        CmpOp::Gt
    );
    cmp_method!(
        #[doc = "`a >= b`."]
        ge_u32,
        CmpOp::Ge
    );

    /// `a < b` on `f32` operands (alias of the generic comparison; the
    /// comparison opcode is untyped, the operands decide).
    pub fn lt_f32(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.lt_u32(a, b)
    }
    /// `a > b` on `f32` operands.
    pub fn gt_f32(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.gt_u32(a, b)
    }
    /// `a < b` on `i32` operands.
    pub fn lt_i32(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.lt_u32(a, b)
    }
    /// `a >= b` on `f32` operands.
    pub fn ge_f32(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.ge_u32(a, b)
    }

    // --- moves, selects, conversions -----------------------------------------

    /// Declares a mutable variable of the operand's type, initialized to
    /// `init`. Returns the register, which can be reassigned with
    /// [`KernelBuilder::assign`].
    pub fn var(&mut self, ty: Type, init: impl Into<Operand>) -> Reg {
        let dst = self.reg(ty);
        self.instrs.push(Instr::Mov {
            dst,
            src: init.into(),
        });
        dst
    }

    /// Declares a mutable `u32` variable.
    pub fn var_u32(&mut self, init: impl Into<Operand>) -> Reg {
        self.var(Type::U32, init)
    }

    /// Declares a mutable `i32` variable.
    pub fn var_i32(&mut self, init: impl Into<Operand>) -> Reg {
        self.var(Type::I32, init)
    }

    /// Declares a mutable `f32` variable.
    pub fn var_f32(&mut self, init: impl Into<Operand>) -> Reg {
        self.var(Type::F32, init)
    }

    /// Reassigns an existing register.
    pub fn assign(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.instrs.push(Instr::Mov {
            dst,
            src: src.into(),
        });
    }

    /// `pred ? a : b` producing a `u32`.
    pub fn sel_u32(&mut self, pred: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.sel(Type::U32, pred, a, b)
    }

    /// `pred ? a : b` producing an `i32`.
    pub fn sel_i32(&mut self, pred: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.sel(Type::I32, pred, a, b)
    }

    /// `pred ? a : b` producing an `f32`.
    pub fn sel_f32(&mut self, pred: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.sel(Type::F32, pred, a, b)
    }

    fn sel(&mut self, ty: Type, pred: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg(ty);
        self.instrs.push(Instr::Sel {
            dst,
            pred,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Converts a numeric operand to `f32`.
    pub fn to_f32(&mut self, src: impl Into<Operand>) -> Reg {
        self.cvt(Type::F32, src)
    }

    /// Converts a numeric operand to `u32` (float conversion truncates and
    /// saturates at 0).
    pub fn to_u32(&mut self, src: impl Into<Operand>) -> Reg {
        self.cvt(Type::U32, src)
    }

    /// Converts a numeric operand to `i32` (float conversion truncates).
    pub fn to_i32(&mut self, src: impl Into<Operand>) -> Reg {
        self.cvt(Type::I32, src)
    }

    fn cvt(&mut self, ty: Type, src: impl Into<Operand>) -> Reg {
        let dst = self.reg(ty);
        self.instrs.push(Instr::Cvt {
            dst,
            src: src.into(),
        });
        dst
    }

    // --- memory ---------------------------------------------------------------

    /// Computes a byte address `base + index * scale` (emits one `u32` MAD)
    /// and returns it as an [`Addr`].
    pub fn index(&mut self, base: impl Into<Operand>, idx: impl Into<Operand>, scale: u32) -> Addr {
        let r = self.mad_u32(idx, Value::U32(scale), base);
        Addr::base(r)
    }

    /// An address `base + offset` with no emitted instructions.
    pub fn offset(&self, base: impl Into<Operand>, offset: i32) -> Addr {
        Addr {
            base: base.into(),
            offset,
        }
    }

    ld_method!(
        #[doc = "Load `f32` from global memory."]
        ld_global_f32,
        Space::Global,
        Type::F32
    );
    ld_method!(
        #[doc = "Load `u32` from global memory."]
        ld_global_u32,
        Space::Global,
        Type::U32
    );
    ld_method!(
        #[doc = "Load `i32` from global memory."]
        ld_global_i32,
        Space::Global,
        Type::I32
    );
    ld_method!(
        #[doc = "Load `f32` from shared memory."]
        ld_shared_f32,
        Space::Shared,
        Type::F32
    );
    ld_method!(
        #[doc = "Load `u32` from shared memory."]
        ld_shared_u32,
        Space::Shared,
        Type::U32
    );
    ld_method!(
        #[doc = "Load `i32` from shared memory."]
        ld_shared_i32,
        Space::Shared,
        Type::I32
    );
    ld_method!(
        #[doc = "Load `f32` from per-thread local memory."]
        ld_local_f32,
        Space::Local,
        Type::F32
    );
    ld_method!(
        #[doc = "Load `u32` from per-thread local memory."]
        ld_local_u32,
        Space::Local,
        Type::U32
    );
    ld_method!(
        #[doc = "Load `f32` from constant memory."]
        ld_const_f32,
        Space::Const,
        Type::F32
    );
    ld_method!(
        #[doc = "Load `u32` from constant memory."]
        ld_const_u32,
        Space::Const,
        Type::U32
    );

    st_method!(
        #[doc = "Store to global memory."]
        st_global_f32,
        Space::Global
    );
    st_method!(
        #[doc = "Store to global memory."]
        st_global_u32,
        Space::Global
    );
    st_method!(
        #[doc = "Store to global memory."]
        st_global_i32,
        Space::Global
    );
    st_method!(
        #[doc = "Store to shared memory."]
        st_shared_f32,
        Space::Shared
    );
    st_method!(
        #[doc = "Store to shared memory."]
        st_shared_u32,
        Space::Shared
    );
    st_method!(
        #[doc = "Store to per-thread local memory."]
        st_local_f32,
        Space::Local
    );
    st_method!(
        #[doc = "Store to per-thread local memory."]
        st_local_u32,
        Space::Local
    );

    fn atom(
        &mut self,
        op: AtomOp,
        space: Space,
        ty: Type,
        addr: Addr,
        src: impl Into<Operand>,
        compare: Option<Operand>,
    ) -> Reg {
        let dst = self.reg(ty);
        self.instrs.push(Instr::Atom {
            op,
            dst: Some(dst),
            space,
            addr,
            src: src.into(),
            compare,
        });
        dst
    }

    /// Global `u32` atomic add; returns the previous value.
    pub fn atomic_add_global_u32(&mut self, addr: Addr, src: impl Into<Operand>) -> Reg {
        self.atom(AtomOp::Add, Space::Global, Type::U32, addr, src, None)
    }

    /// Global `f32` atomic add; returns the previous value.
    pub fn atomic_add_global_f32(&mut self, addr: Addr, src: impl Into<Operand>) -> Reg {
        self.atom(AtomOp::Add, Space::Global, Type::F32, addr, src, None)
    }

    /// Shared `u32` atomic add; returns the previous value.
    pub fn atomic_add_shared_u32(&mut self, addr: Addr, src: impl Into<Operand>) -> Reg {
        self.atom(AtomOp::Add, Space::Shared, Type::U32, addr, src, None)
    }

    /// Global `u32` atomic min; returns the previous value.
    pub fn atomic_min_global_u32(&mut self, addr: Addr, src: impl Into<Operand>) -> Reg {
        self.atom(AtomOp::Min, Space::Global, Type::U32, addr, src, None)
    }

    /// Global `u32` atomic max; returns the previous value.
    pub fn atomic_max_global_u32(&mut self, addr: Addr, src: impl Into<Operand>) -> Reg {
        self.atom(AtomOp::Max, Space::Global, Type::U32, addr, src, None)
    }

    /// Global `u32` atomic exchange; returns the previous value.
    pub fn atomic_exch_global_u32(&mut self, addr: Addr, src: impl Into<Operand>) -> Reg {
        self.atom(AtomOp::Exch, Space::Global, Type::U32, addr, src, None)
    }

    /// Global `u32` compare-and-swap; returns the previous value.
    pub fn atomic_cas_global_u32(
        &mut self,
        addr: Addr,
        compare: impl Into<Operand>,
        src: impl Into<Operand>,
    ) -> Reg {
        self.atom(
            AtomOp::Cas,
            Space::Global,
            Type::U32,
            addr,
            src,
            Some(compare.into()),
        )
    }

    // --- control flow -----------------------------------------------------------

    /// Block-wide barrier (`__syncthreads`). Must only execute with the
    /// whole block converged.
    pub fn barrier(&mut self) {
        self.instrs.push(Instr::Bar);
    }

    /// Per-lane kernel exit.
    pub fn ret(&mut self) {
        self.instrs.push(Instr::Ret);
    }

    /// Allocates an unplaced label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Places `label` at the current instruction position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already placed.
    pub fn place(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label placed twice");
        self.labels[label.0] = Some(self.instrs.len());
    }

    /// Unconditional jump to `label`.
    pub fn bra(&mut self, label: Label) {
        self.patches.push(self.instrs.len());
        self.instrs.push(Instr::Bra {
            target: label.0,
            cond: None,
        });
    }

    /// Branch to `label` when `pred` is true (per lane).
    pub fn bra_if(&mut self, pred: Reg, label: Label) {
        self.patches.push(self.instrs.len());
        self.instrs.push(Instr::Bra {
            target: label.0,
            cond: Some(BranchCond {
                reg: pred,
                negate: false,
            }),
        });
    }

    /// Branch to `label` when `pred` is false (per lane).
    pub fn bra_ifnot(&mut self, pred: Reg, label: Label) {
        self.patches.push(self.instrs.len());
        self.instrs.push(Instr::Bra {
            target: label.0,
            cond: Some(BranchCond {
                reg: pred,
                negate: true,
            }),
        });
    }

    /// Structured `if (pred) { body }`.
    pub fn if_(&mut self, pred: Reg, body: impl FnOnce(&mut Self)) {
        let end = self.label();
        self.bra_ifnot(pred, end);
        body(self);
        self.place(end);
    }

    /// Structured `if (!pred) { body }`.
    pub fn if_not(&mut self, pred: Reg, body: impl FnOnce(&mut Self)) {
        let end = self.label();
        self.bra_if(pred, end);
        body(self);
        self.place(end);
    }

    /// Structured `if (pred) { then } else { otherwise }`.
    pub fn if_else(
        &mut self,
        pred: Reg,
        then: impl FnOnce(&mut Self),
        otherwise: impl FnOnce(&mut Self),
    ) {
        let else_l = self.label();
        let end = self.label();
        self.bra_ifnot(pred, else_l);
        then(self);
        self.bra(end);
        self.place(else_l);
        otherwise(self);
        self.place(end);
    }

    /// Structured `while (cond()) { body }`. The condition closure emits
    /// code evaluating the predicate each iteration.
    pub fn while_(&mut self, cond: impl Fn(&mut Self) -> Reg, body: impl FnOnce(&mut Self)) {
        let head = self.label();
        let end = self.label();
        self.place(head);
        let p = cond(self);
        self.bra_ifnot(p, end);
        body(self);
        self.bra(head);
        self.place(end);
    }

    /// Structured counted loop:
    /// `for (u32 i = start; i < end; i += step) { body(i) }`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn for_range_u32(
        &mut self,
        start: impl Into<Operand>,
        end: impl Into<Operand>,
        step: u32,
        body: impl FnOnce(&mut Self, Reg),
    ) {
        assert!(step != 0, "loop step must be non-zero");
        let end_op = end.into();
        let i = self.var_u32(start);
        let head = self.label();
        let out = self.label();
        self.place(head);
        let p = self.lt_u32(i, end_op);
        self.bra_ifnot(p, out);
        body(self, i);
        let next = self.add_u32(i, Value::U32(step));
        self.assign(i, next);
        self.bra(head);
        self.place(out);
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Resolves labels, validates the IR and produces a [`Kernel`].
    ///
    /// # Errors
    ///
    /// * [`SimtError::UndefinedLabel`] if a referenced label was never
    ///   placed.
    /// * Any validation error from [`Kernel::finalize`].
    pub fn build(mut self) -> Result<Kernel, SimtError> {
        for &pc in &self.patches {
            let Instr::Bra { target, .. } = &mut self.instrs[pc] else {
                unreachable!("patch list only holds branches");
            };
            let label_id = *target;
            match self.labels.get(label_id).copied().flatten() {
                Some(resolved) => *target = resolved,
                None => return Err(SimtError::UndefinedLabel { label: label_id }),
            }
        }
        Kernel::finalize(
            self.name,
            self.instrs,
            self.reg_types,
            self.params,
            self.shared_bytes,
            self.local_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_build() {
        let b = KernelBuilder::new("empty");
        let k = b.build().unwrap();
        assert!(k.instrs().is_empty());
        assert_eq!(k.name(), "empty");
    }

    #[test]
    fn unplaced_label_rejected() {
        let mut b = KernelBuilder::new("bad");
        let l = b.label();
        b.bra(l);
        assert!(matches!(
            b.build(),
            Err(SimtError::UndefinedLabel { label: 0 })
        ));
    }

    #[test]
    fn if_lowering_shape() {
        let mut b = KernelBuilder::new("t");
        let p = b.lt_u32(Value::U32(1), Value::U32(2));
        b.if_(p, |b| {
            b.var_u32(Value::U32(7));
        });
        let k = b.build().unwrap();
        // cmp, bra(cond, negated), mov
        assert_eq!(k.instrs().len(), 3);
        match &k.instrs()[1] {
            Instr::Bra { target, cond } => {
                assert_eq!(*target, 3);
                assert!(cond.unwrap().negate);
            }
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn if_else_lowering_targets() {
        let mut b = KernelBuilder::new("t");
        let p = b.lt_u32(Value::U32(1), Value::U32(2));
        b.if_else(
            p,
            |b| {
                b.var_u32(Value::U32(1));
            },
            |b| {
                b.var_u32(Value::U32(2));
            },
        );
        let k = b.build().unwrap();
        // 0 cmp, 1 cbra->4, 2 mov, 3 bra->5, 4 mov
        assert_eq!(k.instrs().len(), 5);
        assert!(matches!(k.instrs()[1], Instr::Bra { target: 4, .. }));
        assert!(
            matches!(
                k.instrs()[3],
                Instr::Bra {
                    target: 5,
                    cond: None
                }
            ),
            "{:?}",
            k.instrs()[3]
        );
        assert_eq!(k.reconvergence_pc(1), Some(5));
    }

    #[test]
    fn while_loop_reconverges_after_loop() {
        let mut b = KernelBuilder::new("t");
        let i = b.var_u32(Value::U32(0));
        b.while_(
            |b| b.lt_u32(i, Value::U32(10)),
            |b| {
                let next = b.add_u32(i, Value::U32(1));
                b.assign(i, next);
            },
        );
        b.var_u32(Value::U32(0)); // after-loop instruction
        let k = b.build().unwrap();
        // Find the conditional branch; reconvergence must be after the
        // unconditional back-edge.
        let (pc, _) = k
            .instrs()
            .iter()
            .enumerate()
            .find(|(_, i)| matches!(i, Instr::Bra { cond: Some(_), .. }))
            .unwrap();
        let rpc = k.reconvergence_pc(pc).unwrap();
        assert!(matches!(k.instrs()[rpc], Instr::Mov { .. }));
        assert_eq!(rpc, k.instrs().len() - 1);
    }

    #[test]
    fn for_range_counts_registers() {
        let mut b = KernelBuilder::new("t");
        b.for_range_u32(Value::U32(0), Value::U32(4), 1, |b, i| {
            b.add_u32(i, Value::U32(5));
        });
        let k = b.build().unwrap();
        assert!(k.reg_count() >= 3, "loop var, pred, body, increment");
    }

    #[test]
    #[should_panic(expected = "step must be non-zero")]
    fn for_range_zero_step_panics() {
        let mut b = KernelBuilder::new("t");
        b.for_range_u32(Value::U32(0), Value::U32(4), 0, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn double_place_panics() {
        let mut b = KernelBuilder::new("t");
        let l = b.label();
        b.place(l);
        b.place(l);
    }

    #[test]
    fn shared_alloc_is_aligned_and_accumulates() {
        let mut b = KernelBuilder::new("t");
        let a = b.alloc_shared(10);
        let c = b.alloc_shared(4);
        assert_eq!(a, Operand::Imm(Value::U32(0)));
        assert_eq!(c, Operand::Imm(Value::U32(16)));
        let k = b.build().unwrap();
        assert_eq!(k.shared_bytes(), 20);
    }

    #[test]
    fn param_types_recorded() {
        let mut b = KernelBuilder::new("t");
        b.param_u32("ptr");
        b.param_f32("alpha");
        b.param_i32("count");
        let k = b.build().unwrap();
        assert_eq!(k.params().len(), 3);
        assert_eq!(k.params()[1].name, "alpha");
        assert_eq!(k.params()[1].ty, Type::F32);
    }

    #[test]
    fn index_emits_mad() {
        let mut b = KernelBuilder::new("t");
        let p = b.param_u32("p");
        let i = b.var_u32(Value::U32(3));
        let addr = b.index(p, i, 4);
        let v = b.ld_global_f32(addr);
        let _ = v;
        let k = b.build().unwrap();
        assert!(k.instrs().iter().any(|i| matches!(i, Instr::Mad { .. })));
    }
}
