//! Control-flow graph and post-dominator analysis.
//!
//! SIMT execution reconverges diverged warps at the *immediate
//! post-dominator* of each branch — the first instruction every diverged
//! path must pass through on its way to the kernel exit. This module builds
//! the CFG over the flat instruction list and computes, for every
//! conditional branch, that reconvergence pc. The executor consumes the
//! resulting table; getting this analysis right is what makes the measured
//! SIMD activity factors meaningful.

use crate::instr::Instr;
use crate::SimtError;

/// A basic block: a maximal straight-line range of instructions
/// `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor block indices (0, 1 or 2 entries; the virtual exit block
    /// is represented by `usize::MAX`).
    pub succs: Vec<usize>,
}

/// Control-flow graph over a kernel's instruction list.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<Block>,
    /// Map from instruction index to its containing block.
    block_of: Vec<usize>,
}

/// Virtual block index representing the kernel exit.
pub const EXIT: usize = usize::MAX;

impl Cfg {
    /// Builds the CFG for an instruction list whose branch targets are
    /// already resolved to instruction indices. A branch target equal to
    /// `instrs.len()` (and falling off the end) goes to the virtual exit.
    pub fn build(instrs: &[Instr]) -> Cfg {
        let n = instrs.len();
        // Leaders: instruction 0, every branch target, every instruction
        // after a branch or ret.
        let mut leader = vec![false; n + 1];
        if n > 0 {
            leader[0] = true;
        }
        for (pc, ins) in instrs.iter().enumerate() {
            match ins {
                Instr::Bra { target, .. } => {
                    leader[*target] = true;
                    if pc < n {
                        leader[pc + 1] = true;
                    }
                }
                Instr::Ret if pc < n => {
                    leader[pc + 1] = true;
                }
                _ => {}
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0;
        for (pc, &is_leader) in leader.iter().enumerate().take(n) {
            if pc > start && is_leader {
                blocks.push(Block {
                    start,
                    end: pc,
                    succs: Vec::new(),
                });
                start = pc;
            }
        }
        if n > 0 {
            blocks.push(Block {
                start,
                end: n,
                succs: Vec::new(),
            });
        }
        for (bi, b) in blocks.iter().enumerate() {
            block_of[b.start..b.end].fill(bi);
        }

        // Successors.
        let block_index_of_pc = |pc: usize| -> usize {
            if pc >= n {
                EXIT
            } else {
                block_of[pc]
            }
        };
        let succs_list: Vec<Vec<usize>> = blocks
            .iter()
            .map(|b| {
                let last = b.end - 1;
                match &instrs[last] {
                    Instr::Bra { target, cond } => {
                        let mut s = vec![block_index_of_pc(*target)];
                        if cond.is_some() {
                            let ft = block_index_of_pc(last + 1);
                            if !s.contains(&ft) {
                                s.push(ft);
                            }
                        }
                        s
                    }
                    Instr::Ret => vec![EXIT],
                    _ => vec![block_index_of_pc(last + 1)],
                }
            })
            .collect();
        for (b, s) in blocks.iter_mut().zip(succs_list) {
            b.succs = s;
        }

        Cfg { blocks, block_of }
    }

    /// The basic blocks, in program order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Index of the block containing instruction `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// Computes the immediate post-dominator of every block, as a block
    /// index (or [`EXIT`]).
    ///
    /// Uses the classic iterative dataflow formulation over the reverse
    /// CFG; the kernel sizes here (tens of blocks) make O(n²) irrelevant.
    ///
    /// # Errors
    ///
    /// Returns [`SimtError::NoPathToExit`] if some block cannot reach the
    /// exit (the kernel would hang and has no defined reconvergence).
    pub fn immediate_postdoms(&self) -> Result<Vec<usize>, SimtError> {
        let nb = self.blocks.len();
        if nb == 0 {
            return Ok(Vec::new());
        }
        // Pre-pass: every block must be able to reach the exit, otherwise
        // the universe-initialized dataflow below would silently converge
        // with stale "postdominated by everything" sets.
        let mut reaches_exit = vec![false; nb];
        let mut changed = true;
        while changed {
            changed = false;
            for bi in 0..nb {
                if reaches_exit[bi] {
                    continue;
                }
                let ok = self.blocks[bi]
                    .succs
                    .iter()
                    .any(|&s| s == EXIT || reaches_exit[s]);
                if ok {
                    reaches_exit[bi] = true;
                    changed = true;
                }
            }
        }
        if let Some(bad) = reaches_exit.iter().position(|&r| !r) {
            return Err(SimtError::NoPathToExit {
                pc: self.blocks[bad].start,
            });
        }
        // postdom sets as bitsets over block ids + exit (index nb).
        let exit_slot = nb;
        let universe: Vec<bool> = vec![true; nb + 1];
        let mut pdom: Vec<Vec<bool>> = vec![universe; nb];
        // Exit's postdom set is {exit}; represented implicitly.
        let slot_of = |b: usize| if b == EXIT { exit_slot } else { b };

        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..nb).rev() {
                // intersection of successors' sets, plus self.
                let mut new = vec![false; nb + 1];
                let mut first = true;
                for &s in &self.blocks[bi].succs {
                    let succ_set: Vec<bool> = if s == EXIT {
                        let mut e = vec![false; nb + 1];
                        e[exit_slot] = true;
                        e
                    } else {
                        pdom[s].clone()
                    };
                    if first {
                        new = succ_set;
                        first = false;
                    } else {
                        for (n, sv) in new.iter_mut().zip(succ_set) {
                            *n = *n && sv;
                        }
                    }
                }
                if first {
                    // No successors — malformed; treated as no path to exit.
                    new = vec![false; nb + 1];
                }
                new[slot_of(bi)] = true;
                if new != pdom[bi] {
                    pdom[bi] = new;
                    changed = true;
                }
            }
        }

        // Immediate postdominator: the strict postdominator that is itself
        // postdominated by all other strict postdominators — i.e. the one
        // with the smallest postdominator set.
        let mut ipdom = vec![EXIT; nb];
        for bi in 0..nb {
            if !pdom[bi][exit_slot] {
                return Err(SimtError::NoPathToExit {
                    pc: self.blocks[bi].start,
                });
            }
            let mut strict: Vec<usize> = (0..nb).filter(|&o| o != bi && pdom[bi][o]).collect();
            if strict.is_empty() {
                ipdom[bi] = EXIT;
                continue;
            }
            // The immediate postdominator is the strict postdominator whose
            // own set contains every other strict postdominator.
            strict.sort_unstable();
            let mut best = None;
            for &cand in &strict {
                let dominates_all = strict.iter().all(|&o| o == cand || pdom[cand][o]);
                if dominates_all {
                    best = Some(cand);
                    break;
                }
            }
            ipdom[bi] = best.unwrap_or(EXIT);
        }
        Ok(ipdom)
    }

    /// For every conditional-branch pc, the reconvergence pc (instruction
    /// index; `instrs_len` means "kernel exit"). Unconditional branches and
    /// non-branches get no entry.
    ///
    /// # Errors
    ///
    /// Propagates [`Cfg::immediate_postdoms`] failures.
    pub fn reconvergence_table(&self, instrs: &[Instr]) -> Result<Vec<Option<usize>>, SimtError> {
        let ipdom = self.immediate_postdoms()?;
        let n = instrs.len();
        let mut table = vec![None; n];
        for (pc, ins) in instrs.iter().enumerate() {
            if let Instr::Bra { cond: Some(_), .. } = ins {
                let b = self.block_of(pc);
                let target_block = ipdom[b];
                table[pc] = Some(if target_block == EXIT {
                    n
                } else {
                    self.blocks[target_block].start
                });
            }
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BranchCond, Instr, Operand, Reg, Value};

    fn mov(dst: u16) -> Instr {
        Instr::Mov {
            dst: Reg(dst),
            src: Operand::Imm(Value::U32(0)),
        }
    }

    fn cbra(target: usize) -> Instr {
        Instr::Bra {
            target,
            cond: Some(BranchCond {
                reg: Reg(0),
                negate: false,
            }),
        }
    }

    fn jmp(target: usize) -> Instr {
        Instr::Bra { target, cond: None }
    }

    /// if/else diamond:
    /// 0: cbra 3      (block A)
    /// 1: mov          (block B, fallthrough)
    /// 2: jmp 4
    /// 3: mov          (block C, taken)
    /// 4: mov          (block D, join)
    fn diamond() -> Vec<Instr> {
        vec![cbra(3), mov(1), jmp(4), mov(2), mov(3)]
    }

    #[test]
    fn diamond_blocks() {
        let instrs = diamond();
        let cfg = Cfg::build(&instrs);
        assert_eq!(cfg.blocks().len(), 4);
        assert_eq!(cfg.block_of(0), 0);
        assert_eq!(cfg.block_of(1), 1);
        assert_eq!(cfg.block_of(2), 1);
        assert_eq!(cfg.block_of(3), 2);
        assert_eq!(cfg.block_of(4), 3);
    }

    #[test]
    fn diamond_reconverges_at_join() {
        let instrs = diamond();
        let cfg = Cfg::build(&instrs);
        let table = cfg.reconvergence_table(&instrs).unwrap();
        assert_eq!(table[0], Some(4), "branch reconverges at the join block");
        assert_eq!(table[1], None);
        assert_eq!(table[2], None);
    }

    /// Guard pattern: if (p) { work }; end
    /// 0: cbra 2   (skip work when taken)
    /// 1: mov      (work)
    /// 2: mov      (end)
    #[test]
    fn guard_reconverges_after_body() {
        let instrs = vec![cbra(2), mov(0), mov(1)];
        let cfg = Cfg::build(&instrs);
        let table = cfg.reconvergence_table(&instrs).unwrap();
        assert_eq!(table[0], Some(2));
    }

    /// Loop:
    /// 0: mov            (init)
    /// 1: mov            (body, loop head)
    /// 2: cbra 1         (back edge while p)
    /// 3: mov            (after loop)
    #[test]
    fn loop_reconverges_after_exit() {
        let instrs = vec![mov(0), mov(1), cbra(1), mov(2)];
        let cfg = Cfg::build(&instrs);
        let table = cfg.reconvergence_table(&instrs).unwrap();
        assert_eq!(table[2], Some(3), "loop branch reconverges after the loop");
    }

    /// Branch whose only join is the kernel exit.
    #[test]
    fn reconvergence_at_exit() {
        // 0: cbra 2 ; 1: ret ; 2: mov (falls off end)
        let instrs = vec![cbra(2), Instr::Ret, mov(0)];
        let cfg = Cfg::build(&instrs);
        let table = cfg.reconvergence_table(&instrs).unwrap();
        assert_eq!(table[0], Some(3), "reconverges at exit pc == len");
    }

    #[test]
    fn infinite_loop_rejected() {
        // 0: jmp 0 — no path to exit.
        let instrs = vec![jmp(0)];
        let cfg = Cfg::build(&instrs);
        assert!(matches!(
            cfg.immediate_postdoms(),
            Err(SimtError::NoPathToExit { pc: 0 })
        ));
    }

    #[test]
    fn straightline_single_block() {
        let instrs = vec![mov(0), mov(1), mov(2)];
        let cfg = Cfg::build(&instrs);
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0].succs, vec![EXIT]);
        let ipdom = cfg.immediate_postdoms().unwrap();
        assert_eq!(ipdom, vec![EXIT]);
    }

    #[test]
    fn nested_diamond_reconverges_innermost_first() {
        // outer: 0 cbra 7 | inner: 1 cbra 4 | 2 mov 3 jmp 5 | 4 mov |
        // 5 mov (inner join) 6 jmp 8 | 7 mov (outer else) | 8 mov (outer join)
        let instrs = vec![
            cbra(7),
            cbra(4),
            mov(0),
            jmp(5),
            mov(1),
            mov(2),
            jmp(8),
            mov(3),
            mov(4),
        ];
        let cfg = Cfg::build(&instrs);
        let table = cfg.reconvergence_table(&instrs).unwrap();
        assert_eq!(table[0], Some(8), "outer reconverges at outer join");
        assert_eq!(table[1], Some(5), "inner reconverges at inner join");
    }
}
