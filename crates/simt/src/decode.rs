//! The predecoded µop stream the interpreter executes.
//!
//! [`Kernel`] IR is built for validation and analysis: operands carry
//! tagged [`Value`] immediates, destination/source register queries walk
//! the instruction enum, and every opcode's operand types are re-derived
//! at run time from the register declarations. None of that belongs in
//! the warp inner loop, so [`DecodedKernel::decode`] lowers the IR once
//! into a flat, cache-friendly form:
//!
//! * operand slots ([`Src`]) with immediates pre-converted to their raw
//!   32-bit image ([`Value::to_bits`]), so register banks, memory and
//!   immediates all speak the same untyped-u32 language;
//! * opcodes monomorphized over their statically validated operand types
//!   ([`BinKind`], [`UnKind`], [`AtomKind`]), eliminating the per-lane
//!   tag dispatch the tagged-union evaluator needed;
//! * per-pc side tables (class, destination, flattened source-register
//!   lists) computed once instead of per launch;
//! * branch reconvergence pcs resolved into the µop itself.
//!
//! The decoded form is cached on the kernel (`Kernel::decoded`) behind an
//! `Arc`, so repeated launches — E12 re-runs a kernel per configuration
//! sweep point — and forked shard devices all share one decode.
//!
//! Everything here is a pure re-encoding: the raw evaluators in this
//! module mirror the tagged [`Value`] semantics bit for bit (predicates
//! only ever hold 0/1 by construction, floats round-trip through
//! `to_bits`/`from_bits` exactly), which is what keeps the golden
//! snapshot and determinism suites byte-identical across the decoded and
//! source representations.

use crate::instr::{
    AtomOp, BinOp, CmpOp, Instr, InstrClass, Operand, Reg, Space, SpecialReg, Type, UnOp,
};
use crate::kernel::Kernel;

/// A decoded operand slot. Immediates are stored as raw bits; parameters
/// stay indirect (they vary per launch, the decode is per kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Virtual register id.
    Reg(u16),
    /// Immediate, pre-converted with [`Value::to_bits`].
    Imm(u32),
    /// Kernel parameter index (resolved against the launch arguments).
    Param(u16),
    /// Special (coordinate) register, computed per lane.
    Sreg(SpecialReg),
}

/// [`BinOp`] monomorphized over its validated operand type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // names are `<op><type>`; the group doc says it all
pub enum BinKind {
    AddU32,
    SubU32,
    MulU32,
    DivU32,
    RemU32,
    MinU32,
    MaxU32,
    AndU32,
    OrU32,
    XorU32,
    ShlU32,
    ShrU32,
    AddI32,
    SubI32,
    MulI32,
    DivI32,
    RemI32,
    MinI32,
    MaxI32,
    AndI32,
    OrI32,
    XorI32,
    ShlI32,
    ShrI32,
    AddF32,
    SubF32,
    MulF32,
    DivF32,
    MinF32,
    MaxF32,
    AndPred,
    OrPred,
    XorPred,
}

impl BinKind {
    fn of(op: BinOp, ty: Type) -> BinKind {
        use BinKind::*;
        match (ty, op) {
            (Type::U32, BinOp::Add) => AddU32,
            (Type::U32, BinOp::Sub) => SubU32,
            (Type::U32, BinOp::Mul) => MulU32,
            (Type::U32, BinOp::Div) => DivU32,
            (Type::U32, BinOp::Rem) => RemU32,
            (Type::U32, BinOp::Min) => MinU32,
            (Type::U32, BinOp::Max) => MaxU32,
            (Type::U32, BinOp::And) => AndU32,
            (Type::U32, BinOp::Or) => OrU32,
            (Type::U32, BinOp::Xor) => XorU32,
            (Type::U32, BinOp::Shl) => ShlU32,
            (Type::U32, BinOp::Shr) => ShrU32,
            (Type::I32, BinOp::Add) => AddI32,
            (Type::I32, BinOp::Sub) => SubI32,
            (Type::I32, BinOp::Mul) => MulI32,
            (Type::I32, BinOp::Div) => DivI32,
            (Type::I32, BinOp::Rem) => RemI32,
            (Type::I32, BinOp::Min) => MinI32,
            (Type::I32, BinOp::Max) => MaxI32,
            (Type::I32, BinOp::And) => AndI32,
            (Type::I32, BinOp::Or) => OrI32,
            (Type::I32, BinOp::Xor) => XorI32,
            (Type::I32, BinOp::Shl) => ShlI32,
            (Type::I32, BinOp::Shr) => ShrI32,
            (Type::F32, BinOp::Add) => AddF32,
            (Type::F32, BinOp::Sub) => SubF32,
            (Type::F32, BinOp::Mul) => MulF32,
            (Type::F32, BinOp::Div) => DivF32,
            (Type::F32, BinOp::Min) => MinF32,
            (Type::F32, BinOp::Max) => MaxF32,
            (Type::Pred, BinOp::And) => AndPred,
            (Type::Pred, BinOp::Or) => OrPred,
            (Type::Pred, BinOp::Xor) => XorPred,
            _ => unreachable!("validated: no {op:?} on {ty}"),
        }
    }

    /// Evaluates on raw bits; `None` only for integer division/remainder
    /// by zero. Bit-identical to the tagged `Value` evaluator.
    #[inline]
    pub fn eval(self, a: u32, b: u32) -> Option<u32> {
        use BinKind::*;
        Some(match self {
            AddU32 => a.wrapping_add(b),
            SubU32 => a.wrapping_sub(b),
            MulU32 => a.wrapping_mul(b),
            DivU32 => a.checked_div(b)?,
            RemU32 => a.checked_rem(b)?,
            MinU32 => a.min(b),
            MaxU32 => a.max(b),
            AndU32 | AndI32 => a & b,
            OrU32 | OrI32 => a | b,
            XorU32 | XorI32 => a ^ b,
            ShlU32 => a.wrapping_shl(b),
            ShrU32 => a.wrapping_shr(b),
            AddI32 => (a as i32).wrapping_add(b as i32) as u32,
            SubI32 => (a as i32).wrapping_sub(b as i32) as u32,
            MulI32 => (a as i32).wrapping_mul(b as i32) as u32,
            DivI32 => (a as i32).checked_div(b as i32)? as u32,
            RemI32 => (a as i32).checked_rem(b as i32)? as u32,
            MinI32 => (a as i32).min(b as i32) as u32,
            MaxI32 => (a as i32).max(b as i32) as u32,
            ShlI32 => (a as i32).wrapping_shl(b) as u32,
            ShrI32 => (a as i32).wrapping_shr(b) as u32,
            AddF32 => (f32::from_bits(a) + f32::from_bits(b)).to_bits(),
            SubF32 => (f32::from_bits(a) - f32::from_bits(b)).to_bits(),
            MulF32 => (f32::from_bits(a) * f32::from_bits(b)).to_bits(),
            DivF32 => (f32::from_bits(a) / f32::from_bits(b)).to_bits(),
            MinF32 => f32::from_bits(a).min(f32::from_bits(b)).to_bits(),
            MaxF32 => f32::from_bits(a).max(f32::from_bits(b)).to_bits(),
            // Predicate registers only ever hold 0/1.
            AndPred => a & b,
            OrPred => a | b,
            XorPred => a ^ b,
        })
    }
}

/// [`UnOp`] monomorphized over its validated operand type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // names are `<op><type>`; the group doc says it all
pub enum UnKind {
    NegI32,
    NegF32,
    AbsI32,
    AbsF32,
    /// Bitwise not; `u32` and `i32` share one raw form.
    NotInt,
    NotPred,
    SqrtF32,
    RsqrtF32,
    Exp2F32,
    Log2F32,
    SinF32,
    CosF32,
    RecipF32,
}

impl UnKind {
    fn of(op: UnOp, ty: Type) -> UnKind {
        use UnKind::*;
        match (op, ty) {
            (UnOp::Neg, Type::I32) => NegI32,
            (UnOp::Neg, Type::F32) => NegF32,
            (UnOp::Abs, Type::I32) => AbsI32,
            (UnOp::Abs, Type::F32) => AbsF32,
            (UnOp::Not, Type::U32 | Type::I32) => NotInt,
            (UnOp::Not, Type::Pred) => NotPred,
            (UnOp::Sqrt, Type::F32) => SqrtF32,
            (UnOp::Rsqrt, Type::F32) => RsqrtF32,
            (UnOp::Exp2, Type::F32) => Exp2F32,
            (UnOp::Log2, Type::F32) => Log2F32,
            (UnOp::Sin, Type::F32) => SinF32,
            (UnOp::Cos, Type::F32) => CosF32,
            (UnOp::Recip, Type::F32) => RecipF32,
            _ => unreachable!("validated: no {op:?} on {ty}"),
        }
    }

    /// Evaluates on raw bits; bit-identical to the tagged evaluator.
    #[inline]
    pub fn eval(self, a: u32) -> u32 {
        use UnKind::*;
        match self {
            NegI32 => (a as i32).wrapping_neg() as u32,
            NegF32 => (-f32::from_bits(a)).to_bits(),
            AbsI32 => (a as i32).wrapping_abs() as u32,
            AbsF32 => f32::from_bits(a).abs().to_bits(),
            NotInt => !a,
            // Predicate registers only ever hold 0/1.
            NotPred => a ^ 1,
            SqrtF32 => f32::from_bits(a).sqrt().to_bits(),
            RsqrtF32 => (1.0 / f32::from_bits(a).sqrt()).to_bits(),
            Exp2F32 => f32::from_bits(a).exp2().to_bits(),
            Log2F32 => f32::from_bits(a).log2().to_bits(),
            SinF32 => f32::from_bits(a).sin().to_bits(),
            CosF32 => f32::from_bits(a).cos().to_bits(),
            RecipF32 => (1.0 / f32::from_bits(a)).to_bits(),
        }
    }
}

/// [`AtomOp`] monomorphized over its validated operand type. `Exch` and
/// `Cas` are type-independent on raw bits (CAS is integer-only by
/// validation, and integer equality is raw equality).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // names are `<op><type>`; the group doc says it all
pub enum AtomKind {
    AddU32,
    AddI32,
    AddF32,
    MinU32,
    MinI32,
    MinF32,
    MaxU32,
    MaxI32,
    MaxF32,
    Exch,
    Cas,
}

impl AtomKind {
    fn of(op: AtomOp, ty: Type) -> AtomKind {
        use AtomKind::*;
        match (op, ty) {
            (AtomOp::Add, Type::U32) => AddU32,
            (AtomOp::Add, Type::I32) => AddI32,
            (AtomOp::Add, Type::F32) => AddF32,
            (AtomOp::Min, Type::U32) => MinU32,
            (AtomOp::Min, Type::I32) => MinI32,
            (AtomOp::Min, Type::F32) => MinF32,
            (AtomOp::Max, Type::U32) => MaxU32,
            (AtomOp::Max, Type::I32) => MaxI32,
            (AtomOp::Max, Type::F32) => MaxF32,
            (AtomOp::Exch, _) => Exch,
            (AtomOp::Cas, _) => Cas,
            _ => unreachable!("validated: no {op:?} on {ty}"),
        }
    }

    /// Computes the new memory value; `None` means "no write" (failed
    /// CAS). Bit-identical to the tagged evaluator.
    #[inline]
    pub fn apply(self, old: u32, operand: u32, compare: Option<u32>) -> Option<u32> {
        use AtomKind::*;
        Some(match self {
            AddU32 => old.wrapping_add(operand),
            AddI32 => (old as i32).wrapping_add(operand as i32) as u32,
            AddF32 => (f32::from_bits(old) + f32::from_bits(operand)).to_bits(),
            MinU32 => old.min(operand),
            MinI32 => (old as i32).min(operand as i32) as u32,
            MinF32 => f32::from_bits(old).min(f32::from_bits(operand)).to_bits(),
            MaxU32 => old.max(operand),
            MaxI32 => (old as i32).max(operand as i32) as u32,
            MaxF32 => f32::from_bits(old).max(f32::from_bits(operand)).to_bits(),
            Exch => operand,
            Cas => {
                if old == compare.expect("validated: CAS has compare") {
                    operand
                } else {
                    return None;
                }
            }
        })
    }
}

/// Compares raw bits under a statically known operand type; bit-identical
/// to the tagged evaluator (including `Ne` being true for NaN).
#[inline]
pub fn eval_cmp(op: CmpOp, ty: Type, a: u32, b: u32) -> bool {
    use std::cmp::Ordering;
    let ord = match ty {
        Type::U32 => a.partial_cmp(&b),
        Type::I32 => (a as i32).partial_cmp(&(b as i32)),
        Type::F32 => f32::from_bits(a).partial_cmp(&f32::from_bits(b)),
        Type::Pred => unreachable!("validated: no predicate comparisons"),
    };
    match (op, ord) {
        (CmpOp::Eq, Some(Ordering::Equal)) => true,
        (CmpOp::Ne, Some(o)) => o != Ordering::Equal,
        (CmpOp::Ne, None) => true, // NaN != NaN
        (CmpOp::Lt, Some(Ordering::Less)) => true,
        (CmpOp::Le, Some(o)) => o != Ordering::Greater,
        (CmpOp::Gt, Some(Ordering::Greater)) => true,
        (CmpOp::Ge, Some(o)) => o != Ordering::Less,
        _ => false,
    }
}

/// Numeric conversion on raw bits under statically known source and
/// destination types; bit-identical to the tagged evaluator.
#[inline]
pub fn convert(bits: u32, from: Type, to: Type) -> u32 {
    let as_f64 = match from {
        Type::U32 => bits as f64,
        Type::I32 => (bits as i32) as f64,
        Type::F32 => f32::from_bits(bits) as f64,
        Type::Pred => unreachable!("validated: no predicate conversions"),
    };
    match to {
        Type::F32 => (as_f64 as f32).to_bits(),
        Type::U32 => as_f64.max(0.0).min(u32::MAX as f64) as u32,
        Type::I32 => (as_f64.clamp(i32::MIN as f64, i32::MAX as f64) as i32) as u32,
        Type::Pred => unreachable!("validated: no predicate conversions"),
    }
}

/// Fused multiply-add on raw bits (`a * b + c`, wrapping for integers,
/// `mul_add` for floats).
#[inline]
pub fn eval_mad(ty: Type, a: u32, b: u32, c: u32) -> u32 {
    match ty {
        Type::U32 => a.wrapping_mul(b).wrapping_add(c),
        Type::I32 => (a as i32).wrapping_mul(b as i32).wrapping_add(c as i32) as u32,
        Type::F32 => f32::from_bits(a)
            .mul_add(f32::from_bits(b), f32::from_bits(c))
            .to_bits(),
        Type::Pred => unreachable!("validated: no predicate mad"),
    }
}

/// One decoded µop. Register ids are the raw `u16` of [`Reg`]; branch
/// targets and reconvergence pcs are instruction indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Uop {
    /// `dst = a <kind> b`.
    Bin {
        /// Typed opcode.
        kind: BinKind,
        /// Destination register id.
        dst: u16,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
    },
    /// `dst = <kind> a`.
    Un {
        /// Typed opcode.
        kind: UnKind,
        /// Destination register id.
        dst: u16,
        /// Operand.
        a: Src,
    },
    /// `dst = a * b + c` at type `ty`.
    Mad {
        /// Common operand/destination type.
        ty: Type,
        /// Destination register id.
        dst: u16,
        /// Multiplicand.
        a: Src,
        /// Multiplier.
        b: Src,
        /// Addend.
        c: Src,
    },
    /// `dst(pred) = a <op> b` at operand type `ty`.
    Cmp {
        /// Comparison opcode.
        op: CmpOp,
        /// Statically validated operand type.
        ty: Type,
        /// Destination predicate register id.
        dst: u16,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
    },
    /// `dst = pred ? a : b`.
    Sel {
        /// Destination register id.
        dst: u16,
        /// Predicate register id.
        pred: u16,
        /// Value when the predicate is true.
        a: Src,
        /// Value when the predicate is false.
        b: Src,
    },
    /// Register move / immediate load.
    Mov {
        /// Destination register id.
        dst: u16,
        /// Source operand.
        src: Src,
    },
    /// Numeric conversion `from → to`.
    Cvt {
        /// Statically validated source type.
        from: Type,
        /// Destination register's declared type.
        to: Type,
        /// Destination register id.
        dst: u16,
        /// Source operand.
        src: Src,
    },
    /// 4-byte load.
    Ld {
        /// Destination register id.
        dst: u16,
        /// Memory space.
        space: Space,
        /// Address base operand.
        base: Src,
        /// Constant byte offset.
        offset: i32,
    },
    /// 4-byte store.
    St {
        /// Memory space.
        space: Space,
        /// Address base operand.
        base: Src,
        /// Constant byte offset.
        offset: i32,
        /// Value to store.
        src: Src,
    },
    /// Atomic read-modify-write.
    Atom {
        /// Typed opcode.
        kind: AtomKind,
        /// Optional destination for the previous value.
        dst: Option<u16>,
        /// Memory space (global or shared, validated).
        space: Space,
        /// Address base operand.
        base: Src,
        /// Constant byte offset.
        offset: i32,
        /// Operand value.
        src: Src,
        /// Compare value (CAS only).
        compare: Option<Src>,
    },
    /// Block-wide barrier.
    Bar,
    /// Unconditional jump.
    Jump {
        /// Destination pc.
        target: u32,
    },
    /// Conditional branch with its reconvergence pc pre-resolved.
    Branch {
        /// Destination pc.
        target: u32,
        /// Predicate register id.
        reg: u16,
        /// Taken when the predicate is false.
        negate: bool,
        /// Immediate post-dominator pc (`instrs().len()` = kernel exit).
        rpc: u32,
    },
    /// Per-lane kernel exit.
    Ret,
}

/// A fusable adjacent µop pair, detected once at decode time.
///
/// Fusion is a pure execution hint: the µop stream is unchanged (both
/// slots keep their original µops, so branches into the second slot
/// still work and trace events still fire once per source pc), but a
/// backend that honors the table may execute the pair as one
/// superinstruction, keeping the intermediate value in registers-of-the
/// -interpreter instead of round-tripping it through the warp register
/// bank between two dispatch steps. The scalar reference ignores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fusion {
    /// A `Cmp` whose predicate feeds the immediately following `Branch`
    /// (and nothing in between): the branch's taken mask is derived
    /// directly from the compare vector.
    CmpBranch,
    /// An integer/float `Mul` whose destination feeds the following
    /// same-typed `Add`: the product vector is reused as the add
    /// operand. (Float fusion here is *not* an FMA — the add still
    /// rounds separately, exactly like the unfused pair.)
    MulAdd,
    /// A `Ld` whose destination feeds the following `Cvt`: the loaded
    /// bits are converted straight out of the load buffer.
    LdCvt,
}

/// A kernel lowered to the flat µop form, plus the per-pc side tables
/// (class / destination / source registers) the trace observers need.
#[derive(Debug)]
pub struct DecodedKernel {
    uops: Vec<Uop>,
    classes: Vec<InstrClass>,
    dsts: Vec<Option<Reg>>,
    /// Flattened source-register lists; `src_ranges[pc]` indexes into it.
    src_pool: Vec<Reg>,
    src_ranges: Vec<(u32, u32)>,
    /// `fused[pc]` marks a superinstruction headed at `pc` (consuming
    /// `pc` and `pc + 1`). Pairs never overlap (greedy left-to-right).
    /// Derived from `uops`, so it is *not* part of the content hash.
    fused: Vec<Option<Fusion>>,
}

impl DecodedKernel {
    /// Lowers a validated kernel. Pure function of the kernel; use
    /// `Kernel::decoded` to get the cached copy instead of re-decoding.
    pub fn decode(kernel: &Kernel) -> DecodedKernel {
        let operand_ty = |op: &Operand| -> Type {
            match op {
                Operand::Reg(r) => kernel.reg_type(*r),
                Operand::Imm(v) => v.ty(),
                Operand::Sreg(_) => Type::U32,
                Operand::Param(i) => kernel.params()[*i as usize].ty,
            }
        };
        let src_of = |op: &Operand| -> Src {
            match op {
                Operand::Reg(r) => Src::Reg(r.0),
                Operand::Imm(v) => Src::Imm(v.to_bits()),
                Operand::Sreg(s) => Src::Sreg(*s),
                Operand::Param(i) => Src::Param(*i),
            }
        };

        let n = kernel.instrs().len();
        let mut uops = Vec::with_capacity(n);
        let mut classes = Vec::with_capacity(n);
        let mut dsts = Vec::with_capacity(n);
        let mut src_pool = Vec::new();
        let mut src_ranges = Vec::with_capacity(n);

        for (pc, ins) in kernel.instrs().iter().enumerate() {
            let dst = ins.dst_reg();
            classes.push(ins.class(dst.map(|r| kernel.reg_type(r))));
            dsts.push(dst);
            let srcs = ins.src_regs();
            src_ranges.push((src_pool.len() as u32, srcs.len() as u32));
            src_pool.extend(srcs);

            uops.push(match ins {
                Instr::Bin { op, dst, a, b } => Uop::Bin {
                    kind: BinKind::of(*op, kernel.reg_type(*dst)),
                    dst: dst.0,
                    a: src_of(a),
                    b: src_of(b),
                },
                Instr::Un { op, dst, a } => Uop::Un {
                    kind: UnKind::of(*op, kernel.reg_type(*dst)),
                    dst: dst.0,
                    a: src_of(a),
                },
                Instr::Mad { dst, a, b, c } => Uop::Mad {
                    ty: kernel.reg_type(*dst),
                    dst: dst.0,
                    a: src_of(a),
                    b: src_of(b),
                    c: src_of(c),
                },
                Instr::Cmp { op, dst, a, b } => Uop::Cmp {
                    op: *op,
                    ty: operand_ty(a),
                    dst: dst.0,
                    a: src_of(a),
                    b: src_of(b),
                },
                Instr::Sel { dst, pred, a, b } => Uop::Sel {
                    dst: dst.0,
                    pred: pred.0,
                    a: src_of(a),
                    b: src_of(b),
                },
                Instr::Mov { dst, src } => Uop::Mov {
                    dst: dst.0,
                    src: src_of(src),
                },
                Instr::Cvt { dst, src } => Uop::Cvt {
                    from: operand_ty(src),
                    to: kernel.reg_type(*dst),
                    dst: dst.0,
                    src: src_of(src),
                },
                Instr::Ld { dst, space, addr } => Uop::Ld {
                    dst: dst.0,
                    space: *space,
                    base: src_of(&addr.base),
                    offset: addr.offset,
                },
                Instr::St { space, addr, src } => Uop::St {
                    space: *space,
                    base: src_of(&addr.base),
                    offset: addr.offset,
                    src: src_of(src),
                },
                Instr::Atom {
                    op,
                    dst,
                    space,
                    addr,
                    src,
                    compare,
                } => Uop::Atom {
                    kind: AtomKind::of(*op, operand_ty(src)),
                    dst: dst.map(|r| r.0),
                    space: *space,
                    base: src_of(&addr.base),
                    offset: addr.offset,
                    src: src_of(src),
                    compare: compare.as_ref().map(src_of),
                },
                Instr::Bar => Uop::Bar,
                Instr::Bra { target, cond } => match cond {
                    None => Uop::Jump {
                        target: *target as u32,
                    },
                    Some(c) => Uop::Branch {
                        target: *target as u32,
                        reg: c.reg.0,
                        negate: c.negate,
                        rpc: kernel
                            .reconvergence_pc(pc)
                            .expect("validated branch has reconvergence")
                            as u32,
                    },
                },
                Instr::Ret => Uop::Ret,
            });
        }

        let fused = detect_fusion(&uops);
        DecodedKernel {
            uops,
            classes,
            dsts,
            src_pool,
            src_ranges,
            fused,
        }
    }

    /// Number of µops (equals the source instruction count).
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the kernel body is empty.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// The flat µop stream.
    pub fn uops(&self) -> &[Uop] {
        &self.uops
    }

    /// Dynamic classification of the instruction at `pc`.
    pub fn class(&self, pc: usize) -> InstrClass {
        self.classes[pc]
    }

    /// Destination register of the instruction at `pc`, if any.
    pub fn dst(&self, pc: usize) -> Option<Reg> {
        self.dsts[pc]
    }

    /// Register operands read by the instruction at `pc`.
    pub fn srcs(&self, pc: usize) -> &[Reg] {
        let (start, len) = self.src_ranges[pc];
        &self.src_pool[start as usize..(start + len) as usize]
    }

    /// The superinstruction headed at `pc`, if the fusion pass marked
    /// one (consuming `pc` and `pc + 1`).
    pub fn fused(&self, pc: usize) -> Option<Fusion> {
        self.fused[pc]
    }

    /// Number of fused pairs detected in this kernel.
    pub fn fusion_count(&self) -> usize {
        self.fused.iter().flatten().count()
    }
}

/// Marks non-overlapping fusable adjacent pairs, greedy left-to-right.
///
/// A pair is only fusable when the first µop's destination feeds the
/// second and execution falls through between them; whether control flow
/// can *enter* at `pc + 1` (branch target or reconvergence there) is a
/// dynamic property the executing backend guards — slot `pc + 1` keeps
/// its original µop precisely so that entry mid-pair stays legal.
fn detect_fusion(uops: &[Uop]) -> Vec<Option<Fusion>> {
    let mut fused = vec![None; uops.len()];
    let mut pc = 0;
    while pc + 1 < uops.len() {
        let f = match (&uops[pc], &uops[pc + 1]) {
            (Uop::Cmp { dst, .. }, Uop::Branch { reg, .. }) if dst == reg => {
                Some(Fusion::CmpBranch)
            }
            (Uop::Bin { kind: k1, dst, .. }, Uop::Bin { kind: k2, a, b, .. })
                if mul_feeds_add(*k1, *k2, *dst, a, b) =>
            {
                Some(Fusion::MulAdd)
            }
            (
                Uop::Ld { dst, .. },
                Uop::Cvt {
                    src: Src::Reg(r), ..
                },
            ) if dst == r => Some(Fusion::LdCvt),
            _ => None,
        };
        if f.is_some() {
            fused[pc] = f;
            pc += 2;
        } else {
            pc += 1;
        }
    }
    fused
}

/// Is `(k1, k2)` a same-typed mul→add pair whose add reads the mul's
/// destination `t`?
fn mul_feeds_add(k1: BinKind, k2: BinKind, t: u16, a: &Src, b: &Src) -> bool {
    let pair = matches!(
        (k1, k2),
        (BinKind::MulU32, BinKind::AddU32)
            | (BinKind::MulI32, BinKind::AddI32)
            | (BinKind::MulF32, BinKind::AddF32)
    );
    pair && (*a == Src::Reg(t) || *b == Src::Reg(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Value;

    fn bits(v: Value) -> u32 {
        v.to_bits()
    }

    #[test]
    fn bin_matches_tagged_semantics() {
        // Integer add wraps, i32 ops sign-extend, f32 round-trips bits.
        assert_eq!(BinKind::AddU32.eval(u32::MAX, 1), Some(0));
        assert_eq!(
            BinKind::ShrI32.eval(bits(Value::I32(-8)), 1),
            Some(bits(Value::I32(-4)))
        );
        assert_eq!(BinKind::ShrU32.eval(0x8000_0000, 1), Some(0x4000_0000));
        assert_eq!(
            BinKind::MinI32.eval(bits(Value::I32(-2)), bits(Value::I32(1))),
            Some(bits(Value::I32(-2)))
        );
        assert_eq!(BinKind::MinU32.eval(bits(Value::I32(-2)), 1), Some(1));
        assert_eq!(
            BinKind::AddF32.eval(bits(Value::F32(1.5)), bits(Value::F32(0.25))),
            Some(bits(Value::F32(1.75)))
        );
        assert_eq!(BinKind::DivU32.eval(7, 0), None);
        assert_eq!(BinKind::RemI32.eval(7, 0), None);
        assert_eq!(
            BinKind::DivF32.eval(bits(Value::F32(1.0)), 0),
            Some(bits(Value::F32(f32::INFINITY)))
        );
        assert_eq!(BinKind::AndPred.eval(1, 0), Some(0));
        assert_eq!(BinKind::XorPred.eval(1, 1), Some(0));
    }

    #[test]
    fn un_matches_tagged_semantics() {
        assert_eq!(
            UnKind::NegI32.eval(bits(Value::I32(5))),
            bits(Value::I32(-5))
        );
        assert_eq!(
            UnKind::NegF32.eval(bits(Value::F32(0.0))),
            bits(Value::F32(-0.0))
        );
        assert_eq!(UnKind::NotInt.eval(0), u32::MAX);
        assert_eq!(UnKind::NotPred.eval(1), 0);
        assert_eq!(UnKind::NotPred.eval(0), 1);
        assert_eq!(
            UnKind::SqrtF32.eval(bits(Value::F32(4.0))),
            bits(Value::F32(2.0))
        );
        assert_eq!(
            UnKind::RecipF32.eval(bits(Value::F32(0.0))),
            bits(Value::F32(f32::INFINITY))
        );
    }

    #[test]
    fn cmp_matches_tagged_semantics() {
        let nan = bits(Value::F32(f32::NAN));
        assert!(eval_cmp(CmpOp::Ne, Type::F32, nan, nan));
        assert!(!eval_cmp(CmpOp::Eq, Type::F32, nan, nan));
        assert!(!eval_cmp(CmpOp::Le, Type::F32, nan, nan));
        assert!(eval_cmp(CmpOp::Lt, Type::I32, bits(Value::I32(-1)), 0));
        assert!(!eval_cmp(CmpOp::Lt, Type::U32, bits(Value::I32(-1)), 0));
        assert!(eval_cmp(CmpOp::Ge, Type::U32, 3, 3));
    }

    #[test]
    fn convert_matches_tagged_semantics() {
        // f32 → u32 clamps at zero; f32 → i32 clamps at the i32 range.
        assert_eq!(convert(bits(Value::F32(-3.5)), Type::F32, Type::U32), 0);
        assert_eq!(
            convert(bits(Value::F32(-3.5)), Type::F32, Type::I32),
            bits(Value::I32(-3))
        );
        assert_eq!(
            convert(bits(Value::F32(1e20)), Type::F32, Type::I32),
            bits(Value::I32(i32::MAX))
        );
        assert_eq!(
            convert(bits(Value::I32(-1)), Type::I32, Type::F32),
            bits(Value::F32(-1.0))
        );
        assert_eq!(
            convert(bits(Value::U32(u32::MAX)), Type::U32, Type::F32),
            bits(Value::F32(u32::MAX as f32))
        );
    }

    #[test]
    fn atomics_match_tagged_semantics() {
        assert_eq!(AtomKind::AddU32.apply(u32::MAX, 2, None), Some(1));
        assert_eq!(
            AtomKind::MinI32.apply(bits(Value::I32(-4)), 3, None),
            Some(bits(Value::I32(-4)))
        );
        assert_eq!(
            AtomKind::MaxF32.apply(bits(Value::F32(1.0)), bits(Value::F32(2.0)), None),
            Some(bits(Value::F32(2.0)))
        );
        assert_eq!(AtomKind::Exch.apply(7, 9, None), Some(9));
        assert_eq!(AtomKind::Cas.apply(7, 9, Some(7)), Some(9));
        assert_eq!(AtomKind::Cas.apply(7, 9, Some(8)), None);
    }

    #[test]
    fn fusion_marks_the_three_hot_pairs() {
        use crate::builder::KernelBuilder;

        // cmp feeding the structured-if branch → CmpBranch at the cmp pc.
        let mut b = KernelBuilder::new("f_cmp_bra");
        let n = b.param_u32("n");
        let i = b.global_tid_x();
        let p = b.lt_u32(i, n);
        b.if_(p, |b| b.ret());
        let k = b.build().unwrap();
        let d = k.decoded();
        let cmp_pc = k
            .instrs()
            .iter()
            .position(|ins| matches!(ins, crate::instr::Instr::Cmp { .. }))
            .unwrap();
        assert_eq!(d.fused(cmp_pc), Some(Fusion::CmpBranch));
        assert_eq!(d.fusion_count(), 1);

        // mul whose product feeds the adjacent same-typed add → MulAdd.
        let mut b = KernelBuilder::new("f_mul_add");
        let x = b.param_u32("x");
        let t = b.mul_u32(x, Value::U32(3));
        let _ = b.add_u32(t, Value::U32(5));
        let k = b.build().unwrap();
        assert_eq!(k.decoded().fused(0), Some(Fusion::MulAdd));

        // load feeding the adjacent convert → LdCvt.
        let mut b = KernelBuilder::new("f_ld_cvt");
        let ptr = b.param_u32("ptr");
        let v = b.ld_global_u32(b.offset(ptr, 0));
        let _ = b.to_f32(v);
        let k = b.build().unwrap();
        assert_eq!(k.decoded().fused(0), Some(Fusion::LdCvt));
    }

    #[test]
    fn fusion_pairs_never_overlap_and_require_dataflow() {
        use crate::builder::KernelBuilder;

        // mul → add → add: the first pair fuses, the second add is on
        // its own (greedy, non-overlapping).
        let mut b = KernelBuilder::new("f_chain");
        let x = b.param_u32("x");
        let t = b.mul_u32(x, Value::U32(3));
        let s = b.add_u32(t, Value::U32(5));
        let _ = b.add_u32(s, Value::U32(7));
        let k = b.build().unwrap();
        let d = k.decoded();
        assert_eq!(d.fused(0), Some(Fusion::MulAdd));
        assert_eq!(d.fused(1), None);
        assert_eq!(d.fused(2), None);
        assert_eq!(d.fusion_count(), 1);

        // Adjacent mul/add without the dataflow edge: no fusion.
        let mut b = KernelBuilder::new("f_no_flow");
        let x = b.param_u32("x");
        let _ = b.mul_u32(x, Value::U32(3));
        let _ = b.add_u32(x, Value::U32(5));
        let k = b.build().unwrap();
        assert_eq!(k.decoded().fusion_count(), 0);

        // The float pair fuses too (still two roundings, not an FMA).
        let mut b = KernelBuilder::new("f_f32_pair");
        let x = b.param_f32("x");
        let t = b.mul_f32(x, Value::F32(2.0));
        let _ = b.add_f32(t, Value::F32(1.0));
        let k = b.build().unwrap();
        assert_eq!(k.decoded().fused(0), Some(Fusion::MulAdd));
    }

    #[test]
    fn mad_matches_tagged_semantics() {
        assert_eq!(eval_mad(Type::U32, 3, 4, 5), 17);
        assert_eq!(
            eval_mad(Type::I32, bits(Value::I32(-3)), 4, 5),
            bits(Value::I32(-7))
        );
        assert_eq!(
            eval_mad(
                Type::F32,
                bits(Value::F32(2.0)),
                bits(Value::F32(3.0)),
                bits(Value::F32(1.0))
            ),
            bits(Value::F32(7.0))
        );
    }
}
