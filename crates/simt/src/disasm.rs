//! Textual disassembly of kernels, for debugging and documentation.
//!
//! The format is PTX-flavoured: one instruction per line with its pc,
//! register operands typed at declaration, and reconvergence points
//! annotated on conditional branches.

use std::fmt::Write as _;

use crate::instr::{Addr, AtomOp, BinOp, CmpOp, Instr, Operand, SpecialReg, UnOp, Value};
use crate::kernel::Kernel;

fn fmt_value(v: &Value) -> String {
    match v {
        Value::I32(x) => format!("{x}i"),
        Value::U32(x) => format!("{x}u"),
        Value::F32(x) => format!("{x}f"),
        Value::Pred(x) => format!("{x}"),
    }
}

fn fmt_sreg(s: &SpecialReg) -> &'static str {
    match s {
        SpecialReg::TidX => "%tid.x",
        SpecialReg::TidY => "%tid.y",
        SpecialReg::NTidX => "%ntid.x",
        SpecialReg::NTidY => "%ntid.y",
        SpecialReg::CtaIdX => "%ctaid.x",
        SpecialReg::CtaIdY => "%ctaid.y",
        SpecialReg::NCtaIdX => "%nctaid.x",
        SpecialReg::NCtaIdY => "%nctaid.y",
        SpecialReg::LaneId => "%laneid",
    }
}

fn fmt_operand(op: &Operand) -> String {
    match op {
        Operand::Reg(r) => format!("r{}", r.0),
        Operand::Imm(v) => fmt_value(v),
        Operand::Sreg(s) => fmt_sreg(s).to_owned(),
        Operand::Param(i) => format!("%p{i}"),
    }
}

fn fmt_addr(a: &Addr) -> String {
    if a.offset == 0 {
        format!("[{}]", fmt_operand(&a.base))
    } else {
        format!("[{}{:+}]", fmt_operand(&a.base), a.offset)
    }
}

fn bin_name(op: &BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::Min => "min",
        BinOp::Max => "max",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
    }
}

fn un_name(op: &UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::Abs => "abs",
        UnOp::Not => "not",
        UnOp::Sqrt => "sqrt",
        UnOp::Rsqrt => "rsqrt",
        UnOp::Exp2 => "exp2",
        UnOp::Log2 => "log2",
        UnOp::Sin => "sin",
        UnOp::Cos => "cos",
        UnOp::Recip => "recip",
    }
}

fn cmp_name(op: &CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn atom_name(op: &AtomOp) -> &'static str {
    match op {
        AtomOp::Add => "atom.add",
        AtomOp::Min => "atom.min",
        AtomOp::Max => "atom.max",
        AtomOp::Exch => "atom.exch",
        AtomOp::Cas => "atom.cas",
    }
}

/// Renders one instruction (without pc or annotations).
pub fn disassemble_instr(ins: &Instr) -> String {
    match ins {
        Instr::Bin { op, dst, a, b } => format!(
            "{} r{}, {}, {}",
            bin_name(op),
            dst.0,
            fmt_operand(a),
            fmt_operand(b)
        ),
        Instr::Un { op, dst, a } => {
            format!("{} r{}, {}", un_name(op), dst.0, fmt_operand(a))
        }
        Instr::Mad { dst, a, b, c } => format!(
            "mad r{}, {}, {}, {}",
            dst.0,
            fmt_operand(a),
            fmt_operand(b),
            fmt_operand(c)
        ),
        Instr::Cmp { op, dst, a, b } => format!(
            "setp.{} r{}, {}, {}",
            cmp_name(op),
            dst.0,
            fmt_operand(a),
            fmt_operand(b)
        ),
        Instr::Sel { dst, pred, a, b } => format!(
            "selp r{}, r{}, {}, {}",
            dst.0,
            pred.0,
            fmt_operand(a),
            fmt_operand(b)
        ),
        Instr::Mov { dst, src } => format!("mov r{}, {}", dst.0, fmt_operand(src)),
        Instr::Cvt { dst, src } => format!("cvt r{}, {}", dst.0, fmt_operand(src)),
        Instr::Ld { dst, space, addr } => {
            format!("ld.{} r{}, {}", space.name(), dst.0, fmt_addr(addr))
        }
        Instr::St { space, addr, src } => {
            format!(
                "st.{} {}, {}",
                space.name(),
                fmt_addr(addr),
                fmt_operand(src)
            )
        }
        Instr::Atom {
            op,
            dst,
            space,
            addr,
            src,
            compare,
        } => {
            let d = dst.map_or_else(String::new, |r| format!("r{}, ", r.0));
            let c = compare.map_or_else(String::new, |c| format!(", {}", fmt_operand(&c)));
            format!(
                "{}.{} {}{}, {}{}",
                atom_name(op),
                space.name(),
                d,
                fmt_addr(addr),
                fmt_operand(src),
                c
            )
        }
        Instr::Bar => "bar.sync".to_owned(),
        Instr::Bra { target, cond } => match cond {
            None => format!("bra {target}"),
            Some(c) => {
                let neg = if c.negate { "!" } else { "" };
                format!("@{neg}r{} bra {target}", c.reg.0)
            }
        },
        Instr::Ret => "ret".to_owned(),
    }
}

/// Renders a whole kernel: header (params, registers, shared/local
/// sizes), then one line per instruction with pc and reconvergence
/// annotations on divergent-capable branches.
pub fn disassemble(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".kernel {} {{", kernel.name());
    for (i, p) in kernel.params().iter().enumerate() {
        let _ = writeln!(out, "  .param %p{i} : {} ; {}", p.ty, p.name);
    }
    let _ = writeln!(
        out,
        "  .regs {} .shared {}B .local {}B",
        kernel.reg_count(),
        kernel.shared_bytes(),
        kernel.local_bytes()
    );
    for (pc, ins) in kernel.instrs().iter().enumerate() {
        let note = kernel
            .reconvergence_pc(pc)
            .map_or_else(String::new, |rpc| format!("  // reconverge @ {rpc}"));
        let _ = writeln!(out, "  {pc:>4}: {}{note}", disassemble_instr(ins));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instr::Value;

    fn sample_kernel() -> Kernel {
        let mut b = KernelBuilder::new("demo");
        let out = b.param_u32("out");
        let i = b.global_tid_x();
        let p = b.lt_u32(i, Value::U32(100));
        b.if_(p, |b| {
            let f = b.to_f32(i);
            let s = b.sqrt_f32(f);
            let oa = b.index(out, i, 4);
            b.st_global_f32(oa, s);
        });
        b.build().expect("valid")
    }

    #[test]
    fn header_lists_params_and_regs() {
        let d = disassemble(&sample_kernel());
        assert!(d.contains(".kernel demo"));
        assert!(d.contains(".param %p0 : u32 ; out"));
        assert!(d.contains(".regs"));
    }

    #[test]
    fn instructions_render_with_pcs() {
        let d = disassemble(&sample_kernel());
        assert!(d.contains("mad r0, %ctaid.x, %ntid.x, %tid.x"), "{d}");
        assert!(d.contains("setp.lt"));
        assert!(d.contains("sqrt"));
        assert!(d.contains("st.global"));
    }

    #[test]
    fn branches_show_reconvergence() {
        let d = disassemble(&sample_kernel());
        assert!(d.contains("reconverge @"), "{d}");
        assert!(d.contains("@!r"), "negated predicate branch: {d}");
    }

    #[test]
    fn every_instruction_form_renders() {
        // Exercise the remaining forms via a synthetic kernel.
        let mut b = KernelBuilder::new("forms");
        let x = b.var_u32(Value::U32(1));
        let y = b.var_u32(Value::U32(2));
        b.min_u32(x, y);
        let p = b.lt_u32(x, y);
        b.sel_u32(p, x, y);
        let a = b.offset(x, 8);
        b.atomic_cas_global_u32(a, Value::U32(0), Value::U32(1));
        b.barrier();
        b.ret();
        let k = b.build().expect("valid");
        let d = disassemble(&k);
        for needle in [
            "min",
            "selp",
            "atom.cas.global",
            "bar.sync",
            "ret",
            "[r0+8]",
        ] {
            assert!(d.contains(needle), "missing `{needle}` in:\n{d}");
        }
    }
}
