use std::error::Error;
use std::fmt;

use crate::instr::Type;

/// Errors from kernel construction, validation or execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimtError {
    /// An instruction references an undefined label.
    UndefinedLabel {
        /// Label id as allocated by the builder.
        label: usize,
    },
    /// Operand or destination type does not match what the opcode needs.
    TypeMismatch {
        /// Instruction index (pc) of the offending instruction.
        pc: usize,
        /// What the instruction required.
        expected: Type,
        /// What it was given.
        found: Type,
    },
    /// A register id is out of range for the kernel.
    BadRegister {
        /// Instruction index (pc).
        pc: usize,
        /// The offending register index.
        reg: usize,
    },
    /// A parameter index is out of range.
    BadParam {
        /// Instruction index (pc), or `usize::MAX` for launch-time checks.
        pc: usize,
        /// The offending parameter index.
        param: usize,
    },
    /// A basic block cannot reach the kernel exit, so no branch
    /// reconvergence point exists for it.
    NoPathToExit {
        /// Start pc of the unreachable-from-exit block.
        pc: usize,
    },
    /// Launch was given the wrong number or types of arguments.
    BadLaunchArgs {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Block size exceeds the 1024-thread limit or is zero.
    BadBlockSize {
        /// The offending thread count per block.
        threads: usize,
    },
    /// Grid dimension is zero.
    BadGridSize,
    /// Out-of-bounds memory access during execution.
    OutOfBounds {
        /// Instruction index (pc).
        pc: usize,
        /// The space that was accessed ("global", "shared", ...).
        space: &'static str,
        /// Byte address that was accessed.
        addr: u64,
        /// Size of that space in bytes.
        size: u64,
    },
    /// Integer division or remainder by zero.
    DivideByZero {
        /// Instruction index (pc).
        pc: usize,
    },
    /// `bar.sync` executed while the warp was diverged, or while other
    /// warps can no longer reach the barrier.
    BarrierDivergence {
        /// Instruction index (pc).
        pc: usize,
    },
    /// The block deadlocked (e.g. inconsistent barrier placement).
    Deadlock {
        /// Block index within the grid.
        block: usize,
    },
    /// Instruction budget exceeded (guards against runaway kernels).
    InstructionBudgetExceeded {
        /// The configured budget.
        budget: u64,
    },
}

impl fmt::Display for SimtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimtError::UndefinedLabel { label } => write!(f, "undefined label l{label}"),
            SimtError::TypeMismatch {
                pc,
                expected,
                found,
            } => {
                write!(
                    f,
                    "type mismatch at pc {pc}: expected {expected}, found {found}"
                )
            }
            SimtError::BadRegister { pc, reg } => {
                write!(f, "register r{reg} out of range at pc {pc}")
            }
            SimtError::BadParam { pc, param } => {
                write!(f, "parameter p{param} out of range at pc {pc}")
            }
            SimtError::NoPathToExit { pc } => {
                write!(f, "block at pc {pc} has no path to kernel exit")
            }
            SimtError::BadLaunchArgs { detail } => write!(f, "bad launch arguments: {detail}"),
            SimtError::BadBlockSize { threads } => {
                write!(f, "block size {threads} outside 1..=1024")
            }
            SimtError::BadGridSize => write!(f, "grid dimensions must be non-zero"),
            SimtError::OutOfBounds {
                pc,
                space,
                addr,
                size,
            } => write!(
                f,
                "out-of-bounds {space} access at pc {pc}: address {addr} in space of {size} bytes"
            ),
            SimtError::DivideByZero { pc } => write!(f, "integer division by zero at pc {pc}"),
            SimtError::BarrierDivergence { pc } => {
                write!(f, "barrier reached in divergent control flow at pc {pc}")
            }
            SimtError::Deadlock { block } => write!(f, "block {block} deadlocked at a barrier"),
            SimtError::InstructionBudgetExceeded { budget } => {
                write!(f, "instruction budget of {budget} exceeded")
            }
        }
    }
}

impl Error for SimtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs: Vec<SimtError> = vec![
            SimtError::UndefinedLabel { label: 3 },
            SimtError::BadGridSize,
            SimtError::Deadlock { block: 2 },
            SimtError::DivideByZero { pc: 9 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimtError>();
    }
}
