//! The device executor: memory, kernel launch, and the SIMT warp engine.
//!
//! Blocks execute sequentially (deterministically); within a block, warps
//! run round-robin between barriers. Each warp executes in lock-step over
//! a reconvergence stack: a divergent branch pushes taken/not-taken
//! entries plus a continuation at the branch's immediate post-dominator,
//! and an entry pops when its pc reaches its reconvergence pc. This is the
//! classic IPDOM scheme GPUs implement in hardware, and it is what makes
//! the measured SIMD activity factors faithful.
//!
//! The engine executes the kernel's predecoded µop stream
//! ([`crate::decode`]) against raw-`u32` register banks: operand types
//! were resolved into the opcodes at decode time, so the lane loops do no
//! tag dispatch. Execution is generic over the observer type, so the
//! null-observer path ([`Device::launch`]) compiles with every observer
//! call inlined away; per-block scratch (shared/local memory, warp
//! states, register banks) is reused across the blocks of a launch.
//!
//! Warp stepping itself is pluggable ([`crate::backend`]): the scalar
//! reference loop lives here ([`LaunchCtx::run_warp_scalar`]), the
//! 8-wide SIMD engine in [`crate::simd`].
//!
//! Block dispatch is plan-driven ([`crate::sched`]): every launch —
//! solo or co-scheduled — executes a [`crate::sched::DispatchPlan`], a
//! deterministic sequence of `(kernel, block_range)` slices. A solo
//! launch ([`Device::run_block_range`]) consumes the trivial
//! single-slice plan; [`Device::launch_pair`] consumes a
//! policy-generated interleaving of two kernels' grids. The plan
//! executor dispatches on the backend once per launch, outside the
//! slice loop, so both engines still monomorphize fully.

use crate::backend::{BackendKind, ExecBackend, ScalarBackend, SimdBackend};
use crate::decode::{self, DecodedKernel, Src, Uop};
use crate::instr::{Space, SpecialReg, Value};
use crate::kernel::Kernel;
use crate::launch::LaunchConfig;
use crate::profile::ExecProfile;
use crate::sched::{BlockScheduler, CoScheduleObserver, DispatchPlan, SchedPolicy};
use crate::trace::{
    AccessKind, BranchEvent, InstrEvent, LaunchStats, MemEvent, NullObserver, TraceObserver,
};
use crate::{SimtError, WARP_SIZE};

use std::sync::Arc;

/// A handle to a buffer allocated in device global or constant memory.
///
/// Pass it to kernels via [`BufferHandle::arg`] (the base byte address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferHandle {
    addr: u32,
    len_bytes: u32,
}

impl BufferHandle {
    /// Base byte address of the buffer.
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// Length in bytes.
    pub fn len_bytes(&self) -> u32 {
        self.len_bytes
    }

    /// The buffer's base address as a kernel argument value.
    pub fn arg(&self) -> Value {
        Value::U32(self.addr)
    }

    /// Base address of the element at `index` assuming 4-byte elements.
    pub fn elem(&self, index: u32) -> Value {
        Value::U32(self.addr + index * 4)
    }
}

/// Execution limits for a [`Device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceLimits {
    /// Maximum warp-level instructions per launch before aborting.
    pub instr_budget: u64,
}

impl Default for DeviceLimits {
    fn default() -> Self {
        Self {
            instr_budget: 400_000_000,
        }
    }
}

/// A simulated GPU device: global + constant memory and a kernel launcher.
///
/// See the [crate docs](crate) for a complete example.
#[derive(Debug)]
pub struct Device {
    global: Vec<u8>,
    const_mem: Vec<u8>,
    limits: DeviceLimits,
    backend: BackendKind,
    fusion: bool,
    /// `Some(_)` forces execution-cost profiling on/off; `None` profiles
    /// exactly when a recorder is installed.
    exec_profiling: Option<bool>,
    /// Exec profile of the most recent launch / block range, if one was
    /// collected. Taken by [`Device::take_exec_profile`].
    last_exec: Option<ExecProfile>,
}

impl Default for Device {
    fn default() -> Self {
        Self::new()
    }
}

const ALLOC_ALIGN: usize = 256;

impl Device {
    /// Creates a device with empty memories, default limits, and the
    /// process-default execution backend
    /// ([`BackendKind::from_env`]: `--backend` override → `GWC_BACKEND`
    /// → SIMD).
    pub fn new() -> Self {
        Self::with_backend(BackendKind::from_env())
    }

    /// Creates a device pinned to a specific execution backend
    /// (ignoring the process default). Fusion still follows
    /// `GWC_FUSION`.
    pub fn with_backend(backend: BackendKind) -> Self {
        Self {
            global: Vec::new(),
            const_mem: Vec::new(),
            limits: DeviceLimits::default(),
            backend,
            fusion: crate::backend::fusion_from_env(),
            exec_profiling: None,
            last_exec: None,
        }
    }

    /// Overrides execution limits (e.g. the instruction budget).
    pub fn set_limits(&mut self, limits: DeviceLimits) {
        self.limits = limits;
    }

    /// Selects the warp execution backend for subsequent launches.
    pub fn set_backend(&mut self, backend: BackendKind) {
        self.backend = backend;
    }

    /// The warp execution backend this device launches with.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Enables/disables superinstruction fusion (SIMD backend only; the
    /// scalar reference always executes the unfused stream).
    pub fn set_fusion(&mut self, fusion: bool) {
        self.fusion = fusion;
    }

    /// Whether the SIMD backend executes the decode-time fusion table.
    pub fn fusion_enabled(&self) -> bool {
        self.fusion
    }

    /// Overrides execution-cost profiling for subsequent launches:
    /// `Some(true)` always collects an [`ExecProfile`], `Some(false)`
    /// never does, and `None` (the default) collects exactly when an
    /// observability recorder is installed. The override lets tests
    /// compare profiles across backends without a process-global
    /// recorder.
    pub fn set_exec_profiling(&mut self, enable: Option<bool>) {
        self.exec_profiling = enable;
    }

    /// Takes the execution-cost profile of the most recent launch or
    /// block range, if one was collected (see
    /// [`Device::set_exec_profiling`]).
    pub fn take_exec_profile(&mut self) -> Option<ExecProfile> {
        self.last_exec.take()
    }

    /// Stores `profile` as the most recent launch's execution profile.
    /// The sharded runtime merges per-shard profiles outside the device
    /// and deposits the result here, so [`Device::take_exec_profile`]
    /// behaves identically after serial and sharded launches.
    pub fn store_exec_profile(&mut self, profile: Option<ExecProfile>) {
        self.last_exec = profile;
    }

    fn exec_profiling_active(&self) -> bool {
        self.exec_profiling.unwrap_or_else(gwc_obs::enabled)
    }

    /// Allocates `len` zeroed bytes of global memory (256-byte aligned).
    pub fn alloc_bytes(&mut self, len: usize) -> BufferHandle {
        let base = self.global.len().div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        self.global.resize(base + len, 0);
        BufferHandle {
            addr: base as u32,
            len_bytes: len as u32,
        }
    }

    /// Allocates and initializes an `f32` buffer in global memory.
    pub fn alloc_f32(&mut self, data: &[f32]) -> BufferHandle {
        let h = self.alloc_bytes(data.len() * 4);
        self.write_f32(&h, data);
        h
    }

    /// Allocates and initializes a `u32` buffer in global memory.
    pub fn alloc_u32(&mut self, data: &[u32]) -> BufferHandle {
        let h = self.alloc_bytes(data.len() * 4);
        self.write_u32(&h, data);
        h
    }

    /// Allocates and initializes an `i32` buffer in global memory.
    pub fn alloc_i32(&mut self, data: &[i32]) -> BufferHandle {
        let h = self.alloc_bytes(data.len() * 4);
        self.write_i32(&h, data);
        h
    }

    /// Allocates a zeroed `f32` buffer of `n` elements.
    pub fn alloc_zeroed_f32(&mut self, n: usize) -> BufferHandle {
        self.alloc_bytes(n * 4)
    }

    /// Allocates a zeroed `u32` buffer of `n` elements.
    pub fn alloc_zeroed_u32(&mut self, n: usize) -> BufferHandle {
        self.alloc_bytes(n * 4)
    }

    /// Allocates and initializes an `f32` buffer in constant memory.
    pub fn alloc_const_f32(&mut self, data: &[f32]) -> BufferHandle {
        let base = self.const_mem.len().div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        self.const_mem.resize(base + data.len() * 4, 0);
        for (i, v) in data.iter().enumerate() {
            self.const_mem[base + i * 4..base + i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        BufferHandle {
            addr: base as u32,
            len_bytes: (data.len() * 4) as u32,
        }
    }

    /// Copies host data into a global buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the buffer length.
    pub fn write_f32(&mut self, h: &BufferHandle, data: &[f32]) {
        assert!(data.len() * 4 <= h.len_bytes as usize, "write too large");
        for (i, v) in data.iter().enumerate() {
            let at = h.addr as usize + i * 4;
            self.global[at..at + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Copies host data into a global buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the buffer length.
    pub fn write_u32(&mut self, h: &BufferHandle, data: &[u32]) {
        assert!(data.len() * 4 <= h.len_bytes as usize, "write too large");
        for (i, v) in data.iter().enumerate() {
            let at = h.addr as usize + i * 4;
            self.global[at..at + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Copies host data into a global buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the buffer length.
    pub fn write_i32(&mut self, h: &BufferHandle, data: &[i32]) {
        assert!(data.len() * 4 <= h.len_bytes as usize, "write too large");
        for (i, v) in data.iter().enumerate() {
            let at = h.addr as usize + i * 4;
            self.global[at..at + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Reads a whole `f32` buffer back to the host.
    pub fn read_f32(&self, h: &BufferHandle) -> Vec<f32> {
        (0..h.len_bytes as usize / 4)
            .map(|i| {
                let at = h.addr as usize + i * 4;
                f32::from_le_bytes(self.global[at..at + 4].try_into().expect("4 bytes"))
            })
            .collect()
    }

    /// Reads a whole `u32` buffer back to the host.
    pub fn read_u32(&self, h: &BufferHandle) -> Vec<u32> {
        (0..h.len_bytes as usize / 4)
            .map(|i| {
                let at = h.addr as usize + i * 4;
                u32::from_le_bytes(self.global[at..at + 4].try_into().expect("4 bytes"))
            })
            .collect()
    }

    /// Reads a whole `i32` buffer back to the host.
    pub fn read_i32(&self, h: &BufferHandle) -> Vec<i32> {
        (0..h.len_bytes as usize / 4)
            .map(|i| {
                let at = h.addr as usize + i * 4;
                i32::from_le_bytes(self.global[at..at + 4].try_into().expect("4 bytes"))
            })
            .collect()
    }

    /// Launches a kernel without tracing.
    ///
    /// # Errors
    ///
    /// See [`Device::launch_observed`].
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        config: &LaunchConfig,
        args: &[Value],
    ) -> Result<LaunchStats, SimtError> {
        self.launch_observed(kernel, config, args, &mut NullObserver)
    }

    /// Launches a kernel, streaming events to `observer`.
    ///
    /// Generic over the observer so concrete observers (including
    /// [`NullObserver`]) monomorphize the whole warp engine; pass
    /// `&mut dyn TraceObserver` to keep a single dynamic instantiation at
    /// an API boundary.
    ///
    /// # Errors
    ///
    /// * [`SimtError::BadLaunchArgs`] / geometry errors before execution.
    /// * Memory, divide-by-zero, barrier and deadlock errors during
    ///   execution, each tagged with the offending pc or block.
    pub fn launch_observed<O: TraceObserver + ?Sized>(
        &mut self,
        kernel: &Kernel,
        config: &LaunchConfig,
        args: &[Value],
        observer: &mut O,
    ) -> Result<LaunchStats, SimtError> {
        config.validate()?;
        kernel.check_args(args)?;
        observer.on_launch(kernel, config);
        // One relaxed load + branch when no recorder is installed.
        gwc_obs::count(self.backend.counter_name(), 1);
        let t0 = gwc_obs::enabled().then(std::time::Instant::now);
        let span = gwc_obs::span!("launch/{}", kernel.name());
        let stats =
            self.run_block_range(kernel, config, args, 0, config.blocks() as u32, observer)?;
        drop(span);
        let wall_ns = t0.map(|t0| t0.elapsed().as_nanos() as u64);
        if let Some(ns) = wall_ns {
            gwc_obs::hist("launch.latency_ns", ns);
        }
        observer.on_launch_end(&stats);
        gwc_obs::progress::tick(&gwc_obs::progress::LAUNCHES, 1);
        crate::trace::record_launch(kernel.name(), &stats, wall_ns.unwrap_or(0));
        if gwc_obs::enabled() {
            if let Some(profile) = &self.last_exec {
                crate::trace::record_exec_profile(kernel, profile);
            }
        }
        Ok(stats)
    }

    /// Executes blocks `[first, last)` of a launch, streaming events to
    /// `observer`. This is the block-sharding primitive of the parallel
    /// characterization runtime: [`Device::fork`]ed devices each run a
    /// disjoint block range of one launch, and the shard observers are
    /// merged back in ascending block order.
    ///
    /// Unlike [`Device::launch_observed`] this emits no
    /// `on_launch`/`on_launch_end` events — the caller owns the launch
    /// boundary — and the returned stats count only the executed range
    /// (`stats.blocks == last - first`). The instruction budget applies
    /// to the range, i.e. per shard when sharded.
    ///
    /// Sharded use is only valid for kernels meeting the block-sharding
    /// contract ([`Kernel::is_block_shardable`]); otherwise run the whole
    /// launch serially.
    ///
    /// # Errors
    ///
    /// Same as [`Device::launch_observed`].
    ///
    /// # Panics
    ///
    /// Panics if `first > last` or `last` exceeds the grid's block count.
    pub fn run_block_range<O: TraceObserver + ?Sized>(
        &mut self,
        kernel: &Kernel,
        config: &LaunchConfig,
        args: &[Value],
        first: u32,
        last: u32,
        observer: &mut O,
    ) -> Result<LaunchStats, SimtError> {
        config.validate()?;
        kernel.check_args(args)?;
        assert!(
            first <= last && last as usize <= config.blocks(),
            "block range {first}..{last} out of grid bounds"
        );

        // Solo launches and shards are the trivial plan: one slice of
        // kernel 0. The plan executor re-bases slice ranges at 0, so a
        // shard's range is expressed directly.
        let plan = DispatchPlan::single(first..last);
        let mut member = PlanMember::new(kernel, config, args, self.exec_profiling_active());
        self.run_plan(
            std::slice::from_mut(&mut member),
            &plan,
            observer,
            |_, _, _| {},
        )?;
        // Always overwrite: a stale profile from an earlier launch must
        // not outlive the launch it measured.
        self.last_exec = member.exec;
        Ok(member.stats)
    }

    /// Co-schedules two kernels on this device: their block dispatch is
    /// interleaved according to `policy`'s [`DispatchPlan`], so both
    /// kernels' memory traffic shares one timeline (the substrate the
    /// pairwise-interference characterization measures).
    ///
    /// Each kernel still executes its own blocks in ascending order with
    /// its own statistics, budget, and (via
    /// [`CoScheduleObserver::on_slice`] routing) its own observations —
    /// per-kernel results are bit-identical to solo launches of the same
    /// kernels on the same memory image. The plan is a pure function of
    /// `(policy, grid geometry)`, so a pair launch is as deterministic
    /// as a solo one, on either backend.
    ///
    /// Execution-cost profiling is not collected on the pair path (an
    /// [`ExecProfile`] is per-µop-stream and the members have different
    /// streams); any previously collected profile is cleared.
    ///
    /// # Errors
    ///
    /// Same as [`Device::launch_observed`], for either member; member 0
    /// is validated first.
    pub fn launch_pair<O: CoScheduleObserver + ?Sized>(
        &mut self,
        a: PairLaunch<'_>,
        b: PairLaunch<'_>,
        policy: SchedPolicy,
        observer: &mut O,
    ) -> Result<[LaunchStats; 2], SimtError> {
        for m in [&a, &b] {
            m.config.validate()?;
            m.kernel.check_args(m.args)?;
        }
        let grids = [a.config.blocks() as u32, b.config.blocks() as u32];
        let plan = policy.plan(&grids);
        debug_assert!(
            plan.validate(&grids).is_ok(),
            "policy produced invalid plan"
        );

        observer.on_member_launch(0, a.kernel, a.config);
        observer.on_member_launch(1, b.kernel, b.config);
        // Two kernels launch through the backend, counted like two solo
        // launches plus the pair-level rollups.
        gwc_obs::count(self.backend.counter_name(), 2);
        gwc_obs::count("pair.launches", 1);
        gwc_obs::count(&format!("pair.policy.{}", policy.name()), 1);
        gwc_obs::count("pair.slices", plan.slices().len() as u64);
        let t0 = gwc_obs::enabled().then(std::time::Instant::now);
        let span = gwc_obs::span!("launch_pair/{}+{}", a.kernel.name(), b.kernel.name());
        let mut members = [
            PlanMember::new(a.kernel, a.config, a.args, false),
            PlanMember::new(b.kernel, b.config, b.args, false),
        ];
        self.run_plan(&mut members, &plan, observer, |obs, kernel, blocks| {
            obs.on_slice(kernel, blocks)
        })?;
        drop(span);
        let wall_ns = t0.map(|t0| t0.elapsed().as_nanos() as u64);
        if let Some(ns) = wall_ns {
            gwc_obs::hist("pair.latency_ns", ns);
        }
        let [ma, mb] = members;
        observer.on_member_launch_end(0, &ma.stats);
        observer.on_member_launch_end(1, &mb.stats);
        gwc_obs::progress::tick(&gwc_obs::progress::LAUNCHES, 2);
        // Each member is recorded with the co-run wall: that is the wall
        // the kernel experienced while co-resident.
        crate::trace::record_launch(a.kernel.name(), &ma.stats, wall_ns.unwrap_or(0));
        crate::trace::record_launch(b.kernel.name(), &mb.stats, wall_ns.unwrap_or(0));
        self.last_exec = None;
        Ok([ma.stats, mb.stats])
    }

    /// Executes a [`DispatchPlan`] over `members`: dispatches on the
    /// backend once (outside the slice loop, so each engine's block/warp
    /// loop monomorphizes fully), then runs every slice's block range
    /// against its member's launch context. `on_slice` fires before each
    /// slice so co-schedule observers can route events per member.
    fn run_plan<O: TraceObserver + ?Sized>(
        &mut self,
        members: &mut [PlanMember<'_>],
        plan: &DispatchPlan,
        observer: &mut O,
        mut on_slice: impl FnMut(&mut O, usize, &std::ops::Range<u32>),
    ) -> Result<(), SimtError> {
        for (k, m) in members.iter_mut().enumerate() {
            m.stats.blocks = plan.blocks_of(k);
        }
        // Block progress is declared per plan, so shard declares sum to
        // the launch's grid and a pair declares both grids.
        gwc_obs::progress::declare(&gwc_obs::progress::BLOCKS, plan.total_blocks());
        match self.backend {
            BackendKind::Scalar => {
                self.run_plan_backend::<ScalarBackend, O>(members, plan, observer, &mut on_slice)
            }
            BackendKind::Simd => {
                self.run_plan_backend::<SimdBackend, O>(members, plan, observer, &mut on_slice)
            }
        }
    }

    fn run_plan_backend<B: ExecBackend, O: TraceObserver + ?Sized>(
        &mut self,
        members: &mut [PlanMember<'_>],
        plan: &DispatchPlan,
        observer: &mut O,
        on_slice: &mut impl FnMut(&mut O, usize, &std::ops::Range<u32>),
    ) -> Result<(), SimtError> {
        for slice in plan.slices() {
            on_slice(observer, slice.kernel, &slice.blocks);
            let m = &mut members[slice.kernel];
            // The launch context borrows device memory, so it is rebuilt
            // per slice; everything kernel-specific (µop stream, params,
            // stats, scratch) persists in the member across slices, so a
            // member's execution is identical to running its slices
            // back-to-back — which is exactly the solo launch.
            let mut ctx = LaunchCtx {
                dec: &m.dec,
                kernel: m.kernel,
                config: m.config,
                params: &m.params,
                global: &mut self.global,
                const_mem: &self.const_mem,
                budget: self.limits.instr_budget,
                fusion: self.fusion,
                stats: &mut m.stats,
                exec: m.exec.as_mut(),
            };
            for block in slice.blocks.clone() {
                ctx.run_block::<B, O>(block, &mut m.scratch, observer)?;
                gwc_obs::progress::tick(&gwc_obs::progress::BLOCKS, 1);
            }
        }
        Ok(())
    }

    /// Clones the device — global and constant memory plus limits,
    /// backend and fusion setting — so a shard can execute a block range
    /// against its own copy of global memory while other shards run
    /// concurrently. A sharded launch therefore uses one engine
    /// throughout.
    pub fn fork(&self) -> Device {
        Device {
            global: self.global.clone(),
            const_mem: self.const_mem.clone(),
            limits: self.limits,
            backend: self.backend,
            fusion: self.fusion,
            exec_profiling: self.exec_profiling,
            last_exec: None,
        }
    }

    /// The current global-memory image (e.g. to snapshot before forking).
    pub fn global_image(&self) -> &[u8] {
        &self.global
    }

    /// Copies every byte where `shard`'s global memory differs from
    /// `base` (the pre-launch snapshot all forks started from) into this
    /// device. Applying shards in ascending block order reproduces the
    /// serial memory image for kernels meeting the block-sharding
    /// contract.
    ///
    /// # Panics
    ///
    /// Panics if the three memory images have different lengths (the
    /// shard must have been forked from this device after `base` was
    /// snapshotted, and kernels cannot allocate).
    pub fn absorb_writes(&mut self, base: &[u8], shard: &Device) {
        assert_eq!(self.global.len(), shard.global.len());
        assert_eq!(self.global.len(), base.len());
        // Chunked comparison: slice equality is a fast memcmp, and almost
        // all chunks are untouched.
        const CHUNK: usize = 64;
        let n = self.global.len();
        let mut i = 0;
        while i < n {
            let end = (i + CHUNK).min(n);
            if shard.global[i..end] != base[i..end] {
                let dst = &mut self.global[i..end];
                for ((d, &s), &b) in dst.iter_mut().zip(&shard.global[i..end]).zip(&base[i..end]) {
                    if s != b {
                        *d = s;
                    }
                }
            }
            i = end;
        }
    }
}

/// One reconvergence-stack entry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StackEntry {
    pub(crate) pc: usize,
    /// Reconvergence pc: pop when `pc == rpc`.
    pub(crate) rpc: usize,
    pub(crate) mask: u32,
}

/// Per-warp execution state. Register banks are raw `u32` lanes — the
/// decoded opcodes know their operand types statically, so no tags are
/// stored or checked at run time.
///
/// Public only so [`crate::backend::ExecBackend`] can name it; the
/// fields are crate-private (backends live in this crate).
#[derive(Debug, Default)]
pub struct Warp {
    /// Warp index within the block.
    pub(crate) id: u32,
    /// First thread (linear, within block) of this warp.
    pub(crate) base_thread: u32,
    /// Lanes that have not exited.
    pub(crate) live: u32,
    pub(crate) stack: Vec<StackEntry>,
    /// Per-register, per-lane raw bits: `regs[reg * 32 + lane]`.
    pub(crate) regs: Vec<u32>,
    pub(crate) at_barrier: bool,
}

impl Warp {
    fn done(&self) -> bool {
        self.stack.is_empty()
    }
}

/// Reusable per-launch (per-shard) allocations: shared/local memory
/// images and warp states are cleared and refilled per block instead of
/// reallocated, so a many-block launch allocates O(1) times.
#[derive(Default)]
struct LaunchScratch {
    shared: Vec<u8>,
    local: Vec<u8>,
    warps: Vec<Warp>,
}

/// One member of a co-scheduled pair launch: a kernel, its launch
/// geometry, and its arguments. [`Device::launch_pair`] takes two.
#[derive(Clone, Copy)]
pub struct PairLaunch<'a> {
    /// The kernel to launch.
    pub kernel: &'a Kernel,
    /// Its launch geometry.
    pub config: &'a LaunchConfig,
    /// Its arguments.
    pub args: &'a [Value],
}

/// Per-kernel state of a plan-driven launch: everything kernel-specific
/// that persists across the member's dispatch slices (device memory is
/// shared by all members and borrowed per slice by [`LaunchCtx`]).
struct PlanMember<'a> {
    dec: Arc<DecodedKernel>,
    kernel: &'a Kernel,
    config: &'a LaunchConfig,
    params: Vec<u32>,
    stats: LaunchStats,
    exec: Option<ExecProfile>,
    scratch: LaunchScratch,
}

impl<'a> PlanMember<'a> {
    fn new(
        kernel: &'a Kernel,
        config: &'a LaunchConfig,
        args: &[Value],
        profile_exec: bool,
    ) -> Self {
        // The µop stream and per-pc side tables: decoded on the kernel's
        // first launch, shared by every launch (and shard) after that.
        let dec = kernel.decoded().clone();
        // Parameters are uniform across the grid; resolve them to raw
        // bits once per launch.
        let params: Vec<u32> = args.iter().map(|v| v.to_bits()).collect();
        let exec = profile_exec.then(|| ExecProfile::new(dec.len()));
        Self {
            dec,
            kernel,
            config,
            params,
            stats: LaunchStats::default(),
            exec,
            scratch: LaunchScratch::default(),
        }
    }
}

/// Per-launch execution context shared by every backend: the decoded
/// stream, resolved parameters, memory images, budget and stats.
///
/// Public only so [`crate::backend::ExecBackend`] can name it; the
/// fields are crate-private (backends live in this crate).
pub struct LaunchCtx<'a> {
    pub(crate) dec: &'a DecodedKernel,
    pub(crate) kernel: &'a Kernel,
    pub(crate) config: &'a LaunchConfig,
    /// Launch arguments as raw bits (uniform across the grid).
    pub(crate) params: &'a [u32],
    pub(crate) global: &'a mut Vec<u8>,
    pub(crate) const_mem: &'a [u8],
    pub(crate) budget: u64,
    /// Whether the SIMD backend executes the fusion table.
    pub(crate) fusion: bool,
    pub(crate) stats: &'a mut LaunchStats,
    /// Execution-cost profile to bump per retired µop, when collecting.
    pub(crate) exec: Option<&'a mut ExecProfile>,
}

impl LaunchCtx<'_> {
    fn run_block<B: ExecBackend, O: TraceObserver + ?Sized>(
        &mut self,
        block: u32,
        scratch: &mut LaunchScratch,
        observer: &mut O,
    ) -> Result<(), SimtError> {
        let threads = self.config.threads_per_block();
        let n_warps = self.config.warps_per_block();
        self.stats.warps += n_warps as u64;
        let exit_pc = self.dec.len();
        let reg_lanes = self.kernel.reg_count() * WARP_SIZE;

        // Reset the scratch arena for this block. `clear` + `resize`
        // zero-fills while keeping the allocations.
        let LaunchScratch {
            shared,
            local,
            warps,
        } = scratch;
        shared.clear();
        shared.resize(self.kernel.shared_bytes() as usize, 0);
        local.clear();
        local.resize(self.kernel.local_bytes() as usize * threads, 0);
        warps.truncate(n_warps);
        while warps.len() < n_warps {
            warps.push(Warp::default());
        }
        for (w, warp) in warps.iter_mut().enumerate() {
            let live = self.config.warp_live_mask(w);
            warp.id = w as u32;
            warp.base_thread = (w * WARP_SIZE) as u32;
            warp.live = live;
            warp.stack.clear();
            warp.stack.push(StackEntry {
                pc: 0,
                rpc: exit_pc,
                mask: live,
            });
            warp.regs.clear();
            warp.regs.resize(reg_lanes, 0);
            warp.at_barrier = false;
        }

        loop {
            let mut progressed = false;
            for warp in warps.iter_mut() {
                if warp.done() || warp.at_barrier {
                    continue;
                }
                progressed = true;
                B::run_warp(self, block, warp, shared, local, observer)?;
            }
            if warps.iter().all(Warp::done) {
                break;
            }
            let waiting = warps.iter().filter(|w| w.at_barrier).count();
            if waiting > 0 && warps.iter().all(|w| w.done() || w.at_barrier) {
                // Release the barrier.
                for w in warps.iter_mut() {
                    w.at_barrier = false;
                }
                self.stats.barriers += 1;
                observer.on_barrier(block);
                continue;
            }
            if !progressed {
                return Err(SimtError::Deadlock {
                    block: block as usize,
                });
            }
        }
        Ok(())
    }

    /// Runs one warp until it exits or reaches a barrier — the scalar
    /// reference loop, one lane at a time. This is the semantic baseline
    /// every other backend is differentially tested against; keep it
    /// simple and obviously correct.
    pub(crate) fn run_warp_scalar<O: TraceObserver + ?Sized>(
        &mut self,
        block: u32,
        warp: &mut Warp,
        shared: &mut [u8],
        local: &mut [u8],
        observer: &mut O,
    ) -> Result<(), SimtError> {
        let dec = self.dec;
        let exit_pc = dec.len();
        let uops = dec.uops();
        let mut addr_buf = [0u32; WARP_SIZE];

        loop {
            let Some(top) = warp.stack.last().copied() else {
                return Ok(());
            };
            if top.mask == 0 || top.pc == top.rpc || top.pc >= exit_pc {
                warp.stack.pop();
                continue;
            }

            self.stats.warp_instrs += 1;
            if self.stats.warp_instrs > self.budget {
                return Err(SimtError::InstructionBudgetExceeded {
                    budget: self.budget,
                });
            }
            let pc = top.pc;
            let mask = top.mask;
            self.stats.thread_instrs += mask.count_ones() as u64;
            if let Some(exec) = self.exec.as_deref_mut() {
                exec.bump(pc, dec.class(pc), mask);
            }

            observer.on_instr(&InstrEvent {
                block,
                warp: warp.id,
                pc,
                class: dec.class(pc),
                active: mask,
                live: warp.live,
                dst: dec.dst(pc),
                srcs: dec.srcs(pc),
            });

            match uops[pc] {
                Uop::Bin { kind, dst, a, b } => {
                    for lane in lanes(mask) {
                        let va = self.eval(warp, block, lane, a);
                        let vb = self.eval(warp, block, lane, b);
                        let r = kind.eval(va, vb).ok_or(SimtError::DivideByZero { pc })?;
                        write_reg(warp, dst, lane, r);
                    }
                    advance(warp);
                }
                Uop::Un { kind, dst, a } => {
                    for lane in lanes(mask) {
                        let va = self.eval(warp, block, lane, a);
                        write_reg(warp, dst, lane, kind.eval(va));
                    }
                    advance(warp);
                }
                Uop::Mad { ty, dst, a, b, c } => {
                    for lane in lanes(mask) {
                        let va = self.eval(warp, block, lane, a);
                        let vb = self.eval(warp, block, lane, b);
                        let vc = self.eval(warp, block, lane, c);
                        write_reg(warp, dst, lane, decode::eval_mad(ty, va, vb, vc));
                    }
                    advance(warp);
                }
                Uop::Cmp { op, ty, dst, a, b } => {
                    for lane in lanes(mask) {
                        let va = self.eval(warp, block, lane, a);
                        let vb = self.eval(warp, block, lane, b);
                        write_reg(warp, dst, lane, decode::eval_cmp(op, ty, va, vb) as u32);
                    }
                    advance(warp);
                }
                Uop::Sel { dst, pred, a, b } => {
                    for lane in lanes(mask) {
                        let v = if read_reg(warp, pred, lane) != 0 {
                            self.eval(warp, block, lane, a)
                        } else {
                            self.eval(warp, block, lane, b)
                        };
                        write_reg(warp, dst, lane, v);
                    }
                    advance(warp);
                }
                Uop::Mov { dst, src } => {
                    for lane in lanes(mask) {
                        let v = self.eval(warp, block, lane, src);
                        write_reg(warp, dst, lane, v);
                    }
                    advance(warp);
                }
                Uop::Cvt { from, to, dst, src } => {
                    for lane in lanes(mask) {
                        let v = self.eval(warp, block, lane, src);
                        write_reg(warp, dst, lane, decode::convert(v, from, to));
                    }
                    advance(warp);
                }
                Uop::Ld {
                    dst,
                    space,
                    base,
                    offset,
                } => {
                    self.gather_addrs(warp, block, mask, base, offset, &mut addr_buf);
                    observer.on_mem(&MemEvent {
                        block,
                        warp: warp.id,
                        pc,
                        space,
                        kind: AccessKind::Load,
                        bytes: 4,
                        active: mask,
                        addrs: &addr_buf,
                    });
                    let lb = self.kernel.local_bytes() as usize;
                    for lane in lanes(mask) {
                        let a = addr_buf[lane];
                        let raw = match space {
                            Space::Global => read4(self.global, a, pc, "global")?,
                            Space::Shared => read4(shared, a, pc, "shared")?,
                            Space::Const => read4(self.const_mem, a, pc, "const")?,
                            Space::Local => {
                                let t = (warp.base_thread as usize + lane) * lb;
                                read4(&local[t..t + lb], a, pc, "local")?
                            }
                        };
                        write_reg(warp, dst, lane, u32::from_le_bytes(raw));
                    }
                    advance(warp);
                }
                Uop::St {
                    space,
                    base,
                    offset,
                    src,
                } => {
                    self.gather_addrs(warp, block, mask, base, offset, &mut addr_buf);
                    observer.on_mem(&MemEvent {
                        block,
                        warp: warp.id,
                        pc,
                        space,
                        kind: AccessKind::Store,
                        bytes: 4,
                        active: mask,
                        addrs: &addr_buf,
                    });
                    let lb = self.kernel.local_bytes() as usize;
                    for lane in lanes(mask) {
                        let v = self.eval(warp, block, lane, src);
                        let a = addr_buf[lane];
                        let data = v.to_le_bytes();
                        match space {
                            Space::Global => write4(self.global, a, data, pc, "global")?,
                            Space::Shared => write4(shared, a, data, pc, "shared")?,
                            Space::Local => {
                                let t = (warp.base_thread as usize + lane) * lb;
                                write4(&mut local[t..t + lb], a, data, pc, "local")?
                            }
                            Space::Const => {
                                return Err(SimtError::OutOfBounds {
                                    pc,
                                    space: "const",
                                    addr: a as u64,
                                    size: 0,
                                })
                            }
                        }
                    }
                    advance(warp);
                }
                Uop::Atom {
                    kind,
                    dst,
                    space,
                    base,
                    offset,
                    src,
                    compare,
                } => {
                    self.gather_addrs(warp, block, mask, base, offset, &mut addr_buf);
                    observer.on_mem(&MemEvent {
                        block,
                        warp: warp.id,
                        pc,
                        space,
                        kind: AccessKind::Atomic,
                        bytes: 4,
                        active: mask,
                        addrs: &addr_buf,
                    });
                    for lane in lanes(mask) {
                        let a = addr_buf[lane];
                        let operand = self.eval(warp, block, lane, src);
                        let cmp_v = compare.map(|c| self.eval(warp, block, lane, c));
                        let old = match space {
                            Space::Global => {
                                u32::from_le_bytes(read4(self.global, a, pc, "global")?)
                            }
                            Space::Shared => u32::from_le_bytes(read4(shared, a, pc, "shared")?),
                            _ => unreachable!("atomics validated to global/shared"),
                        };
                        if let Some(new) = kind.apply(old, operand, cmp_v) {
                            let data = new.to_le_bytes();
                            match space {
                                Space::Global => write4(self.global, a, data, pc, "global")?,
                                Space::Shared => write4(shared, a, data, pc, "shared")?,
                                _ => unreachable!("atomics validated to global/shared"),
                            }
                        }
                        if let Some(d) = dst {
                            write_reg(warp, d, lane, old);
                        }
                    }
                    advance(warp);
                }
                Uop::Bar => {
                    if mask != warp.live || warp.stack.len() != 1 {
                        return Err(SimtError::BarrierDivergence { pc });
                    }
                    advance(warp);
                    warp.at_barrier = true;
                    return Ok(());
                }
                Uop::Jump { target } => {
                    warp.stack.last_mut().expect("non-empty").pc = target as usize;
                }
                Uop::Branch {
                    target,
                    reg,
                    negate,
                    rpc,
                } => {
                    let mut taken = 0u32;
                    for lane in lanes(mask) {
                        let p = read_reg(warp, reg, lane) != 0;
                        if p != negate {
                            taken |= 1 << lane;
                        }
                    }
                    observer.on_branch(&BranchEvent {
                        block,
                        warp: warp.id,
                        pc,
                        active: mask,
                        taken,
                    });
                    if taken == 0 {
                        advance(warp);
                    } else if taken == mask {
                        warp.stack.last_mut().expect("non-empty").pc = target as usize;
                    } else {
                        let rpc = rpc as usize;
                        let old = warp.stack.pop().expect("non-empty");
                        // Continuation at the reconvergence point.
                        warp.stack.push(StackEntry {
                            pc: rpc,
                            rpc: old.rpc,
                            mask: old.mask,
                        });
                        // Not-taken path.
                        warp.stack.push(StackEntry {
                            pc: pc + 1,
                            rpc,
                            mask: mask & !taken,
                        });
                        // Taken path (runs first).
                        warp.stack.push(StackEntry {
                            pc: target as usize,
                            rpc,
                            mask: taken,
                        });
                    }
                }
                Uop::Ret => {
                    let exiting = mask;
                    warp.live &= !exiting;
                    for e in &mut warp.stack {
                        e.mask &= !exiting;
                    }
                }
            }
        }
    }

    pub(crate) fn gather_addrs(
        &self,
        warp: &Warp,
        block: u32,
        mask: u32,
        base: Src,
        offset: i32,
        out: &mut [u32; WARP_SIZE],
    ) {
        for lane in lanes(mask) {
            let b = self.eval(warp, block, lane, base);
            out[lane] = b.wrapping_add_signed(offset);
        }
    }

    #[inline]
    pub(crate) fn eval(&self, warp: &Warp, block: u32, lane: usize, s: Src) -> u32 {
        match s {
            Src::Reg(r) => read_reg(warp, r, lane),
            Src::Imm(bits) => bits,
            Src::Param(i) => self.params[i as usize],
            Src::Sreg(s) => {
                let thread = warp.base_thread + lane as u32;
                let bx = self.config.block_x;
                match s {
                    SpecialReg::TidX => thread % bx,
                    SpecialReg::TidY => thread / bx,
                    SpecialReg::NTidX => bx,
                    SpecialReg::NTidY => self.config.block_y,
                    SpecialReg::CtaIdX => block % self.config.grid_x,
                    SpecialReg::CtaIdY => block / self.config.grid_x,
                    SpecialReg::NCtaIdX => self.config.grid_x,
                    SpecialReg::NCtaIdY => self.config.grid_y,
                    SpecialReg::LaneId => lane as u32,
                }
            }
        }
    }
}

/// Iterates set lanes in ascending order.
#[inline]
pub(crate) fn lanes(mask: u32) -> impl Iterator<Item = usize> {
    let mut m = mask;
    std::iter::from_fn(move || {
        if m == 0 {
            None
        } else {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            Some(i)
        }
    })
}

pub(crate) fn advance(warp: &mut Warp) {
    warp.stack.last_mut().expect("non-empty").pc += 1;
}

#[inline]
pub(crate) fn read_reg(warp: &Warp, r: u16, lane: usize) -> u32 {
    warp.regs[r as usize * WARP_SIZE + lane]
}

#[inline]
pub(crate) fn write_reg(warp: &mut Warp, r: u16, lane: usize, v: u32) {
    warp.regs[r as usize * WARP_SIZE + lane] = v;
}

pub(crate) fn read4(
    buf: &[u8],
    addr: u32,
    pc: usize,
    space: &'static str,
) -> Result<[u8; 4], SimtError> {
    let a = addr as usize;
    if a + 4 > buf.len() {
        return Err(SimtError::OutOfBounds {
            pc,
            space,
            addr: addr as u64,
            size: buf.len() as u64,
        });
    }
    Ok(buf[a..a + 4].try_into().expect("4 bytes"))
}

pub(crate) fn write4(
    buf: &mut [u8],
    addr: u32,
    data: [u8; 4],
    pc: usize,
    space: &'static str,
) -> Result<(), SimtError> {
    let a = addr as usize;
    if a + 4 > buf.len() {
        return Err(SimtError::OutOfBounds {
            pc,
            space,
            addr: addr as u64,
            size: buf.len() as u64,
        });
    }
    buf[a..a + 4].copy_from_slice(&data);
    Ok(())
}
