//! Stable content hashing for cache fingerprints.
//!
//! The profile cache keys entries by a fingerprint of everything a
//! kernel profile is a function of: the validated IR (via its
//! predecoded canonical form), the launch geometry, the arguments, and
//! the input-generation parameters. The hash must be *stable* — the
//! same across runs, threads and processes — so the std `SipHash`
//! (randomly keyed per process) is out. This is a plain FNV-1a with a
//! 64-bit state: not collision-resistant against adversaries, but the
//! cache is a private on-disk memo keyed by our own deterministic
//! inputs, and a collision merely serves a stale profile that the
//! bit-identity test suite would catch.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a hasher with explicit, endianness-stable feeds.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the standard FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u32` as little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a string, length-prefixed so `("ab", "c")` and
    /// `("a", "bc")` hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Adapts the hasher to `fmt::Write`, so structured values can be fed
/// through their `Debug` rendering (the decoded µop stream derives an
/// exhaustive `Debug` that changes whenever the µop encoding changes —
/// exactly the invalidation the cache wants).
pub struct HashWriter<'a>(pub &'a mut Fnv1a);

impl fmt::Write for HashWriter<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write as _;

    #[test]
    fn known_vector() {
        // FNV-1a("a") — fixed for all time; a change here means every
        // cache entry in the wild silently invalidates.
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn length_prefix_disambiguates_strings() {
        let hash = |parts: &[&str]| {
            let mut h = Fnv1a::new();
            for p in parts {
                h.write_str(p);
            }
            h.finish()
        };
        assert_ne!(hash(&["ab", "c"]), hash(&["a", "bc"]));
    }

    #[test]
    fn writer_feeds_debug_renderings() {
        let mut a = Fnv1a::new();
        let _ = write!(HashWriter(&mut a), "{:?}", Some(3u32));
        let mut b = Fnv1a::new();
        b.write(b"Some(3)");
        assert_eq!(a.finish(), b.finish());
    }
}
