//! The kernel IR: values, registers, operands and instructions.
//!
//! The IR is a flat instruction list with labels resolved to instruction
//! indices ("pcs"). It is deliberately PTX-flavoured: typed virtual
//! registers, predicate registers for comparisons, explicit memory spaces,
//! and a conditional branch as the only control-flow primitive (plus
//! per-lane `Ret`). Structured control flow is provided by the
//! [`crate::builder`] DSL, which lowers to these branches.

use std::fmt;

/// Scalar types carried by registers and immediates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 32-bit signed integer.
    I32,
    /// 32-bit unsigned integer (also used for byte addresses).
    U32,
    /// 32-bit IEEE float.
    F32,
    /// 1-bit predicate.
    Pred,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::I32 => write!(f, "i32"),
            Type::U32 => write!(f, "u32"),
            Type::F32 => write!(f, "f32"),
            Type::Pred => write!(f, "pred"),
        }
    }
}

/// A runtime scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 32-bit signed integer.
    I32(i32),
    /// 32-bit unsigned integer.
    U32(u32),
    /// 32-bit IEEE float.
    F32(f32),
    /// Predicate.
    Pred(bool),
}

impl Value {
    /// The type of this value.
    pub fn ty(&self) -> Type {
        match self {
            Value::I32(_) => Type::I32,
            Value::U32(_) => Type::U32,
            Value::F32(_) => Type::F32,
            Value::Pred(_) => Type::Pred,
        }
    }

    /// Zero value of a type.
    pub fn zero(ty: Type) -> Value {
        match ty {
            Type::I32 => Value::I32(0),
            Type::U32 => Value::U32(0),
            Type::F32 => Value::F32(0.0),
            Type::Pred => Value::Pred(false),
        }
    }

    /// Unwraps a `U32`.
    ///
    /// # Panics
    ///
    /// Panics if the value has another type.
    pub fn as_u32(&self) -> u32 {
        match self {
            Value::U32(v) => *v,
            other => panic!("expected u32, found {other:?}"),
        }
    }

    /// Unwraps an `I32`.
    ///
    /// # Panics
    ///
    /// Panics if the value has another type.
    pub fn as_i32(&self) -> i32 {
        match self {
            Value::I32(v) => *v,
            other => panic!("expected i32, found {other:?}"),
        }
    }

    /// Unwraps an `F32`.
    ///
    /// # Panics
    ///
    /// Panics if the value has another type.
    pub fn as_f32(&self) -> f32 {
        match self {
            Value::F32(v) => *v,
            other => panic!("expected f32, found {other:?}"),
        }
    }

    /// Unwraps a `Pred`.
    ///
    /// # Panics
    ///
    /// Panics if the value has another type.
    pub fn as_pred(&self) -> bool {
        match self {
            Value::Pred(v) => *v,
            other => panic!("expected pred, found {other:?}"),
        }
    }

    /// The raw 32-bit representation of this value: integers and floats
    /// keep their bit pattern, predicates encode as 0/1. This is exactly
    /// the little-endian image a store writes to memory, and the format
    /// the interpreter's register banks hold (see [`crate::decode`]).
    pub fn to_bits(self) -> u32 {
        match self {
            Value::U32(x) => x,
            Value::I32(x) => x as u32,
            Value::F32(x) => x.to_bits(),
            Value::Pred(x) => x as u32,
        }
    }

    /// Reconstructs a value of type `ty` from its raw bits (inverse of
    /// [`Value::to_bits`]; any non-zero bit pattern decodes to a true
    /// predicate, matching what a 4-byte load would produce).
    pub fn from_bits(bits: u32, ty: Type) -> Value {
        match ty {
            Type::U32 => Value::U32(bits),
            Type::I32 => Value::I32(bits as i32),
            Type::F32 => Value::F32(f32::from_bits(bits)),
            Type::Pred => Value::Pred(bits != 0),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U32(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F32(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Pred(v)
    }
}

/// A virtual register id (dense, per kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Read-only special registers exposing the thread's coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// Thread index within the block, x component.
    TidX,
    /// Thread index within the block, y component.
    TidY,
    /// Block dimension, x component.
    NTidX,
    /// Block dimension, y component.
    NTidY,
    /// Block index within the grid, x component.
    CtaIdX,
    /// Block index within the grid, y component.
    CtaIdY,
    /// Grid dimension, x component.
    NCtaIdX,
    /// Grid dimension, y component.
    NCtaIdY,
    /// Lane index within the warp (0..32).
    LaneId,
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A virtual register.
    Reg(Reg),
    /// An immediate value.
    Imm(Value),
    /// A special (coordinate) register; type `u32`.
    Sreg(SpecialReg),
    /// A kernel parameter (uniform across the grid).
    Param(u16),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}
impl From<Value> for Operand {
    fn from(v: Value) -> Self {
        Operand::Imm(v)
    }
}
impl From<SpecialReg> for Operand {
    fn from(s: SpecialReg) -> Self {
        Operand::Sreg(s)
    }
}

/// Two-operand arithmetic/logic opcodes. Integer opcodes work on both
/// `i32` and `u32`; float opcodes on `f32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (wrapping for integers).
    Add,
    /// Subtraction (wrapping for integers).
    Sub,
    /// Multiplication (wrapping for integers).
    Mul,
    /// Division. Integer division by zero is a runtime error.
    Div,
    /// Remainder (integers only).
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise and (integers) / logical and (predicates).
    And,
    /// Bitwise or (integers) / logical or (predicates).
    Or,
    /// Bitwise xor (integers) / logical xor (predicates).
    Xor,
    /// Shift left (integers; shift count taken mod 32).
    Shl,
    /// Shift right (logical for u32, arithmetic for i32).
    Shr,
}

/// One-operand opcodes. The transcendental group executes on the GPU's
/// special function unit (SFU) and is classified accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Bitwise not (integers) / logical not (predicates).
    Not,
    /// Square root (f32, SFU).
    Sqrt,
    /// Reciprocal square root (f32, SFU).
    Rsqrt,
    /// Base-2 exponential (f32, SFU).
    Exp2,
    /// Base-2 logarithm (f32, SFU).
    Log2,
    /// Sine (f32, SFU).
    Sin,
    /// Cosine (f32, SFU).
    Cos,
    /// Reciprocal (f32, SFU).
    Recip,
}

impl UnOp {
    /// Whether this opcode executes on the special function unit.
    pub fn is_sfu(&self) -> bool {
        matches!(
            self,
            UnOp::Sqrt
                | UnOp::Rsqrt
                | UnOp::Exp2
                | UnOp::Log2
                | UnOp::Sin
                | UnOp::Cos
                | UnOp::Recip
        )
    }
}

/// Comparison opcodes; result is a predicate register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// Atomic read-modify-write opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomOp {
    /// Atomic add.
    Add,
    /// Atomic minimum.
    Min,
    /// Atomic maximum.
    Max,
    /// Atomic exchange.
    Exch,
    /// Atomic compare-and-swap (`compare` operand in [`Instr::Atom`]).
    Cas,
}

/// Memory spaces addressable by loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Device-wide global memory.
    Global,
    /// Per-block scratchpad (CUDA `__shared__`).
    Shared,
    /// Per-thread local memory (spills, private arrays).
    Local,
    /// Device-wide read-only constant memory.
    Const,
}

impl Space {
    /// Lower-case name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Space::Global => "global",
            Space::Shared => "shared",
            Space::Local => "local",
            Space::Const => "const",
        }
    }
}

/// A byte address expression: `base + offset`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Addr {
    /// Base operand; must be `u32`-typed.
    pub base: Operand,
    /// Constant byte offset added to the base.
    pub offset: i32,
}

impl Addr {
    /// Address equal to the base operand with no displacement.
    pub fn base(base: impl Into<Operand>) -> Self {
        Self {
            base: base.into(),
            offset: 0,
        }
    }
}

/// Branch predicate: branch taken when `reg == !negate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchCond {
    /// Predicate register.
    pub reg: Reg,
    /// If true the branch is taken when the predicate is false.
    pub negate: bool,
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = a <op> b`.
    Bin {
        /// Opcode.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = <op> a`.
    Un {
        /// Opcode.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Operand.
        a: Operand,
    },
    /// Fused multiply-add: `dst = a * b + c`.
    Mad {
        /// Destination register.
        dst: Reg,
        /// Multiplicand.
        a: Operand,
        /// Multiplier.
        b: Operand,
        /// Addend.
        c: Operand,
    },
    /// `dst(pred) = a <cmp> b`.
    Cmp {
        /// Comparison opcode.
        op: CmpOp,
        /// Destination predicate register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = pred ? a : b`.
    Sel {
        /// Destination register.
        dst: Reg,
        /// Predicate register.
        pred: Reg,
        /// Value when the predicate is true.
        a: Operand,
        /// Value when the predicate is false.
        b: Operand,
    },
    /// Register move / immediate load.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// Numeric conversion into the destination register's type.
    Cvt {
        /// Destination register (its declared type selects the conversion).
        dst: Reg,
        /// Source operand (i32/u32/f32).
        src: Operand,
    },
    /// Load from memory into a register. Access width is 4 bytes.
    Ld {
        /// Destination register.
        dst: Reg,
        /// Memory space.
        space: Space,
        /// Byte address.
        addr: Addr,
    },
    /// Store a register/immediate to memory. Access width is 4 bytes.
    St {
        /// Memory space.
        space: Space,
        /// Byte address.
        addr: Addr,
        /// Value to store.
        src: Operand,
    },
    /// Atomic read-modify-write. `dst` (optional) receives the old value.
    Atom {
        /// Atomic opcode.
        op: AtomOp,
        /// Optional destination for the previous value.
        dst: Option<Reg>,
        /// Memory space (global or shared).
        space: Space,
        /// Byte address.
        addr: Addr,
        /// Operand value.
        src: Operand,
        /// Compare value (CAS only).
        compare: Option<Operand>,
    },
    /// Block-wide barrier (`__syncthreads`).
    Bar,
    /// Branch to `target` (an instruction index after label resolution),
    /// optionally predicated per lane.
    Bra {
        /// Destination pc.
        target: usize,
        /// Per-lane condition; `None` is an unconditional jump.
        cond: Option<BranchCond>,
    },
    /// Per-lane kernel exit.
    Ret,
}

/// Coarse dynamic classification used by the characterization metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Integer ALU (arith/logic/compare on integers, address math).
    IntAlu,
    /// Floating-point ALU.
    FpAlu,
    /// Special function unit (transcendentals).
    Sfu,
    /// Global memory load/store.
    MemGlobal,
    /// Shared memory load/store.
    MemShared,
    /// Local memory load/store.
    MemLocal,
    /// Constant memory load.
    MemConst,
    /// Control flow (branches, ret).
    Ctrl,
    /// Barrier synchronization.
    Sync,
    /// Atomic operation.
    Atomic,
    /// Data movement / conversion / select.
    Move,
}

impl InstrClass {
    /// All classes, in a stable order (used for mix histograms).
    pub const ALL: [InstrClass; 11] = [
        InstrClass::IntAlu,
        InstrClass::FpAlu,
        InstrClass::Sfu,
        InstrClass::MemGlobal,
        InstrClass::MemShared,
        InstrClass::MemLocal,
        InstrClass::MemConst,
        InstrClass::Ctrl,
        InstrClass::Sync,
        InstrClass::Atomic,
        InstrClass::Move,
    ];

    /// Short lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            InstrClass::IntAlu => "int_alu",
            InstrClass::FpAlu => "fp_alu",
            InstrClass::Sfu => "sfu",
            InstrClass::MemGlobal => "mem_global",
            InstrClass::MemShared => "mem_shared",
            InstrClass::MemLocal => "mem_local",
            InstrClass::MemConst => "mem_const",
            InstrClass::Ctrl => "ctrl",
            InstrClass::Sync => "sync",
            InstrClass::Atomic => "atomic",
            InstrClass::Move => "move",
        }
    }
}

impl Instr {
    /// Classifies this instruction for mix statistics. `dst_ty` is the
    /// declared type of the destination register when one exists (used to
    /// split integer from floating-point ALU work).
    pub fn class(&self, dst_ty: Option<Type>) -> InstrClass {
        match self {
            Instr::Bin { .. } | Instr::Mad { .. } => match dst_ty {
                Some(Type::F32) => InstrClass::FpAlu,
                _ => InstrClass::IntAlu,
            },
            Instr::Un { op, .. } => {
                if op.is_sfu() {
                    InstrClass::Sfu
                } else {
                    match dst_ty {
                        Some(Type::F32) => InstrClass::FpAlu,
                        _ => InstrClass::IntAlu,
                    }
                }
            }
            // Comparisons write predicates; classify them as integer ALU
            // work regardless of operand type, as a set-predicate unit would.
            Instr::Cmp { .. } => InstrClass::IntAlu,
            Instr::Sel { .. } | Instr::Mov { .. } | Instr::Cvt { .. } => InstrClass::Move,
            Instr::Ld { space, .. } | Instr::St { space, .. } => match space {
                Space::Global => InstrClass::MemGlobal,
                Space::Shared => InstrClass::MemShared,
                Space::Local => InstrClass::MemLocal,
                Space::Const => InstrClass::MemConst,
            },
            Instr::Atom { .. } => InstrClass::Atomic,
            Instr::Bar => InstrClass::Sync,
            Instr::Bra { .. } | Instr::Ret => InstrClass::Ctrl,
        }
    }

    /// Register operands read by this instruction (for dataflow/ILP).
    pub fn src_regs(&self) -> Vec<Reg> {
        fn reg_of(op: &Operand, out: &mut Vec<Reg>) {
            if let Operand::Reg(r) = op {
                out.push(*r);
            }
        }
        let mut out = Vec::with_capacity(3);
        match self {
            Instr::Bin { a, b, .. } | Instr::Cmp { a, b, .. } => {
                reg_of(a, &mut out);
                reg_of(b, &mut out);
            }
            Instr::Un { a, .. } | Instr::Mov { src: a, .. } | Instr::Cvt { src: a, .. } => {
                reg_of(a, &mut out);
            }
            Instr::Mad { a, b, c, .. } => {
                reg_of(a, &mut out);
                reg_of(b, &mut out);
                reg_of(c, &mut out);
            }
            Instr::Sel { pred, a, b, .. } => {
                out.push(*pred);
                reg_of(a, &mut out);
                reg_of(b, &mut out);
            }
            Instr::Ld { addr, .. } => reg_of(&addr.base, &mut out),
            Instr::St { addr, src, .. } => {
                reg_of(&addr.base, &mut out);
                reg_of(src, &mut out);
            }
            Instr::Atom {
                addr, src, compare, ..
            } => {
                reg_of(&addr.base, &mut out);
                reg_of(src, &mut out);
                if let Some(c) = compare {
                    reg_of(c, &mut out);
                }
            }
            Instr::Bra { cond, .. } => {
                if let Some(c) = cond {
                    out.push(c.reg);
                }
            }
            Instr::Bar | Instr::Ret => {}
        }
        out
    }

    /// Destination register written by this instruction, if any.
    pub fn dst_reg(&self) -> Option<Reg> {
        match self {
            Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Mad { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::Sel { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::Cvt { dst, .. }
            | Instr::Ld { dst, .. } => Some(*dst),
            Instr::Atom { dst, .. } => *dst,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types() {
        assert_eq!(Value::I32(-1).ty(), Type::I32);
        assert_eq!(Value::U32(1).ty(), Type::U32);
        assert_eq!(Value::F32(0.5).ty(), Type::F32);
        assert_eq!(Value::Pred(true).ty(), Type::Pred);
    }

    #[test]
    fn value_zero_matches_type() {
        for ty in [Type::I32, Type::U32, Type::F32, Type::Pred] {
            assert_eq!(Value::zero(ty).ty(), ty);
        }
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::U32(7).as_u32(), 7);
        assert_eq!(Value::I32(-7).as_i32(), -7);
        assert_eq!(Value::F32(1.5).as_f32(), 1.5);
        assert!(Value::Pred(true).as_pred());
    }

    #[test]
    #[should_panic(expected = "expected u32")]
    fn wrong_accessor_panics() {
        Value::F32(1.0).as_u32();
    }

    #[test]
    fn bits_round_trip() {
        let cases = [
            Value::U32(0xdead_beef),
            Value::I32(-7),
            Value::F32(-0.0),
            Value::F32(f32::NAN),
            Value::Pred(true),
            Value::Pred(false),
        ];
        for v in cases {
            let back = Value::from_bits(v.to_bits(), v.ty());
            assert_eq!(back.to_bits(), v.to_bits(), "{v:?}");
            assert_eq!(back.ty(), v.ty());
        }
        assert_eq!(Value::F32(1.5).to_bits(), 1.5f32.to_bits());
        assert_eq!(Value::from_bits(2, Type::Pred), Value::Pred(true));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i32), Value::I32(3));
        assert_eq!(Value::from(3u32), Value::U32(3));
        assert_eq!(Value::from(3.0f32), Value::F32(3.0));
        assert_eq!(Value::from(true), Value::Pred(true));
        assert_eq!(Operand::from(Reg(2)), Operand::Reg(Reg(2)));
    }

    #[test]
    fn classification() {
        let add_f = Instr::Bin {
            op: BinOp::Add,
            dst: Reg(0),
            a: Operand::Imm(Value::F32(1.0)),
            b: Operand::Imm(Value::F32(2.0)),
        };
        assert_eq!(add_f.class(Some(Type::F32)), InstrClass::FpAlu);
        assert_eq!(add_f.class(Some(Type::U32)), InstrClass::IntAlu);

        let sqrt = Instr::Un {
            op: UnOp::Sqrt,
            dst: Reg(0),
            a: Operand::Reg(Reg(1)),
        };
        assert_eq!(sqrt.class(Some(Type::F32)), InstrClass::Sfu);

        let ld = Instr::Ld {
            dst: Reg(0),
            space: Space::Shared,
            addr: Addr::base(Reg(1)),
        };
        assert_eq!(ld.class(Some(Type::F32)), InstrClass::MemShared);
        assert_eq!(Instr::Bar.class(None), InstrClass::Sync);
        assert_eq!(Instr::Ret.class(None), InstrClass::Ctrl);
    }

    #[test]
    fn src_and_dst_regs() {
        let mad = Instr::Mad {
            dst: Reg(3),
            a: Operand::Reg(Reg(0)),
            b: Operand::Imm(Value::F32(2.0)),
            c: Operand::Reg(Reg(1)),
        };
        assert_eq!(mad.src_regs(), vec![Reg(0), Reg(1)]);
        assert_eq!(mad.dst_reg(), Some(Reg(3)));

        let st = Instr::St {
            space: Space::Global,
            addr: Addr::base(Reg(5)),
            src: Operand::Reg(Reg(6)),
        };
        assert_eq!(st.src_regs(), vec![Reg(5), Reg(6)]);
        assert_eq!(st.dst_reg(), None);

        let bra = Instr::Bra {
            target: 0,
            cond: Some(BranchCond {
                reg: Reg(9),
                negate: true,
            }),
        };
        assert_eq!(bra.src_regs(), vec![Reg(9)]);
    }

    #[test]
    fn sfu_list() {
        assert!(UnOp::Sqrt.is_sfu());
        assert!(UnOp::Sin.is_sfu());
        assert!(!UnOp::Neg.is_sfu());
        assert!(!UnOp::Not.is_sfu());
    }

    #[test]
    fn class_names_unique() {
        let mut names: Vec<&str> = InstrClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), InstrClass::ALL.len());
    }
}
