//! Finalized, validated kernels.

use std::sync::{Arc, OnceLock};

use crate::cfg::Cfg;
use crate::decode::DecodedKernel;
use crate::instr::{AtomOp, BinOp, Instr, Operand, Reg, Space, Type, UnOp, Value};
use crate::SimtError;

/// A declared kernel parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDecl {
    /// Parameter name (diagnostics only).
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// A validated kernel: instructions, register/parameter declarations, and
/// the branch-reconvergence table.
///
/// Construct kernels with [`crate::builder::KernelBuilder`]; `Kernel`
/// itself guarantees (via [`Kernel::finalize`]) that execution cannot hit
/// malformed instructions.
#[derive(Debug, Clone)]
pub struct Kernel {
    name: String,
    instrs: Vec<Instr>,
    reg_types: Vec<Type>,
    params: Vec<ParamDecl>,
    shared_bytes: u32,
    local_bytes: u32,
    reconv: Vec<Option<usize>>,
    /// Lazily decoded µop stream ([`crate::decode`]), shared by every
    /// launch of this kernel (and, via `Arc`, by clones and forked shard
    /// devices). Cloning a kernel clones the `Arc`, not the decode.
    decoded: OnceLock<Arc<DecodedKernel>>,
}

impl Kernel {
    /// Validates raw IR and computes the reconvergence table.
    ///
    /// # Errors
    ///
    /// Returns a [`SimtError`] describing the first malformed instruction:
    /// bad register/parameter/label references, type mismatches, or control
    /// flow with no path to the kernel exit.
    pub fn finalize(
        name: impl Into<String>,
        instrs: Vec<Instr>,
        reg_types: Vec<Type>,
        params: Vec<ParamDecl>,
        shared_bytes: u32,
        local_bytes: u32,
    ) -> Result<Self, SimtError> {
        let v = Validator {
            instrs: &instrs,
            reg_types: &reg_types,
            params: &params,
        };
        v.validate()?;
        let cfg = Cfg::build(&instrs);
        let reconv = cfg.reconvergence_table(&instrs)?;
        Ok(Self {
            name: name.into(),
            instrs,
            reg_types,
            params,
            shared_bytes,
            local_bytes,
            reconv,
            decoded: OnceLock::new(),
        })
    }

    /// The predecoded µop stream, decoding on first use and cached for
    /// every later launch. Thread-safe: forked shard devices executing
    /// disjoint block ranges of one launch share a single decode.
    pub fn decoded(&self) -> &Arc<DecodedKernel> {
        self.decoded
            .get_or_init(|| Arc::new(DecodedKernel::decode(self)))
    }

    /// Whether the decode cache is populated (for tests and diagnostics;
    /// execution uses [`Kernel::decoded`], which fills it).
    pub fn decode_cached(&self) -> bool {
        self.decoded.get().is_some()
    }

    /// A stable content hash of this kernel's validated IR, fed from its
    /// canonical predecoded form: the µop stream plus the per-pc
    /// class/dst/srcs side tables ([`crate::decode`]), the register and
    /// parameter declarations, and the static memory sizes. Two kernels
    /// hash equal iff they execute identically, and the hash is stable
    /// across runs and processes — the profile cache builds its
    /// fingerprints on it.
    pub fn content_hash(&self) -> u64 {
        use crate::hash::{Fnv1a, HashWriter};
        use std::fmt::Write as _;

        let d = self.decoded();
        let mut h = Fnv1a::new();
        h.write_str(&self.name);
        h.write_u32(self.shared_bytes);
        h.write_u32(self.local_bytes);
        h.write_u64(self.reg_types.len() as u64);
        {
            let mut w = HashWriter(&mut h);
            for t in &self.reg_types {
                let _ = write!(w, "{t:?},");
            }
            for p in &self.params {
                let _ = write!(w, "{}:{:?},", p.name, p.ty);
            }
            // The canonical form: every µop with its side-table entries.
            // Debug renderings are exhaustive over the µop encoding, so
            // any change to the decoded form re-keys the cache.
            let _ = write!(w, ";{}", d.len());
            for (pc, uop) in d.uops().iter().enumerate() {
                let _ = write!(
                    w,
                    "|{uop:?}{:?}{:?}{:?}",
                    d.class(pc),
                    d.dst(pc),
                    d.srcs(pc)
                );
            }
        }
        h.finish()
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction list.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of virtual registers per thread.
    pub fn reg_count(&self) -> usize {
        self.reg_types.len()
    }

    /// Declared type of register `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn reg_type(&self, r: Reg) -> Type {
        self.reg_types[r.0 as usize]
    }

    /// Declared parameters.
    pub fn params(&self) -> &[ParamDecl] {
        &self.params
    }

    /// Static shared memory per block, in bytes.
    pub fn shared_bytes(&self) -> u32 {
        self.shared_bytes
    }

    /// Local (per-thread private) memory, in bytes.
    pub fn local_bytes(&self) -> u32 {
        self.local_bytes
    }

    /// Reconvergence pc for the conditional branch at `pc`
    /// (`instrs().len()` means the kernel exit). `None` for non-branches
    /// and unconditional branches.
    pub fn reconvergence_pc(&self, pc: usize) -> Option<usize> {
        self.reconv.get(pc).copied().flatten()
    }

    /// Whether the kernel contains any global-memory atomic.
    pub fn has_global_atomics(&self) -> bool {
        self.instrs.iter().any(|i| {
            matches!(
                i,
                Instr::Atom {
                    space: Space::Global,
                    ..
                }
            )
        })
    }

    /// Why this kernel's blocks may **not** be executed as disjoint
    /// block ranges, or `None` if block sharding is safe.
    ///
    /// This is the machine-readable side of
    /// [`Kernel::is_block_shardable`]: the parallel runtime records the
    /// returned reason through the observability recorder so serial
    /// fallbacks are visible in `regen --metrics` instead of silently
    /// costing a thread's worth of speedup.
    pub fn shard_blocker(&self) -> Option<&'static str> {
        if self.has_global_atomics() {
            return Some("global-atomics");
        }
        None
    }

    /// Whether this kernel's blocks may be dispatched as disjoint block
    /// ranges out of grid order — on forked devices (the sharded plan,
    /// `Device::run_block_range` per shard) or interleaved with a
    /// co-resident kernel's slices (`Device::launch_pair` under a
    /// `sched::DispatchPlan`) — with results identical to serial
    /// execution.
    ///
    /// The static contract, checked from the IR: no global-memory atomics.
    /// Shared-memory atomics and barriers are block-local and always safe.
    /// Plain global loads/stores are permitted because the CUDA execution
    /// model the workloads are written against already forbids depending
    /// on cross-block store→load ordering within a launch (blocks may run
    /// in any order, even sequentially); kernels that break that rule are
    /// not shardable and must go through the serial path. The determinism
    /// test suite cross-checks every registered workload against this
    /// contract. [`Kernel::shard_blocker`] names the reason.
    ///
    /// Co-scheduling is less demanding than sharding: every dispatch
    /// policy keeps a kernel's own blocks in ascending order on one
    /// device, so even kernels with global atomics pair safely — the
    /// contract only matters when block ranges run on diverged memory
    /// images.
    pub fn is_block_shardable(&self) -> bool {
        self.shard_blocker().is_none()
    }

    /// Checks launch arguments against the parameter declarations.
    ///
    /// # Errors
    ///
    /// Returns [`SimtError::BadLaunchArgs`] on count or type mismatch.
    pub fn check_args(&self, args: &[Value]) -> Result<(), SimtError> {
        if args.len() != self.params.len() {
            return Err(SimtError::BadLaunchArgs {
                detail: format!(
                    "kernel `{}` takes {} arguments, got {}",
                    self.name,
                    self.params.len(),
                    args.len()
                ),
            });
        }
        for (i, (arg, decl)) in args.iter().zip(&self.params).enumerate() {
            if arg.ty() != decl.ty {
                return Err(SimtError::BadLaunchArgs {
                    detail: format!(
                        "argument {i} (`{}`): expected {}, got {}",
                        decl.name,
                        decl.ty,
                        arg.ty()
                    ),
                });
            }
        }
        Ok(())
    }
}

struct Validator<'a> {
    instrs: &'a [Instr],
    reg_types: &'a [Type],
    params: &'a [ParamDecl],
}

impl Validator<'_> {
    fn validate(&self) -> Result<(), SimtError> {
        for (pc, ins) in self.instrs.iter().enumerate() {
            self.validate_instr(pc, ins)?;
        }
        Ok(())
    }

    fn reg_ty(&self, pc: usize, r: Reg) -> Result<Type, SimtError> {
        self.reg_types
            .get(r.0 as usize)
            .copied()
            .ok_or(SimtError::BadRegister {
                pc,
                reg: r.0 as usize,
            })
    }

    fn operand_ty(&self, pc: usize, op: &Operand) -> Result<Type, SimtError> {
        match op {
            Operand::Reg(r) => self.reg_ty(pc, *r),
            Operand::Imm(v) => Ok(v.ty()),
            Operand::Sreg(_) => Ok(Type::U32),
            Operand::Param(i) => {
                self.params
                    .get(*i as usize)
                    .map(|p| p.ty)
                    .ok_or(SimtError::BadParam {
                        pc,
                        param: *i as usize,
                    })
            }
        }
    }

    fn expect(&self, pc: usize, found: Type, expected: Type) -> Result<(), SimtError> {
        if found == expected {
            Ok(())
        } else {
            Err(SimtError::TypeMismatch {
                pc,
                expected,
                found,
            })
        }
    }

    fn expect_numeric(&self, pc: usize, ty: Type) -> Result<(), SimtError> {
        if ty == Type::Pred {
            // Report "expected f32" loosely; any numeric type would do.
            Err(SimtError::TypeMismatch {
                pc,
                expected: Type::F32,
                found: Type::Pred,
            })
        } else {
            Ok(())
        }
    }

    fn validate_addr(&self, pc: usize, addr: &crate::instr::Addr) -> Result<(), SimtError> {
        let t = self.operand_ty(pc, &addr.base)?;
        self.expect(pc, t, Type::U32)
    }

    fn validate_instr(&self, pc: usize, ins: &Instr) -> Result<(), SimtError> {
        match ins {
            Instr::Bin { op, dst, a, b } => {
                let td = self.reg_ty(pc, *dst)?;
                let ta = self.operand_ty(pc, a)?;
                let tb = self.operand_ty(pc, b)?;
                self.expect(pc, ta, td)?;
                self.expect(pc, tb, td)?;
                match op {
                    BinOp::And | BinOp::Or | BinOp::Xor => {
                        // Integers and predicates.
                        if td == Type::F32 {
                            return Err(SimtError::TypeMismatch {
                                pc,
                                expected: Type::U32,
                                found: Type::F32,
                            });
                        }
                    }
                    BinOp::Shl | BinOp::Shr | BinOp::Rem => {
                        if td == Type::F32 || td == Type::Pred {
                            return Err(SimtError::TypeMismatch {
                                pc,
                                expected: Type::U32,
                                found: td,
                            });
                        }
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Min | BinOp::Max => {
                        self.expect_numeric(pc, td)?;
                    }
                }
                Ok(())
            }
            Instr::Un { op, dst, a } => {
                let td = self.reg_ty(pc, *dst)?;
                let ta = self.operand_ty(pc, a)?;
                self.expect(pc, ta, td)?;
                match op {
                    UnOp::Not => {
                        if td == Type::F32 {
                            return Err(SimtError::TypeMismatch {
                                pc,
                                expected: Type::U32,
                                found: Type::F32,
                            });
                        }
                        Ok(())
                    }
                    UnOp::Neg | UnOp::Abs => {
                        if td == Type::I32 || td == Type::F32 {
                            Ok(())
                        } else {
                            Err(SimtError::TypeMismatch {
                                pc,
                                expected: Type::I32,
                                found: td,
                            })
                        }
                    }
                    _ => self.expect(pc, td, Type::F32),
                }
            }
            Instr::Mad { dst, a, b, c } => {
                let td = self.reg_ty(pc, *dst)?;
                self.expect_numeric(pc, td)?;
                for op in [a, b, c] {
                    let t = self.operand_ty(pc, op)?;
                    self.expect(pc, t, td)?;
                }
                Ok(())
            }
            Instr::Cmp { dst, a, b, .. } => {
                let td = self.reg_ty(pc, *dst)?;
                self.expect(pc, td, Type::Pred)?;
                let ta = self.operand_ty(pc, a)?;
                let tb = self.operand_ty(pc, b)?;
                self.expect_numeric(pc, ta)?;
                self.expect(pc, tb, ta)
            }
            Instr::Sel { dst, pred, a, b } => {
                let tp = self.reg_ty(pc, *pred)?;
                self.expect(pc, tp, Type::Pred)?;
                let td = self.reg_ty(pc, *dst)?;
                let ta = self.operand_ty(pc, a)?;
                let tb = self.operand_ty(pc, b)?;
                self.expect(pc, ta, td)?;
                self.expect(pc, tb, td)
            }
            Instr::Mov { dst, src } => {
                let td = self.reg_ty(pc, *dst)?;
                let ts = self.operand_ty(pc, src)?;
                self.expect(pc, ts, td)
            }
            Instr::Cvt { dst, src } => {
                let td = self.reg_ty(pc, *dst)?;
                let ts = self.operand_ty(pc, src)?;
                self.expect_numeric(pc, td)?;
                self.expect_numeric(pc, ts)
            }
            Instr::Ld { dst, addr, .. } => {
                let td = self.reg_ty(pc, *dst)?;
                self.expect_numeric(pc, td)?;
                self.validate_addr(pc, addr)
            }
            Instr::St { addr, src, .. } => {
                let ts = self.operand_ty(pc, src)?;
                self.expect_numeric(pc, ts)?;
                self.validate_addr(pc, addr)
            }
            Instr::Atom {
                op,
                dst,
                space,
                addr,
                src,
                compare,
            } => {
                if !matches!(space, Space::Global | Space::Shared) {
                    return Err(SimtError::TypeMismatch {
                        pc,
                        expected: Type::U32,
                        found: Type::U32,
                    });
                }
                self.validate_addr(pc, addr)?;
                let ts = self.operand_ty(pc, src)?;
                self.expect_numeric(pc, ts)?;
                if let Some(d) = dst {
                    let td = self.reg_ty(pc, *d)?;
                    self.expect(pc, td, ts)?;
                }
                match op {
                    AtomOp::Cas => {
                        let c = compare.as_ref().ok_or(SimtError::BadLaunchArgs {
                            detail: format!("atom.cas at pc {pc} missing compare operand"),
                        })?;
                        let tc = self.operand_ty(pc, c)?;
                        self.expect(pc, tc, ts)?;
                        if ts == Type::F32 {
                            return Err(SimtError::TypeMismatch {
                                pc,
                                expected: Type::U32,
                                found: Type::F32,
                            });
                        }
                        Ok(())
                    }
                    _ => Ok(()),
                }
            }
            Instr::Bar | Instr::Ret => Ok(()),
            Instr::Bra { target, cond } => {
                if *target > self.instrs.len() {
                    return Err(SimtError::UndefinedLabel { label: *target });
                }
                if let Some(c) = cond {
                    let t = self.reg_ty(pc, c.reg)?;
                    self.expect(pc, t, Type::Pred)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Addr, BranchCond, CmpOp, Operand};

    fn finalize(instrs: Vec<Instr>, reg_types: Vec<Type>) -> Result<Kernel, SimtError> {
        Kernel::finalize("t", instrs, reg_types, vec![], 0, 0)
    }

    #[test]
    fn empty_kernel_is_valid() {
        let k = finalize(vec![], vec![]).unwrap();
        assert_eq!(k.instrs().len(), 0);
        assert_eq!(k.reg_count(), 0);
    }

    #[test]
    fn type_mismatch_in_bin() {
        let instrs = vec![Instr::Bin {
            op: BinOp::Add,
            dst: Reg(0),
            a: Operand::Imm(Value::F32(1.0)),
            b: Operand::Imm(Value::U32(1)),
        }];
        let err = finalize(instrs, vec![Type::F32]).unwrap_err();
        assert!(matches!(err, SimtError::TypeMismatch { pc: 0, .. }));
    }

    #[test]
    fn shift_on_float_rejected() {
        let instrs = vec![Instr::Bin {
            op: BinOp::Shl,
            dst: Reg(0),
            a: Operand::Imm(Value::F32(1.0)),
            b: Operand::Imm(Value::F32(1.0)),
        }];
        assert!(finalize(instrs, vec![Type::F32]).is_err());
    }

    #[test]
    fn sfu_requires_f32() {
        let instrs = vec![Instr::Un {
            op: UnOp::Sqrt,
            dst: Reg(0),
            a: Operand::Imm(Value::U32(4)),
        }];
        assert!(finalize(instrs, vec![Type::U32]).is_err());
    }

    #[test]
    fn bad_register_reported() {
        let instrs = vec![Instr::Mov {
            dst: Reg(5),
            src: Operand::Imm(Value::U32(0)),
        }];
        assert_eq!(
            finalize(instrs, vec![Type::U32]).unwrap_err(),
            SimtError::BadRegister { pc: 0, reg: 5 }
        );
    }

    #[test]
    fn bad_param_reported() {
        let instrs = vec![Instr::Mov {
            dst: Reg(0),
            src: Operand::Param(2),
        }];
        assert_eq!(
            finalize(instrs, vec![Type::U32]).unwrap_err(),
            SimtError::BadParam { pc: 0, param: 2 }
        );
    }

    #[test]
    fn branch_target_out_of_range() {
        let instrs = vec![Instr::Bra {
            target: 5,
            cond: None,
        }];
        assert!(matches!(
            finalize(instrs, vec![]).unwrap_err(),
            SimtError::UndefinedLabel { label: 5 }
        ));
    }

    #[test]
    fn branch_cond_must_be_pred() {
        let instrs = vec![Instr::Bra {
            target: 1,
            cond: Some(BranchCond {
                reg: Reg(0),
                negate: false,
            }),
        }];
        assert!(finalize(instrs, vec![Type::U32]).is_err());
    }

    #[test]
    fn cmp_writes_pred() {
        let instrs = vec![Instr::Cmp {
            op: CmpOp::Lt,
            dst: Reg(0),
            a: Operand::Imm(Value::U32(1)),
            b: Operand::Imm(Value::U32(2)),
        }];
        assert!(finalize(instrs.clone(), vec![Type::U32]).is_err());
        assert!(finalize(instrs, vec![Type::Pred]).is_ok());
    }

    #[test]
    fn ld_addr_must_be_u32() {
        let instrs = vec![Instr::Ld {
            dst: Reg(0),
            space: Space::Global,
            addr: Addr::base(Value::F32(0.0)),
        }];
        assert!(finalize(instrs, vec![Type::F32]).is_err());
    }

    #[test]
    fn atomic_cas_needs_compare_and_int() {
        let no_compare = vec![Instr::Atom {
            op: AtomOp::Cas,
            dst: None,
            space: Space::Global,
            addr: Addr::base(Value::U32(0)),
            src: Operand::Imm(Value::U32(1)),
            compare: None,
        }];
        assert!(finalize(no_compare, vec![]).is_err());

        let f32_cas = vec![Instr::Atom {
            op: AtomOp::Cas,
            dst: None,
            space: Space::Global,
            addr: Addr::base(Value::U32(0)),
            src: Operand::Imm(Value::F32(1.0)),
            compare: Some(Operand::Imm(Value::F32(0.0))),
        }];
        assert!(finalize(f32_cas, vec![]).is_err());
    }

    #[test]
    fn check_args_validates_count_and_types() {
        let k = Kernel::finalize(
            "t",
            vec![],
            vec![],
            vec![ParamDecl {
                name: "n".into(),
                ty: Type::U32,
            }],
            0,
            0,
        )
        .unwrap();
        assert!(k.check_args(&[Value::U32(4)]).is_ok());
        assert!(k.check_args(&[]).is_err());
        assert!(k.check_args(&[Value::F32(1.0)]).is_err());
        assert!(k.check_args(&[Value::U32(1), Value::U32(2)]).is_err());
    }

    #[test]
    fn content_hash_is_stable_and_discriminates() {
        let build = |imm: u32| {
            let instrs = vec![Instr::Mov {
                dst: Reg(0),
                src: Operand::Imm(Value::U32(imm)),
            }];
            finalize(instrs, vec![Type::U32]).unwrap()
        };
        // Independently built identical kernels agree...
        assert_eq!(build(7).content_hash(), build(7).content_hash());
        // ...and a one-immediate change re-keys.
        assert_ne!(build(7).content_hash(), build(8).content_hash());
        // Static memory sizes are part of the content.
        let a = Kernel::finalize("t", vec![], vec![], vec![], 0, 0).unwrap();
        let b = Kernel::finalize("t", vec![], vec![], vec![], 128, 0).unwrap();
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn reconvergence_exposed() {
        // Guard: 0 cbra->2, 1 mov, 2 mov.
        let instrs = vec![
            Instr::Bra {
                target: 2,
                cond: Some(BranchCond {
                    reg: Reg(0),
                    negate: false,
                }),
            },
            Instr::Mov {
                dst: Reg(1),
                src: Operand::Imm(Value::U32(0)),
            },
            Instr::Mov {
                dst: Reg(1),
                src: Operand::Imm(Value::U32(1)),
            },
        ];
        let k = finalize(instrs, vec![Type::Pred, Type::U32]).unwrap();
        assert_eq!(k.reconvergence_pc(0), Some(2));
        assert_eq!(k.reconvergence_pc(1), None);
    }
}
