//! Seeded random kernel generator for the cross-backend differential
//! harness.
//!
//! `tests/backend_diff.rs` proves the scalar and SIMD engines
//! bit-identical on the 40+ registry workloads — real programs, but a
//! fixed set. This module manufactures *hundreds* of structurally
//! distinct kernels from a seed, spreading the same axes the paper's
//! AIWC-style characterization measures: branch divergence, memory
//! stride/irregularity, atomic density, barrier pressure, loop depth and
//! arithmetic mix. Every generated kernel is safe by construction —
//! guaranteed to build, terminate, and stay in bounds — so a failure in
//! the harness is always a backend divergence, never a broken input.
//!
//! # Safety invariants (what makes a generated kernel well-formed)
//!
//! * All loads index a **read-only** buffer (`src`/`fsrc`) through
//!   `rem n`, so they are in bounds and unaffected by the kernel's own
//!   writes.
//! * Global stores go only to `out[i]`/`fout[i]` where `i` is the global
//!   thread id and the buffers have exactly one slot per thread —
//!   disjoint across blocks, so thread-sharded characterization replays
//!   identically.
//! * Global atomics hit a tiny `atoms` buffer (data-dependent slot); a
//!   kernel that rolls atomics is simply non-shardable and exercises the
//!   serial fallback instead.
//! * Integer division/remainder divisors are `x | 1` — never zero.
//!   Signed division is never generated (`i32::MIN / -1` would trap).
//! * Loops are `for_range_u32` with a trip count fixed at generation
//!   time; there is no data-dependent backedge, so termination is
//!   structural.
//! * Barriers only appear at the structural top level (never under a
//!   divergent `if_`), so they cannot deadlock or trip the
//!   barrier-divergence check.
//! * Accumulators are mutated with `assign` (a masked move), so a
//!   divergent region updates only its active lanes — inactive lanes
//!   keep the old value, exactly like hand-written divergent code.
//!
//! The generator deliberately emits the three fusable adjacent pairs
//! ([`crate::decode::Fusion`]) — structured `if_` predicates
//! (cmp + branch), explicit mul→add chains, and load→convert — so the
//! differential and fusion-equivalence suites exercise superinstructions
//! on every seed, not just on registry kernels that happen to contain
//! them.

use crate::builder::KernelBuilder;
use crate::exec::{BufferHandle, Device};
use crate::instr::{Reg, Value};
use crate::kernel::Kernel;
use crate::launch::LaunchConfig;
use crate::SimtError;

/// Slots in the global atomic scratch buffer.
pub const ATOM_SLOTS: u32 = 16;
/// Slots in the shared-memory scratch used by barrier rounds.
pub const SHARED_SLOTS: u32 = 32;

/// A tiny deterministic RNG (splitmix64): one `u64` of state, full
/// 64-bit avalanche per draw. Not cryptographic — just stable across
/// platforms and good enough to decorrelate the generator's choices.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32-bit draw.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u32) -> u32 {
        assert!(n > 0, "Rng::below(0)");
        (self.next_u64() % n as u64) as u32
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u32) -> bool {
        self.below(100) < percent
    }
}

/// The generator's tuning axes — one knob per characterization axis the
/// differential harness wants spread. [`KgenKnobs::from_seed`] derives a
/// point in this space from a single seed; tests that want a specific
/// corner (e.g. maximum divergence, zero atomics) can set fields
/// directly.
#[derive(Debug, Clone)]
pub struct KgenKnobs {
    /// Seed for the instruction-selection stream (also names the kernel).
    pub seed: u64,
    /// Number of generated body regions (straight-line op clusters).
    pub ops: u32,
    /// Percent chance a region is wrapped in a data-dependent `if_`.
    pub divergence: u32,
    /// Maximum trip count of generated loops (0 = no loops).
    pub loop_iters: u32,
    /// Stride multiplier folded into load indices (1 = unit stride).
    pub stride: u32,
    /// Percent chance a region is a global atomic.
    pub atomic_density: u32,
    /// Percent chance of a shared-memory + barrier round between regions.
    pub barrier_density: u32,
    /// Grid size in blocks.
    pub blocks: u32,
    /// Threads per block (deliberately includes non-multiples of 32, so
    /// tail warps with partial live masks are always in play).
    pub threads_per_block: u32,
}

impl KgenKnobs {
    /// Spreads a seed across the knob space. Nearby seeds land on very
    /// different points (each axis draws from its own splitmix stream).
    pub fn from_seed(seed: u64) -> Self {
        let mut r = Rng::new(seed ^ 0xa076_1d64_78bd_642f);
        // Small thread counts keep a single generated kernel cheap while
        // still covering multi-warp blocks and partial tail warps.
        const TPB: [u32; 8] = [32, 48, 64, 96, 128, 160, 200, 256];
        Self {
            seed,
            ops: 4 + r.below(14),
            divergence: r.below(70),
            loop_iters: r.below(6),
            stride: 1 + r.below(7),
            atomic_density: r.below(25),
            barrier_density: r.below(30),
            blocks: 1 + r.below(4),
            threads_per_block: TPB[r.below(TPB.len() as u32) as usize],
        }
    }

    /// Total threads = one output slot per thread.
    pub fn total_threads(&self) -> u32 {
        self.blocks * self.threads_per_block
    }
}

/// A generated kernel plus everything needed to launch it.
#[derive(Debug)]
pub struct GeneratedKernel {
    /// The built, validated kernel.
    pub kernel: Kernel,
    /// Launch geometry (1-D, from the knobs).
    pub config: LaunchConfig,
    /// The knob point it was generated from.
    pub knobs: KgenKnobs,
}

/// Buffer handles for one allocation of a generated kernel's arguments.
#[derive(Debug)]
pub struct KgenArgs {
    /// Launch arguments, in kernel parameter order.
    pub args: Vec<Value>,
    /// Per-thread `u32` output buffer.
    pub out: BufferHandle,
    /// Per-thread `f32` output buffer.
    pub fout: BufferHandle,
    /// Global atomic scratch ([`ATOM_SLOTS`] slots).
    pub atoms: BufferHandle,
}

impl GeneratedKernel {
    /// Allocates and deterministically initializes the kernel's buffers
    /// on `dev`. Input data is a pure function of the seed, so two
    /// devices given the same generated kernel start bit-identical.
    pub fn alloc_args(&self, dev: &mut Device) -> KgenArgs {
        let n = self.knobs.total_threads();
        let mut r = Rng::new(self.knobs.seed ^ 0x53_4741_5247_454e); // data stream
        let src: Vec<u32> = (0..n).map(|_| r.next_u32()).collect();
        // Small positive floats: keeps f32 chains numerically busy
        // without instantly saturating to inf.
        let fsrc: Vec<f32> = (0..n).map(|_| (r.below(4096) as f32) / 256.0).collect();
        let src = dev.alloc_u32(&src);
        let fsrc = dev.alloc_f32(&fsrc);
        let out = dev.alloc_zeroed_u32(n as usize);
        let fout = dev.alloc_zeroed_f32(n as usize);
        let atoms = dev.alloc_zeroed_u32(ATOM_SLOTS as usize);
        KgenArgs {
            args: vec![
                src.arg(),
                fsrc.arg(),
                out.arg(),
                fout.arg(),
                atoms.arg(),
                Value::U32(n),
            ],
            out,
            fout,
            atoms,
        }
    }
}

/// One straight-line op cluster, planned before emission (the plan holds
/// every random choice, so emission itself is deterministic and can run
/// inside builder closures without threading the RNG through them).
#[derive(Debug, Clone, Copy)]
enum Region {
    /// `t = acc * m; acc = t + a` — the MulAdd fusion pair.
    MulAddPair { m: u32, a: u32 },
    /// `v = ld src[(acc * stride + i) % n]; facc += f32(v)` — the LdCvt
    /// fusion pair behind a strided, data-dependent gather.
    LdCvt,
    /// `x = ld fsrc[(acc + salt) % n]; facc = facc <op> x`.
    F32Load { salt: u32, op: u32 },
    /// `facc = facc <op> imm`.
    F32Arith { imm_bits: u32, op: u32 },
    /// `acc = acc <bitop> imm`.
    U32Mix { imm: u32, op: u32 },
    /// `acc += imm / (acc | 1)` or `acc = acc % (imm | 1)`.
    DivRem { imm: u32, rem: bool },
    /// `p = acc < t; acc = p ? acc ^ imm : acc`.
    Sel { t: u32, imm: u32 },
    /// SFU unary on `facc` (abs first, so sqrt/log see non-negatives
    /// often enough to produce finite values).
    Sfu { op: u32 },
    /// `y = i32(facc) <op> imm; acc += u32(y)`.
    I32Arith { imm: i32, op: u32 },
    /// `atoms[acc % ATOM_SLOTS] += 1` (global atomic).
    Atomic,
}

/// A top-level program item: a (possibly divergent) region, a bounded
/// loop over regions, or a shared-memory + barrier round.
#[derive(Debug, Clone)]
enum TopItem {
    /// `diverge`: wrap in `if (acc & 31) < t` (None = straight-line).
    Region { r: Region, diverge: Option<u32> },
    /// `for j in 0..iters { acc += j; <body> }`.
    Loop { iters: u32, body: Vec<Region> },
    /// `sh[tid % S] = acc; bar; acc += sh[(tid+1) % S]; bar`.
    SharedRound,
}

fn plan_region(r: &mut Rng, knobs: &KgenKnobs) -> Region {
    if r.chance(knobs.atomic_density) {
        return Region::Atomic;
    }
    match r.below(9) {
        0 => Region::MulAddPair {
            m: r.next_u32() | 1,
            a: r.next_u32(),
        },
        1 => Region::LdCvt,
        2 => Region::F32Load {
            salt: r.next_u32(),
            op: r.below(4),
        },
        3 => Region::F32Arith {
            imm_bits: ((1.0 + r.below(512) as f32 / 128.0) * if r.chance(30) { -1.0 } else { 1.0 })
                .to_bits(),
            op: r.below(4),
        },
        4 => Region::U32Mix {
            imm: r.next_u32(),
            op: r.below(7),
        },
        5 => Region::DivRem {
            imm: r.next_u32(),
            rem: r.chance(50),
        },
        6 => Region::Sel {
            t: r.next_u32(),
            imm: r.next_u32(),
        },
        7 => Region::Sfu { op: r.below(5) },
        _ => Region::I32Arith {
            imm: r.next_u32() as i32 % 10_000,
            op: r.below(4),
        },
    }
}

fn plan(knobs: &KgenKnobs) -> Vec<TopItem> {
    let mut r = Rng::new(knobs.seed);
    let mut items = Vec::new();
    let mut ops_left = knobs.ops;
    while ops_left > 0 {
        if r.chance(knobs.barrier_density) {
            items.push(TopItem::SharedRound);
            ops_left = ops_left.saturating_sub(1);
            continue;
        }
        if knobs.loop_iters > 0 && r.chance(20) {
            let body_len = (1 + r.below(3)).min(ops_left);
            let body = (0..body_len).map(|_| plan_region(&mut r, knobs)).collect();
            items.push(TopItem::Loop {
                iters: 1 + r.below(knobs.loop_iters),
                body,
            });
            ops_left -= body_len;
            continue;
        }
        let diverge = r.chance(knobs.divergence).then(|| 1 + r.below(31));
        items.push(TopItem::Region {
            r: plan_region(&mut r, knobs),
            diverge,
        });
        ops_left -= 1;
    }
    items
}

/// Kernel-body state threaded through emission: the parameters and the
/// two accumulator variables every region reads and `assign`s.
struct Emit {
    src: crate::instr::Operand,
    fsrc: crate::instr::Operand,
    atoms: crate::instr::Operand,
    n: crate::instr::Operand,
    i: Reg,
    acc: Reg,
    facc: Reg,
    stride: u32,
}

fn emit_region(b: &mut KernelBuilder, e: &Emit, r: Region) {
    match r {
        Region::MulAddPair { m, a } => {
            let t = b.mul_u32(e.acc, Value::U32(m));
            let s = b.add_u32(t, Value::U32(a));
            b.assign(e.acc, s);
        }
        Region::LdCvt => {
            let t = b.mad_u32(e.acc, Value::U32(e.stride), e.i);
            let idx = b.rem_u32(t, e.n);
            let addr = b.index(e.src, idx, 4);
            let v = b.ld_global_u32(addr);
            let f = b.to_f32(v);
            let s = b.add_f32(e.facc, f);
            b.assign(e.facc, s);
        }
        Region::F32Load { salt, op } => {
            let t = b.add_u32(e.acc, Value::U32(salt));
            let idx = b.rem_u32(t, e.n);
            let addr = b.index(e.fsrc, idx, 4);
            let x = b.ld_global_f32(addr);
            let s = match op {
                0 => b.add_f32(e.facc, x),
                1 => b.sub_f32(e.facc, x),
                2 => b.min_f32(e.facc, x),
                _ => b.max_f32(e.facc, x),
            };
            b.assign(e.facc, s);
        }
        Region::F32Arith { imm_bits, op } => {
            let imm = Value::F32(f32::from_bits(imm_bits));
            let s = match op {
                0 => b.add_f32(e.facc, imm),
                1 => b.sub_f32(e.facc, imm),
                2 => b.mul_f32(e.facc, imm),
                _ => b.div_f32(e.facc, imm),
            };
            b.assign(e.facc, s);
        }
        Region::U32Mix { imm, op } => {
            let s = match op {
                0 => b.xor_u32(e.acc, Value::U32(imm)),
                1 => b.and_u32(e.acc, Value::U32(imm | 0xffff)),
                2 => b.or_u32(e.acc, Value::U32(imm & 0xffff)),
                3 => b.add_u32(e.acc, Value::U32(imm)),
                4 => b.sub_u32(e.acc, Value::U32(imm)),
                5 => b.shl_u32(e.acc, Value::U32(imm & 7)),
                _ => b.shr_u32(e.acc, Value::U32(imm & 7)),
            };
            b.assign(e.acc, s);
        }
        Region::DivRem { imm, rem } => {
            let s = if rem {
                b.rem_u32(e.acc, Value::U32(imm | 1))
            } else {
                let d = b.or_u32(e.acc, Value::U32(1));
                let q = b.div_u32(Value::U32(imm), d);
                b.add_u32(e.acc, q)
            };
            b.assign(e.acc, s);
        }
        Region::Sel { t, imm } => {
            let p = b.lt_u32(e.acc, Value::U32(t));
            let alt = b.xor_u32(e.acc, Value::U32(imm));
            let s = b.sel_u32(p, alt, e.acc);
            b.assign(e.acc, s);
        }
        Region::Sfu { op } => {
            let s = match op {
                0 => {
                    let a = b.abs_f32(e.facc);
                    b.sqrt_f32(a)
                }
                1 => b.sin_f32(e.facc),
                2 => b.cos_f32(e.facc),
                3 => {
                    let a = b.abs_f32(e.facc);
                    let a1 = b.add_f32(a, Value::F32(1.0));
                    b.log2_f32(a1)
                }
                _ => {
                    let a = b.abs_f32(e.facc);
                    let a1 = b.add_f32(a, Value::F32(0.5));
                    b.rsqrt_f32(a1)
                }
            };
            b.assign(e.facc, s);
        }
        Region::I32Arith { imm, op } => {
            let x = b.to_i32(e.facc);
            let y = match op {
                0 => b.add_i32(x, Value::I32(imm)),
                1 => b.sub_i32(x, Value::I32(imm)),
                2 => b.min_i32(x, Value::I32(imm)),
                _ => b.max_i32(x, Value::I32(imm)),
            };
            let u = b.to_u32(y);
            let s = b.add_u32(e.acc, u);
            b.assign(e.acc, s);
        }
        Region::Atomic => {
            let slot = b.rem_u32(e.acc, Value::U32(ATOM_SLOTS));
            let addr = b.index(e.atoms, slot, 4);
            b.atomic_add_global_u32(addr, Value::U32(1));
        }
    }
}

/// Generates the kernel at a knob point. Infallible for any knob values
/// (the builder output is valid by construction); the `Result` only
/// surfaces internal builder invariant violations.
///
/// # Errors
///
/// Propagates [`KernelBuilder::build`] validation errors (none are
/// expected from this generator; a failure is a generator bug).
pub fn generate(knobs: KgenKnobs) -> Result<GeneratedKernel, SimtError> {
    let items = plan(&knobs);
    let uses_shared = items.iter().any(|i| matches!(i, TopItem::SharedRound));

    let mut b = KernelBuilder::new(format!("kgen_{:016x}", knobs.seed));
    let src = b.param_u32("src");
    let fsrc = b.param_u32("fsrc");
    let out = b.param_u32("out");
    let fout = b.param_u32("fout");
    let atoms = b.param_u32("atoms");
    let n = b.param_u32("n");
    let sh = uses_shared.then(|| b.alloc_shared(SHARED_SLOTS * 4));

    let i = b.global_tid_x();
    let acc = b.var_u32(i);
    let seed_mix = b.xor_u32(acc, Value::U32(knobs.seed as u32));
    b.assign(acc, seed_mix);
    let fi = b.to_f32(i);
    let facc = b.var_f32(fi);
    let e = Emit {
        src,
        fsrc,
        atoms,
        n,
        i,
        acc,
        facc,
        stride: knobs.stride,
    };

    for item in &items {
        match item {
            TopItem::Region { r, diverge } => match diverge {
                None => emit_region(&mut b, &e, *r),
                Some(t) => {
                    // `(acc & 31) < t` — a lane-varying predicate, and the
                    // cmp lands directly before the structured-if branch,
                    // forming a CmpBranch fusion pair.
                    let masked = b.and_u32(e.acc, Value::U32(31));
                    let p = b.lt_u32(masked, Value::U32(*t));
                    let r = *r;
                    b.if_(p, |b| emit_region(b, &e, r));
                }
            },
            TopItem::Loop { iters, body } => {
                b.for_range_u32(Value::U32(0), Value::U32(*iters), 1, |b, j| {
                    let s = b.add_u32(e.acc, j);
                    b.assign(e.acc, s);
                    for r in body {
                        emit_region(b, &e, *r);
                    }
                });
            }
            TopItem::SharedRound => {
                let sh = sh.expect("planned shared round allocates shared");
                let tid = b.var_u32(b.tid_x());
                let slot = b.rem_u32(tid, Value::U32(SHARED_SLOTS));
                let a0 = b.index(sh, slot, 4);
                b.st_shared_u32(a0, e.acc);
                b.barrier();
                let t1 = b.add_u32(tid, Value::U32(1));
                let slot1 = b.rem_u32(t1, Value::U32(SHARED_SLOTS));
                let a1 = b.index(sh, slot1, 4);
                let v = b.ld_shared_u32(a1);
                let s = b.add_u32(e.acc, v);
                b.assign(e.acc, s);
                b.barrier();
            }
        }
    }

    // Every thread commits both accumulators to its private slot, so
    // the whole computation is observable in the memory image.
    let oa = b.index(out, i, 4);
    b.st_global_u32(oa, acc);
    let fa = b.index(fout, i, 4);
    b.st_global_f32(fa, facc);

    Ok(GeneratedKernel {
        kernel: b.build()?,
        config: LaunchConfig::new(knobs.blocks, knobs.threads_per_block),
        knobs,
    })
}

/// [`generate`] at the knob point [`KgenKnobs::from_seed`] derives.
pub fn generate_seeded(seed: u64) -> Result<GeneratedKernel, SimtError> {
    generate(KgenKnobs::from_seed(seed))
}

/// Knob point for an adversarial cache-thrashing partner kernel, used
/// by the pairwise-interference harness as a co-resident aggressor that
/// no curated registry pair can match: every region is a strided,
/// data-dependent gather ([`Region::LdCvt`]-heavy mix via zero
/// divergence/atomic/barrier densities), the stride is a large prime so
/// consecutive loads land in different 128-byte lines, and looped
/// regions re-walk the whole footprint, widening the victim's reuse
/// distances as far as the shared timeline allows.
///
/// `atomic_density` is zero by construction: the thrasher stays free of
/// global atomics, so it can co-schedule (and block-shard) against any
/// partner.
pub fn thrash_knobs(seed: u64) -> KgenKnobs {
    KgenKnobs {
        seed,
        ops: 12,
        divergence: 0,
        loop_iters: 5,
        stride: 97,
        atomic_density: 0,
        barrier_density: 0,
        blocks: 8,
        threads_per_block: 256,
    }
}

/// Generates the seeded cache-thrashing partner kernel
/// ([`thrash_knobs`]).
///
/// # Errors
///
/// Propagates kernel-build errors (none are expected: generated kernels
/// are safe by construction).
pub fn generate_thrasher(seed: u64) -> Result<GeneratedKernel, SimtError> {
    generate(thrash_knobs(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_seeded(42).unwrap();
        let b = generate_seeded(42).unwrap();
        assert_eq!(a.kernel.content_hash(), b.kernel.content_hash());
        assert_eq!(a.config, b.config);
        let c = generate_seeded(43).unwrap();
        assert_ne!(a.kernel.content_hash(), c.kernel.content_hash());
    }

    #[test]
    fn generated_kernels_build_and_run() {
        for seed in 0..32 {
            let g = generate_seeded(seed).unwrap();
            let mut dev = Device::with_backend(BackendKind::Simd);
            let args = g.alloc_args(&mut dev);
            let stats = dev
                .launch(&g.kernel, &g.config, &args.args)
                .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            assert!(stats.thread_instrs > 0, "seed {seed} executed nothing");
            // Every thread stored to its private slot.
            let out = dev.read_u32(&args.out);
            assert_eq!(out.len(), g.knobs.total_threads() as usize);
        }
    }

    #[test]
    fn knob_axes_are_spread_and_fusion_is_seeded() {
        let mut divergent = 0;
        let mut with_atomics = 0;
        let mut with_barriers = 0;
        let mut fused = 0;
        for seed in 0..64 {
            let g = generate_seeded(seed).unwrap();
            let k = &g.knobs;
            if k.divergence > 30 {
                divergent += 1;
            }
            if k.atomic_density > 10 {
                with_atomics += 1;
            }
            if k.barrier_density > 15 {
                with_barriers += 1;
            }
            if g.kernel.decoded().fusion_count() > 0 {
                fused += 1;
            }
        }
        assert!(divergent > 5, "divergence axis collapsed: {divergent}");
        assert!(with_atomics > 5, "atomic axis collapsed: {with_atomics}");
        assert!(with_barriers > 5, "barrier axis collapsed: {with_barriers}");
        // Structured ifs + mul/add + ld/cvt seeding should make fusion
        // common across seeds.
        assert!(fused > 40, "fusion rarely seeded: {fused}/64");
    }

    #[test]
    fn thrasher_is_atomic_free_deterministic_and_runs() {
        let g = generate_thrasher(7).unwrap();
        assert!(
            g.kernel.is_block_shardable(),
            "thrasher must stay free of global atomics"
        );
        let again = generate_thrasher(7).unwrap();
        assert_eq!(g.kernel.content_hash(), again.kernel.content_hash());
        assert_ne!(
            g.kernel.content_hash(),
            generate_thrasher(8).unwrap().kernel.content_hash()
        );
        let mut dev = Device::with_backend(BackendKind::Simd);
        let args = g.alloc_args(&mut dev);
        let stats = dev.launch(&g.kernel, &g.config, &args.args).unwrap();
        // The whole point is memory pressure: a wide-strided gather per
        // region over a multi-KiB footprint.
        assert!(stats.thread_instrs > 0);
        assert_eq!(stats.blocks, 8);
    }
}
