//! Kernel launch geometry.

use crate::SimtError;

/// Grid/block dimensions for a kernel launch (2-D; the paper's workloads do
/// not need the z dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks in x.
    pub grid_x: u32,
    /// Number of blocks in y.
    pub grid_y: u32,
    /// Threads per block in x.
    pub block_x: u32,
    /// Threads per block in y.
    pub block_y: u32,
}

impl LaunchConfig {
    /// A 1-D launch of `grid_x` × `block_x`.
    pub fn new(grid_x: u32, block_x: u32) -> Self {
        Self {
            grid_x,
            grid_y: 1,
            block_x,
            block_y: 1,
        }
    }

    /// A 2-D launch.
    pub fn new_2d(grid_x: u32, grid_y: u32, block_x: u32, block_y: u32) -> Self {
        Self {
            grid_x,
            grid_y,
            block_x,
            block_y,
        }
    }

    /// Enough `block`-sized blocks (1-D) to cover `elems` elements.
    pub fn linear(elems: u32, block: u32) -> Self {
        let grid = elems.div_ceil(block.max(1)).max(1);
        Self::new(grid, block)
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> usize {
        self.block_x as usize * self.block_y as usize
    }

    /// Warps per block (threads rounded up to whole warps); the warp
    /// count the executor materializes per block.
    pub fn warps_per_block(&self) -> usize {
        self.threads_per_block().div_ceil(crate::WARP_SIZE)
    }

    /// Live-lane mask of warp `w` within a block: all 32 lanes for full
    /// warps, the low remainder bits for the tail warp of a block whose
    /// thread count is not a multiple of [`crate::WARP_SIZE`]. Both
    /// execution backends initialize warps from this.
    pub fn warp_live_mask(&self, w: usize) -> u32 {
        let threads = self.threads_per_block();
        let lanes = threads
            .saturating_sub(w * crate::WARP_SIZE)
            .min(crate::WARP_SIZE);
        if lanes == crate::WARP_SIZE {
            u32::MAX
        } else {
            (1u32 << lanes) - 1
        }
    }

    /// Blocks in the grid.
    pub fn blocks(&self) -> usize {
        self.grid_x as usize * self.grid_y as usize
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> usize {
        self.threads_per_block() * self.blocks()
    }

    /// Validates the geometry against device limits.
    ///
    /// # Errors
    ///
    /// * [`SimtError::BadGridSize`] for zero grid dimensions.
    /// * [`SimtError::BadBlockSize`] for 0 or more than 1024 threads/block.
    pub fn validate(&self) -> Result<(), SimtError> {
        if self.grid_x == 0 || self.grid_y == 0 {
            return Err(SimtError::BadGridSize);
        }
        let t = self.threads_per_block();
        if t == 0 || t > 1024 {
            return Err(SimtError::BadBlockSize { threads: t });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_covers_elements() {
        let c = LaunchConfig::linear(1000, 256);
        assert_eq!(c.grid_x, 4);
        assert!(c.total_threads() >= 1000);
    }

    #[test]
    fn linear_zero_elems_still_one_block() {
        let c = LaunchConfig::linear(0, 128);
        assert_eq!(c.blocks(), 1);
    }

    #[test]
    fn counts() {
        let c = LaunchConfig::new_2d(2, 3, 8, 4);
        assert_eq!(c.threads_per_block(), 32);
        assert_eq!(c.blocks(), 6);
        assert_eq!(c.total_threads(), 192);
        assert_eq!(c.warps_per_block(), 1);
        assert_eq!(LaunchConfig::new(1, 33).warps_per_block(), 2);
        assert_eq!(LaunchConfig::new(1, 1).warps_per_block(), 1);
    }

    #[test]
    fn validate_rejects_zero_grid() {
        assert_eq!(
            LaunchConfig::new_2d(0, 1, 32, 1).validate(),
            Err(SimtError::BadGridSize)
        );
    }

    #[test]
    fn validate_rejects_oversized_block() {
        assert!(LaunchConfig::new(1, 2048).validate().is_err());
        assert!(LaunchConfig::new(1, 0).validate().is_err());
        assert!(LaunchConfig::new(1, 1024).validate().is_ok());
    }
}
