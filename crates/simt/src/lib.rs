//! A SIMT GPU execution engine with a PTX-like kernel IR.
//!
//! This crate is the "GPU profiling substrate" of the gwc toolkit: it
//! executes data-parallel kernels the way a GPU does — a grid of thread
//! blocks, each block split into 32-lane warps that run in lock-step with a
//! reconvergence stack handling branch divergence — and streams a detailed
//! execution trace to pluggable [`trace::TraceObserver`]s. Everything a
//! microarchitecture-independent characterization needs (dynamic
//! instruction classes, per-lane register dataflow, per-lane memory
//! addresses, branch outcomes, barriers) is observable; nothing about
//! timing is modelled here, by design.
//!
//! # Architecture
//!
//! * [`instr`] — the typed register IR: values, operands, instructions.
//! * [`builder`] — [`builder::KernelBuilder`], an ergonomic DSL with
//!   structured control flow (`if_`, `while_`, `for_range`) that lowers to
//!   plain branches.
//! * [`kernel`] — finalized [`kernel::Kernel`]s: validated instructions plus
//!   the branch-reconvergence table derived from a post-dominator analysis
//!   ([`cfg`]).
//! * [`decode`] — the predecoded µop stream: the flat, type-monomorphized
//!   form the interpreter executes, decoded once per kernel and cached,
//!   plus a superinstruction-fusion side table for hot adjacent pairs.
//! * [`exec`] — the [`exec::Device`]: global/const memory, kernel launch,
//!   warp scheduling, the SIMT reconvergence stack, barriers and atomics.
//! * [`backend`] — runtime-selectable warp engines: the scalar reference
//!   and the 8-wide SIMD lane-group engine ([`simd`]), required to be
//!   bit-identical and differentially tested against each other.
//! * [`sched`] — policy-driven block dispatch: [`sched::BlockScheduler`]
//!   turns grid geometry into a deterministic [`sched::DispatchPlan`],
//!   which the device consumes for solo launches (trivial plan) and for
//!   co-scheduled kernel pairs ([`exec::Device::launch_pair`]).
//! * [`kgen`] — a seeded random kernel generator (divergence / stride /
//!   atomic-density knobs) feeding the cross-backend differential
//!   harness hundreds of structurally safe kernels, plus an adversarial
//!   cache-thrashing partner for interference studies.
//! * [`trace`] — observer interfaces for streaming characterization.
//!
//! # Example
//!
//! ```
//! use gwc_simt::builder::KernelBuilder;
//! use gwc_simt::exec::Device;
//! use gwc_simt::instr::Value;
//! use gwc_simt::launch::LaunchConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // out[i] = a[i] + b[i]
//! let mut b = KernelBuilder::new("vec_add");
//! let a_ptr = b.param_u32("a");
//! let b_ptr = b.param_u32("b");
//! let out_ptr = b.param_u32("out");
//! let n = b.param_u32("n");
//! let i = b.global_tid_x();
//! let in_range = b.lt_u32(i, n);
//! b.if_(in_range, |b| {
//!     let ai = b.index(a_ptr, i, 4);
//!     let x = b.ld_global_f32(ai);
//!     let bi = b.index(b_ptr, i, 4);
//!     let y = b.ld_global_f32(bi);
//!     let sum = b.add_f32(x, y);
//!     let oi = b.index(out_ptr, i, 4);
//!     b.st_global_f32(oi, sum);
//! });
//! let kernel = b.build()?;
//!
//! let mut dev = Device::new();
//! let a = dev.alloc_f32(&[1.0, 2.0, 3.0]);
//! let bb = dev.alloc_f32(&[10.0, 20.0, 30.0]);
//! let out = dev.alloc_f32(&[0.0; 3]);
//! dev.launch(
//!     &kernel,
//!     &LaunchConfig::linear(3, 128),
//!     &[a.arg(), bb.arg(), out.arg(), Value::U32(3)],
//! )?;
//! assert_eq!(dev.read_f32(&out), vec![11.0, 22.0, 33.0]);
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod builder;
pub mod cfg;
pub mod decode;
pub mod disasm;
pub mod exec;
pub mod hash;
pub mod instr;
pub mod kernel;
pub mod kgen;
pub mod launch;
pub mod profile;
pub mod sched;
mod simd;
pub mod trace;

mod error;

pub use error::SimtError;

/// Number of lanes in a warp. Fixed at 32 (matching NVIDIA GPUs of the
/// paper's era and today); the characterization metrics are defined
/// relative to this width.
pub const WARP_SIZE: usize = 32;
