//! Execution-cost profiles: where the retired µops of a launch went.
//!
//! An [`ExecProfile`] counts, per µop class and per pc, how many
//! warp-level µops retired and how many lane-slots were active when they
//! did. Both backends bump it with two flat array adds per retired µop
//! (see the scalar prologue in [`crate::exec`] and `account` in the SIMD
//! engine), so collection is cheap enough to leave on whenever a
//! recorder is installed — and exactly one branch when it is not.
//!
//! Profiles are plain counter arrays, so shard profiles merge like
//! observers do: [`ExecProfile::merge`] is an elementwise add, hence
//! associative, commutative, and invariant under the block sharding of
//! the parallel characterization runtime.

use crate::instr::InstrClass;

/// Number of µop classes ([`InstrClass::ALL`]).
pub const N_CLASSES: usize = InstrClass::ALL.len();

/// How many hotspot pcs a launch reports to the recorder.
pub const HOTSPOT_TOP_N: usize = 8;

/// Retired-µop counters at one attribution site (a class or a pc).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UopCounts {
    /// Warp-level µops retired (one per lock-step issue).
    pub warp_uops: u64,
    /// Active lane-slots summed over those µops.
    pub lane_uops: u64,
}

impl UopCounts {
    #[inline]
    fn add(&mut self, other: UopCounts) {
        self.warp_uops += other.warp_uops;
        self.lane_uops += other.lane_uops;
    }
}

/// Per-µop-class and per-pc retired-µop/active-lane counters for one
/// launch (or one block-range shard of a launch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecProfile {
    classes: [UopCounts; N_CLASSES],
    pcs: Vec<UopCounts>,
}

impl ExecProfile {
    /// An empty profile over a kernel with `n_pcs` decoded µops.
    pub fn new(n_pcs: usize) -> Self {
        Self {
            classes: [UopCounts::default(); N_CLASSES],
            pcs: vec![UopCounts::default(); n_pcs],
        }
    }

    /// Records one retired warp-level µop at `pc` with active mask
    /// `mask`. Two array bumps; called from the backends' lane loops.
    #[inline]
    pub(crate) fn bump(&mut self, pc: usize, class: InstrClass, mask: u32) {
        let lanes = mask.count_ones() as u64;
        let c = &mut self.classes[class as usize];
        c.warp_uops += 1;
        c.lane_uops += lanes;
        let p = &mut self.pcs[pc];
        p.warp_uops += 1;
        p.lane_uops += lanes;
    }

    /// Adds `other` into `self`, elementwise. Associative and
    /// commutative, so shard profiles may merge in any grouping.
    ///
    /// # Panics
    ///
    /// Panics if the profiles cover kernels of different lengths.
    pub fn merge(&mut self, other: &ExecProfile) {
        assert_eq!(
            self.pcs.len(),
            other.pcs.len(),
            "merging exec profiles of different kernels"
        );
        for (c, o) in self.classes.iter_mut().zip(&other.classes) {
            c.add(*o);
        }
        for (p, o) in self.pcs.iter_mut().zip(&other.pcs) {
            p.add(*o);
        }
    }

    /// Counters for one µop class.
    pub fn class_counts(&self, class: InstrClass) -> UopCounts {
        self.classes[class as usize]
    }

    /// All classes with their counters, in [`InstrClass::ALL`] order.
    pub fn classes(&self) -> impl Iterator<Item = (InstrClass, UopCounts)> + '_ {
        InstrClass::ALL
            .iter()
            .map(move |&c| (c, self.classes[c as usize]))
    }

    /// Per-pc counters, indexed by decoded µop index.
    pub fn pcs(&self) -> &[UopCounts] {
        &self.pcs
    }

    /// Totals over all classes.
    pub fn total(&self) -> UopCounts {
        let mut t = UopCounts::default();
        for c in &self.classes {
            t.add(*c);
        }
        t
    }

    /// The `n` hottest pcs by active lane-slots (ties broken by lower
    /// pc), hottest first. Zero-count pcs are never reported.
    pub fn top_pcs(&self, n: usize) -> Vec<(usize, UopCounts)> {
        let mut hot: Vec<(usize, UopCounts)> = self
            .pcs
            .iter()
            .enumerate()
            .filter(|(_, c)| c.warp_uops > 0)
            .map(|(pc, c)| (pc, *c))
            .collect();
        hot.sort_by(|a, b| b.1.lane_uops.cmp(&a.1.lane_uops).then(a.0.cmp(&b.0)));
        hot.truncate(n);
        hot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64, n_pcs: usize) -> ExecProfile {
        let mut p = ExecProfile::new(n_pcs);
        let mut x = seed;
        for pc in 0..n_pcs {
            // Deterministic pseudo-random counts per pc.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let class = InstrClass::ALL[(x >> 32) as usize % N_CLASSES];
            for _ in 0..(x % 5) {
                p.bump(pc, class, (x as u32) | 1);
            }
        }
        p
    }

    #[test]
    fn class_indices_match_all_order() {
        for (i, &c) in InstrClass::ALL.iter().enumerate() {
            assert_eq!(c as usize, i, "{c:?} discriminant out of ALL order");
        }
    }

    #[test]
    fn bump_updates_class_and_pc() {
        let mut p = ExecProfile::new(4);
        p.bump(2, InstrClass::FpAlu, 0b1011);
        p.bump(2, InstrClass::FpAlu, 0b0001);
        assert_eq!(
            p.class_counts(InstrClass::FpAlu),
            UopCounts {
                warp_uops: 2,
                lane_uops: 4
            }
        );
        assert_eq!(p.pcs()[2].warp_uops, 2);
        assert_eq!(p.pcs()[2].lane_uops, 4);
        assert_eq!(p.total().warp_uops, 2);
    }

    #[test]
    fn merge_is_commutative() {
        let a = sample(1, 16);
        let b = sample(2, 16);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative() {
        let a = sample(3, 16);
        let b = sample(4, 16);
        let c = sample(5, 16);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    #[should_panic(expected = "different kernels")]
    fn merge_rejects_mismatched_lengths() {
        let mut a = ExecProfile::new(4);
        a.merge(&ExecProfile::new(5));
    }

    #[test]
    fn top_pcs_ranks_by_lanes_then_pc() {
        let mut p = ExecProfile::new(5);
        p.bump(0, InstrClass::IntAlu, 0b1); // 1 lane
        p.bump(3, InstrClass::IntAlu, 0b1111); // 4 lanes
        p.bump(1, InstrClass::Move, 0b11); // 2 lanes
        p.bump(4, InstrClass::Move, 0b11); // 2 lanes (tie with pc 1)
        let top = p.top_pcs(3);
        let pcs: Vec<usize> = top.iter().map(|(pc, _)| *pc).collect();
        assert_eq!(pcs, vec![3, 1, 4]);
        assert_eq!(p.top_pcs(10).len(), 4, "zero-count pcs excluded");
    }
}
