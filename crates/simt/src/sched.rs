//! Policy-driven block dispatch for (co-)scheduled kernel launches.
//!
//! "Which block of which kernel runs next" is a scheduling decision, not
//! a property of the warp engine. This module makes that decision
//! explicit: a [`BlockScheduler`] turns the grid geometry of one or more
//! co-resident kernels into a [`DispatchPlan`] — a deterministic sequence
//! of `(kernel, block_range)` slices — and the executor
//! ([`crate::exec::Device`]) simply consumes the plan, one slice at a
//! time, with whichever warp engine the device is pinned to.
//!
//! The plan is a pure function of `(policy, grid geometry)`: no clocks,
//! no thread scheduling, no randomness. That is what lets the
//! determinism and cross-backend differential suites extend to every
//! policy unchanged — a co-scheduled launch retires exactly the same
//! per-kernel event stream on every backend and at every thread count,
//! because the interleaving itself is data.
//!
//! Every policy emits each kernel's blocks in ascending order, so a
//! kernel's own execution (including its global-atomics ordering) is
//! identical to its solo launch; co-residence changes *when* a kernel's
//! blocks run relative to its partner's, which is exactly the axis the
//! pairwise-interference characterization (`gwc-characterize`'s pair
//! profile) measures.

use std::ops::Range;

use crate::kernel::Kernel;
use crate::launch::LaunchConfig;
use crate::trace::{BranchEvent, InstrEvent, LaunchStats, MemEvent, TraceObserver};

/// One contiguous run of blocks of one co-scheduled kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchSlice {
    /// Index of the kernel in the co-schedule (0 for single launches).
    pub kernel: usize,
    /// Block range of that kernel's grid to execute, `[start, end)`.
    pub blocks: Range<u32>,
}

/// A deterministic dispatch sequence: the order in which block ranges of
/// co-scheduled kernels execute.
///
/// Invariants (checked by [`DispatchPlan::validate`], asserted in debug
/// builds wherever a plan is generated): every kernel's blocks are
/// covered exactly once with no overlap, and each kernel's slices appear
/// in ascending block order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchPlan {
    slices: Vec<DispatchSlice>,
}

impl DispatchPlan {
    /// The trivial single-kernel plan: one slice covering `blocks` of
    /// kernel 0. [`crate::exec::Device::run_block_range`] dispatches
    /// through this, so the solo launch path is plan-driven too —
    /// bit-identically to the pre-plan block loop.
    pub fn single(blocks: Range<u32>) -> Self {
        Self {
            slices: vec![DispatchSlice { kernel: 0, blocks }],
        }
    }

    /// Builds a plan from explicit slices (policies use this).
    pub fn from_slices(slices: Vec<DispatchSlice>) -> Self {
        Self { slices }
    }

    /// The dispatch sequence.
    pub fn slices(&self) -> &[DispatchSlice] {
        &self.slices
    }

    /// Total blocks the plan dispatches (all kernels).
    pub fn total_blocks(&self) -> u64 {
        self.slices
            .iter()
            .map(|s| (s.blocks.end - s.blocks.start) as u64)
            .sum()
    }

    /// Blocks the plan dispatches for `kernel`.
    pub fn blocks_of(&self, kernel: usize) -> u64 {
        self.slices
            .iter()
            .filter(|s| s.kernel == kernel)
            .map(|s| (s.blocks.end - s.blocks.start) as u64)
            .sum()
    }

    /// Checks the plan invariants against the grid sizes it was built
    /// for: per-kernel ascending, non-overlapping, gap-free coverage of
    /// `0..grids[k]` for every kernel.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self, grids: &[u32]) -> Result<(), String> {
        let mut next: Vec<u32> = vec![0; grids.len()];
        for (i, s) in self.slices.iter().enumerate() {
            let Some(&grid) = grids.get(s.kernel) else {
                return Err(format!(
                    "slice {i} names kernel {} of {}",
                    s.kernel,
                    grids.len()
                ));
            };
            if s.blocks.start > s.blocks.end {
                return Err(format!("slice {i}: inverted range {:?}", s.blocks));
            }
            if s.blocks.start != next[s.kernel] {
                return Err(format!(
                    "slice {i}: kernel {} jumps to block {} (expected {})",
                    s.kernel, s.blocks.start, next[s.kernel]
                ));
            }
            if s.blocks.end > grid {
                return Err(format!(
                    "slice {i}: kernel {} range {:?} exceeds grid {grid}",
                    s.kernel, s.blocks
                ));
            }
            next[s.kernel] = s.blocks.end;
        }
        for (k, (&done, &grid)) in next.iter().zip(grids).enumerate() {
            if done != grid {
                return Err(format!("kernel {k}: covered {done} of {grid} blocks"));
            }
        }
        Ok(())
    }
}

/// Decides the block dispatch order for a set of co-resident kernels.
///
/// Implementations must be pure functions of the grid geometry: the same
/// `grids` must always yield the same plan.
pub trait BlockScheduler {
    /// Builds the dispatch plan for kernels with `grids[k]` blocks each.
    fn plan(&self, grids: &[u32]) -> DispatchPlan;
}

/// Round-robin interleave: kernels alternate, `chunk` blocks at a time,
/// until every grid is exhausted. The finest-grained mixing — the
/// canonical high-contention co-schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRobinInterleave {
    /// Blocks each kernel dispatches per turn (≥ 1).
    pub chunk: u32,
}

impl Default for RoundRobinInterleave {
    fn default() -> Self {
        Self { chunk: 1 }
    }
}

impl BlockScheduler for RoundRobinInterleave {
    fn plan(&self, grids: &[u32]) -> DispatchPlan {
        let chunk = self.chunk.max(1);
        let mut next: Vec<u32> = vec![0; grids.len()];
        let mut slices = Vec::new();
        loop {
            let mut emitted = false;
            for (k, &grid) in grids.iter().enumerate() {
                if next[k] < grid {
                    let end = (next[k] + chunk).min(grid);
                    slices.push(DispatchSlice {
                        kernel: k,
                        blocks: next[k]..end,
                    });
                    next[k] = end;
                    emitted = true;
                }
            }
            if !emitted {
                return DispatchPlan::from_slices(slices);
            }
        }
    }
}

/// Streaming-multiprocessor count the SM-partitioned policy models. The
/// value matters only as a ratio (it sets the relative slice widths);
/// 16 matches the GT200-class machines of the source study.
pub const MODEL_SMS: u32 = 16;

/// SM-partitioned: the modeled machine's [`MODEL_SMS`] SMs are split
/// evenly between the kernels (remainder to the earlier kernels), and
/// each round dispatches every kernel's per-round share of blocks. A
/// kernel that exhausts its grid leaves its partition idle — partitions
/// are static, which is what distinguishes this policy from
/// [`LeftoverFill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmPartition {
    /// Modeled SM count split across the kernels.
    pub sms: u32,
}

impl Default for SmPartition {
    fn default() -> Self {
        Self { sms: MODEL_SMS }
    }
}

impl BlockScheduler for SmPartition {
    fn plan(&self, grids: &[u32]) -> DispatchPlan {
        let n = grids.len().max(1) as u32;
        let sms = self.sms.max(n);
        let base = sms / n;
        let rem = sms % n;
        let share: Vec<u32> = (0..grids.len() as u32)
            .map(|k| base + u32::from(k < rem))
            .collect();
        let mut next: Vec<u32> = vec![0; grids.len()];
        let mut slices = Vec::new();
        loop {
            let mut emitted = false;
            for (k, &grid) in grids.iter().enumerate() {
                if next[k] < grid {
                    let end = (next[k] + share[k]).min(grid);
                    slices.push(DispatchSlice {
                        kernel: k,
                        blocks: next[k]..end,
                    });
                    next[k] = end;
                    emitted = true;
                }
            }
            if !emitted {
                return DispatchPlan::from_slices(slices);
            }
        }
    }
}

/// Leftover-fill: the kernel with the larger grid is the primary and
/// streams through the machine in full-machine waves of [`MODEL_SMS`]
/// blocks; the other kernel's blocks fill the capacity left at wave
/// boundaries, spread evenly across the primary's timeline. Grid-size
/// ties break toward kernel 0 as primary. The coarsest mixing of the
/// three policies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeftoverFill;

impl BlockScheduler for LeftoverFill {
    fn plan(&self, grids: &[u32]) -> DispatchPlan {
        // General n-kernel form: the largest grid is primary, every other
        // kernel is a filler spread evenly through its waves.
        let Some(primary) = (0..grids.len()).max_by_key(|&k| (grids[k], std::cmp::Reverse(k)))
        else {
            return DispatchPlan::default();
        };
        let big = grids[primary];
        let mut slices = Vec::new();
        if big == 0 {
            // Degenerate: no primary blocks; emit fillers whole.
            for (k, &g) in grids.iter().enumerate() {
                if k != primary && g > 0 {
                    slices.push(DispatchSlice {
                        kernel: k,
                        blocks: 0..g,
                    });
                }
            }
            return DispatchPlan::from_slices(slices);
        }
        let waves = big.div_ceil(MODEL_SMS) as u64;
        let mut next: Vec<u32> = vec![0; grids.len()];
        for w in 0..waves {
            let start = (w * MODEL_SMS as u64) as u32;
            let end = ((w + 1) * MODEL_SMS as u64).min(big as u64) as u32;
            slices.push(DispatchSlice {
                kernel: primary,
                blocks: start..end,
            });
            for (k, &g) in grids.iter().enumerate() {
                if k == primary || g == 0 {
                    continue;
                }
                // After wave w, filler k should have dispatched
                // floor((w + 1) * g / waves) blocks — an even spread.
                let due = (((w + 1) * g as u64) / waves) as u32;
                if due > next[k] {
                    slices.push(DispatchSlice {
                        kernel: k,
                        blocks: next[k]..due,
                    });
                    next[k] = due;
                }
            }
        }
        DispatchPlan::from_slices(slices)
    }
}

/// The co-scheduling policies selectable from the command line
/// (`regen --policy` / `bench_run --policy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// [`RoundRobinInterleave`] with chunk 1.
    RoundRobin,
    /// [`SmPartition`] with [`MODEL_SMS`] SMs.
    SmPartitioned,
    /// [`LeftoverFill`].
    LeftoverFill,
}

impl SchedPolicy {
    /// Every policy, in presentation order.
    pub const ALL: [SchedPolicy; 3] = [
        SchedPolicy::RoundRobin,
        SchedPolicy::SmPartitioned,
        SchedPolicy::LeftoverFill,
    ];

    /// Parses a CLI spelling; `None` if unrecognized.
    pub fn parse(s: &str) -> Option<SchedPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "round-robin" | "rr" => Some(SchedPolicy::RoundRobin),
            "sm-partitioned" | "sm" => Some(SchedPolicy::SmPartitioned),
            "leftover-fill" | "fill" => Some(SchedPolicy::LeftoverFill),
            _ => None,
        }
    }

    /// Canonical CLI/report spelling.
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::RoundRobin => "round-robin",
            SchedPolicy::SmPartitioned => "sm-partitioned",
            SchedPolicy::LeftoverFill => "leftover-fill",
        }
    }
}

impl BlockScheduler for SchedPolicy {
    fn plan(&self, grids: &[u32]) -> DispatchPlan {
        match self {
            SchedPolicy::RoundRobin => RoundRobinInterleave::default().plan(grids),
            SchedPolicy::SmPartitioned => SmPartition::default().plan(grids),
            SchedPolicy::LeftoverFill => LeftoverFill.plan(grids),
        }
    }
}

/// Receives the events of a co-scheduled (pair) launch.
///
/// Extends [`TraceObserver`] with the co-scheduling boundaries the
/// dispatch loop crosses: which member kernel the next events belong to
/// ([`CoScheduleObserver::on_slice`]) and the per-member launch
/// start/end. The executor keeps per-member statistics separated; this
/// trait is how observers keep per-member *observations* separated too
/// (see [`PerKernel`]) — or deliberately share state across members, as
/// the pairwise-interference model does.
pub trait CoScheduleObserver: TraceObserver {
    /// Member `kernel` is launching as part of a co-schedule.
    fn on_member_launch(&mut self, kernel: usize, k: &Kernel, config: &LaunchConfig) {
        let _ = (kernel, k, config);
    }
    /// The next trace events belong to `kernel`, which is about to
    /// execute `blocks`.
    fn on_slice(&mut self, kernel: usize, blocks: &Range<u32>) {
        let _ = (kernel, blocks);
    }
    /// Member `kernel` finished with `stats`.
    fn on_member_launch_end(&mut self, kernel: usize, stats: &LaunchStats) {
        let _ = (kernel, stats);
    }
}

/// Routes a co-scheduled launch's events to one observer per member
/// kernel, so each member's observer sees exactly the event stream a
/// solo launch of that kernel would have produced.
#[derive(Debug, Clone)]
pub struct PerKernel<O> {
    members: Vec<O>,
    current: usize,
}

impl<O: TraceObserver> PerKernel<O> {
    /// Wraps one observer per member kernel.
    pub fn new(members: Vec<O>) -> Self {
        Self {
            members,
            current: 0,
        }
    }

    /// The per-member observers, in member order.
    pub fn members(&self) -> &[O] {
        &self.members
    }

    /// Unwraps into the per-member observers.
    pub fn into_members(self) -> Vec<O> {
        self.members
    }
}

impl<O: TraceObserver> TraceObserver for PerKernel<O> {
    fn on_launch(&mut self, kernel: &Kernel, config: &LaunchConfig) {
        self.members[self.current].on_launch(kernel, config);
    }
    fn on_instr(&mut self, event: &InstrEvent<'_>) {
        self.members[self.current].on_instr(event);
    }
    fn on_mem(&mut self, event: &MemEvent<'_>) {
        self.members[self.current].on_mem(event);
    }
    fn on_branch(&mut self, event: &BranchEvent) {
        self.members[self.current].on_branch(event);
    }
    fn on_barrier(&mut self, block: u32) {
        self.members[self.current].on_barrier(block);
    }
    fn on_launch_end(&mut self, stats: &LaunchStats) {
        self.members[self.current].on_launch_end(stats);
    }
}

impl<O: TraceObserver> CoScheduleObserver for PerKernel<O> {
    fn on_member_launch(&mut self, kernel: usize, k: &Kernel, config: &LaunchConfig) {
        self.members[kernel].on_launch(k, config);
    }
    fn on_slice(&mut self, kernel: usize, _blocks: &Range<u32>) {
        self.current = kernel;
    }
    fn on_member_launch_end(&mut self, kernel: usize, stats: &LaunchStats) {
        self.members[kernel].on_launch_end(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(policy: &dyn BlockScheduler, grids: &[u32]) {
        let plan = policy.plan(grids);
        plan.validate(grids)
            .unwrap_or_else(|e| panic!("invalid plan for grids {grids:?}: {e}"));
        let total: u64 = grids.iter().map(|&g| g as u64).sum();
        assert_eq!(plan.total_blocks(), total);
        for (k, &g) in grids.iter().enumerate() {
            assert_eq!(plan.blocks_of(k), g as u64, "kernel {k} coverage");
        }
    }

    /// Seeded sweep: every policy covers every kernel's blocks exactly
    /// once, in order, with no overlap — over a few hundred random
    /// geometries including zero-block and wildly asymmetric grids.
    #[test]
    fn every_policy_covers_every_grid_exactly_once() {
        let mut rng = crate::kgen::Rng::new(0x0C05_C4ED);
        let policies: [&dyn BlockScheduler; 3] = [
            &RoundRobinInterleave { chunk: 1 },
            &SmPartition { sms: MODEL_SMS },
            &LeftoverFill,
        ];
        for _ in 0..300 {
            let ga = rng.below(257);
            let gb = rng.below(257);
            for p in policies {
                check(p, &[ga, gb]);
            }
            // Chunked round-robin and odd SM counts.
            check(
                &RoundRobinInterleave {
                    chunk: 1 + rng.below(7),
                },
                &[ga, gb],
            );
            check(
                &SmPartition {
                    sms: 2 + rng.below(31),
                },
                &[ga, gb],
            );
        }
        // Corner geometries every policy must survive.
        for grids in [
            &[0u32, 0][..],
            &[0, 5],
            &[5, 0],
            &[1, 1],
            &[1, 1024],
            &[1024, 1],
        ] {
            for p in policies {
                check(p, grids);
            }
        }
        // Policies are not limited to pairs.
        for p in policies {
            check(p, &[3, 0, 17, 64]);
        }
    }

    #[test]
    fn plans_are_pure_functions_of_geometry() {
        for policy in SchedPolicy::ALL {
            let a = policy.plan(&[37, 101]);
            let b = policy.plan(&[37, 101]);
            assert_eq!(a, b, "{} replans identically", policy.name());
        }
    }

    #[test]
    fn policies_actually_differ() {
        let plans: Vec<DispatchPlan> = SchedPolicy::ALL.iter().map(|p| p.plan(&[32, 32])).collect();
        assert_ne!(plans[0], plans[1]);
        assert_ne!(plans[0], plans[2]);
        assert_ne!(plans[1], plans[2]);
    }

    #[test]
    fn round_robin_alternates_single_blocks() {
        let plan = RoundRobinInterleave { chunk: 1 }.plan(&[2, 2]);
        let got: Vec<(usize, Range<u32>)> = plan
            .slices()
            .iter()
            .map(|s| (s.kernel, s.blocks.clone()))
            .collect();
        assert_eq!(got, vec![(0, 0..1), (1, 0..1), (0, 1..2), (1, 1..2)]);
    }

    #[test]
    fn sm_partition_slices_by_share() {
        // 16 SMs over 2 kernels: 8-block turns.
        let plan = SmPartition { sms: 16 }.plan(&[16, 8]);
        let first: Vec<(usize, Range<u32>)> = plan
            .slices()
            .iter()
            .take(3)
            .map(|s| (s.kernel, s.blocks.clone()))
            .collect();
        assert_eq!(first, vec![(0, 0..8), (1, 0..8), (0, 8..16)]);
    }

    #[test]
    fn leftover_fill_spreads_the_smaller_kernel() {
        // One full-machine wave per 16 primary blocks; the filler's
        // blocks land at wave boundaries, spread evenly.
        let plan = LeftoverFill.plan(&[32, 4]);
        let got: Vec<(usize, Range<u32>)> = plan
            .slices()
            .iter()
            .map(|s| (s.kernel, s.blocks.clone()))
            .collect();
        assert_eq!(got, vec![(0, 0..16), (1, 0..2), (0, 16..32), (1, 2..4)]);
        // Ties pick kernel 0 as primary and still mix more coarsely
        // than round-robin or the SM partition.
        let tie = LeftoverFill.plan(&[16, 16]);
        assert_eq!(
            tie.slices()[0],
            DispatchSlice {
                kernel: 0,
                blocks: 0..16
            }
        );
        assert_eq!(
            tie.slices()[1],
            DispatchSlice {
                kernel: 1,
                blocks: 0..16
            }
        );
    }

    #[test]
    fn policy_parse_round_trips_and_rejects_junk() {
        for p in SchedPolicy::ALL {
            assert_eq!(SchedPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(SchedPolicy::parse("RR"), Some(SchedPolicy::RoundRobin));
        assert_eq!(SchedPolicy::parse("gang"), None);
        assert_eq!(SchedPolicy::parse(""), None);
    }

    #[test]
    fn single_plan_is_one_slice() {
        let plan = DispatchPlan::single(3..9);
        assert_eq!(plan.slices().len(), 1);
        assert_eq!(plan.total_blocks(), 6);
        assert_eq!(plan.blocks_of(0), 6);
    }

    #[test]
    fn validate_rejects_gaps_overlaps_and_disorder() {
        let gap = DispatchPlan::from_slices(vec![DispatchSlice {
            kernel: 0,
            blocks: 0..3,
        }]);
        assert!(gap.validate(&[5]).is_err());
        let overlap = DispatchPlan::from_slices(vec![
            DispatchSlice {
                kernel: 0,
                blocks: 0..3,
            },
            DispatchSlice {
                kernel: 0,
                blocks: 2..5,
            },
        ]);
        assert!(overlap.validate(&[5]).is_err());
        let disorder = DispatchPlan::from_slices(vec![
            DispatchSlice {
                kernel: 0,
                blocks: 3..5,
            },
            DispatchSlice {
                kernel: 0,
                blocks: 0..3,
            },
        ]);
        assert!(disorder.validate(&[5]).is_err());
    }
}
