//! The 8-wide lane-group warp engine ([`crate::backend::SimdBackend`]).
//!
//! The scalar reference steps one lane at a time through a tag-free but
//! still lane-serial `match`. This engine processes the 32 warp lanes as
//! **four 8-wide lane groups**: operands are materialized into `[u32; 8]`
//! value vectors, the opcode `match` happens once per group (not per
//! lane), and the tight 8-element loops are plain indexed array code the
//! autovectorizer lowers to real SIMD. Results are committed with the
//! group's slice of the active mask as a **blend mask** — every lane is
//! computed, only active lanes are written:
//!
//! ```text
//! dst[i] = if mask & (1 << i) != 0 { result[i] } else { dst[i] }
//! ```
//!
//! # Bit-identity discipline
//!
//! The differential harness (`tests/backend_diff.rs`) holds this engine
//! to *total* equivalence with the scalar loop — same observer events in
//! the same order, same register/memory effects, same stats, same errors
//! at the same pc. The rules that make that hold:
//!
//! * Computing an IEEE op on an inactive lane's garbage input is safe:
//!   the result is deterministic bitwise and the blend discards it.
//! * Integer div/rem keep the scalar per-lane checked path: the scalar
//!   loop faults at the *first* active zero-divisor lane after writing
//!   earlier lanes, and that partial-write order is observable.
//! * Memory µops vectorize address generation only; the per-lane
//!   load/store/atomic loop runs in ascending lane order exactly like
//!   the scalar engine (atomics serialize, fault order is per-lane).
//! * `addr_buf` entries are written for active lanes only — inactive
//!   lanes keep stale values, matching the scalar engine's documented
//!   [`MemEvent`] contract.
//!
//! # Superinstruction fusion
//!
//! When [`LaunchCtx::fusion`] is set, µop pairs marked by the decoder
//! ([`crate::decode::Fusion`]) execute as one step, keeping the
//! intermediate vector hot instead of round-tripping it through the
//! register bank. Fusion is observation-preserving: each half still
//! performs its own budget accounting and emits its own `on_instr` (and
//! `on_mem`/`on_branch`) event at its own pc. A pair only fuses
//! dynamically when execution will actually fall through (`top.rpc !=
//! pc + 1`); slot `pc + 1` keeps its original µop, so branching into the
//! middle of a pair executes the plain second half.

use crate::decode::{self, BinKind, DecodedKernel, Fusion, Src, UnKind, Uop};
use crate::exec::{advance, lanes, read4, write4, write_reg, LaunchCtx, StackEntry, Warp};
use crate::instr::{CmpOp, Space, Type};
use crate::trace::{AccessKind, BranchEvent, InstrEvent, MemEvent, TraceObserver};
use crate::{SimtError, WARP_SIZE};

/// Lane groups per warp (32 lanes / 8-wide groups).
const GROUPS: usize = WARP_SIZE / 8;

/// The 8 mask bits covering lane group `g`.
#[inline]
fn group_mask(mask: u32, g: usize) -> u32 {
    (mask >> (g * 8)) & 0xff
}

/// Copies lane group `g` of register `r` out of the bank.
#[inline]
fn group8(warp: &Warp, r: u16, g: usize) -> [u32; 8] {
    let o = r as usize * WARP_SIZE + g * 8;
    warp.regs[o..o + 8].try_into().expect("8 lanes")
}

/// Commits a result vector to lane group `g` of register `r` in select
/// form: active lanes take the new value, inactive keep the old.
#[inline]
fn blend8(warp: &mut Warp, r: u16, g: usize, gm: u32, v: &[u32; 8]) {
    let o = r as usize * WARP_SIZE + g * 8;
    let d = &mut warp.regs[o..o + 8];
    for (i, d) in d.iter_mut().enumerate() {
        *d = if gm & (1 << i) != 0 { v[i] } else { *d };
    }
}

/// Materializes operand `s` for lane group `g` as a value vector.
/// Registers copy their group, immediates/params splat, special
/// registers fall back to the scalar evaluator per lane (same formulas,
/// same bits).
#[inline]
fn eval8(ctx: &LaunchCtx<'_>, warp: &Warp, block: u32, g: usize, s: Src) -> [u32; 8] {
    match s {
        Src::Reg(r) => group8(warp, r, g),
        Src::Imm(bits) => [bits; 8],
        Src::Param(i) => [ctx.params[i as usize]; 8],
        Src::Sreg(_) => std::array::from_fn(|i| ctx.eval(warp, block, g * 8 + i, s)),
    }
}

#[inline]
fn map2(a: &[u32; 8], b: &[u32; 8], f: impl Fn(u32, u32) -> u32) -> [u32; 8] {
    std::array::from_fn(|i| f(a[i], b[i]))
}

#[inline]
fn i2(a: &[u32; 8], b: &[u32; 8], f: impl Fn(i32, i32) -> i32) -> [u32; 8] {
    std::array::from_fn(|i| f(a[i] as i32, b[i] as i32) as u32)
}

#[inline]
fn f2(a: &[u32; 8], b: &[u32; 8], f: impl Fn(f32, f32) -> f32) -> [u32; 8] {
    std::array::from_fn(|i| f(f32::from_bits(a[i]), f32::from_bits(b[i])).to_bits())
}

#[inline]
fn f1(a: &[u32; 8], f: impl Fn(f32) -> f32) -> [u32; 8] {
    std::array::from_fn(|i| f(f32::from_bits(a[i])).to_bits())
}

/// 8-wide [`BinKind::eval`]; div/rem are excluded (they keep the scalar
/// checked path — see the module docs).
#[inline]
fn bin8(kind: BinKind, a: &[u32; 8], b: &[u32; 8]) -> [u32; 8] {
    use BinKind::*;
    match kind {
        AddU32 => map2(a, b, u32::wrapping_add),
        SubU32 => map2(a, b, u32::wrapping_sub),
        MulU32 => map2(a, b, u32::wrapping_mul),
        MinU32 => map2(a, b, u32::min),
        MaxU32 => map2(a, b, u32::max),
        AndU32 | AndI32 | AndPred => map2(a, b, |x, y| x & y),
        OrU32 | OrI32 | OrPred => map2(a, b, |x, y| x | y),
        XorU32 | XorI32 | XorPred => map2(a, b, |x, y| x ^ y),
        ShlU32 => map2(a, b, u32::wrapping_shl),
        ShrU32 => map2(a, b, u32::wrapping_shr),
        AddI32 => i2(a, b, i32::wrapping_add),
        SubI32 => i2(a, b, i32::wrapping_sub),
        MulI32 => i2(a, b, i32::wrapping_mul),
        MinI32 => i2(a, b, i32::min),
        MaxI32 => i2(a, b, i32::max),
        ShlI32 => std::array::from_fn(|i| (a[i] as i32).wrapping_shl(b[i]) as u32),
        ShrI32 => std::array::from_fn(|i| (a[i] as i32).wrapping_shr(b[i]) as u32),
        AddF32 => f2(a, b, |x, y| x + y),
        SubF32 => f2(a, b, |x, y| x - y),
        MulF32 => f2(a, b, |x, y| x * y),
        DivF32 => f2(a, b, |x, y| x / y),
        MinF32 => f2(a, b, f32::min),
        MaxF32 => f2(a, b, f32::max),
        DivU32 | RemU32 | DivI32 | RemI32 => {
            unreachable!("checked div/rem take the per-lane scalar path")
        }
    }
}

/// 8-wide [`UnKind::eval`].
#[inline]
fn un8(kind: UnKind, a: &[u32; 8]) -> [u32; 8] {
    use UnKind::*;
    match kind {
        NegI32 => std::array::from_fn(|i| (a[i] as i32).wrapping_neg() as u32),
        NegF32 => f1(a, |x| -x),
        AbsI32 => std::array::from_fn(|i| (a[i] as i32).wrapping_abs() as u32),
        AbsF32 => f1(a, f32::abs),
        NotInt => std::array::from_fn(|i| !a[i]),
        NotPred => std::array::from_fn(|i| a[i] ^ 1),
        SqrtF32 => f1(a, f32::sqrt),
        RsqrtF32 => f1(a, |x| 1.0 / x.sqrt()),
        Exp2F32 => f1(a, f32::exp2),
        Log2F32 => f1(a, f32::log2),
        SinF32 => f1(a, f32::sin),
        CosF32 => f1(a, f32::cos),
        RecipF32 => f1(a, |x| 1.0 / x),
    }
}

/// 8-wide [`decode::eval_cmp`]. Rust's comparison operators agree with
/// the ordering-based reference bit for bit, including every NaN case
/// (`Ne` true, everything else false).
#[inline]
fn cmp8(op: CmpOp, ty: Type, a: &[u32; 8], b: &[u32; 8]) -> [u32; 8] {
    #[inline]
    fn c<T: PartialOrd>(op: CmpOp, x: T, y: T) -> u32 {
        (match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }) as u32
    }
    match ty {
        Type::U32 => std::array::from_fn(|i| c(op, a[i], b[i])),
        Type::I32 => std::array::from_fn(|i| c(op, a[i] as i32, b[i] as i32)),
        Type::F32 => std::array::from_fn(|i| c(op, f32::from_bits(a[i]), f32::from_bits(b[i]))),
        Type::Pred => unreachable!("validated: no predicate comparisons"),
    }
}

/// 8-wide [`decode::eval_mad`].
#[inline]
fn mad8(ty: Type, a: &[u32; 8], b: &[u32; 8], c: &[u32; 8]) -> [u32; 8] {
    match ty {
        Type::U32 => std::array::from_fn(|i| a[i].wrapping_mul(b[i]).wrapping_add(c[i])),
        Type::I32 => std::array::from_fn(|i| {
            (a[i] as i32)
                .wrapping_mul(b[i] as i32)
                .wrapping_add(c[i] as i32) as u32
        }),
        Type::F32 => std::array::from_fn(|i| {
            f32::from_bits(a[i])
                .mul_add(f32::from_bits(b[i]), f32::from_bits(c[i]))
                .to_bits()
        }),
        Type::Pred => unreachable!("validated: no predicate mad"),
    }
}

/// 8-wide [`decode::convert`].
#[inline]
fn cvt8(from: Type, to: Type, v: &[u32; 8]) -> [u32; 8] {
    std::array::from_fn(|i| decode::convert(v[i], from, to))
}

/// Grouped address generation: active lanes of `out` get `base +
/// offset`, inactive lanes keep their stale values (the scalar engine's
/// exact policy — [`MemEvent::addrs`] entries are only valid under the
/// active mask).
fn gather_addrs8(
    ctx: &LaunchCtx<'_>,
    warp: &Warp,
    block: u32,
    mask: u32,
    base: Src,
    offset: i32,
    out: &mut [u32; WARP_SIZE],
) {
    for g in 0..GROUPS {
        let gm = group_mask(mask, g);
        if gm == 0 {
            continue;
        }
        let b8 = eval8(ctx, warp, block, g, base);
        let chunk = &mut out[g * 8..g * 8 + 8];
        for (i, o) in chunk.iter_mut().enumerate() {
            *o = if gm & (1 << i) != 0 {
                b8[i].wrapping_add_signed(offset)
            } else {
                *o
            };
        }
    }
}

/// Warp-instruction accounting: bump, enforce the budget, add active
/// lanes, bump the exec profile — the exact order of the scalar loop's
/// prologue. Fused pairs call this once per half at that half's pc, so
/// the profile is fusion-invariant like the stats.
#[inline]
fn account(ctx: &mut LaunchCtx<'_>, pc: usize, mask: u32) -> Result<(), SimtError> {
    ctx.stats.warp_instrs += 1;
    if ctx.stats.warp_instrs > ctx.budget {
        return Err(SimtError::InstructionBudgetExceeded { budget: ctx.budget });
    }
    ctx.stats.thread_instrs += mask.count_ones() as u64;
    if let Some(exec) = ctx.exec.as_deref_mut() {
        exec.bump(pc, ctx.dec.class(pc), mask);
    }
    Ok(())
}

/// Emits the per-pc instruction event (identical to the scalar loop's).
#[inline]
fn observe_instr<O: TraceObserver + ?Sized>(
    dec: &DecodedKernel,
    observer: &mut O,
    block: u32,
    warp: &Warp,
    pc: usize,
    mask: u32,
) {
    observer.on_instr(&InstrEvent {
        block,
        warp: warp.id,
        pc,
        class: dec.class(pc),
        active: mask,
        live: warp.live,
        dst: dec.dst(pc),
        srcs: dec.srcs(pc),
    });
}

/// Applies a resolved branch at `pc` to the reconvergence stack —
/// shared by the plain `Branch` arm and the fused compare-branch.
fn branch_update(warp: &mut Warp, pc: usize, mask: u32, taken: u32, target: u32, rpc: u32) {
    if taken == 0 {
        advance(warp);
    } else if taken == mask {
        warp.stack.last_mut().expect("non-empty").pc = target as usize;
    } else {
        let rpc = rpc as usize;
        let old = warp.stack.pop().expect("non-empty");
        // Continuation at the reconvergence point.
        warp.stack.push(StackEntry {
            pc: rpc,
            rpc: old.rpc,
            mask: old.mask,
        });
        // Not-taken path.
        warp.stack.push(StackEntry {
            pc: pc + 1,
            rpc,
            mask: mask & !taken,
        });
        // Taken path (runs first).
        warp.stack.push(StackEntry {
            pc: target as usize,
            rpc,
            mask: taken,
        });
    }
}

/// Runs one warp until it exits or reaches a barrier — the SIMD engine's
/// main loop. Structure mirrors [`LaunchCtx::run_warp_scalar`] step for
/// step; only the per-µop execution bodies differ.
pub(crate) fn run_warp_simd<O: TraceObserver + ?Sized>(
    ctx: &mut LaunchCtx<'_>,
    block: u32,
    warp: &mut Warp,
    shared: &mut [u8],
    local: &mut [u8],
    observer: &mut O,
) -> Result<(), SimtError> {
    let dec = ctx.dec;
    let exit_pc = dec.len();
    let uops = dec.uops();
    let fusion = ctx.fusion;
    let mut addr_buf = [0u32; WARP_SIZE];

    loop {
        let Some(top) = warp.stack.last().copied() else {
            return Ok(());
        };
        if top.mask == 0 || top.pc == top.rpc || top.pc >= exit_pc {
            warp.stack.pop();
            continue;
        }
        let pc = top.pc;
        let mask = top.mask;

        // Fused pairs execute only when control will actually fall
        // through to pc + 1: a reconvergence point there would pop the
        // stack between the halves, so the pair runs unfused instead.
        if fusion && top.rpc != pc + 1 {
            if let Some(f) = dec.fused(pc) {
                match f {
                    Fusion::CmpBranch => exec_cmp_branch(ctx, warp, block, pc, mask, observer)?,
                    Fusion::MulAdd => exec_mul_add(ctx, warp, block, pc, mask, observer)?,
                    Fusion::LdCvt => exec_ld_cvt(
                        ctx,
                        warp,
                        block,
                        pc,
                        mask,
                        shared,
                        local,
                        &mut addr_buf,
                        observer,
                    )?,
                }
                continue;
            }
        }

        account(ctx, pc, mask)?;
        observe_instr(dec, observer, block, warp, pc, mask);

        match uops[pc] {
            Uop::Bin { kind, dst, a, b } => {
                if matches!(
                    kind,
                    BinKind::DivU32 | BinKind::RemU32 | BinKind::DivI32 | BinKind::RemI32
                ) {
                    // Checked ops stay lane-serial: the fault pc and the
                    // partial writes of earlier lanes are observable.
                    for lane in lanes(mask) {
                        let va = ctx.eval(warp, block, lane, a);
                        let vb = ctx.eval(warp, block, lane, b);
                        let r = kind.eval(va, vb).ok_or(SimtError::DivideByZero { pc })?;
                        write_reg(warp, dst, lane, r);
                    }
                } else {
                    for g in 0..GROUPS {
                        let gm = group_mask(mask, g);
                        if gm == 0 {
                            continue;
                        }
                        let va = eval8(ctx, warp, block, g, a);
                        let vb = eval8(ctx, warp, block, g, b);
                        let r = bin8(kind, &va, &vb);
                        blend8(warp, dst, g, gm, &r);
                    }
                }
                advance(warp);
            }
            Uop::Un { kind, dst, a } => {
                for g in 0..GROUPS {
                    let gm = group_mask(mask, g);
                    if gm == 0 {
                        continue;
                    }
                    let va = eval8(ctx, warp, block, g, a);
                    let r = un8(kind, &va);
                    blend8(warp, dst, g, gm, &r);
                }
                advance(warp);
            }
            Uop::Mad { ty, dst, a, b, c } => {
                for g in 0..GROUPS {
                    let gm = group_mask(mask, g);
                    if gm == 0 {
                        continue;
                    }
                    let va = eval8(ctx, warp, block, g, a);
                    let vb = eval8(ctx, warp, block, g, b);
                    let vc = eval8(ctx, warp, block, g, c);
                    let r = mad8(ty, &va, &vb, &vc);
                    blend8(warp, dst, g, gm, &r);
                }
                advance(warp);
            }
            Uop::Cmp { op, ty, dst, a, b } => {
                for g in 0..GROUPS {
                    let gm = group_mask(mask, g);
                    if gm == 0 {
                        continue;
                    }
                    let va = eval8(ctx, warp, block, g, a);
                    let vb = eval8(ctx, warp, block, g, b);
                    let r = cmp8(op, ty, &va, &vb);
                    blend8(warp, dst, g, gm, &r);
                }
                advance(warp);
            }
            Uop::Sel { dst, pred, a, b } => {
                for g in 0..GROUPS {
                    let gm = group_mask(mask, g);
                    if gm == 0 {
                        continue;
                    }
                    let p = group8(warp, pred, g);
                    let va = eval8(ctx, warp, block, g, a);
                    let vb = eval8(ctx, warp, block, g, b);
                    let r: [u32; 8] =
                        std::array::from_fn(|i| if p[i] != 0 { va[i] } else { vb[i] });
                    blend8(warp, dst, g, gm, &r);
                }
                advance(warp);
            }
            Uop::Mov { dst, src } => {
                for g in 0..GROUPS {
                    let gm = group_mask(mask, g);
                    if gm == 0 {
                        continue;
                    }
                    let v = eval8(ctx, warp, block, g, src);
                    blend8(warp, dst, g, gm, &v);
                }
                advance(warp);
            }
            Uop::Cvt { from, to, dst, src } => {
                for g in 0..GROUPS {
                    let gm = group_mask(mask, g);
                    if gm == 0 {
                        continue;
                    }
                    let v = eval8(ctx, warp, block, g, src);
                    let r = cvt8(from, to, &v);
                    blend8(warp, dst, g, gm, &r);
                }
                advance(warp);
            }
            Uop::Ld {
                dst,
                space,
                base,
                offset,
            } => {
                gather_addrs8(ctx, warp, block, mask, base, offset, &mut addr_buf);
                observer.on_mem(&MemEvent {
                    block,
                    warp: warp.id,
                    pc,
                    space,
                    kind: AccessKind::Load,
                    bytes: 4,
                    active: mask,
                    addrs: &addr_buf,
                });
                let lb = ctx.kernel.local_bytes() as usize;
                for lane in lanes(mask) {
                    let a = addr_buf[lane];
                    let raw = match space {
                        Space::Global => read4(ctx.global, a, pc, "global")?,
                        Space::Shared => read4(shared, a, pc, "shared")?,
                        Space::Const => read4(ctx.const_mem, a, pc, "const")?,
                        Space::Local => {
                            let t = (warp.base_thread as usize + lane) * lb;
                            read4(&local[t..t + lb], a, pc, "local")?
                        }
                    };
                    write_reg(warp, dst, lane, u32::from_le_bytes(raw));
                }
                advance(warp);
            }
            Uop::St {
                space,
                base,
                offset,
                src,
            } => {
                gather_addrs8(ctx, warp, block, mask, base, offset, &mut addr_buf);
                observer.on_mem(&MemEvent {
                    block,
                    warp: warp.id,
                    pc,
                    space,
                    kind: AccessKind::Store,
                    bytes: 4,
                    active: mask,
                    addrs: &addr_buf,
                });
                let lb = ctx.kernel.local_bytes() as usize;
                for lane in lanes(mask) {
                    let v = ctx.eval(warp, block, lane, src);
                    let a = addr_buf[lane];
                    let data = v.to_le_bytes();
                    match space {
                        Space::Global => write4(ctx.global, a, data, pc, "global")?,
                        Space::Shared => write4(shared, a, data, pc, "shared")?,
                        Space::Local => {
                            let t = (warp.base_thread as usize + lane) * lb;
                            write4(&mut local[t..t + lb], a, data, pc, "local")?
                        }
                        Space::Const => {
                            return Err(SimtError::OutOfBounds {
                                pc,
                                space: "const",
                                addr: a as u64,
                                size: 0,
                            })
                        }
                    }
                }
                advance(warp);
            }
            Uop::Atom {
                kind,
                dst,
                space,
                base,
                offset,
                src,
                compare,
            } => {
                gather_addrs8(ctx, warp, block, mask, base, offset, &mut addr_buf);
                observer.on_mem(&MemEvent {
                    block,
                    warp: warp.id,
                    pc,
                    space,
                    kind: AccessKind::Atomic,
                    bytes: 4,
                    active: mask,
                    addrs: &addr_buf,
                });
                // Atomics serialize per lane by definition; identical to
                // the scalar loop.
                for lane in lanes(mask) {
                    let a = addr_buf[lane];
                    let operand = ctx.eval(warp, block, lane, src);
                    let cmp_v = compare.map(|c| ctx.eval(warp, block, lane, c));
                    let old = match space {
                        Space::Global => u32::from_le_bytes(read4(ctx.global, a, pc, "global")?),
                        Space::Shared => u32::from_le_bytes(read4(shared, a, pc, "shared")?),
                        _ => unreachable!("atomics validated to global/shared"),
                    };
                    if let Some(new) = kind.apply(old, operand, cmp_v) {
                        let data = new.to_le_bytes();
                        match space {
                            Space::Global => write4(ctx.global, a, data, pc, "global")?,
                            Space::Shared => write4(shared, a, data, pc, "shared")?,
                            _ => unreachable!("atomics validated to global/shared"),
                        }
                    }
                    if let Some(d) = dst {
                        write_reg(warp, d, lane, old);
                    }
                }
                advance(warp);
            }
            Uop::Bar => {
                if mask != warp.live || warp.stack.len() != 1 {
                    return Err(SimtError::BarrierDivergence { pc });
                }
                advance(warp);
                warp.at_barrier = true;
                return Ok(());
            }
            Uop::Jump { target } => {
                warp.stack.last_mut().expect("non-empty").pc = target as usize;
            }
            Uop::Branch {
                target,
                reg,
                negate,
                rpc,
            } => {
                let mut taken = 0u32;
                for g in 0..GROUPS {
                    let gm = group_mask(mask, g);
                    if gm == 0 {
                        continue;
                    }
                    let p = group8(warp, reg, g);
                    for (i, &p) in p.iter().enumerate() {
                        if gm & (1 << i) != 0 && (p != 0) != negate {
                            taken |= 1 << (g * 8 + i);
                        }
                    }
                }
                observer.on_branch(&BranchEvent {
                    block,
                    warp: warp.id,
                    pc,
                    active: mask,
                    taken,
                });
                branch_update(warp, pc, mask, taken, target, rpc);
            }
            Uop::Ret => {
                let exiting = mask;
                warp.live &= !exiting;
                for e in &mut warp.stack {
                    e.mask &= !exiting;
                }
            }
        }
    }
}

/// Fused compare + branch: one pass computes the predicate vector,
/// blends it into the predicate register *and* derives the taken mask,
/// so the branch never re-reads the bank. Two accounting steps, two
/// `on_instr` events, one `on_branch` — the observable stream of the
/// unfused pair.
fn exec_cmp_branch<O: TraceObserver + ?Sized>(
    ctx: &mut LaunchCtx<'_>,
    warp: &mut Warp,
    block: u32,
    pc: usize,
    mask: u32,
    observer: &mut O,
) -> Result<(), SimtError> {
    let dec = ctx.dec;
    let (
        Uop::Cmp { op, ty, dst, a, b },
        Uop::Branch {
            target,
            negate,
            rpc,
            ..
        },
    ) = (dec.uops()[pc], dec.uops()[pc + 1])
    else {
        unreachable!("fusion table says CmpBranch");
    };

    account(ctx, pc, mask)?;
    observe_instr(dec, observer, block, warp, pc, mask);
    let mut taken = 0u32;
    for g in 0..GROUPS {
        let gm = group_mask(mask, g);
        if gm == 0 {
            continue;
        }
        let va = eval8(ctx, warp, block, g, a);
        let vb = eval8(ctx, warp, block, g, b);
        let c = cmp8(op, ty, &va, &vb);
        blend8(warp, dst, g, gm, &c);
        for (i, &c) in c.iter().enumerate() {
            if gm & (1 << i) != 0 && (c != 0) != negate {
                taken |= 1 << (g * 8 + i);
            }
        }
    }

    // Branch half. A budget fault here leaves the compare committed and
    // the branch unexecuted — exactly the scalar engine's state.
    account(ctx, pc + 1, mask)?;
    let bpc = pc + 1;
    observe_instr(dec, observer, block, warp, bpc, mask);
    observer.on_branch(&BranchEvent {
        block,
        warp: warp.id,
        pc: bpc,
        active: mask,
        taken,
    });
    warp.stack.last_mut().expect("non-empty").pc = bpc;
    branch_update(warp, bpc, mask, taken, target, rpc);
    Ok(())
}

/// Fused multiply + add: the product vectors stay in interpreter
/// registers and feed the add directly. Correct because blending only
/// discards inactive lanes, and the add's results for those lanes are
/// discarded by its own blend anyway.
fn exec_mul_add<O: TraceObserver + ?Sized>(
    ctx: &mut LaunchCtx<'_>,
    warp: &mut Warp,
    block: u32,
    pc: usize,
    mask: u32,
    observer: &mut O,
) -> Result<(), SimtError> {
    let dec = ctx.dec;
    let (
        Uop::Bin {
            kind: k1,
            dst: t,
            a: a1,
            b: b1,
        },
        Uop::Bin {
            kind: k2,
            dst: d2,
            a: a2,
            b: b2,
        },
    ) = (dec.uops()[pc], dec.uops()[pc + 1])
    else {
        unreachable!("fusion table says MulAdd");
    };

    account(ctx, pc, mask)?;
    observe_instr(dec, observer, block, warp, pc, mask);
    let mut prod = [[0u32; 8]; GROUPS];
    for (g, prod) in prod.iter_mut().enumerate() {
        let gm = group_mask(mask, g);
        if gm == 0 {
            continue;
        }
        let va = eval8(ctx, warp, block, g, a1);
        let vb = eval8(ctx, warp, block, g, b1);
        *prod = bin8(k1, &va, &vb);
        blend8(warp, t, g, gm, prod);
    }

    account(ctx, pc + 1, mask)?;
    observe_instr(dec, observer, block, warp, pc + 1, mask);
    for (g, prod) in prod.iter().enumerate() {
        let gm = group_mask(mask, g);
        if gm == 0 {
            continue;
        }
        // For active lanes the product vector equals the register bank
        // (just blended); inactive lanes differ but are discarded again.
        let va = if a2 == Src::Reg(t) {
            *prod
        } else {
            eval8(ctx, warp, block, g, a2)
        };
        let vb = if b2 == Src::Reg(t) {
            *prod
        } else {
            eval8(ctx, warp, block, g, b2)
        };
        let r = bin8(k2, &va, &vb);
        blend8(warp, d2, g, gm, &r);
    }
    warp.stack.last_mut().expect("non-empty").pc = pc + 2;
    Ok(())
}

/// Fused load + convert: the loaded bits stay in a lane buffer and feed
/// the conversion directly. The load half is identical to the plain
/// `Ld` arm (event order, fault order, partial writes).
#[allow(clippy::too_many_arguments)]
fn exec_ld_cvt<O: TraceObserver + ?Sized>(
    ctx: &mut LaunchCtx<'_>,
    warp: &mut Warp,
    block: u32,
    pc: usize,
    mask: u32,
    shared: &mut [u8],
    local: &mut [u8],
    addr_buf: &mut [u32; WARP_SIZE],
    observer: &mut O,
) -> Result<(), SimtError> {
    let dec = ctx.dec;
    let (
        Uop::Ld {
            dst: t,
            space,
            base,
            offset,
        },
        Uop::Cvt {
            from, to, dst: d2, ..
        },
    ) = (dec.uops()[pc], dec.uops()[pc + 1])
    else {
        unreachable!("fusion table says LdCvt");
    };

    account(ctx, pc, mask)?;
    observe_instr(dec, observer, block, warp, pc, mask);
    gather_addrs8(ctx, warp, block, mask, base, offset, addr_buf);
    observer.on_mem(&MemEvent {
        block,
        warp: warp.id,
        pc,
        space,
        kind: AccessKind::Load,
        bytes: 4,
        active: mask,
        addrs: &*addr_buf,
    });
    let lb = ctx.kernel.local_bytes() as usize;
    let mut loaded = [0u32; WARP_SIZE];
    for lane in lanes(mask) {
        let a = addr_buf[lane];
        let raw = match space {
            Space::Global => read4(ctx.global, a, pc, "global")?,
            Space::Shared => read4(shared, a, pc, "shared")?,
            Space::Const => read4(ctx.const_mem, a, pc, "const")?,
            Space::Local => {
                let tl = (warp.base_thread as usize + lane) * lb;
                read4(&local[tl..tl + lb], a, pc, "local")?
            }
        };
        let bits = u32::from_le_bytes(raw);
        loaded[lane] = bits;
        write_reg(warp, t, lane, bits);
    }

    account(ctx, pc + 1, mask)?;
    observe_instr(dec, observer, block, warp, pc + 1, mask);
    for g in 0..GROUPS {
        let gm = group_mask(mask, g);
        if gm == 0 {
            continue;
        }
        let v: [u32; 8] = loaded[g * 8..g * 8 + 8].try_into().expect("8 lanes");
        let r = cvt8(from, to, &v);
        blend8(warp, d2, g, gm, &r);
    }
    warp.stack.last_mut().expect("non-empty").pc = pc + 2;
    Ok(())
}
