//! Execution trace observers.
//!
//! The executor streams warp-level events to a [`TraceObserver`] while a
//! kernel runs. Observers see everything a microarchitecture-independent
//! characterization needs — dynamic instruction classes with active masks,
//! per-lane memory addresses, branch outcomes, barriers — without the
//! executor ever materializing a full trace in memory.

use crate::instr::{InstrClass, Reg, Space};
use crate::kernel::Kernel;
use crate::launch::LaunchConfig;
use crate::WARP_SIZE;

/// A warp-level dynamic instruction.
#[derive(Debug, Clone, Copy)]
pub struct InstrEvent<'a> {
    /// Linear block index within the grid.
    pub block: u32,
    /// Warp index within the block.
    pub warp: u32,
    /// Instruction index in the kernel.
    pub pc: usize,
    /// Dynamic classification.
    pub class: InstrClass,
    /// Active lane mask (bit `i` = lane `i` executed).
    pub active: u32,
    /// Live lane mask: lanes of this warp that exist and have not exited.
    /// `active == live` means the warp is fully converged.
    pub live: u32,
    /// Destination register, if the instruction writes one.
    pub dst: Option<Reg>,
    /// Register operands read (statically known per pc).
    pub srcs: &'a [Reg],
}

impl InstrEvent<'_> {
    /// Number of active lanes.
    pub fn active_lanes(&self) -> u32 {
        self.active.count_ones()
    }
}

/// What kind of access a [`MemEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load.
    Load,
    /// Store.
    Store,
    /// Atomic read-modify-write.
    Atomic,
}

/// A warp-level memory access with per-lane byte addresses.
#[derive(Debug, Clone, Copy)]
pub struct MemEvent<'a> {
    /// Linear block index within the grid.
    pub block: u32,
    /// Warp index within the block.
    pub warp: u32,
    /// Instruction index in the kernel.
    pub pc: usize,
    /// Memory space accessed.
    pub space: Space,
    /// Load, store or atomic.
    pub kind: AccessKind,
    /// Access width in bytes per lane (always 4 in the current IR).
    pub bytes: u8,
    /// Active lane mask.
    pub active: u32,
    /// Per-lane byte addresses; entry `i` is valid iff bit `i` of
    /// `active` is set.
    pub addrs: &'a [u32; WARP_SIZE],
}

impl MemEvent<'_> {
    /// Iterates over the addresses of active lanes.
    pub fn active_addrs(&self) -> impl Iterator<Item = u32> + '_ {
        (0..WARP_SIZE).filter_map(move |i| {
            if self.active & (1 << i) != 0 {
                Some(self.addrs[i])
            } else {
                None
            }
        })
    }
}

/// A warp-level conditional-branch outcome.
#[derive(Debug, Clone, Copy)]
pub struct BranchEvent {
    /// Linear block index within the grid.
    pub block: u32,
    /// Warp index within the block.
    pub warp: u32,
    /// Instruction index in the kernel.
    pub pc: usize,
    /// Active lane mask when the branch executed.
    pub active: u32,
    /// Lanes that took the branch.
    pub taken: u32,
}

impl BranchEvent {
    /// True when the branch split the warp (some lanes taken, some not).
    pub fn divergent(&self) -> bool {
        self.taken != 0 && self.taken != self.active
    }
}

/// Summary counters the executor returns from each launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaunchStats {
    /// Warp-level dynamic instructions (one per lock-step issue).
    pub warp_instrs: u64,
    /// Thread-level dynamic instructions (sum of active lanes).
    pub thread_instrs: u64,
    /// Blocks executed.
    pub blocks: u64,
    /// Warps executed.
    pub warps: u64,
    /// Barriers released (block-wide).
    pub barriers: u64,
}

/// Reports one retired launch to the observability recorder: the
/// per-kernel aggregate (instructions retired, warp steps, blocks,
/// barriers) plus the global `simt.*` counters. One branch when no
/// recorder is installed.
///
/// [`crate::exec::Device::launch_observed`] calls this for serial
/// launches; the sharded runtime calls it once per sharded launch with
/// the summed shard stats, so a launch is reported exactly once either
/// way.
pub fn record_launch(kernel: &str, stats: &LaunchStats, wall_ns: u64) {
    let Some(rec) = gwc_obs::recorder() else {
        return;
    };
    rec.record_kernel_launch(
        kernel,
        &gwc_obs::recorder::KernelLaunch {
            warp_instrs: stats.warp_instrs,
            thread_instrs: stats.thread_instrs,
            blocks: stats.blocks,
            warps: stats.warps,
            barriers: stats.barriers,
            wall_ns,
        },
    );
    rec.add_counter("simt.launches", 1);
    rec.add_counter("simt.warp_instrs", stats.warp_instrs);
    rec.add_counter("simt.thread_instrs", stats.thread_instrs);
    rec.add_counter("simt.blocks", stats.blocks);
    rec.add_counter("simt.barriers", stats.barriers);
}

/// Reports one retired launch's execution-cost profile: nonzero µop
/// classes plus the [`crate::profile::HOTSPOT_TOP_N`] hottest pcs, each
/// tagged with its class from the kernel's decoded stream. Like
/// [`record_launch`], a sharded launch reports once with the merged
/// shard profiles. One branch when no recorder is installed; the
/// payload slices live on this stack frame.
pub fn record_exec_profile(kernel: &Kernel, profile: &crate::profile::ExecProfile) {
    let Some(rec) = gwc_obs::recorder() else {
        return;
    };
    let mut classes = [gwc_obs::ExecClass {
        class: "",
        warp_uops: 0,
        lane_uops: 0,
    }; crate::profile::N_CLASSES];
    let mut n = 0;
    for (class, counts) in profile.classes() {
        if counts.warp_uops == 0 {
            continue;
        }
        classes[n] = gwc_obs::ExecClass {
            class: class.name(),
            warp_uops: counts.warp_uops,
            lane_uops: counts.lane_uops,
        };
        n += 1;
    }
    let dec = kernel.decoded();
    let top = profile.top_pcs(crate::profile::HOTSPOT_TOP_N);
    let mut hotspots = [gwc_obs::ExecHotspot {
        pc: 0,
        class: "",
        warp_uops: 0,
        lane_uops: 0,
    }; crate::profile::HOTSPOT_TOP_N];
    for (slot, (pc, counts)) in hotspots.iter_mut().zip(&top) {
        *slot = gwc_obs::ExecHotspot {
            pc: *pc as u64,
            class: dec.class(*pc).name(),
            warp_uops: counts.warp_uops,
            lane_uops: counts.lane_uops,
        };
    }
    rec.record_exec_profile(kernel.name(), &classes[..n], &hotspots[..top.len()]);
}

/// Receives execution events during a launch.
///
/// All methods have empty default bodies, so observers implement only what
/// they need. Observers run synchronously inside the executor loop; heavy
/// observers should stream-update their statistics rather than buffer.
pub trait TraceObserver {
    /// A kernel launch is starting.
    fn on_launch(&mut self, kernel: &Kernel, config: &LaunchConfig) {
        let _ = (kernel, config);
    }
    /// A warp executed one instruction.
    fn on_instr(&mut self, event: &InstrEvent<'_>) {
        let _ = event;
    }
    /// A warp performed a memory access (also reported via [`Self::on_instr`]).
    fn on_mem(&mut self, event: &MemEvent<'_>) {
        let _ = event;
    }
    /// A warp executed a conditional branch (also reported via [`Self::on_instr`]).
    fn on_branch(&mut self, event: &BranchEvent) {
        let _ = event;
    }
    /// A block-wide barrier was released in `block`.
    fn on_barrier(&mut self, block: u32) {
        let _ = block;
    }
    /// The launch finished.
    fn on_launch_end(&mut self, stats: &LaunchStats) {
        let _ = stats;
    }
}

/// An observer that ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl TraceObserver for NullObserver {}

/// Folds the complete event stream of a launch into one FNV-1a digest.
///
/// Two launches produce the same digest iff they emitted the same events
/// with the same payloads in the same order — which is exactly the
/// bit-identity contract the cross-backend differential harness
/// (`tests/backend_diff.rs`) asserts between the scalar and SIMD
/// engines. Every field of every event is folded in, with one
/// deliberate exception: memory-event addresses are hashed for **active
/// lanes only**, because inactive-lane `addrs` entries are documented as
/// stale garbage ([`MemEvent::addrs`]) and backends legitimately differ
/// in what they leave there.
#[derive(Debug, Clone)]
pub struct TraceHasher {
    h: crate::hash::Fnv1a,
    events: u64,
}

impl TraceHasher {
    /// A fresh hasher (empty stream digest).
    pub fn new() -> Self {
        Self {
            h: crate::hash::Fnv1a::new(),
            events: 0,
        }
    }

    /// Digest of the event stream folded so far.
    pub fn digest(&self) -> u64 {
        self.h.finish()
    }

    /// Number of events folded in (launch boundaries included).
    pub fn events(&self) -> u64 {
        self.events
    }
}

impl Default for TraceHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceObserver for TraceHasher {
    fn on_launch(&mut self, kernel: &Kernel, config: &LaunchConfig) {
        self.events += 1;
        self.h.write_str("launch");
        self.h.write_u64(kernel.content_hash());
        self.h.write_u32(config.grid_x);
        self.h.write_u32(config.grid_y);
        self.h.write_u32(config.block_x);
        self.h.write_u32(config.block_y);
    }

    fn on_instr(&mut self, event: &InstrEvent<'_>) {
        self.events += 1;
        self.h.write_str("instr");
        self.h.write_u32(event.block);
        self.h.write_u32(event.warp);
        self.h.write_u64(event.pc as u64);
        self.h.write_u32(event.class as u8 as u32);
        self.h.write_u32(event.active);
        self.h.write_u32(event.live);
        self.h.write_u32(match event.dst {
            Some(r) => 0x1_0000 | r.0 as u32,
            None => 0,
        });
        self.h.write_u64(event.srcs.len() as u64);
        for r in event.srcs {
            self.h.write_u32(r.0 as u32);
        }
    }

    fn on_mem(&mut self, event: &MemEvent<'_>) {
        self.events += 1;
        self.h.write_str("mem");
        self.h.write_u32(event.block);
        self.h.write_u32(event.warp);
        self.h.write_u64(event.pc as u64);
        self.h.write_u32(event.space as u8 as u32);
        self.h.write_u32(match event.kind {
            AccessKind::Load => 0,
            AccessKind::Store => 1,
            AccessKind::Atomic => 2,
        });
        self.h.write_u32(event.bytes as u32);
        self.h.write_u32(event.active);
        // Active lanes only — see the type docs.
        for a in event.active_addrs() {
            self.h.write_u32(a);
        }
    }

    fn on_branch(&mut self, event: &BranchEvent) {
        self.events += 1;
        self.h.write_str("branch");
        self.h.write_u32(event.block);
        self.h.write_u32(event.warp);
        self.h.write_u64(event.pc as u64);
        self.h.write_u32(event.active);
        self.h.write_u32(event.taken);
    }

    fn on_barrier(&mut self, block: u32) {
        self.events += 1;
        self.h.write_str("bar");
        self.h.write_u32(block);
    }

    fn on_launch_end(&mut self, stats: &LaunchStats) {
        self.events += 1;
        self.h.write_str("end");
        self.h.write_u64(stats.warp_instrs);
        self.h.write_u64(stats.thread_instrs);
        self.h.write_u64(stats.blocks);
        self.h.write_u64(stats.warps);
        self.h.write_u64(stats.barriers);
    }
}

/// Fans events out to several observers in order.
#[derive(Default)]
pub struct MultiObserver<'a> {
    observers: Vec<&'a mut dyn TraceObserver>,
}

impl std::fmt::Debug for MultiObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiObserver")
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl<'a> MultiObserver<'a> {
    /// Creates an empty fan-out observer.
    pub fn new() -> Self {
        Self {
            observers: Vec::new(),
        }
    }

    /// Adds an observer to the fan-out list.
    pub fn push(&mut self, obs: &'a mut dyn TraceObserver) -> &mut Self {
        self.observers.push(obs);
        self
    }
}

impl TraceObserver for MultiObserver<'_> {
    fn on_launch(&mut self, kernel: &Kernel, config: &LaunchConfig) {
        for o in &mut self.observers {
            o.on_launch(kernel, config);
        }
    }
    fn on_instr(&mut self, event: &InstrEvent<'_>) {
        for o in &mut self.observers {
            o.on_instr(event);
        }
    }
    fn on_mem(&mut self, event: &MemEvent<'_>) {
        for o in &mut self.observers {
            o.on_mem(event);
        }
    }
    fn on_branch(&mut self, event: &BranchEvent) {
        for o in &mut self.observers {
            o.on_branch(event);
        }
    }
    fn on_barrier(&mut self, block: u32) {
        for o in &mut self.observers {
            o.on_barrier(block);
        }
    }
    fn on_launch_end(&mut self, stats: &LaunchStats) {
        for o in &mut self.observers {
            o.on_launch_end(stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_divergence_detection() {
        let e = BranchEvent {
            block: 0,
            warp: 0,
            pc: 0,
            active: 0b1111,
            taken: 0b0011,
        };
        assert!(e.divergent());
        let uniform_taken = BranchEvent { taken: 0b1111, ..e };
        assert!(!uniform_taken.divergent());
        let uniform_not = BranchEvent { taken: 0, ..e };
        assert!(!uniform_not.divergent());
    }

    #[test]
    fn mem_event_active_addrs() {
        let mut addrs = [0u32; WARP_SIZE];
        addrs[0] = 100;
        addrs[2] = 300;
        let e = MemEvent {
            block: 0,
            warp: 0,
            pc: 0,
            space: Space::Global,
            kind: AccessKind::Load,
            bytes: 4,
            active: 0b101,
            addrs: &addrs,
        };
        assert_eq!(e.active_addrs().collect::<Vec<_>>(), vec![100, 300]);
    }

    #[test]
    fn instr_event_lane_count() {
        let e = InstrEvent {
            block: 0,
            warp: 0,
            pc: 0,
            class: InstrClass::IntAlu,
            active: 0xFFFF_FFFF,
            live: 0xFFFF_FFFF,
            dst: None,
            srcs: &[],
        };
        assert_eq!(e.active_lanes(), 32);
    }

    #[test]
    fn multi_observer_fans_out() {
        #[derive(Default)]
        struct Counter(u32);
        impl TraceObserver for Counter {
            fn on_barrier(&mut self, _b: u32) {
                self.0 += 1;
            }
        }
        let mut a = Counter::default();
        let mut b = Counter::default();
        {
            let mut multi = MultiObserver::new();
            multi.push(&mut a).push(&mut b);
            multi.on_barrier(0);
            multi.on_barrier(1);
        }
        assert_eq!(a.0, 2);
        assert_eq!(b.0, 2);
    }
}
