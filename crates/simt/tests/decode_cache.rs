//! The predecoded µop stream is computed once per kernel and shared.
//!
//! `Kernel::decoded` backs every launch; if the cache ever stopped
//! hitting, each launch (and each shard of a parallel study) would
//! re-lower the kernel and the predecode optimization would silently
//! evaporate. These tests pin the caching contract: lazy on first use,
//! stable across launches, and shared (same `Arc`) by clones made after
//! the first decode — which is exactly what forked shard devices rely
//! on.

use std::sync::Arc;

use gwc_simt::builder::KernelBuilder;
use gwc_simt::exec::Device;
use gwc_simt::instr::Value;
use gwc_simt::kernel::Kernel;
use gwc_simt::launch::LaunchConfig;

/// out[i] = 2 * i, with a guard branch so decode sees control flow.
fn doubling_kernel() -> Kernel {
    let mut b = KernelBuilder::new("doubling");
    let out = b.param_u32("out");
    let n = b.param_u32("n");
    let i = b.global_tid_x();
    let p = b.lt_u32(i, n);
    b.if_(p, |b| {
        let v = b.mul_u32(i, Value::U32(2));
        let oi = b.index(out, i, 4);
        b.st_global_u32(oi, v);
    });
    b.build().unwrap()
}

fn launch_once(dev: &mut Device, k: &Kernel) {
    let out = dev.alloc_zeroed_u32(64);
    dev.launch(
        k,
        &LaunchConfig::linear(64, 32),
        &[out.arg(), Value::U32(64)],
    )
    .unwrap();
    assert_eq!(dev.read_u32(&out)[3], 6);
}

#[test]
fn decode_is_lazy_and_hits_on_every_later_launch() {
    let k = doubling_kernel();
    assert!(
        !k.decode_cached(),
        "freshly built kernel must not predecode"
    );

    let mut dev = Device::new();
    launch_once(&mut dev, &k);
    assert!(k.decode_cached(), "first launch must populate the cache");

    let first = Arc::clone(k.decoded());
    launch_once(&mut dev, &k);
    launch_once(&mut dev, &k);
    assert!(
        Arc::ptr_eq(&first, k.decoded()),
        "later launches must reuse the same decoded stream, not re-lower"
    );
    assert_eq!(first.len(), k.instrs().len());
}

#[test]
fn clones_share_the_decoded_stream() {
    let k = doubling_kernel();
    let before = k.clone();
    assert!(
        !before.decode_cached(),
        "clone of an undecoded kernel starts cold"
    );

    let original = Arc::clone(k.decoded());
    let after = k.clone();
    assert!(
        Arc::ptr_eq(&original, after.decoded()),
        "clone taken after decoding must share the Arc, not re-decode"
    );

    // The cold clone decodes independently but identically.
    let mut dev = Device::new();
    launch_once(&mut dev, &before);
    assert!(before.decode_cached());
    assert_eq!(before.decoded().len(), original.len());
}
